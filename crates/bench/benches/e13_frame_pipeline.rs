//! Criterion bench behind experiment E13: host-time cost of the frame
//! path — featurization + classification per scene kind, and the secure
//! camera driver's batched window capture.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use perisec_core::pipeline::SharedModels;
use perisec_devices::camera::{CameraSensor, FixedScene, SceneKind};
use perisec_ml::classifier::Architecture;
use perisec_ml::vision::FrameCnn;
use perisec_secure_driver::camera::SecureCameraDriver;
use perisec_tz::platform::Platform;

/// Trains through the same path the pipelines use, so the bench measures
/// exactly the model the vision TA ships.
fn trained_frame_cnn() -> Arc<FrameCnn> {
    SharedModels::deferred(Architecture::Cnn, 16, 13)
        .with_vision_spec(96, 13)
        .vision()
        .unwrap()
}

fn bench_frame_inference(c: &mut Criterion) {
    let cnn = trained_frame_cnn();
    let mut camera = CameraSensor::smart_home("bench-cam-2", 14).unwrap();
    camera.start();

    let mut group = c.benchmark_group("e13_frame_inference");
    group.sample_size(30);
    for scene in SceneKind::ALL {
        let frame = camera.capture_frame(scene).unwrap();
        group.bench_with_input(
            BenchmarkId::new("predict", format!("{scene:?}")),
            &frame.pixels,
            |b, pixels| {
                b.iter(|| cnn.predict(pixels).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_secure_frame_capture(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_secure_frame_capture");
    group.sample_size(20);
    for batch in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("capture_windows", batch),
            &batch,
            |b, &batch| {
                let platform = Platform::jetson_agx_xavier();
                let sensor = CameraSensor::smart_home("bench-cam-3", 15).unwrap();
                let mut driver = SecureCameraDriver::new(
                    platform,
                    sensor,
                    Box::new(FixedScene(SceneKind::Person)),
                );
                driver.configure().unwrap();
                driver.start().unwrap();
                let windows = vec![2usize; batch];
                b.iter(|| driver.capture_windows(&windows).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_frame_inference, bench_secure_frame_capture);
criterion_main!(benches);
