//! Criterion bench behind experiment E14: host-time cost of driving a
//! high-fps camera scenario through the sharded pipeline as the shard
//! count grows, and of the scheduler's placement + merge primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use perisec_core::pipeline::{CameraPipelineConfig, SharedModels};
use perisec_core::policy::FilterDecision;
use perisec_core::stage::WindowVerdict;
use perisec_ml::classifier::Architecture;
use perisec_sched::pipeline::{ShardedCameraConfig, ShardedVisionPipeline};
use perisec_sched::pool::TeePoolConfig;
use perisec_sched::scheduler::SessionScheduler;
use perisec_sched::stage::merge_verdicts;
use perisec_workload::scenario::CameraScenario;

fn bench_sharded_run(c: &mut Criterion) {
    let models = SharedModels::deferred(Architecture::Cnn, 16, 14).with_vision_spec(96, 14);
    let scenario = CameraScenario::high_fps(16, 2, 9_000, 0.4, 0xBE14);
    let mut group = c.benchmark_group("e14_sharded_run");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            let mut pipeline = ShardedVisionPipeline::with_models(
                ShardedCameraConfig {
                    camera: CameraPipelineConfig {
                        batch_windows: 4,
                        ..CameraPipelineConfig::default()
                    },
                    pool: TeePoolConfig::jetson(shards),
                    ..ShardedCameraConfig::default()
                },
                &models,
            )
            .unwrap();
            b.iter(|| pipeline.run_scenario(&scenario).unwrap());
        });
    }
    group.finish();
}

fn bench_scheduler_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_scheduler_primitives");
    group.bench_function("assign_1k_windows_8_sessions", |b| {
        let weights = vec![2u64; 1_000];
        b.iter(|| {
            let mut scheduler = SessionScheduler::new(8);
            scheduler.assign(&weights)
        });
    });
    group.bench_function("merge_1k_verdicts", |b| {
        let verdicts: Vec<WindowVerdict> = (0..1_000u64)
            .map(|i| WindowVerdict {
                dialog_id: i % 256,
                decision: if i % 3 == 0 {
                    FilterDecision::Drop
                } else {
                    FilterDecision::Forward
                },
                probability_milli: (i % 1000) as u16,
            })
            .collect();
        b.iter(|| merge_verdicts(verdicts.clone()));
    });
    group.finish();
}

criterion_group!(benches, bench_sharded_run, bench_scheduler_primitives);
criterion_main!(benches);
