//! Criterion bench behind experiment E15: host-time cost of running a
//! camera fleet on the bounded work-stealing executor as the worker pool
//! grows, against the thread-per-device baseline, plus the scheduler's
//! steal pass on ragged batches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use perisec_core::fleet::{FleetConfig, PipelineFleet};
use perisec_core::pipeline::{CameraPipelineConfig, SharedModels};
use perisec_ml::classifier::Architecture;
use perisec_sched::scheduler::SessionScheduler;
use perisec_tz::time::SimDuration;
use perisec_workload::scenario::CameraScenario;

fn bench_fleet_harnesses(c: &mut Criterion) {
    let models = SharedModels::deferred(Architecture::Cnn, 16, 15).with_vision_spec(96, 15);
    models.vision().unwrap();
    let devices = 64usize;
    let cameras = CameraScenario::fleet_cameras(devices, 2, 0.4, SimDuration::from_secs(1), 0xBE15);
    let fleet = |workers: usize| {
        PipelineFleet::with_models(
            FleetConfig {
                workers,
                camera_pipeline: CameraPipelineConfig {
                    batch_windows: 4,
                    ..CameraPipelineConfig::default()
                },
                ..FleetConfig::mixed(0, devices)
            },
            models.clone(),
        )
    };
    let mut group = c.benchmark_group("e15_fleet_harness");
    group.sample_size(10);
    group.bench_function("thread_per_device", |b| {
        let fleet = fleet(0);
        b.iter(|| fleet.run_mixed_threaded(&[], &cameras).unwrap());
    });
    for workers in [2usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("executor_workers", workers),
            &workers,
            |b, &workers| {
                let fleet = fleet(workers);
                b.iter(|| fleet.run_mixed(&[], &cameras).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_steal_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_steal_pass");
    // A ragged weight stream: the regime where the steal pass does work.
    let weights: Vec<u64> = (0..1_000u64).map(|i| i * 7 % 31 + 1).collect();
    group.bench_function("assign_1k_ragged_8_sessions", |b| {
        b.iter(|| {
            let mut scheduler = SessionScheduler::new(8);
            scheduler.assign(&weights)
        });
    });
    group.bench_function("assign_with_stealing_1k_ragged_8_sessions", |b| {
        b.iter(|| {
            let mut scheduler = SessionScheduler::new(8);
            scheduler.assign_with_stealing(&weights)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_harnesses, bench_steal_pass);
criterion_main!(benches);
