//! Criterion bench behind experiment E16: the int8 fast path against the
//! f32 baseline for the two TA-side classifiers, plus the planned
//! (allocation-free) MFCC front-end against the allocating one — the
//! microbenchmark view of the fused-kernel and scratch-plan wins.

use criterion::{criterion_group, criterion_main, Criterion};

use perisec_ml::classifier::{Architecture, SensitiveClassifier, TrainConfig};
use perisec_ml::int8::{QuantFrameCnn, QuantSensitiveClassifier};
use perisec_ml::mfcc::{MfccConfig, MfccExtractor};
use perisec_ml::plan::FeaturePlan;
use perisec_ml::quant::{dot_i8, dot_i8_ref, quantize_activations, QuantizedMatrix};
use perisec_ml::tensor::Matrix;
use perisec_ml::vision::{FrameCnn, VisionConfig};
use perisec_workload::corpus::{to_training_examples, CorpusGenerator};
use perisec_workload::synth::SpeechSynthesizer;
use perisec_workload::vocab::Vocabulary;

fn bench_window_inference(c: &mut Criterion) {
    let vocabulary = Vocabulary::smart_home();
    let mut generator = CorpusGenerator::new(vocabulary.clone(), 0.5, 16);
    let train = to_training_examples(&generator.generate(160));
    let mut classifier =
        SensitiveClassifier::new(Architecture::Cnn, TrainConfig::small(vocabulary.len()));
    classifier.fit(&train).unwrap();
    let int8 = QuantSensitiveClassifier::from_trained(&classifier).unwrap();
    let tokens: Vec<usize> = train[0].0.clone();
    let mut plan = FeaturePlan::new();

    let mut group = c.benchmark_group("e16_window_inference");
    group.sample_size(40);
    group.bench_function("f32_predict", |b| {
        b.iter(|| classifier.predict(&tokens).unwrap());
    });
    group.bench_function("int8_predict", |b| {
        b.iter(|| int8.predict_with(&tokens, &mut plan).unwrap());
    });
    group.finish();
}

fn bench_frame_inference(c: &mut Criterion) {
    let config = VisionConfig::smart_home();
    let corpus: Vec<(Vec<u8>, bool)> = (0..60)
        .map(|i| {
            let sensitive = i % 2 == 0;
            let pixels: Vec<u8> = (0..config.width * config.height)
                .map(|idx| {
                    let y = idx / config.width;
                    if sensitive {
                        if y % 4 < 2 {
                            225
                        } else {
                            45
                        }
                    } else {
                        120 + ((idx * 7 + i) % 9) as u8
                    }
                })
                .collect();
            (pixels, sensitive)
        })
        .collect();
    let mut cnn = FrameCnn::new(config);
    cnn.fit(&corpus).unwrap();
    let int8 = QuantFrameCnn::from_trained(&cnn).unwrap();
    let frame = &corpus[0].0;
    let mut plan = FeaturePlan::new();

    let mut group = c.benchmark_group("e16_frame_inference");
    group.sample_size(40);
    group.bench_function("f32_predict", |b| {
        b.iter(|| cnn.predict(frame).unwrap());
    });
    group.bench_function("int8_predict", |b| {
        b.iter(|| int8.predict_with(frame, &mut plan).unwrap());
    });
    group.finish();
}

fn bench_mfcc_plan(c: &mut Criterion) {
    let synth = SpeechSynthesizer::smart_home();
    let audio = synth.render_tokens(&[3, 17, 42, 9]);
    let extractor = MfccExtractor::new(MfccConfig::speech_16khz());
    let mut plan = FeaturePlan::new();

    let mut group = c.benchmark_group("e16_mfcc_frontend");
    group.sample_size(20);
    group.bench_function("extract_allocating", |b| {
        b.iter(|| extractor.extract(audio.samples()));
    });
    group.bench_function("extract_planned", |b| {
        b.iter(|| extractor.extract_into(audio.samples(), &mut plan));
    });
    group.finish();
}

fn bench_kernel_variants(c: &mut Criterion) {
    // Spans mirror the conv-column widths the token CNN actually runs
    // (kernel widths 2..=5 over a 48-wide embedding), so the dispatched /
    // scalar ratio here is the one the window metric inherits.
    let span = 192usize;
    let a: Vec<i8> = (0..span).map(|i| ((i * 37 + 11) % 255) as i8).collect();
    let b: Vec<i8> = (0..span).map(|i| ((i * 73 + 5) % 255) as i8).collect();

    let mut group = c.benchmark_group("e16_dot_i8_kernel");
    group.sample_size(40);
    group.bench_function("scalar_ref", |bch| {
        bch.iter(|| dot_i8_ref(&a, &b));
    });
    group.bench_function("dispatched", |bch| {
        bch.iter(|| dot_i8(&a, &b));
    });
    group.finish();

    // Dense head shape from the window classifier (feature 96 -> 32),
    // per-channel quantized so the fused epilogue is exercised too.
    let m = Matrix::random(96, 32, 1.2, 0xE17);
    let q = QuantizedMatrix::quantize_per_col(&m);
    let x: Vec<f32> = (0..96).map(|i| ((i % 19) as f32 - 9.0) / 7.0).collect();
    let mut x_q = Vec::new();
    let x_scale = quantize_activations(&x, &mut x_q);
    let (mut acc, mut out) = (Vec::new(), Vec::new());

    let mut group = c.benchmark_group("e16_matmul_i8_kernel");
    group.sample_size(40);
    group.bench_function("scalar_ref", |bch| {
        bch.iter(|| q.matmul_i8_ref(&x_q, x_scale, &mut acc, &mut out).unwrap());
    });
    group.bench_function("dispatched", |bch| {
        bch.iter(|| q.matmul_i8(&x_q, x_scale, &mut acc, &mut out).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_window_inference,
    bench_frame_inference,
    bench_mfcc_plan,
    bench_kernel_variants
);
criterion_main!(benches);
