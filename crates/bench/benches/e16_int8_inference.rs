//! Criterion bench behind experiment E16: the int8 fast path against the
//! f32 baseline for the two TA-side classifiers, plus the planned
//! (allocation-free) MFCC front-end against the allocating one — the
//! microbenchmark view of the fused-kernel and scratch-plan wins.

use criterion::{criterion_group, criterion_main, Criterion};

use perisec_ml::classifier::{Architecture, SensitiveClassifier, TrainConfig};
use perisec_ml::int8::{QuantFrameCnn, QuantSensitiveClassifier};
use perisec_ml::mfcc::{MfccConfig, MfccExtractor};
use perisec_ml::plan::FeaturePlan;
use perisec_ml::vision::{FrameCnn, VisionConfig};
use perisec_workload::corpus::{to_training_examples, CorpusGenerator};
use perisec_workload::synth::SpeechSynthesizer;
use perisec_workload::vocab::Vocabulary;

fn bench_window_inference(c: &mut Criterion) {
    let vocabulary = Vocabulary::smart_home();
    let mut generator = CorpusGenerator::new(vocabulary.clone(), 0.5, 16);
    let train = to_training_examples(&generator.generate(160));
    let mut classifier =
        SensitiveClassifier::new(Architecture::Cnn, TrainConfig::small(vocabulary.len()));
    classifier.fit(&train).unwrap();
    let int8 = QuantSensitiveClassifier::from_trained(&classifier).unwrap();
    let tokens: Vec<usize> = train[0].0.clone();
    let mut plan = FeaturePlan::new();

    let mut group = c.benchmark_group("e16_window_inference");
    group.sample_size(40);
    group.bench_function("f32_predict", |b| {
        b.iter(|| classifier.predict(&tokens).unwrap());
    });
    group.bench_function("int8_predict", |b| {
        b.iter(|| int8.predict_with(&tokens, &mut plan).unwrap());
    });
    group.finish();
}

fn bench_frame_inference(c: &mut Criterion) {
    let config = VisionConfig::smart_home();
    let corpus: Vec<(Vec<u8>, bool)> = (0..60)
        .map(|i| {
            let sensitive = i % 2 == 0;
            let pixels: Vec<u8> = (0..config.width * config.height)
                .map(|idx| {
                    let y = idx / config.width;
                    if sensitive {
                        if y % 4 < 2 {
                            225
                        } else {
                            45
                        }
                    } else {
                        120 + ((idx * 7 + i) % 9) as u8
                    }
                })
                .collect();
            (pixels, sensitive)
        })
        .collect();
    let mut cnn = FrameCnn::new(config);
    cnn.fit(&corpus).unwrap();
    let int8 = QuantFrameCnn::from_trained(&cnn).unwrap();
    let frame = &corpus[0].0;
    let mut plan = FeaturePlan::new();

    let mut group = c.benchmark_group("e16_frame_inference");
    group.sample_size(40);
    group.bench_function("f32_predict", |b| {
        b.iter(|| cnn.predict(frame).unwrap());
    });
    group.bench_function("int8_predict", |b| {
        b.iter(|| int8.predict_with(frame, &mut plan).unwrap());
    });
    group.finish();
}

fn bench_mfcc_plan(c: &mut Criterion) {
    let synth = SpeechSynthesizer::smart_home();
    let audio = synth.render_tokens(&[3, 17, 42, 9]);
    let extractor = MfccExtractor::new(MfccConfig::speech_16khz());
    let mut plan = FeaturePlan::new();

    let mut group = c.benchmark_group("e16_mfcc_frontend");
    group.sample_size(20);
    group.bench_function("extract_allocating", |b| {
        b.iter(|| extractor.extract(audio.samples()));
    });
    group.bench_function("extract_planned", |b| {
        b.iter(|| extractor.extract_into(audio.samples(), &mut plan));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_window_inference,
    bench_frame_inference,
    bench_mfcc_plan
);
criterion_main!(benches);
