//! Criterion bench behind experiment E18: the cost of the telemetry
//! plane. Measures a camera fleet with telemetry off / metrics on /
//! full span capture (the overhead the <= 5% E18 gate bounds at fleet
//! scale), and the tracer's per-span primitives — a disabled span must
//! be branch-cheap, an enabled span lock-and-record cheap.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use perisec_core::fleet::{FleetConfig, PipelineFleet};
use perisec_core::pipeline::{CameraPipelineConfig, SharedModels};
use perisec_ml::classifier::Architecture;
use perisec_telemetry::{TelemetryConfig, Tracer};
use perisec_tz::time::{SimClock, SimDuration};
use perisec_workload::scenario::CameraScenario;

fn bench_fleet_overhead(c: &mut Criterion) {
    let models = SharedModels::deferred(Architecture::Cnn, 16, 18).with_vision_spec(96, 18);
    models.vision().unwrap();
    let devices = 64usize;
    let cameras = CameraScenario::fleet_cameras(devices, 2, 0.4, SimDuration::from_secs(1), 0xBE18);
    let fleet = |telemetry: TelemetryConfig, trace_devices: BTreeSet<usize>| {
        PipelineFleet::with_models(
            FleetConfig {
                workers: 8,
                camera_pipeline: CameraPipelineConfig {
                    batch_windows: 4,
                    ..CameraPipelineConfig::default()
                },
                telemetry,
                trace_devices,
                ..FleetConfig::mixed(0, devices)
            },
            models.clone(),
        )
    };
    let mut group = c.benchmark_group("e18_fleet_telemetry");
    group.sample_size(10);
    group.bench_function("telemetry_off", |b| {
        let fleet = fleet(TelemetryConfig::default(), BTreeSet::new());
        b.iter(|| fleet.run_mixed(&[], &cameras).unwrap());
    });
    group.bench_function("metrics", |b| {
        let fleet = fleet(TelemetryConfig::metrics(), BTreeSet::new());
        b.iter(|| fleet.run_mixed_telemetry(&[], &cameras).unwrap());
    });
    group.bench_function("metrics_plus_trace_device", |b| {
        let fleet = fleet(TelemetryConfig::metrics(), BTreeSet::from([0]));
        b.iter(|| fleet.run_mixed_telemetry(&[], &cameras).unwrap());
    });
    group.finish();
}

fn bench_span_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_span_primitives");
    for (label, config) in [
        ("disabled", TelemetryConfig::default()),
        ("metrics", TelemetryConfig::metrics()),
        ("capture", TelemetryConfig::tracing()),
    ] {
        group.bench_with_input(BenchmarkId::new("span", label), &config, |b, config| {
            let clock = SimClock::new();
            let tracer = Tracer::new(clock.clone(), config);
            b.iter(|| {
                let _span = tracer.span("stage.filter");
                clock.advance(SimDuration::from_nanos(1));
            });
            // Keep capture-mode iterations from growing the span buffer
            // without bound across samples.
            tracer.take();
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet_overhead, bench_span_primitives);
criterion_main!(benches);
