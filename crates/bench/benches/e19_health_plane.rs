//! Criterion bench behind experiment E19: the cost of the live health
//! plane. Measures the per-step primitives — a monitor advance that
//! stays inside the current epoch must be comparison-cheap, and an
//! advance that crosses an epoch boundary pays the full cut (series
//! delta, SLO judgement, journal append) — and the fleet-scale cost of
//! `run_mixed_health` against a silent run (the overhead the <= 5% E19
//! gate bounds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use perisec_core::fleet::{FleetConfig, PipelineFleet};
use perisec_core::pipeline::{PipelineConfig, SharedModels};
use perisec_ml::classifier::Architecture;
use perisec_telemetry::{
    DeviceHealthMonitor, FleetHealth, HealthConfig, SloSpec, TelemetryConfig, Tracer,
};
use perisec_tz::time::{SimClock, SimDuration};
use perisec_workload::scenario::Scenario;

const WINDOW: SimDuration = SimDuration::from_secs(1);

fn health_config() -> HealthConfig {
    HealthConfig {
        slos: vec![SloSpec::p95("tee-filter", SimDuration::from_millis(5))],
        ..HealthConfig::with_window(WINDOW)
    }
}

fn bench_monitor_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("e19_monitor_primitives");
    // Advances that stay inside the epoch: the hot path every device
    // step takes. The monitor only compares the clock against the next
    // boundary, so this must stay branch-cheap.
    group.bench_function("advance_no_cut", |b| {
        let clock = SimClock::new();
        let tracer = Tracer::new(clock.clone(), &TelemetryConfig::metrics());
        let mut monitor = DeviceHealthMonitor::new(0, health_config(), FleetHealth::sink(WINDOW));
        b.iter(|| {
            {
                let _span = tracer.span("tee-filter");
                clock.advance(SimDuration::from_nanos(1));
            }
            monitor.advance(clock.now(), &tracer);
        });
    });
    // Advances that cross a boundary pay the epoch cut: delta the
    // tracer series, judge every SLO, push alerts into the shared
    // journal. The vendored criterion has no per-iteration setup hook,
    // so each iteration builds a fresh monitor and sink (keeping the
    // sink's epoch map from growing across samples); the `setup_only`
    // baseline below prices that construction so the cut itself reads
    // as the difference between the two.
    group.bench_function("advance_with_cut", |b| {
        b.iter(|| {
            let clock = SimClock::new();
            let tracer = Tracer::new(clock.clone(), &TelemetryConfig::metrics());
            let mut monitor =
                DeviceHealthMonitor::new(0, health_config(), FleetHealth::sink(WINDOW));
            {
                let _span = tracer.span("tee-filter");
                clock.advance(SimDuration::from_millis(10));
            }
            clock.advance(WINDOW);
            monitor.advance(clock.now(), &tracer);
        });
    });
    group.bench_function("setup_only", |b| {
        b.iter(|| {
            let clock = SimClock::new();
            let tracer = Tracer::new(clock.clone(), &TelemetryConfig::metrics());
            let monitor = DeviceHealthMonitor::new(0, health_config(), FleetHealth::sink(WINDOW));
            {
                let _span = tracer.span("tee-filter");
                clock.advance(SimDuration::from_millis(10));
            }
            clock.advance(WINDOW);
            monitor
        });
    });
    group.finish();
}

fn bench_fleet_health_overhead(c: &mut Criterion) {
    let models = SharedModels::deferred(Architecture::Cnn, 16, 19);
    models.audio().unwrap();
    let devices = 32usize;
    let audio = Scenario::fleet(devices, 2, 0.5, SimDuration::from_secs(1), 0xBE19);
    let fleet = |health: Option<HealthConfig>| {
        PipelineFleet::with_models(
            FleetConfig {
                devices,
                pipeline: PipelineConfig {
                    train_utterances: 16,
                    batch_windows: 4,
                    ..PipelineConfig::default()
                },
                workers: 8,
                health,
                ..FleetConfig::of(0)
            },
            models.clone(),
        )
    };
    let mut group = c.benchmark_group("e19_fleet_health");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("fleet", "health_off"), &(), |b, ()| {
        let fleet = fleet(None);
        b.iter(|| fleet.run_mixed(&audio, &[]).unwrap());
    });
    group.bench_with_input(BenchmarkId::new("fleet", "health_on"), &(), |b, ()| {
        let fleet = fleet(Some(health_config()));
        b.iter(|| fleet.run_mixed_health(&audio, &[]).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_monitor_primitives,
    bench_fleet_health_overhead
);
criterion_main!(benches);
