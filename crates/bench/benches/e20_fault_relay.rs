//! Criterion bench behind experiment E20: the cost of the fault-tolerant
//! sealed relay. Measures the per-send primitives — the deterministic
//! fault classification every netsim send pays (must stay hash-cheap),
//! the byte-identical `seal_at` a retransmission re-derives, and the
//! cloud's idempotent ingest of a fresh vs a redelivered record — and the
//! fleet-scale cost of running a small fleet with the chaos plane
//! disarmed (zero-rate spec) against no plane at all.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use perisec_core::fleet::{FleetConfig, PipelineFleet};
use perisec_core::pipeline::{PipelineConfig, SharedModels};
use perisec_ml::classifier::Architecture;
use perisec_relay::netsim::{FaultSpec, NetworkService};
use perisec_relay::{MockCloudService, SecureChannelClient, PSK_LEN};
use perisec_tz::time::SimDuration;
use perisec_workload::scenario::Scenario;

fn drill_spec() -> FaultSpec {
    FaultSpec {
        drop_permille: 100,
        duplicate_permille: 60,
        reorder_permille: 40,
        corrupt_permille: 40,
        outage: Some((2, 6)),
        ..FaultSpec::none(0xE20)
    }
}

fn bench_fault_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("e20_fault_primitives");
    // The per-send decision: one splitmix64 hash and a handful of range
    // compares. Every netsim send pays this, faulted or not.
    group.bench_function("classify", |b| {
        let spec = drill_spec().for_device(17);
        let mut seq = 0u64;
        b.iter(|| {
            seq = seq.wrapping_add(1);
            spec.classify(seq)
        });
    });
    // A retransmission reseals at the original sequence — byte-identical
    // bytes from an immutable cipher state, priced per attempt.
    group.bench_function("seal_at_retransmit", |b| {
        let psk = [0x42u8; PSK_LEN];
        let cloud = MockCloudService::new(psk);
        let mut client = SecureChannelClient::new(psk, 7);
        let hello = client.client_hello();
        let reply = cloud.handle(1, &hello);
        client
            .process_server_hello(&reply)
            .expect("handshake completes");
        let payload = vec![0xA5u8; 256];
        b.iter(|| client.seal_at(0, &payload).expect("seal"));
    });
    // Idempotent ingest: the first copy commits, the redelivered copy is
    // recognised by `(session, seq)` and re-acked without recording.
    group.bench_function("ingest_fresh_vs_redelivered", |b| {
        let psk = [0x42u8; PSK_LEN];
        let cloud = MockCloudService::new(psk);
        let mut client = SecureChannelClient::new(psk, 7);
        let hello = client.client_hello();
        let reply = cloud.handle(1, &hello);
        client
            .process_server_hello(&reply)
            .expect("handshake completes");
        let record = client
            .seal_at(0, &perisec_relay::avs::AvsEvent::Ping.encode())
            .expect("seal");
        cloud.handle(1, &record);
        b.iter(|| cloud.handle(1, &record));
    });
    group.finish();
}

fn bench_fleet_chaos_overhead(c: &mut Criterion) {
    let models = SharedModels::deferred(Architecture::Cnn, 16, 20);
    models.audio().unwrap();
    let devices = 32usize;
    let audio = Scenario::fleet(devices, 2, 0.5, SimDuration::from_secs(1), 0xBE20);
    let fleet = |faults: Option<FaultSpec>| {
        PipelineFleet::with_models(
            FleetConfig {
                devices,
                pipeline: PipelineConfig {
                    train_utterances: 16,
                    batch_windows: 4,
                    ..PipelineConfig::default()
                },
                workers: 8,
                faults,
                ..FleetConfig::of(0)
            },
            models.clone(),
        )
    };
    let mut group = c.benchmark_group("e20_fleet_chaos");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("fleet", "no_plane"), &(), |b, ()| {
        let fleet = fleet(None);
        b.iter(|| fleet.run_mixed(&audio, &[]).unwrap());
    });
    group.bench_with_input(BenchmarkId::new("fleet", "disarmed"), &(), |b, ()| {
        let fleet = fleet(Some(FaultSpec::none(0xE20)));
        b.iter(|| fleet.run_mixed(&audio, &[]).unwrap());
    });
    group.bench_with_input(BenchmarkId::new("fleet", "chaos"), &(), |b, ()| {
        let fleet = fleet(Some(drill_spec()));
        b.iter(|| fleet.run_mixed(&audio, &[]).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_fault_primitives, bench_fleet_chaos_overhead);
criterion_main!(benches);
