//! Criterion bench behind experiment E2: host-time cost of one capture
//! period through the baseline (kernel) and secure (TEE) drivers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use perisec_devices::codec::AudioEncoding;
use perisec_devices::mic::Microphone;
use perisec_devices::signal::SineSource;
use perisec_kernel::i2s_driver::BaselineI2sDriver;
use perisec_kernel::pcm::PcmHwParams;
use perisec_kernel::trace::FunctionTracer;
use perisec_secure_driver::driver::SecureI2sDriver;
use perisec_tz::platform::Platform;

fn mic() -> Microphone {
    Microphone::speech_mic("bench-mic", Box::new(SineSource::new(440.0, 16_000, 0.6))).unwrap()
}

fn bench_capture(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_capture_throughput");
    group.sample_size(20);
    for &period_frames in &[160usize, 640, 2560] {
        group.bench_with_input(
            BenchmarkId::new("baseline_driver", period_frames),
            &period_frames,
            |b, &period_frames| {
                let mut driver = BaselineI2sDriver::new(
                    Platform::jetson_agx_xavier(),
                    mic(),
                    FunctionTracer::new(),
                );
                driver.probe().unwrap();
                driver
                    .configure(PcmHwParams {
                        period_frames,
                        ..PcmHwParams::voice_default()
                    })
                    .unwrap();
                driver.start().unwrap();
                b.iter(|| driver.capture_periods(4).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("secure_driver", period_frames),
            &period_frames,
            |b, &period_frames| {
                let mut driver = SecureI2sDriver::new(Platform::jetson_agx_xavier(), mic());
                driver
                    .configure(period_frames, AudioEncoding::PcmLe16)
                    .unwrap();
                driver.start().unwrap();
                b.iter(|| driver.capture_periods(4).unwrap());
            },
        );
    }
    // Batch sweep: N four-period windows per driver call (one dispatch for
    // the whole batch) versus N separate `capture_periods` calls.
    for &batch in &[1usize, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("secure_driver_batched_windows", batch),
            &batch,
            |b, &batch| {
                let mut driver = SecureI2sDriver::new(Platform::jetson_agx_xavier(), mic());
                driver.configure(160, AudioEncoding::PcmLe16).unwrap();
                driver.start().unwrap();
                let windows = vec![4usize; batch];
                b.iter(|| driver.capture_windows(&windows).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_capture);
criterion_main!(benches);
