//! Criterion bench behind experiments E4/E5: inference cost of the three
//! classifier architectures and the MFCC + STT front-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use perisec_ml::classifier::{Architecture, SensitiveClassifier, TrainConfig};
use perisec_ml::mfcc::{MfccConfig, MfccExtractor};
use perisec_ml::stt::{KeywordStt, SttConfig};
use perisec_workload::corpus::{to_training_examples, CorpusGenerator};
use perisec_workload::synth::SpeechSynthesizer;
use perisec_workload::vocab::Vocabulary;

fn bench_classifiers(c: &mut Criterion) {
    let vocabulary = Vocabulary::smart_home();
    let mut generator = CorpusGenerator::new(vocabulary.clone(), 0.5, 7);
    let train = to_training_examples(&generator.generate(80));
    let tokens: Vec<usize> = train[0].0.clone();

    let mut group = c.benchmark_group("e4_classifier_inference");
    group.sample_size(30);
    for arch in Architecture::ALL {
        let mut classifier = SensitiveClassifier::new(arch, TrainConfig::small(vocabulary.len()));
        classifier.fit(&train).unwrap();
        group.bench_with_input(BenchmarkId::new("predict", arch), &tokens, |b, tokens| {
            b.iter(|| classifier.predict(tokens).unwrap());
        });
    }
    group.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let synth = SpeechSynthesizer::smart_home();
    let stt = KeywordStt::train(&synth.reference_renderings(), SttConfig::default()).unwrap();
    let audio = synth.render_tokens(&[3, 17, 42, 9]);
    let extractor = MfccExtractor::new(MfccConfig::speech_16khz());

    let mut group = c.benchmark_group("e4_audio_frontend");
    group.sample_size(20);
    group.bench_function("mfcc_1s_utterance", |b| {
        b.iter(|| extractor.extract(audio.samples()));
    });
    group.bench_function("stt_transcribe_utterance", |b| {
        b.iter(|| stt.transcribe_to_tokens(audio.samples()));
    });
    group.finish();
}

criterion_group!(benches, bench_classifiers, bench_frontend);
criterion_main!(benches);
