//! Criterion bench behind experiment E7: host-time cost of the simulated
//! TEE transition primitives (world switch, SMC, PTA dispatch, supplicant
//! RPC) — complements the virtual-time table produced by `exp_e7`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use perisec_devices::mic::Microphone;
use perisec_devices::signal::SineSource;
use perisec_optee::{RpcRequest, Supplicant, TeeClient, TeeCore, TeeParams};
use perisec_secure_driver::driver::SecureI2sDriver;
use perisec_secure_driver::pta::I2sPta;
use perisec_tz::monitor::{smc_func, SmcCall, SmcResult};
use perisec_tz::platform::Platform;
use perisec_tz::world::World;

fn bench_transitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_tee_transitions");
    group.sample_size(50);

    let platform = Platform::jetson_agx_xavier();
    group.bench_function("world_switch_round_trip", |b| {
        b.iter(|| {
            platform.monitor().world_switch(World::Secure);
            platform.monitor().world_switch(World::Normal);
        });
    });

    let platform = Platform::jetson_agx_xavier();
    platform.monitor().register_handler(
        smc_func::GET_REVISION,
        Arc::new(|_: &SmcCall| SmcResult::value(0)),
    );
    group.bench_function("smc_noop_handler", |b| {
        b.iter(|| {
            platform
                .monitor()
                .smc(SmcCall::new(smc_func::GET_REVISION))
                .unwrap()
        });
    });

    let platform = Platform::jetson_agx_xavier();
    let core = TeeCore::boot(platform.clone(), Arc::new(Supplicant::new()));
    let mic = Microphone::speech_mic("mic", Box::new(SineSource::new(440.0, 16_000, 0.5))).unwrap();
    let pta = core
        .register_pta(Box::new(I2sPta::new(SecureI2sDriver::new(platform, mic))))
        .unwrap();
    group.bench_function("pta_stats_dispatch", |b| {
        b.iter(|| {
            core.invoke_pta(
                pta,
                perisec_secure_driver::pta::cmd::STATS,
                &mut TeeParams::new(),
            )
            .unwrap()
        });
    });
    group.bench_function("supplicant_fs_rpc", |b| {
        b.iter(|| {
            core.supplicant_rpc(RpcRequest::FsWrite {
                path: "bench".into(),
                data: vec![0u8; 64],
            })
            .unwrap()
        });
    });
    group.finish();
}

/// Batch sweep over `TeeClient::invoke_batched`: the host-time cost of
/// dispatching N PTA commands through one SMC, versus N separate SMCs.
fn bench_batched_invocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_batched_invocation");
    group.sample_size(30);

    let platform = Platform::jetson_agx_xavier();
    let core = TeeCore::boot(platform.clone(), Arc::new(Supplicant::new()));
    let mic = Microphone::speech_mic("mic", Box::new(SineSource::new(440.0, 16_000, 0.5))).unwrap();
    let pta = core
        .register_pta(Box::new(I2sPta::new(SecureI2sDriver::new(platform, mic))))
        .unwrap();
    let client = TeeClient::connect(core);
    let (session, _) = client.open_session(pta, TeeParams::new()).unwrap();

    for &batch in &[1usize, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("one_smc_for_batch", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let calls = (0..batch)
                        .map(|_| (perisec_secure_driver::pta::cmd::STATS, TeeParams::new()))
                        .collect();
                    client.invoke_batched(&session, calls).unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("one_smc_per_call", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    for _ in 0..batch {
                        client
                            .invoke(
                                &session,
                                perisec_secure_driver::pta::cmd::STATS,
                                TeeParams::new(),
                            )
                            .unwrap();
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transitions, bench_batched_invocation);
criterion_main!(benches);
