//! Criterion bench for the relay's cryptographic path (supports E3's relay
//! stage and the secure-storage cost model): AEAD sealing, hashing and the
//! secure-channel record path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use perisec_optee::crypto::{aead_seal, hkdf, nonce_from_sequence, sha256};
use perisec_relay::tls::{SecureChannelClient, SecureChannelServer, PSK_LEN};

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("relay_crypto_primitives");
    group.sample_size(30);
    for &size in &[256usize, 4096, 65536] {
        let data = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, data| {
            b.iter(|| sha256(data));
        });
        let key = [7u8; 32];
        group.bench_with_input(
            BenchmarkId::new("chacha20poly1305_seal", size),
            &data,
            |b, data| {
                b.iter(|| aead_seal(&key, &nonce_from_sequence(1), b"aad", data));
            },
        );
    }
    group.bench_function("hkdf_64_bytes", |b| {
        b.iter(|| hkdf(b"salt", b"input keying material", b"info", 64));
    });
    group.finish();
}

fn bench_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("relay_secure_channel");
    group.sample_size(30);
    let psk = [9u8; PSK_LEN];
    group.bench_function("handshake", |b| {
        b.iter(|| {
            let mut client = SecureChannelClient::new(psk, 1);
            let mut server = SecureChannelServer::new(psk, 2);
            let hello = server.process_client_hello(&client.client_hello()).unwrap();
            client.process_server_hello(&hello).unwrap();
        });
    });
    let mut client = SecureChannelClient::new(psk, 1);
    let mut server = SecureChannelServer::new(psk, 2);
    let hello = server.process_client_hello(&client.client_hello()).unwrap();
    client.process_server_hello(&hello).unwrap();
    let payload = vec![0x42u8; 8 * 1024];
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("seal_8kib_record", |b| {
        b.iter(|| client.seal(&payload).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_channel);
criterion_main!(benches);
