//! Stage-level profiling behind experiment E16: where the window and
//! frame budgets actually go, which eval windows the int8 path decides
//! differently from f32, and the raw kernel throughputs. Run with
//! `cargo run --release -p perisec-bench --example profile_int8` while
//! tuning the integer kernels; `exp_e16` remains the record of truth.
//!
//! This harness times *host* nanoseconds with ad-hoc loops. For
//! *virtual-time* stage/TA/TEE breakdowns — where the simulated budget
//! goes rather than where the host CPU goes — use the telemetry plane
//! instead: `TelemetryConfig::tracing()` on a pipeline, or `exp_e18`
//! for the fleet-scale fold and chrome-trace export.

use std::time::Instant;

use perisec_core::pipeline::SharedModels;
use perisec_devices::camera::{CameraSensor, SceneKind};
use perisec_ml::classifier::Architecture;
use perisec_ml::plan::FeaturePlan;
use perisec_ml::quant::{dot_i8, dot_i8_ref, quantize_activations, QuantizedMatrix};
use perisec_ml::tensor::Matrix;
use perisec_workload::corpus::{to_training_examples, CorpusGenerator};
use perisec_workload::vocab::Vocabulary;

fn time(label: &str, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = started.elapsed().as_nanos() as f64 / iters as f64;
    println!("{label:<42} {ns:>10.1} ns");
    ns
}

fn main() {
    let models = SharedModels::train(Architecture::Cnn, 160, 0xE16).expect("train");
    let audio = models.audio().expect("audio models");
    let classifier = &audio.classifier;
    let int8 = audio.classifier_int8.as_ref().expect("quantizes");
    let vision = models.vision().expect("frame classifier");
    let vision_int8 = models.vision_int8().expect("quantizes");

    // Same eval set as exp_e16 Part 1/3.
    let vocabulary = Vocabulary::smart_home();
    let mut generator = CorpusGenerator::new(vocabulary.clone(), 0.5, 0x16E6);
    let (eval, _) = generator.train_test_split(192, 1);
    let eval: Vec<(Vec<usize>, bool)> = to_training_examples(&eval)
        .into_iter()
        .map(|(tokens, label)| {
            let rendered = audio.synth.render_tokens(&tokens);
            let decoded = audio.stt.transcribe_to_tokens(rendered.samples());
            if decoded.is_empty() {
                (tokens, label)
            } else {
                (decoded, label)
            }
        })
        .collect();
    let windows: Vec<&[usize]> = eval.iter().map(|(t, _)| t.as_slice()).collect();
    let mut plan = FeaturePlan::new();

    println!("== window path ==");
    let n = windows.len() as f64;
    let f32_ns = time("f32 predict (allocating)", 40, || {
        for t in &windows {
            std::hint::black_box(classifier.predict(t).expect("f32"));
        }
    }) / n;
    let int8_ns = time("int8 predict_with", 40, || {
        for t in &windows {
            std::hint::black_box(int8.predict_with(t, &mut plan).expect("int8"));
        }
    }) / n;
    println!(
        "per-window f32 {f32_ns:.0} ns, int8 {int8_ns:.0} ns, speedup ~{:.2}x",
        f32_ns / int8_ns
    );

    println!("== frame path ==");
    let mut camera = CameraSensor::smart_home("prof-cam", 0xE16).expect("camera");
    camera.start();
    let frames: Vec<Vec<u8>> = (0..96)
        .map(|i| {
            camera
                .capture_frame(SceneKind::ALL[i % SceneKind::ALL.len()])
                .expect("frame")
                .pixels
        })
        .collect();
    let nf = frames.len() as f64;
    let f32_frame = time("f32 frame predict (allocating)", 40, || {
        for f in &frames {
            std::hint::black_box(vision.predict(f).expect("f32 frame"));
        }
    }) / nf;
    let int8_frame = time("int8 frame predict_with", 40, || {
        for f in &frames {
            std::hint::black_box(vision_int8.predict_with(f, &mut plan).expect("int8 frame"));
        }
    }) / nf;
    println!(
        "per-frame f32 {f32_frame:.0} ns, int8 {int8_frame:.0} ns, speedup ~{:.2}x",
        f32_frame / int8_frame
    );

    println!("== frame stages ==");
    let vcfg = perisec_ml::vision::VisionConfig::smart_home();
    let (mut means, mut stds) = (Vec::new(), Vec::new());
    time("pool_patches_into (per frame)", 40, || {
        for f in &frames {
            perisec_ml::vision::pool_patches_into(f, &vcfg, &mut means, &mut stds);
            std::hint::black_box(&means);
        }
    });

    println!("== kernels ==");
    let span = 192usize;
    let a: Vec<i8> = (0..span).map(|i| ((i * 37 + 11) % 255) as i8).collect();
    let b: Vec<i8> = (0..span).map(|i| ((i * 73 + 5) % 255) as i8).collect();
    time("dot_i8_ref span 192", 200_000, || {
        std::hint::black_box(dot_i8_ref(
            std::hint::black_box(&a),
            std::hint::black_box(&b),
        ));
    });
    time("dot_i8 span 192", 200_000, || {
        std::hint::black_box(dot_i8(std::hint::black_box(&a), std::hint::black_box(&b)));
    });
    let m = Matrix::random(96, 32, 1.2, 0xE17);
    let q = QuantizedMatrix::quantize_per_col(&m);
    let x: Vec<f32> = (0..96).map(|i| ((i % 19) as f32 - 9.0) / 7.0).collect();
    let mut x_q = Vec::new();
    let x_scale = quantize_activations(&x, &mut x_q);
    let (mut acc, mut out) = (Vec::new(), Vec::new());
    time("matmul_i8_ref 96x32", 50_000, || {
        q.matmul_i8_ref(&x_q, x_scale, &mut acc, &mut out).unwrap();
        std::hint::black_box(&out);
    });
    time("matmul_i8 96x32", 50_000, || {
        q.matmul_i8(&x_q, x_scale, &mut acc, &mut out).unwrap();
        std::hint::black_box(&out);
    });

    println!("== accuracy (same eval as exp_e16 Part 3) ==");
    let acc_f32 = classifier.evaluate(&eval).expect("eval").accuracy();
    let mut int8_correct = 0usize;
    let mut disagreements = Vec::new();
    for (i, (tokens, label)) in eval.iter().enumerate() {
        let p_f32 = classifier.predict(tokens).expect("f32");
        let p_int8 = int8.predict_with(tokens, &mut plan).expect("int8");
        let d_f32 = p_f32 >= int8.threshold();
        let d_int8 = p_int8 >= int8.threshold();
        if d_int8 == *label {
            int8_correct += 1;
        }
        if d_f32 != d_int8 {
            disagreements.push((i, p_f32, p_int8));
        }
    }
    let acc_int8 = int8_correct as f64 / eval.len() as f64;
    println!(
        "f32 {acc_f32:.4}  int8 {acc_int8:.4}  delta {:.2} pt",
        (acc_f32 - acc_int8).abs() * 100.0
    );
    for (i, p_f, p_q) in &disagreements {
        println!("  window {i}: f32 prob {p_f:.5} vs int8 prob {p_q:.5}");
    }
    if disagreements.is_empty() {
        println!("  no decision disagreements");
    }
}
