//! Experiment E11 harness: batched world-transition sweep.
fn main() {
    println!("{}", perisec_bench::run_e11_batch_sweep());
}
