//! Experiment E12 harness: multi-device fleet throughput.
fn main() {
    println!("{}", perisec_bench::run_e12_fleet());
}
