//! Experiment E13 harness: secure vision pipeline (camera batch sweep +
//! mixed audio/camera fleet + camera TCB).
fn main() {
    println!("{}", perisec_bench::run_e13_vision());
}
