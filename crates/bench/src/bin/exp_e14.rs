//! Experiment E14 harness: multi-core TEE scheduler (shard sweep +
//! secure-RAM model dedup + adaptive batching).
fn main() {
    println!("{}", perisec_bench::run_e14_shard_sweep());
}
