//! Experiment E15 harness: bounded work-stealing fleet executor (fixed
//! worker pools vs thread-per-device + session work stealing).
fn main() {
    println!("{}", perisec_bench::run_e15_fleet_executor());
}
