//! Experiment E16 harness: the int8 inference fast path (fused integer
//! kernels, residency, accuracy, mega-fleet sweep). Prints the markdown
//! report and writes the machine-readable trajectory record to
//! `BENCH_E16.json` in the current directory.
fn main() {
    let (markdown, json) = perisec_bench::run_e16_int8_inference();
    println!("{markdown}");
    std::fs::write("BENCH_E16.json", json).expect("write BENCH_E16.json");
    eprintln!("wrote BENCH_E16.json");
}
