//! Experiment E18 harness: the fleet telemetry plane (virtual-time span
//! tracing, bounded histograms, determinism contracts, chrome-trace
//! export). Prints the markdown report and writes the single-device
//! chrome trace to `TRACE_E18.json` in the current directory — load it in
//! `chrome://tracing` or <https://ui.perfetto.dev> to browse the spans.
fn main() {
    let (markdown, trace) = perisec_bench::run_e18_telemetry();
    println!("{markdown}");
    std::fs::write("TRACE_E18.json", trace).expect("write TRACE_E18.json");
    eprintln!("wrote TRACE_E18.json");
}
