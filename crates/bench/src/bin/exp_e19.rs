//! Experiment E19 harness: the live fleet health plane. Prints the
//! markdown report — healthy-fleet census, injected-degradation alert
//! journals across worker counts, the zero-perturbation check, and the
//! plane's paired overhead measurement. The CI experiment-smoke job awk's
//! the gate lines.
fn main() {
    println!("{}", perisec_bench::run_e19_health_plane());
}
