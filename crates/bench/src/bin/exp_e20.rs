//! Experiment E20 harness: the fault-tolerant sealed relay. Prints the
//! markdown report — the 1024-device chaos drill (drop + duplication +
//! corruption + outage) with the decision byte-identity and journal
//! determinism gates, and the zero-rate no-op check. The CI
//! experiment-smoke job awk's the gate lines.
fn main() {
    println!("{}", perisec_bench::run_e20_fault_tolerance());
}
