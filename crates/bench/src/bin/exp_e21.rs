//! Experiment E21 harness: the attested sharded ingest plane. Prints
//! the markdown report — the crash drill (shards killed and restarted
//! mid-run under a lossy link, decision byte-identity across worker
//! counts), the 100k-session wire-level mega-fleet with its exactly-once
//! gate, and the shard-scaling table. The CI experiment-smoke job awk's
//! the gate lines.
fn main() {
    println!("{}", perisec_bench::run_e21_ingest_plane());
}
