//! Experiment E5 harness (see DESIGN.md §5 and EXPERIMENTS.md).
fn main() {
    println!("{}", perisec_bench::run_e5_model_memory());
}
