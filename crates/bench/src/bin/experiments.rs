//! Runs every experiment (E1–E13) and prints the tables recorded in
//! EXPERIMENTS.md. Pass experiment ids (e.g. `e3 e8`) to run a subset.
type Experiment = (&'static str, fn() -> String);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let all: Vec<Experiment> = vec![
        ("e1", perisec_bench::run_e1_tcb),
        ("e2", perisec_bench::run_e2_throughput),
        ("e3", perisec_bench::run_e3_latency),
        ("e4", perisec_bench::run_e4_accuracy),
        ("e5", perisec_bench::run_e5_model_memory),
        ("e6", perisec_bench::run_e6_power),
        ("e7", perisec_bench::run_e7_worldswitch),
        ("e8", perisec_bench::run_e8_leakage),
        ("e9", perisec_bench::run_e9_scalability),
        ("e10", perisec_bench::run_e10_footprint),
        ("e11", perisec_bench::run_e11_batch_sweep),
        ("e12", perisec_bench::run_e12_fleet),
        ("e13", perisec_bench::run_e13_vision),
    ];
    for (name, run) in all {
        if args.is_empty() || args.iter().any(|a| a == name) {
            println!("{}", run());
        }
    }
}
