//! The experiments of the evaluation (E1–E10 from DESIGN.md §5, plus the
//! batching/fleet/vision extensions E11–E13).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use perisec_core::pipeline::{train_models, BaselinePipeline, PipelineConfig, SecurePipeline};
use perisec_core::policy::{FilterMode, PrivacyPolicy};
use perisec_devices::codec::AudioEncoding;
use perisec_devices::mic::Microphone;
use perisec_kernel::catalog::DriverCatalog;
use perisec_kernel::i2s_driver::BaselineI2sDriver;
use perisec_kernel::pcm::PcmHwParams;
use perisec_kernel::trace::FunctionTracer;
use perisec_ml::classifier::{Architecture, SensitiveClassifier, TrainConfig};
use perisec_ml::quant::quantize_classifier;
use perisec_optee::{Supplicant, TeeCore, TeeParams};
use perisec_secure_driver::driver::SecureI2sDriver;
use perisec_secure_driver::PORTED_FUNCTIONS;
use perisec_tcb::analysis::TcbAnalysis;
use perisec_tcb::prune::{PruneStrategy, PrunedImage};
use perisec_tcb::report::TcbReport;
use perisec_tz::platform::Platform;
use perisec_tz::time::SimDuration;
use perisec_tz::world::World;
use perisec_workload::corpus::{to_training_examples, CorpusGenerator};
use perisec_workload::scenario::Scenario;
use perisec_workload::vocab::Vocabulary;

/// A steady test tone used by the driver-level experiments (the content of
/// the audio does not matter for throughput/scaling measurements).
fn sine_source() -> Box<dyn perisec_devices::signal::SignalSource> {
    Box::new(perisec_devices::signal::SineSource::new(440.0, 16_000, 0.6))
}

/// E1 — TCB reduction: traced per-task function sets vs the full driver.
pub fn run_e1_tcb() -> String {
    let platform = Platform::jetson_agx_xavier();
    let mic = Microphone::speech_mic("mic", sine_source()).expect("valid mic config");
    let tracer = FunctionTracer::new();
    tracer.enable();
    let mut driver = BaselineI2sDriver::new(platform, mic, tracer.clone());
    driver.probe().expect("probe succeeds");

    tracer.begin_task("record");
    driver
        .configure(PcmHwParams::voice_default())
        .expect("configure");
    driver.start().expect("start");
    driver.capture_periods(10).expect("capture");
    driver.stop();
    tracer.end_task();
    tracer.begin_task("playback");
    driver.run_playback_task();
    tracer.end_task();
    tracer.begin_task("mixer-controls");
    driver.run_mixer_task();
    tracer.end_task();
    tracer.begin_task("power-management");
    driver.run_pm_cycle();
    tracer.end_task();

    let catalog = DriverCatalog::tegra_audio_stack();
    let analysis = TcbAnalysis::analyze(&catalog, &tracer.log());
    let full = PrunedImage::build(&catalog, &PruneStrategy::KeepAll);
    let record_fns: BTreeSet<String> = analysis
        .task("record")
        .map(|t| t.functions.clone())
        .unwrap_or_default();
    let pruned = PrunedImage::build(
        &catalog,
        &PruneStrategy::TracedFunctions {
            functions: record_fns,
        },
    );
    let report = TcbReport {
        analysis,
        full_image: full,
        pruned_image: pruned,
    };
    let mut out = String::from("## E1 — TCB reduction via kernel tracing\n\n");
    out.push_str(&report.to_markdown());
    let gap = report.analysis.coverage_gap("record", PORTED_FUNCTIONS);
    let _ = writeln!(
        out,
        "\nSecure-driver port covers the traced record task: {}",
        if gap.is_empty() { "yes" } else { "NO (gap!)" }
    );
    out
}

/// E2 — capture throughput (CPU cost per captured byte), secure vs
/// baseline driver, across period sizes.
pub fn run_e2_throughput() -> String {
    let mut out = String::from("## E2 — capture throughput vs period size\n\n");
    out.push_str("| period (frames) | buffer (bytes) | baseline MB/s of CPU | secure MB/s of CPU | overhead |\n|---|---|---|---|---|\n");
    for &period_frames in &[64usize, 160, 320, 640, 1280, 2560] {
        // Baseline driver.
        let platform = Platform::jetson_agx_xavier();
        let mic = Microphone::speech_mic("mic", sine_source()).expect("mic");
        let tracer = FunctionTracer::new();
        let mut baseline = BaselineI2sDriver::new(platform, mic, tracer);
        baseline.probe().expect("probe");
        baseline
            .configure(PcmHwParams {
                period_frames,
                ..PcmHwParams::voice_default()
            })
            .expect("configure");
        baseline.start().expect("start");
        let outcome = baseline.capture_periods(50).expect("capture");
        let baseline_tput = outcome.cpu_throughput_bytes_per_sec() / 1e6;

        // Secure driver (same total audio).
        let platform = Platform::jetson_agx_xavier();
        let mic = Microphone::speech_mic("mic", sine_source()).expect("mic");
        let mut secure = SecureI2sDriver::new(platform.clone(), mic);
        secure
            .configure(period_frames, AudioEncoding::PcmLe16)
            .expect("configure");
        secure.start().expect("start");
        let (encoded, report) = secure.capture_periods(50).expect("capture");
        let secure_tput = encoded.len() as f64 / report.cpu_time.as_secs_f64() / 1e6;

        let _ = writeln!(
            out,
            "| {period_frames} | {} | {baseline_tput:.1} | {secure_tput:.1} | {:.2}x |",
            period_frames * 2,
            baseline_tput / secure_tput
        );
    }
    out
}

/// E3 — end-to-end latency breakdown per utterance, secure vs baseline.
pub fn run_e3_latency() -> String {
    let scenario = Scenario::mixed(10, 0.5, SimDuration::from_secs(10), 0xE3);
    let mut secure = SecurePipeline::new(PipelineConfig::default()).expect("secure pipeline");
    let secure_report = secure.run_scenario(&scenario).expect("secure run");
    let mut baseline = BaselinePipeline::new(PipelineConfig::default()).expect("baseline pipeline");
    let baseline_report = baseline.run_scenario(&scenario).expect("baseline run");

    let n = scenario.len() as u64;
    let mut out = String::from("## E3 — end-to-end latency breakdown (mean per utterance)\n\n");
    out.push_str("| stage | baseline | secure |\n|---|---|---|\n");
    let rows = [
        (
            "driver capture (CPU)",
            baseline_report.latency.capture_cpu / n,
            secure_report.latency.capture_cpu / n,
        ),
        (
            "ML (STT + classify)",
            baseline_report.latency.ml / n,
            secure_report.latency.ml / n,
        ),
        (
            "relay (TLS + supplicant)",
            baseline_report.latency.relay / n,
            secure_report.latency.relay / n,
        ),
        (
            "end-to-end processing",
            baseline_report.latency.mean_end_to_end(),
            secure_report.latency.mean_end_to_end(),
        ),
        (
            "p99 processing",
            baseline_report.latency.p99_end_to_end(),
            secure_report.latency.p99_end_to_end(),
        ),
    ];
    for (name, base, sec) in rows {
        let _ = writeln!(out, "| {name} | {base} | {sec} |");
    }
    let _ = writeln!(
        out,
        "\nWorld switches: baseline {} vs secure {}; SMCs: {} vs {}; supplicant RPCs: {} vs {}.",
        baseline_report.tz.world_switches,
        secure_report.tz.world_switches,
        baseline_report.tz.smc_calls,
        secure_report.tz.smc_calls,
        baseline_report.tz.supplicant_rpcs,
        secure_report.tz.supplicant_rpcs,
    );
    out
}

/// E4 — classifier quality per architecture.
pub fn run_e4_accuracy() -> String {
    let vocabulary = Vocabulary::smart_home();
    let mut generator = CorpusGenerator::new(vocabulary.clone(), 0.5, 0xE4);
    let (train, test) = generator.train_test_split(300, 120);
    let train = to_training_examples(&train);
    let test = to_training_examples(&test);
    let mut out = String::from("## E4 — sensitive-content classifier quality\n\n");
    out.push_str("| architecture | accuracy | precision | recall | f1 | parameters | inference flops (8 tokens) |\n|---|---|---|---|---|---|---|\n");
    for arch in Architecture::ALL {
        let mut classifier = SensitiveClassifier::new(arch, TrainConfig::small(vocabulary.len()));
        classifier.fit(&train).expect("training succeeds");
        let metrics = classifier.evaluate(&test).expect("evaluation succeeds");
        let _ = writeln!(
            out,
            "| {arch} | {:.3} | {:.3} | {:.3} | {:.3} | {} | {} |",
            metrics.accuracy(),
            metrics.precision(),
            metrics.recall(),
            metrics.f1(),
            classifier.parameter_count(),
            classifier.flops_per_inference(8)
        );
    }
    out
}

/// E5 — model memory vs the TEE secure-RAM budget, f32 vs int8.
pub fn run_e5_model_memory() -> String {
    let vocabulary = Vocabulary::smart_home();
    let mut generator = CorpusGenerator::new(vocabulary.clone(), 0.5, 0xE5);
    let (train, test) = generator.train_test_split(200, 100);
    let train = to_training_examples(&train);
    let test = to_training_examples(&test);
    let budgets_kib = [2 * 1024usize, 32 * 1024];
    let mut out = String::from("## E5 — model footprint vs secure-memory budget\n\n");
    out.push_str("| architecture | config | f32 KiB | int8 KiB | accuracy f32 | accuracy int8 | fits 2 MiB TEE | fits 32 MiB TEE |\n|---|---|---|---|---|---|---|---|\n");
    for arch in Architecture::ALL {
        for (label, config) in [
            ("small", TrainConfig::small(vocabulary.len())),
            ("large", TrainConfig::large(vocabulary.len())),
        ] {
            let mut classifier = SensitiveClassifier::new(arch, config);
            classifier.fit(&train).expect("training succeeds");
            let acc_f32 = classifier.evaluate(&test).expect("eval").accuracy();
            let f32_bytes = classifier.memory_bytes_f32();
            let (quantized, report) = quantize_classifier(classifier);
            let acc_int8 = quantized.evaluate(&test).expect("eval").accuracy();
            let _ = writeln!(
                out,
                "| {arch} | {label} | {} | {} | {:.3} | {:.3} | {} | {} |",
                f32_bytes / 1024,
                report.int8_bytes / 1024,
                acc_f32,
                acc_int8,
                if report.int8_bytes < budgets_kib[0] * 1024 {
                    "yes"
                } else {
                    "no"
                },
                if report.int8_bytes < budgets_kib[1] * 1024 {
                    "yes"
                } else {
                    "no"
                },
            );
        }
    }
    out
}

/// E6 — energy per utterance and average power, secure vs baseline.
pub fn run_e6_power() -> String {
    let scenario = Scenario::mixed(20, 0.4, SimDuration::from_secs(3), 0xE6);
    let mut secure = SecurePipeline::new(PipelineConfig::default()).expect("secure pipeline");
    let secure_report = secure.run_scenario(&scenario).expect("secure run");
    let mut baseline = BaselinePipeline::new(PipelineConfig::default()).expect("baseline pipeline");
    let baseline_report = baseline.run_scenario(&scenario).expect("baseline run");
    let mut out = String::from("## E6 — energy and power over a 60 s scenario\n\n");
    out.push_str("| metric | baseline | secure | increase |\n|---|---|---|---|\n");
    let _ = writeln!(
        out,
        "| total energy (mJ) | {:.0} | {:.0} | {:.1}% |",
        baseline_report.energy.total_mj,
        secure_report.energy.total_mj,
        100.0 * (secure_report.energy.total_mj / baseline_report.energy.total_mj - 1.0)
    );
    let _ = writeln!(
        out,
        "| energy per utterance (mJ) | {:.0} | {:.0} | {:.1}% |",
        baseline_report.energy_per_utterance_mj(),
        secure_report.energy_per_utterance_mj(),
        100.0
            * (secure_report.energy_per_utterance_mj() / baseline_report.energy_per_utterance_mj()
                - 1.0)
    );
    let _ = writeln!(
        out,
        "| average power (mW) | {:.0} | {:.0} | {:.1}% |",
        baseline_report.energy.average_power_mw(),
        secure_report.energy.average_power_mw(),
        100.0
            * (secure_report.energy.average_power_mw() / baseline_report.energy.average_power_mw()
                - 1.0)
    );
    let _ = writeln!(
        out,
        "| secure-world CPU energy (mJ) | {:.0} | {:.0} | — |",
        baseline_report
            .energy
            .component_mj(perisec_tz::power::Component::CpuSecureWorld),
        secure_report
            .energy
            .component_mj(perisec_tz::power::Component::CpuSecureWorld),
    );
    out
}

/// E7 — world-switch and TEE-dispatch microbenchmarks (virtual-time cost of
/// each primitive).
pub fn run_e7_worldswitch() -> String {
    let mut out =
        String::from("## E7 — TEE transition microbenchmarks (virtual time per operation)\n\n");
    out.push_str("| operation | cost |\n|---|---|\n");

    // Raw world switch.
    let platform = Platform::jetson_agx_xavier();
    let before = platform.clock().now();
    for _ in 0..100 {
        platform.monitor().world_switch(World::Secure);
        platform.monitor().world_switch(World::Normal);
    }
    let per_round_trip = platform.clock().elapsed_since(before) / 100;
    let _ = writeln!(out, "| world-switch round trip | {per_round_trip} |");

    // SMC with a registered no-op handler.
    let platform = Platform::jetson_agx_xavier();
    platform.monitor().register_handler(
        perisec_tz::monitor::smc_func::GET_REVISION,
        std::sync::Arc::new(|_: &perisec_tz::monitor::SmcCall| {
            perisec_tz::monitor::SmcResult::value(0)
        }),
    );
    let before = platform.clock().now();
    for _ in 0..100 {
        platform
            .monitor()
            .smc(perisec_tz::monitor::SmcCall::new(
                perisec_tz::monitor::smc_func::GET_REVISION,
            ))
            .expect("smc");
    }
    let _ = writeln!(
        out,
        "| SMC round trip (no-op handler) | {} |",
        platform.clock().elapsed_since(before) / 100
    );

    // TEE core primitives.
    let platform = Platform::jetson_agx_xavier();
    let core = TeeCore::boot(platform.clone(), std::sync::Arc::new(Supplicant::new()));
    let mic = Microphone::speech_mic("mic", sine_source()).expect("mic");
    let pta = core
        .register_pta(Box::new(perisec_secure_driver::pta::I2sPta::new(
            SecureI2sDriver::new(platform.clone(), mic),
        )))
        .expect("register pta");
    let before = platform.clock().now();
    for _ in 0..100 {
        let _ = core.invoke_pta(
            pta,
            perisec_secure_driver::pta::cmd::STATS,
            &mut TeeParams::new(),
        );
    }
    let _ = writeln!(
        out,
        "| PTA command dispatch (secure world) | {} |",
        platform.clock().elapsed_since(before) / 100
    );

    let before = platform.clock().now();
    for _ in 0..20 {
        core.supplicant_rpc(perisec_optee::RpcRequest::FsWrite {
            path: "bench".into(),
            data: vec![0u8; 64],
        })
        .expect("rpc");
    }
    let _ = writeln!(
        out,
        "| supplicant RPC round trip | {} |",
        platform.clock().elapsed_since(before) / 20
    );

    let cost = platform.cost();
    let _ = writeln!(
        out,
        "| TA session open (model parameter) | {} |",
        cost.session_open
    );
    let _ = writeln!(
        out,
        "| TA command dispatch (model parameter) | {} |",
        cost.ta_dispatch
    );
    out
}

/// E8 — privacy leakage under different policies, secure vs baseline.
pub fn run_e8_leakage() -> String {
    let scenario = Scenario::mixed(24, 0.5, SimDuration::from_secs(5), 0xE8);
    let mut out = String::from("## E8 — sensitive utterances leaked to the cloud\n\n");
    out.push_str("| pipeline / policy | utterances | sensitive | reached cloud | sensitive leaked | leakage rate |\n|---|---|---|---|---|---|\n");

    let mut baseline = BaselinePipeline::new(PipelineConfig::default()).expect("baseline");
    let report = baseline.run_scenario(&scenario).expect("baseline run");
    let _ = writeln!(
        out,
        "| baseline (no TEE, no filter) | {} | {} | {} | {} | {:.0}% |",
        report.workload.utterances,
        report.workload.sensitive_utterances,
        report.cloud.received_utterances(),
        report.cloud.leaked_sensitive_utterances(),
        100.0 * report.cloud.leakage_rate()
    );

    for (label, policy) in [
        (
            "perisec, allow-all (ablation)",
            PrivacyPolicy {
                mode: FilterMode::AllowAll,
                threshold: 0.5,
                lexical_guard: false,
            },
        ),
        ("perisec, block-sensitive", PrivacyPolicy::block_sensitive()),
        (
            "perisec, redact-sensitive",
            PrivacyPolicy::redact_sensitive(),
        ),
        (
            "perisec, block-all (ablation)",
            PrivacyPolicy {
                mode: FilterMode::BlockAll,
                threshold: 0.5,
                lexical_guard: true,
            },
        ),
    ] {
        let mut secure = SecurePipeline::new(PipelineConfig {
            policy,
            ..PipelineConfig::default()
        })
        .expect("secure pipeline");
        let report = secure.run_scenario(&scenario).expect("secure run");
        let _ = writeln!(
            out,
            "| {label} | {} | {} | {} | {} | {:.0}% |",
            report.workload.utterances,
            report.workload.sensitive_utterances,
            report.cloud.received_utterances(),
            report.cloud.leaked_sensitive_utterances(),
            100.0 * report.cloud.leakage_rate()
        );
    }
    out
}

/// E9 — scalability: aggregate throughput and processing latency as the
/// number of concurrent capture streams grows.
pub fn run_e9_scalability() -> String {
    let mut out = String::from("## E9 — scaling the number of peripheral streams\n\n");
    out.push_str("| streams | total periods | secure CPU time | aggregate capture MB/s | secure RAM in use (KiB) |\n|---|---|---|---|---|\n");
    for &streams in &[1usize, 2, 4, 8, 16] {
        let platform = Platform::jetson_agx_xavier();
        let mut drivers: Vec<SecureI2sDriver> = (0..streams)
            .map(|i| {
                let mic = Microphone::speech_mic(format!("mic{i}"), sine_source()).expect("mic");
                let mut d = SecureI2sDriver::new(platform.clone(), mic);
                d.configure(160, AudioEncoding::PcmLe16).expect("configure");
                d.start().expect("start");
                d
            })
            .collect();
        let before = platform.clock().now();
        let mut total_bytes = 0usize;
        let mut total_periods = 0usize;
        for d in drivers.iter_mut() {
            let (bytes, report) = d.capture_periods(50).expect("capture");
            total_bytes += bytes.len();
            total_periods += report.periods;
        }
        let cpu = platform.clock().elapsed_since(before);
        let _ = writeln!(
            out,
            "| {streams} | {total_periods} | {cpu} | {:.1} | {} |",
            total_bytes as f64 / cpu.as_secs_f64() / 1e6,
            platform.secure_ram().bytes_in_use() / 1024
        );
    }
    out
}

/// E10 — secure image and runtime secure-memory footprint, full vs pruned
/// driver and per-model.
pub fn run_e10_footprint() -> String {
    let catalog = DriverCatalog::tegra_audio_stack();
    let full = PrunedImage::build(&catalog, &PruneStrategy::KeepAll);
    let ported: BTreeSet<String> = PORTED_FUNCTIONS.iter().map(|s| s.to_string()).collect();
    let pruned = PrunedImage::build(
        &catalog,
        &PruneStrategy::TracedFunctions { functions: ported },
    );

    let mut out = String::from("## E10 — OP-TEE image and secure-RAM footprint\n\n");
    out.push_str("| item | size |\n|---|---|\n");
    let _ = writeln!(
        out,
        "| OP-TEE image, full driver ported | {} KiB |",
        full.image_bytes / 1024
    );
    let _ = writeln!(
        out,
        "| OP-TEE image, traced-minimal driver | {} KiB |",
        pruned.image_bytes / 1024
    );
    let _ = writeln!(
        out,
        "| driver portion reduction | {:.1}x |",
        pruned.driver_reduction_vs(&full)
    );

    // Runtime secure-RAM usage of the deployed stack.
    let pipeline = SecurePipeline::new(PipelineConfig::default()).expect("pipeline");
    let in_use = pipeline.platform().secure_ram().bytes_in_use();
    let capacity = pipeline.platform().secure_ram().capacity();
    let _ = writeln!(
        out,
        "| runtime secure RAM (PTA + filter TA + I/O buffers) | {} KiB of {} KiB ({:.1}%) |",
        in_use / 1024,
        capacity / 1024,
        100.0 * in_use as f64 / capacity as f64
    );
    for descriptor in pipeline.tee_core().descriptors() {
        let _ = writeln!(
            out,
            "| declared footprint of {} | {} KiB |",
            descriptor.name,
            descriptor.footprint_bytes() / 1024
        );
    }
    // Model footprints per architecture.
    for arch in Architecture::ALL {
        let classifier = train_models(arch, 40, 0xE10)
            .expect("train")
            .audio()
            .expect("audio models")
            .classifier;
        let _ = writeln!(
            out,
            "| {arch} classifier weights (f32) | {} KiB |",
            classifier.memory_bytes_f32() / 1024
        );
    }
    out
}

/// E11 — TEE-transition amortization: world switches, SMCs and supplicant
/// RPCs per utterance as the pipeline batch size sweeps up.
pub fn run_e11_batch_sweep() -> String {
    let mut out = String::from(
        "## E11 — batched world transitions (per-utterance TEE cost vs batch size)\n\n",
    );
    out.push_str(
        "| batch | SMCs/utt | world switches/utt | supplicant RPCs/utt | leaked sensitive |\n\
         |---|---|---|---|---|\n",
    );
    let models = train_models(Architecture::Cnn, 60, 0xE11).expect("train");
    let scenario = Scenario::mixed(16, 0.25, SimDuration::from_secs(2), 0xE11);
    let utterances = scenario.len() as f64;
    for batch in [1usize, 2, 4, 8, 16] {
        let mut pipeline = SecurePipeline::with_models(
            PipelineConfig {
                batch_windows: batch,
                ..PipelineConfig::default()
            },
            &models,
        )
        .expect("pipeline");
        let report = pipeline.run_scenario(&scenario).expect("run");
        let _ = writeln!(
            out,
            "| {batch} | {:.2} | {:.2} | {:.2} | {} |",
            report.tz.smc_calls as f64 / utterances,
            report.tz.world_switches as f64 / utterances,
            report.tz.supplicant_rpcs as f64 / utterances,
            report.cloud.leaked_sensitive_utterances(),
        );
    }
    out
}

/// E12 — fleet throughput: M concurrent device pipelines sharing one
/// trained model set.
pub fn run_e12_fleet() -> String {
    use perisec_core::fleet::{FleetConfig, PipelineFleet};

    let mut out =
        String::from("## E12 — multi-device fleet (shared models, concurrent pipelines)\n\n");
    out.push_str(
        "| devices | utterances | leaked | switches/utt | mean latency | host time |\n\
         |---|---|---|---|---|---|\n",
    );
    let models = train_models(Architecture::Cnn, 60, 0xE12).expect("train");
    for devices in [2usize, 4, 8] {
        let fleet = PipelineFleet::with_models(
            FleetConfig {
                devices,
                pipeline: PipelineConfig {
                    batch_windows: 8,
                    ..PipelineConfig::default()
                },
                ..FleetConfig::of(0)
            },
            models.clone(),
        );
        let scenarios = Scenario::fleet(devices, 8, 0.25, SimDuration::from_secs(2), 0xE12);
        let host_start = std::time::Instant::now();
        let report = fleet.run(&scenarios).expect("fleet run");
        let host_elapsed = host_start.elapsed();
        let _ = writeln!(
            out,
            "| {devices} | {} | {} | {:.2} | {} | {:.0} ms |",
            report.total_utterances(),
            report.leaked_sensitive_utterances(),
            report.world_switches_per_utterance(),
            report.mean_end_to_end(),
            host_elapsed.as_secs_f64() * 1000.0,
        );
    }
    out
}

/// E13 — the vision pipeline: camera batch sweep (per-event TEE cost and
/// privacy outcome as the batch grows), a mixed audio+camera fleet off one
/// shared model set, and the camera path's TCB accounting.
pub fn run_e13_vision() -> String {
    use perisec_core::fleet::{FleetConfig, PipelineFleet};
    use perisec_core::pipeline::{CameraPipelineConfig, SecureCameraPipeline};
    use perisec_secure_driver::PORTED_CAMERA_FUNCTIONS;
    use perisec_tcb::analysis::TaskTcb;
    use perisec_workload::scenario::CameraScenario;

    let mut out =
        String::from("## E13 — secure vision pipeline (camera batch sweep + mixed fleet)\n\n");

    // Part 1: batch sweep. Outcomes must be identical at every batch size
    // and no pixel may reach the cloud.
    out.push_str(
        "| batch | SMCs/event | world switches/event | sensitive scenes | leaked | non-sensitive delivered | payload bytes at cloud |\n\
         |---|---|---|---|---|---|---|\n",
    );
    let models = train_models(Architecture::Cnn, 60, 0xE13).expect("train");
    let scenario = CameraScenario::mixed_scenes(16, 0.4, SimDuration::from_secs(2), 0xE13);
    let events = scenario.len() as f64;
    let neutral = scenario.len() - scenario.sensitive_count();
    for batch in [1usize, 2, 4, 8] {
        let mut pipeline = SecureCameraPipeline::with_models(
            CameraPipelineConfig {
                batch_windows: batch,
                ..CameraPipelineConfig::default()
            },
            &models,
        )
        .expect("camera pipeline");
        let report = pipeline.run_scenario(&scenario).expect("camera run");
        let payload_bytes: usize = report
            .cloud
            .report
            .events
            .iter()
            .map(|e| e.audio_bytes)
            .sum();
        let _ = writeln!(
            out,
            "| {batch} | {:.2} | {:.2} | {} | {} | {}/{} | {} |",
            report.tz.smc_calls as f64 / events,
            report.tz.world_switches as f64 / events,
            scenario.sensitive_count(),
            report.cloud.leaked_sensitive_utterances(),
            report.cloud.received_utterances(),
            neutral,
            payload_bytes,
        );
    }

    // Part 2: a mixed audio+camera fleet sharing one model set.
    out.push_str("\n### Mixed audio+camera fleet (shared models)\n\n");
    out.push_str(
        "| audio devices | camera devices | utterances+scenes | leaked | switches/event | mean latency |\n\
         |---|---|---|---|---|---|\n",
    );
    for (audio_devices, camera_devices) in [(2usize, 2usize), (4, 4)] {
        let fleet = PipelineFleet::with_models(
            FleetConfig {
                devices: audio_devices,
                pipeline: PipelineConfig {
                    batch_windows: 8,
                    ..PipelineConfig::default()
                },
                camera_devices,
                camera_pipeline: CameraPipelineConfig {
                    batch_windows: 8,
                    ..CameraPipelineConfig::default()
                },
                ..FleetConfig::of(0)
            },
            models.clone(),
        );
        let audio = Scenario::fleet(audio_devices, 8, 0.25, SimDuration::from_secs(2), 0xE13);
        let cameras = CameraScenario::fleet_cameras(
            camera_devices,
            8,
            0.25,
            SimDuration::from_secs(2),
            0xE13,
        );
        let report = fleet.run_mixed(&audio, &cameras).expect("mixed fleet run");
        let _ = writeln!(
            out,
            "| {audio_devices} | {camera_devices} | {} | {} | {:.2} | {} |",
            report.total_utterances(),
            report.leaked_sensitive_utterances(),
            report.world_switches_per_utterance(),
            report.mean_end_to_end(),
        );
    }

    // Part 3: camera-path TCB accounting, mirroring E1's audio numbers.
    let camera_catalog = DriverCatalog::tegra_camera_stack();
    let camera_task =
        TaskTcb::from_ported(&camera_catalog, "record-frames", PORTED_CAMERA_FUNCTIONS);
    let _ = writeln!(
        out,
        "\nCamera TCB: the ported frame-capture set is {} functions / {} loc of the {}-loc camera stack ({:.1}% — ISP and media controller stay untrusted).",
        camera_task.functions.len(),
        camera_task.loc,
        camera_catalog.total_loc(),
        100.0 * camera_task.loc_fraction(camera_catalog.total_loc()),
    );
    out
}

/// E14 — the multi-core TEE scheduler: one high-fps camera sharded
/// across N vision-TA sessions on a secure-core pool, with secure-RAM
/// model dedup. The sweep shows the frame budget flipping from missed to
/// met as sessions are added, at identical privacy outcomes and strictly
/// lower secure-RAM residency than without dedup.
pub fn run_e14_shard_sweep() -> String {
    use perisec_core::pipeline::{CameraPipelineConfig, SecureCameraPipeline, SharedModels};
    use perisec_sched::pipeline::{ShardedCameraConfig, ShardedVisionPipeline};
    use perisec_sched::pool::TeePoolConfig;
    use perisec_workload::scenario::CameraScenario;

    let mut out = String::from(
        "## E14 — multi-core TEE scheduler (shard sweep, model dedup, frame budget)\n\n",
    );

    // A high-speed vision sensor on the quad-core IoT gateway: 4-frame
    // windows at 12 kfps (machine-vision territory), so windows arrive
    // every 333 µs — faster than one vision-TA session can classify them.
    let scenario = CameraScenario::high_fps(48, 4, 12_000, 0.4, 0xE14);
    let deadline = scenario.duration() + scenario.event_spacing();
    let events = scenario.len() as f64;
    let neutral = scenario.len() - scenario.sensitive_count();
    let models = SharedModels::deferred(Architecture::Cnn, 16, 0xE14).with_vision_spec(120, 0xE14);
    let _ = writeln!(
        out,
        "Stream: {} windows of 4 frames at 12000 fps (one window per {}), \
         frame budget = stream duration + one window period = {}.\n",
        scenario.len(),
        scenario.event_spacing(),
        deadline,
    );

    // The unsharded reference outcome the sweep must reproduce.
    let mut reference = SecureCameraPipeline::with_models(
        CameraPipelineConfig {
            batch_windows: 4,
            ..CameraPipelineConfig::default()
        },
        &models,
    )
    .expect("reference camera pipeline");
    let reference_ids = reference
        .run_scenario(&scenario)
        .expect("reference run")
        .cloud
        .report
        .received_dialog_ids();

    out.push_str(
        "| shards | SMCs/event | switches/event | leaked | delivered | payload bytes | \
         RAM KiB (dedup) | RAM KiB (no dedup) | run clock | budget | outcome vs unsharded |\n\
         |---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    let mut utilization_lines = String::new();
    for shards in [1usize, 2, 4] {
        let mut pipeline = ShardedVisionPipeline::with_models(
            ShardedCameraConfig {
                camera: CameraPipelineConfig {
                    batch_windows: 4,
                    ..CameraPipelineConfig::default()
                },
                pool: TeePoolConfig::iot_quad_node(shards),
                ..ShardedCameraConfig::default()
            },
            &models,
        )
        .expect("sharded pipeline");
        let run = pipeline.run_scenario(&scenario).expect("sharded run");
        let payload_bytes: usize = run
            .report
            .cloud
            .report
            .events
            .iter()
            .map(|e| e.audio_bytes)
            .sum();
        let _ = writeln!(
            out,
            "| {shards} | {:.2} | {:.2} | {} | {}/{} | {} | {} | {} | {} | {} | {} |",
            run.report.tz.smc_calls as f64 / events,
            run.report.tz.world_switches as f64 / events,
            run.report.cloud.leaked_sensitive_utterances(),
            run.report.cloud.received_utterances(),
            neutral,
            payload_bytes,
            run.secure_ram.in_use_bytes / 1024,
            run.secure_ram.bytes_without_dedup() / 1024,
            run.report.virtual_time,
            if run.kept_up(deadline) {
                "met"
            } else {
                "MISSED"
            },
            if run.report.cloud.report.received_dialog_ids() == reference_ids {
                "identical"
            } else {
                "DIVERGED"
            },
        );
        let _ = writeln!(
            utilization_lines,
            "- {shards} shard(s): {}",
            run.per_core
                .iter()
                .map(|c| format!(
                    "core {} at {:.0}% ({} switches)",
                    c.core,
                    100.0 * c.utilization,
                    c.world_switches
                ))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    out.push_str("\n### Per-core utilization\n\n");
    out.push_str(&utilization_lines);

    // Adaptive batching: the batcher walks the E11 cost curve from the
    // latency side — a generous SLO buys big batches (few crossings), a
    // tight SLO forces small ones.
    out.push_str("\n### Adaptive batching (2 shards, SLO sweep)\n\n");
    out.push_str(
        "| per-window SLO | switches/event | p95 latency | p99 latency |\n|---|---|---|---|\n",
    );
    for slo_us in [400u64, 2_000, 20_000] {
        let mut pipeline = ShardedVisionPipeline::with_models(
            ShardedCameraConfig {
                camera: CameraPipelineConfig::default(),
                pool: TeePoolConfig::iot_quad_node(2),
                latency_slo: Some(SimDuration::from_micros(slo_us)),
                ..ShardedCameraConfig::default()
            },
            &models,
        )
        .expect("adaptive pipeline");
        let run = pipeline.run_scenario(&scenario).expect("adaptive run");
        let _ = writeln!(
            out,
            "| {} | {:.2} | {} | {} |",
            SimDuration::from_micros(slo_us),
            run.report.tz.world_switches as f64 / events,
            run.report.latency.p95_end_to_end(),
            run.report.latency.p99_end_to_end(),
        );
    }
    out
}

/// E15 — the bounded work-stealing fleet executor: fixed worker pools vs
/// the thread-per-device harness at four-digit device counts, a 10k+
/// device mega-fleet on 8 workers, and the session scheduler's
/// work-stealing pass on a ragged high-fps mix.
pub fn run_e15_fleet_executor() -> String {
    use perisec_core::fleet::{FleetConfig, PipelineFleet};
    use perisec_core::pipeline::{CameraPipelineConfig, SharedModels};
    use perisec_sched::pipeline::{ShardedCameraConfig, ShardedVisionPipeline};
    use perisec_sched::pool::TeePoolConfig;
    use perisec_workload::scenario::CameraScenario;

    let mut out = String::from(
        "## E15 — bounded work-stealing fleet executor (fixed workers vs thread-per-device)\n\n",
    );

    // Part 1: the executor against the historical one-thread-per-device
    // harness, same devices, same scenarios, byte-identical reports —
    // only host cost differs. Camera devices carry the comparison: their
    // per-device work is small, so the per-thread overhead the executor
    // eliminates is visible rather than drowned in ML time.
    out.push_str(
        "| devices | harness | workers | host ms | resident stacks | steals | leaked | payload bytes |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    let models = SharedModels::deferred(Architecture::Cnn, 60, 0xE15).with_vision_spec(120, 0xE15);
    models.vision().expect("train frame classifier");
    let camera_pipeline = CameraPipelineConfig {
        batch_windows: 4,
        ..CameraPipelineConfig::default()
    };
    let mut ratio_at_1024 = 0.0f64;
    let mut identical_at_1024 = false;
    for devices in [256usize, 1024] {
        // Two one-frame windows per device: small per-device work, so
        // the per-thread cost the executor eliminates is the signal.
        let cameras = CameraScenario::fleet_high_fps(devices, 2, 1, 30, 0.4, 0xE15);
        let fleet = PipelineFleet::with_models(
            FleetConfig {
                workers: 8,
                camera_pipeline: camera_pipeline.clone(),
                ..FleetConfig::mixed(0, devices)
            },
            models.clone(),
        );
        let threads_start = std::time::Instant::now();
        let threaded = fleet
            .run_mixed_threaded(&[], &cameras)
            .expect("threaded fleet");
        let threads_ms = threads_start.elapsed().as_secs_f64() * 1000.0;
        let (pooled, stats) = fleet
            .run_mixed_stats(&[], &cameras)
            .expect("executor fleet");
        let _ = writeln!(
            out,
            "| {devices} | threads | {devices} | {threads_ms:.0} | {devices} | — | {} | {} |",
            threaded.leaked_sensitive_utterances(),
            threaded.total_payload_bytes(),
        );
        let _ = writeln!(
            out,
            "| {devices} | executor | {} | {:.0} | {} | {} | {} | {} |",
            stats.workers,
            stats.host_millis,
            stats.peak_resident,
            stats.steals.len(),
            pooled.leaked_sensitive_utterances(),
            pooled.total_payload_bytes(),
        );
        if devices == 1024 {
            ratio_at_1024 = threads_ms / stats.host_millis.max(0.001);
            identical_at_1024 = pooled.to_json() == threaded.to_json();
        }
    }
    let _ = writeln!(
        out,
        "\nExecutor speedup at 1024 devices: {ratio_at_1024:.2}x wall-clock over \
         thread-per-device; reports byte-identical: {}.",
        if identical_at_1024 {
            "yes"
        } else {
            "NO (bug!)"
        },
    );

    // Part 2: the 10k-device mega fleet the thread-per-device harness was
    // never built for — mixed audio+camera, all on 8 workers, residency
    // bounded by the pool.
    out.push_str("\n### Mega fleet: 10k+ mixed devices on 8 workers\n\n");
    out.push_str(
        "| devices | audio | cameras | workers | utterances | leaked | payload bytes | resident stacks | host ms |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    let audio_devices = 128usize;
    let camera_devices = 10_112usize;
    let audio = Scenario::mega_fleet(
        audio_devices,
        2,
        0.4,
        perisec_tz::time::SimDuration::from_secs(1),
        0xE15,
    );
    let cameras = CameraScenario::fleet_high_fps(camera_devices, 2, 1, 30, 0.4, 0xE15);
    let fleet = PipelineFleet::with_models(
        FleetConfig {
            devices: audio_devices,
            pipeline: PipelineConfig {
                batch_windows: 4,
                ..PipelineConfig::default()
            },
            camera_devices,
            camera_pipeline,
            workers: 8,
            ..FleetConfig::of(0)
        },
        models,
    );
    let (mega, stats) = fleet.run_mixed_stats(&audio, &cameras).expect("mega fleet");
    let _ = writeln!(
        out,
        "| {} | {audio_devices} | {camera_devices} | {} | {} | {} | {} | {} | {:.0} |",
        mega.device_count(),
        stats.workers,
        mega.total_utterances(),
        mega.leaked_sensitive_utterances(),
        mega.total_payload_bytes(),
        stats.peak_resident,
        stats.host_millis,
    );
    let _ = writeln!(
        out,
        "\nThe same fleet under thread-per-device would hold all {} device stacks \
         (one OS thread each) resident at once; the executor held {} — one per worker \
         — and stole {} pending devices across queues.",
        mega.device_count(),
        stats.peak_resident,
        stats.tasks_stolen(),
    );

    // Part 3: the session scheduler's work-stealing pass on a ragged
    // high-fps mix — an idle TEE core steals queued windows from a
    // backlogged sibling, deterministically.
    out.push_str("\n### Session work stealing (ragged high-fps mix, 2 secure cores)\n\n");
    out.push_str(
        "| placement | steals | p95 | p99 | run clock | leaked |\n|---|---|---|---|---|---|\n",
    );
    let vision_models =
        SharedModels::deferred(Architecture::Cnn, 16, 0x57EA).with_vision_spec(120, 0x57EA);
    let ragged = CameraScenario::ragged_high_fps(64, 4, 20, 96_000, 0.4, 0xBEEF);
    let mut p99 = Vec::new();
    for stealing in [false, true] {
        let mut pipeline = ShardedVisionPipeline::with_models(
            ShardedCameraConfig {
                camera: CameraPipelineConfig {
                    batch_windows: 8,
                    ..CameraPipelineConfig::default()
                },
                pool: TeePoolConfig::iot_quad_node(2),
                work_stealing: stealing,
                ..ShardedCameraConfig::default()
            },
            &vision_models,
        )
        .expect("sharded pipeline");
        let run = pipeline.run_scenario(&ragged).expect("ragged run");
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} |",
            if stealing { "work-stealing" } else { "greedy" },
            run.stolen_windows,
            run.report.latency.p95_end_to_end(),
            run.report.latency.p99_end_to_end(),
            run.report.virtual_time,
            run.report.cloud.leaked_sensitive_utterances(),
        );
        p99.push(run.report.latency.p99_end_to_end());
    }
    let _ = writeln!(
        out,
        "\nWork stealing cut p99 window latency from {} to {} on the ragged mix \
         at identical cloud outcomes.",
        p99[0], p99[1],
    );
    out
}

/// E16 — the int8 inference fast path: per-window / per-frame host cost
/// of the fused integer kernels against the f32 baseline, accuracy delta,
/// cloud-decision parity, secure-RAM residency, and both modes swept over
/// the E15 mega-fleet. Returns the markdown report **and** the
/// `BENCH_E16.json` payload that seeds the perf trajectory.
pub fn run_e16_int8_inference() -> (String, String) {
    use perisec_core::fleet::{FleetConfig, PipelineFleet};
    use perisec_core::pipeline::{CameraPipelineConfig, SecurePipeline, SharedModels};
    use perisec_devices::camera::{CameraSensor, SceneKind};
    use perisec_ml::plan::FeaturePlan;
    use perisec_ml::quant::QuantMode;
    use perisec_sched::pipeline::{ShardedCameraConfig, ShardedVisionPipeline};
    use perisec_sched::pool::TeePoolConfig;
    use perisec_workload::scenario::CameraScenario;
    use std::time::Instant;

    let mut out = String::from(
        "## E16 — int8 inference fast path (fused integer kernels vs the f32 baseline)\n\n",
    );

    // One trained model set; the int8 forms are quantized once from the
    // same weights (train once, quantize once).
    let models = SharedModels::train(Architecture::Cnn, 160, 0xE16).expect("train");
    let audio = models.audio().expect("audio models");
    let classifier = &audio.classifier;
    let int8 = audio
        .classifier_int8
        .as_ref()
        .expect("cnn classifiers quantize");
    let vision = models.vision().expect("frame classifier");
    let vision_int8 = models.vision_int8().expect("frame classifier quantizes");

    // Part 1: per-window classifier inference on this host. The windows
    // are the STT's *decoded* token sequences for a held-out corpus —
    // exactly what the filter TA hands the classifier at runtime.
    let vocabulary = Vocabulary::smart_home();
    let mut generator = CorpusGenerator::new(vocabulary.clone(), 0.5, 0x16E6);
    let (eval, _) = generator.train_test_split(192, 1);
    let eval: Vec<(Vec<usize>, bool)> = to_training_examples(&eval)
        .into_iter()
        .map(|(tokens, label)| {
            let rendered = audio.synth.render_tokens(&tokens);
            let decoded = audio.stt.transcribe_to_tokens(rendered.samples());
            if decoded.is_empty() {
                (tokens, label)
            } else {
                (decoded, label)
            }
        })
        .collect();
    let windows: Vec<&[usize]> = eval.iter().map(|(tokens, _)| tokens.as_slice()).collect();
    let mut plan = FeaturePlan::new();
    // Warm both paths (and the plan's high-water marks) before timing.
    for tokens in &windows {
        let _ = classifier.predict(tokens).expect("f32 predict");
        let _ = int8.predict_with(tokens, &mut plan).expect("int8 predict");
    }
    let reps = 40usize;
    let started = Instant::now();
    for _ in 0..reps {
        for tokens in &windows {
            std::hint::black_box(classifier.predict(tokens).expect("f32 predict"));
        }
    }
    let ns_window_f32 = started.elapsed().as_nanos() as f64 / (reps * windows.len()) as f64;
    let started = Instant::now();
    for _ in 0..reps {
        for tokens in &windows {
            std::hint::black_box(int8.predict_with(tokens, &mut plan).expect("int8 predict"));
        }
    }
    let ns_window_int8 = started.elapsed().as_nanos() as f64 / (reps * windows.len()) as f64;
    let window_speedup = ns_window_f32 / ns_window_int8.max(1.0);

    // Part 2: per-frame vision inference on this host.
    let mut camera = CameraSensor::smart_home("e16-cam", 0xE16).expect("camera");
    camera.start();
    let frames: Vec<(Vec<u8>, bool)> = (0..96)
        .map(|i| {
            let scene = SceneKind::ALL[i % SceneKind::ALL.len()];
            let frame = camera.capture_frame(scene).expect("frame");
            (frame.pixels, scene.is_sensitive())
        })
        .collect();
    for (pixels, _) in &frames {
        let _ = vision.predict(pixels).expect("f32 frame");
        let _ = vision_int8
            .predict_with(pixels, &mut plan)
            .expect("int8 frame");
    }
    let started = Instant::now();
    for _ in 0..reps {
        for (pixels, _) in &frames {
            std::hint::black_box(vision.predict(pixels).expect("f32 frame"));
        }
    }
    let ns_frame_f32 = started.elapsed().as_nanos() as f64 / (reps * frames.len()) as f64;
    let started = Instant::now();
    for _ in 0..reps {
        for (pixels, _) in &frames {
            std::hint::black_box(
                vision_int8
                    .predict_with(pixels, &mut plan)
                    .expect("int8 frame"),
            );
        }
    }
    let ns_frame_int8 = started.elapsed().as_nanos() as f64 / (reps * frames.len()) as f64;
    let frame_speedup = ns_frame_f32 / ns_frame_int8.max(1.0);

    out.push_str("| metric | f32 | int8 | speedup |\n|---|---|---|---|\n");
    let _ = writeln!(
        out,
        "| classifier ns/window | {ns_window_f32:.0} | {ns_window_int8:.0} | {window_speedup:.2}x |"
    );
    let _ = writeln!(
        out,
        "| frame CNN ns/frame | {ns_frame_f32:.0} | {ns_frame_int8:.0} | {frame_speedup:.2}x |"
    );

    // Part 3: accuracy. Same evaluation sets, both representations.
    let acc_f32 = classifier.evaluate(&eval).expect("eval").accuracy();
    let int8_correct = eval
        .iter()
        .filter(|(tokens, label)| {
            int8.is_sensitive_with(tokens, &mut plan).expect("int8") == *label
        })
        .count();
    let acc_int8 = int8_correct as f64 / eval.len() as f64;
    let accuracy_delta_points = (acc_f32 - acc_int8).abs() * 100.0;
    let vis_f32_correct = frames
        .iter()
        .filter(|(pixels, label)| vision.is_sensitive(pixels).expect("f32") == *label)
        .count();
    let vis_int8_correct = frames
        .iter()
        .filter(|(pixels, label)| {
            vision_int8
                .is_sensitive_with(pixels, &mut plan)
                .expect("int8")
                == *label
        })
        .count();
    let vis_acc_f32 = vis_f32_correct as f64 / frames.len() as f64;
    let vis_acc_int8 = vis_int8_correct as f64 / frames.len() as f64;
    let vision_delta_points = (vis_acc_f32 - vis_acc_int8).abs() * 100.0;
    let _ = writeln!(
        out,
        "| classifier accuracy | {acc_f32:.3} | {acc_int8:.3} | delta {accuracy_delta_points:.1} pt |"
    );
    let _ = writeln!(
        out,
        "| frame CNN accuracy | {vis_acc_f32:.3} | {vis_acc_int8:.3} | delta {vision_delta_points:.1} pt |"
    );

    // Part 4: resident model bytes and secure-RAM occupancy per mode.
    let resident_f32 = classifier.memory_bytes_f32();
    let resident_int8 = int8.memory_bytes();
    let pipeline_for = |mode: QuantMode| {
        SecurePipeline::with_models(
            PipelineConfig {
                quant_mode: mode,
                batch_windows: 4,
                ..PipelineConfig::default()
            },
            &models,
        )
        .expect("pipeline builds")
    };
    let ram_int8 = pipeline_for(QuantMode::Int8)
        .platform()
        .secure_ram()
        .bytes_in_use();
    let ram_f32 = pipeline_for(QuantMode::F32)
        .platform()
        .secure_ram()
        .bytes_in_use();
    let sharded_for = |mode: QuantMode| {
        ShardedVisionPipeline::with_models(
            ShardedCameraConfig {
                camera: CameraPipelineConfig {
                    quant_mode: mode,
                    batch_windows: 4,
                    ..CameraPipelineConfig::default()
                },
                pool: TeePoolConfig::iot_quad_node(2),
                ..ShardedCameraConfig::default()
            },
            &models,
        )
        .expect("sharded pipeline builds")
    };
    let pool_ram_int8 = sharded_for(QuantMode::Int8)
        .pool()
        .secure_ram()
        .bytes_in_use();
    let pool_ram_f32 = sharded_for(QuantMode::F32)
        .pool()
        .secure_ram()
        .bytes_in_use();
    let _ = writeln!(
        out,
        "| classifier resident bytes | {resident_f32} | {resident_int8} | {:.2}x smaller |",
        resident_f32 as f64 / resident_int8 as f64
    );
    let _ = writeln!(
        out,
        "| audio pipeline secure RAM (B) | {ram_f32} | {ram_int8} | {:.2}x smaller |",
        ram_f32 as f64 / ram_int8 as f64
    );
    let _ = writeln!(
        out,
        "| 2-shard vision pool secure RAM (B) | {pool_ram_f32} | {pool_ram_int8} | {:.2}x smaller |",
        pool_ram_f32 as f64 / pool_ram_int8 as f64
    );

    // E17: the kernel-variant sweep — the retained scalar oracles against
    // the runtime-dispatched kernels (AVX2 intrinsics on capable hosts,
    // the chunked portable form elsewhere), on the exact shapes the
    // deployed models drive (conv dot spans = kernel_width x embed_dim
    // for widths 1..4; the two head matmul shapes). Dispatched and scalar
    // are bit-identical (pinned by proptests); this measures what the
    // dispatched form buys on this host.
    let (kernel_dot_speedup, kernel_matmul_speedup);
    let (kernel_dot_ns_scalar, kernel_dot_ns_dispatched);
    let (kernel_matmul_ns_scalar, kernel_matmul_ns_dispatched);
    {
        use perisec_ml::quant::{dot_i8, dot_i8_ref, quantize_activations, QuantizedMatrix};
        use perisec_ml::tensor::Matrix;
        out.push_str(
            "\n### E17 — int8 kernel variants (scalar oracle vs dispatched kernel)\n\n\
             | kernel | shape | scalar ns | dispatched ns | speedup |\n|---|---|---|---|---|\n",
        );
        let mut dot_totals = (0.0f64, 0.0f64);
        for span in [48usize, 96, 144, 192] {
            let a: Vec<i8> = (0..span)
                .map(|i| ((i * 37 % 255) as i32 - 127) as i8)
                .collect();
            let b: Vec<i8> = (0..span)
                .map(|i| ((i * 91 % 255) as i32 - 127) as i8)
                .collect();
            let iters = 200_000usize;
            let time = |f: fn(&[i8], &[i8]) -> i32| -> f64 {
                for _ in 0..1_000 {
                    std::hint::black_box(f(std::hint::black_box(&a), std::hint::black_box(&b)));
                }
                let started = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f(std::hint::black_box(&a), std::hint::black_box(&b)));
                }
                started.elapsed().as_nanos() as f64 / iters as f64
            };
            let scalar = time(dot_i8_ref);
            let dispatched = time(dot_i8);
            dot_totals.0 += scalar;
            dot_totals.1 += dispatched;
            let _ = writeln!(
                out,
                "| dot_i8 | {span} | {scalar:.1} | {dispatched:.1} | {:.2}x |",
                scalar / dispatched.max(1e-9)
            );
        }
        let mut matmul_totals = (0.0f64, 0.0f64);
        for (rows, cols) in [(96usize, 32usize), (104, 24)] {
            let w = QuantizedMatrix::quantize_per_col(&Matrix::random(rows, cols, 1.2, 0xE17));
            let x: Vec<f32> = (0..rows).map(|i| ((i % 13) as f32 - 6.0) * 0.21).collect();
            let mut x_q = Vec::new();
            let x_scale = quantize_activations(&x, &mut x_q);
            let (mut acc, mut o) = (Vec::new(), Vec::new());
            let iters = 20_000usize;
            let mut time = |dispatched: bool| -> f64 {
                for _ in 0..500 {
                    let r = if dispatched {
                        w.matmul_i8(&x_q, x_scale, &mut acc, &mut o)
                    } else {
                        w.matmul_i8_ref(&x_q, x_scale, &mut acc, &mut o)
                    };
                    r.expect("matmul");
                    std::hint::black_box(&o);
                }
                let started = Instant::now();
                for _ in 0..iters {
                    let r = if dispatched {
                        w.matmul_i8(&x_q, x_scale, &mut acc, &mut o)
                    } else {
                        w.matmul_i8_ref(&x_q, x_scale, &mut acc, &mut o)
                    };
                    r.expect("matmul");
                    std::hint::black_box(&o);
                }
                started.elapsed().as_nanos() as f64 / iters as f64
            };
            let scalar = time(false);
            let dispatched = time(true);
            matmul_totals.0 += scalar;
            matmul_totals.1 += dispatched;
            let _ = writeln!(
                out,
                "| matmul_i8 | {rows}x{cols} | {scalar:.1} | {dispatched:.1} | {:.2}x |",
                scalar / dispatched.max(1e-9)
            );
        }
        kernel_dot_speedup = dot_totals.0 / dot_totals.1.max(1e-9);
        kernel_matmul_speedup = matmul_totals.0 / matmul_totals.1.max(1e-9);
        kernel_dot_ns_scalar = dot_totals.0;
        kernel_dot_ns_dispatched = dot_totals.1;
        kernel_matmul_ns_scalar = matmul_totals.0;
        kernel_matmul_ns_dispatched = matmul_totals.1;
        let _ = writeln!(
            out,
            "| dot_i8 (all spans) | — | {kernel_dot_ns_scalar:.1} | {kernel_dot_ns_dispatched:.1} | {kernel_dot_speedup:.2}x |"
        );
        let _ = writeln!(
            out,
            "| matmul_i8 (all shapes) | — | {kernel_matmul_ns_scalar:.1} | {kernel_matmul_ns_dispatched:.1} | {kernel_matmul_speedup:.2}x |"
        );
    }

    // Part 5: both modes over the E15 mega-fleet (128 audio + 10,112
    // camera devices on 8 workers). Decisions must match device by
    // device; the wall-clock difference is the fleet-scale payoff.
    let audio_devices = 128usize;
    let camera_devices = 10_112usize;
    let audio_scenarios =
        Scenario::mega_fleet(audio_devices, 2, 0.4, SimDuration::from_secs(1), 0xE16);
    let camera_scenarios = CameraScenario::fleet_high_fps(camera_devices, 2, 1, 30, 0.4, 0xE16);
    let fleet_for = |mode: QuantMode| {
        PipelineFleet::with_models(
            FleetConfig {
                devices: audio_devices,
                pipeline: PipelineConfig {
                    batch_windows: 4,
                    quant_mode: mode,
                    ..PipelineConfig::default()
                },
                camera_devices,
                camera_pipeline: CameraPipelineConfig {
                    batch_windows: 4,
                    quant_mode: mode,
                    ..CameraPipelineConfig::default()
                },
                workers: 8,
                ..FleetConfig::of(0)
            },
            models.clone(),
        )
    };
    out.push_str(
        "\n### E15 mega-fleet, both modes (10,240 devices, 8 workers)\n\n\
         | mode | devices | utterances | leaked | payload bytes | host ms |\n\
         |---|---|---|---|---|---|\n",
    );
    struct FleetSummary {
        devices: usize,
        leaked: usize,
        received_ids: Vec<Vec<u64>>,
    }
    // The default (int8) mode runs first: sequential 10k-device runs in
    // one process degrade (allocator growth, sustained-load throttling),
    // so the second slot is systematically slower whichever mode sits in
    // it — which is why no cross-mode wall-clock ratio is derived below.
    let mut fleet_ms = [0.0f64; 2];
    let mut summaries = Vec::new();
    for (i, mode) in [QuantMode::Int8, QuantMode::F32].into_iter().enumerate() {
        let fleet = fleet_for(mode);
        let started = Instant::now();
        let report = fleet
            .run_mixed(&audio_scenarios, &camera_scenarios)
            .expect("mega fleet runs");
        fleet_ms[i] = started.elapsed().as_secs_f64() * 1000.0;
        let _ = writeln!(
            out,
            "| {mode} | {} | {} | {} | {} | {:.0} |",
            report.device_count(),
            report.total_utterances(),
            report.leaked_sensitive_utterances(),
            report.total_payload_bytes(),
            fleet_ms[i],
        );
        // Keep only the decision summary: retaining the first mode's full
        // 10k-device report while the second mode runs would skew the
        // second run's allocator behaviour.
        summaries.push(FleetSummary {
            devices: report.device_count(),
            leaked: report.leaked_sensitive_utterances(),
            received_ids: report
                .devices()
                .iter()
                .map(|d| d.report.cloud.report.received_dialog_ids())
                .collect(),
        });
    }
    let leaked_int8 = summaries[0].leaked;
    let leaked_f32 = summaries[1].leaked;
    let decisions_identical = summaries[0].received_ids == summaries[1].received_ids;
    let _ = writeln!(
        out,
        "\nPer-window classifier inference speedup {window_speedup:.2}x (the acceptance metric); \
         per-frame {frame_speedup:.2}x — AVX2 patch pooling plus the branch-free padded int8 \
         convolution put the frame path well past the pooling bound the scalar build sat at. \
         Kernel variants: dispatched dot_i8 {kernel_dot_speedup:.2}x, dispatched matmul_i8 \
         {kernel_matmul_speedup:.2}x over the scalar oracles (bit-identical results, proptest-pinned). \
         The mega-fleet host times are informational, not a mode \
         comparison: at 2 windows per device, per-device pipeline *construction* (sessions, \
         drivers, carve-out setup — mode-independent) dominates, and the second sequential run \
         is systematically slower whichever mode occupies it. Cloud decisions across modes: {}.",
        if decisions_identical {
            "identical"
        } else {
            "DIVERGED (bug!)"
        },
    );

    // The JSON trajectory record CI checks in as BENCH_E16.json.
    let json = format!(
        "{{\n  \"experiment\": \"E16\",\n  \"ns_per_window_f32\": {ns_window_f32:.1},\n  \
         \"ns_per_window_int8\": {ns_window_int8:.1},\n  \"window_speedup\": {window_speedup:.3},\n  \
         \"ns_per_frame_f32\": {ns_frame_f32:.1},\n  \"ns_per_frame_int8\": {ns_frame_int8:.1},\n  \
         \"frame_speedup\": {frame_speedup:.3},\n  \"accuracy_f32\": {acc_f32:.4},\n  \
         \"accuracy_int8\": {acc_int8:.4},\n  \"accuracy_delta_points\": {accuracy_delta_points:.2},\n  \
         \"vision_accuracy_f32\": {vis_acc_f32:.4},\n  \"vision_accuracy_int8\": {vis_acc_int8:.4},\n  \
         \"vision_accuracy_delta_points\": {vision_delta_points:.2},\n  \
         \"resident_model_bytes_f32\": {resident_f32},\n  \"resident_model_bytes_int8\": {resident_int8},\n  \
         \"audio_secure_ram_bytes_f32\": {ram_f32},\n  \"audio_secure_ram_bytes_int8\": {ram_int8},\n  \
         \"pool_secure_ram_bytes_f32\": {pool_ram_f32},\n  \"pool_secure_ram_bytes_int8\": {pool_ram_int8},\n  \
         \"fleet_devices\": {devices},\n  \"fleet_wall_clock_ms_int8\": {int8_ms:.0},\n  \
         \"fleet_wall_clock_ms_f32\": {f32_ms:.0},\n  \
         \"fleet_leaked_f32\": {leaked_f32},\n  \"fleet_leaked_int8\": {leaked_int8},\n  \
         \"kernel_dot_i8_ns_scalar\": {kernel_dot_ns_scalar:.1},\n  \
         \"kernel_dot_i8_ns_dispatched\": {kernel_dot_ns_dispatched:.1},\n  \
         \"kernel_dot_i8_speedup\": {kernel_dot_speedup:.3},\n  \
         \"kernel_matmul_i8_ns_scalar\": {kernel_matmul_ns_scalar:.1},\n  \
         \"kernel_matmul_i8_ns_dispatched\": {kernel_matmul_ns_dispatched:.1},\n  \
         \"kernel_matmul_i8_speedup\": {kernel_matmul_speedup:.3},\n  \
         \"cloud_decisions_identical\": {decisions_identical}\n}}\n",
        devices = summaries[0].devices,
        int8_ms = fleet_ms[0],
        f32_ms = fleet_ms[1],
    );
    (out, json)
}

/// E18 — the fleet telemetry plane: virtual-time span tracing, bounded
/// log-bucket histograms, and chrome-trace export. Measures the plane's
/// wall-clock overhead on a 1024-device fleet (gate: <= 5%), pins the
/// zero-perturbation contract (the `FleetReport` is byte-identical with
/// telemetry on and off, at every worker count) and the fold's
/// worker-count invariance, deep-dives one device into a chrome trace,
/// and runs the plane over the E15 mega fleet with flat metric memory.
/// Returns the markdown report **and** the `TRACE_E18.json` chrome-trace
/// payload CI checks in.
pub fn run_e18_telemetry() -> (String, String) {
    use perisec_core::fleet::{FleetConfig, PipelineFleet};
    use perisec_core::pipeline::{CameraPipelineConfig, SharedModels};
    use perisec_telemetry::export::{chrome_trace_json, folded_stacks};
    use perisec_telemetry::TelemetryConfig;
    use perisec_workload::scenario::CameraScenario;

    let mut out = String::from(
        "## E18 — fleet telemetry plane (virtual-time spans, bounded histograms, chrome-trace export)\n\n",
    );

    // Part 1: overhead of the metrics plane on a 1024-device fleet.
    // Modes alternate within each round and each mode keeps its best of
    // five runs — the same discipline as E16's mode sweep, so allocator
    // warm-up and cache state cannot be billed to whichever mode runs
    // second; an unmeasured warm-up round precedes the five measured ones
    // for the same reason. Four one-frame windows per device keep host
    // scheduler jitter small against the per-run wall clock.
    out.push_str(
        "| telemetry | best host ms (of 5) | span events | leaked |\n\
         |---|---|---|---|\n",
    );
    let models = SharedModels::deferred(Architecture::Cnn, 60, 0xE18).with_vision_spec(120, 0xE18);
    models.vision().expect("train frame classifier");
    let camera_pipeline = CameraPipelineConfig {
        batch_windows: 4,
        ..CameraPipelineConfig::default()
    };
    let devices = 1024usize;
    let cameras = CameraScenario::fleet_high_fps(devices, 4, 1, 30, 0.4, 0xE18);
    let fleet_for = |telemetry: TelemetryConfig| {
        PipelineFleet::with_models(
            FleetConfig {
                workers: 8,
                camera_pipeline: camera_pipeline.clone(),
                telemetry,
                ..FleetConfig::mixed(0, devices)
            },
            models.clone(),
        )
    };
    let off_fleet = fleet_for(TelemetryConfig::default());
    let on_fleet = fleet_for(TelemetryConfig::metrics());
    let mut off_ms = f64::MAX;
    let mut on_ms = f64::MAX;
    let mut overhead_pct = f64::MAX;
    let mut off_json = String::new();
    let mut on_json = String::new();
    let mut fold = perisec_telemetry::FleetTelemetry::new();
    for round in 0..6 {
        let (report, stats) = off_fleet
            .run_mixed_stats(&[], &cameras)
            .expect("telemetry-off fleet");
        let round_off = stats.host_millis;
        off_json = report.to_json();
        let (report, stats, telemetry) = on_fleet
            .run_mixed_telemetry(&[], &cameras)
            .expect("telemetry-on fleet");
        let round_on = stats.host_millis;
        on_json = report.to_json();
        fold = telemetry;
        if round > 0 {
            off_ms = off_ms.min(round_off);
            on_ms = on_ms.min(round_on);
            // Pairing within a round keeps drifting host load out of the
            // comparison; taking the best pair keeps one-off load spikes
            // out. A real, constant telemetry cost shows up in *every*
            // pair, so the best pair still bounds it.
            overhead_pct = overhead_pct.min((round_on - round_off) / round_off.max(0.001) * 100.0);
        }
    }
    let span_events: u64 = fold
        .histograms
        .values()
        .map(perisec_telemetry::LogHistogram::count)
        .sum();
    let identical = off_json == on_json;
    let _ = writeln!(out, "| off | {off_ms:.0} | — | 0 |");
    let _ = writeln!(out, "| metrics | {on_ms:.0} | {span_events} | 0 |");
    let _ = writeln!(
        out,
        "\nTelemetry overhead at 1024 devices: {overhead_pct:.2}% \
         (best of 5 paired rounds; best off {off_ms:.0} ms, best metrics {on_ms:.0} ms; \
         gate <= 5%).",
    );
    let _ = writeln!(
        out,
        "Reports byte-identical with telemetry on: {}.",
        if identical { "yes" } else { "NO (bug!)" },
    );

    // Part 2: the determinism contract across worker counts — the report
    // must not notice the telemetry plane, and the fold must not notice
    // the schedule.
    out.push_str("\n### Determinism: worker counts and steal interleavings\n\n");
    out.push_str(
        "| workers | report on == off | fold == 1-worker fold |\n\
         |---|---|---|\n",
    );
    let small = CameraScenario::fleet_high_fps(24, 2, 1, 30, 0.4, 0x0E18);
    let mut reference_fold: Option<perisec_telemetry::FleetTelemetry> = None;
    let mut all_deterministic = true;
    for workers in [1usize, 2, 8] {
        let silent = PipelineFleet::with_models(
            FleetConfig {
                workers,
                camera_pipeline: camera_pipeline.clone(),
                ..FleetConfig::mixed(0, 24)
            },
            models.clone(),
        );
        let observed = PipelineFleet::with_models(
            FleetConfig {
                workers,
                camera_pipeline: camera_pipeline.clone(),
                telemetry: TelemetryConfig::metrics(),
                ..FleetConfig::mixed(0, 24)
            },
            models.clone(),
        );
        let off = silent.run_mixed(&[], &small).expect("silent fleet");
        let (on, _, telemetry) = observed
            .run_mixed_telemetry(&[], &small)
            .expect("observed fleet");
        let report_ok = off.to_json() == on.to_json();
        let fold_ok = match &reference_fold {
            None => {
                reference_fold = Some(telemetry);
                true
            }
            Some(reference) => telemetry == *reference,
        };
        all_deterministic &= report_ok && fold_ok;
        let _ = writeln!(
            out,
            "| {workers} | {} | {} |",
            if report_ok { "yes" } else { "NO (bug!)" },
            if fold_ok { "yes" } else { "NO (bug!)" },
        );
    }
    let _ = writeln!(
        out,
        "\nTelemetry determinism across workers: {}.",
        if all_deterministic {
            "intact"
        } else {
            "BROKEN (bug!)"
        },
    );

    // Part 3: a single-device deep dive — full span capture on one audio
    // pipeline, exported as a chrome trace (the committed TRACE_E18.json)
    // and folded flamegraph stacks.
    out.push_str("\n### Single-device deep dive (chrome trace + flamegraph)\n\n");
    let mut deep_config = PipelineConfig {
        train_utterances: 120,
        batch_windows: 4,
        ..PipelineConfig::default()
    };
    deep_config.telemetry = TelemetryConfig::tracing();
    let mut deep = SecurePipeline::new(deep_config).expect("deep-dive pipeline");
    let scenario = &Scenario::fleet(1, 8, 0.5, SimDuration::from_secs(2), 0xE18)[0];
    deep.run_scenario(scenario).expect("deep-dive run");
    let telemetry = deep.take_telemetry();
    out.push_str("| span | count | p50 | p95 | max |\n|---|---|---|---|---|\n");
    for (name, histogram) in &telemetry.histograms {
        let _ = writeln!(
            out,
            "| {name} | {} | {} | {} | {} |",
            histogram.count(),
            histogram.percentile(0.50),
            histogram.percentile(0.95),
            histogram.max(),
        );
    }
    let trace_json = chrome_trace_json(&telemetry.spans, 0);
    // Self-validation: the export must parse back as JSON and carry one
    // trace event per captured span.
    let trace_parses = serde_json::from_str::<serde::value::Value>(&trace_json)
        .ok()
        .and_then(|v| {
            v.field("traceEvents")
                .ok()
                .and_then(|e| e.as_array().map(|events| events.len()))
        })
        == Some(telemetry.spans.len());
    let _ = writeln!(
        out,
        "\nDeep-dive device: {} spans captured, {} dropped; chrome trace parses: {}.",
        telemetry.spans.len(),
        telemetry.dropped_spans,
        if trace_parses { "yes" } else { "NO (bug!)" },
    );
    let folded = folded_stacks(&telemetry.spans);
    let mut stacks: Vec<&str> = folded.lines().collect();
    stacks.sort_by_key(|line| {
        std::cmp::Reverse(
            line.rsplit(' ')
                .next()
                .and_then(|ns| ns.parse::<u64>().ok())
                .unwrap_or(0),
        )
    });
    out.push_str("\nTop folded stacks (stack self-ns, flamegraph.pl input):\n\n```\n");
    for line in stacks.iter().take(5) {
        let _ = writeln!(out, "{line}");
    }
    out.push_str("```\n");

    // Part 4: the telemetry plane over the E15 mega fleet — metrics for
    // all 10,240 devices plus one traced device, on 8 workers. The point
    // is the memory bound: per-name histograms and counters, flat in the
    // device count.
    out.push_str("\n### Mega fleet with the telemetry plane on (10k+ devices, 8 workers)\n\n");
    out.push_str(
        "| devices | workers | span events | dropped | metrics bytes | traced | leaked |\n\
         |---|---|---|---|---|---|---|\n",
    );
    let audio_devices = 128usize;
    let camera_devices = 10_112usize;
    let audio = Scenario::mega_fleet(
        audio_devices,
        2,
        0.4,
        perisec_tz::time::SimDuration::from_secs(1),
        0xE18,
    );
    let mega_cameras = CameraScenario::fleet_high_fps(camera_devices, 2, 1, 30, 0.4, 0xE18);
    let mega_fleet = PipelineFleet::with_models(
        FleetConfig {
            devices: audio_devices,
            pipeline: PipelineConfig {
                batch_windows: 4,
                ..PipelineConfig::default()
            },
            camera_devices,
            camera_pipeline,
            workers: 8,
            telemetry: TelemetryConfig::metrics(),
            trace_devices: std::collections::BTreeSet::from([0]),
            ..FleetConfig::of(0)
        },
        models,
    );
    let (mega, stats, mega_telemetry) = mega_fleet
        .run_mixed_telemetry(&audio, &mega_cameras)
        .expect("mega fleet");
    let mega_events: u64 = mega_telemetry
        .histograms
        .values()
        .map(perisec_telemetry::LogHistogram::count)
        .sum();
    let _ = writeln!(
        out,
        "| {} | {} | {mega_events} | {} | {} | {} | {} |",
        mega.device_count(),
        stats.workers,
        mega_telemetry.dropped_spans,
        mega_telemetry.metrics_memory_bytes(),
        mega_telemetry.traces.len(),
        mega.leaked_sensitive_utterances(),
    );
    let _ = writeln!(
        out,
        "\nMega-fleet metrics memory: {} bytes for {} devices ({} span events) — \
         per-name histograms, flat in the device count. The executor ran {} step \
         slices and parked idle {} times.",
        mega_telemetry.metrics_memory_bytes(),
        mega.device_count(),
        mega_events,
        stats.step_slices,
        stats.idle_parks,
    );
    (out, trace_json)
}

/// E19 — the live fleet health plane: virtual-time epoch snapshots, SLO
/// hysteresis, deterministic anomaly alerts, and the plane's overhead.
///
/// Four claims, each with an awk-checkable line:
/// 1. A healthy fleet produces an **empty** alert journal.
/// 2. Injected degradation fires the same alerts at the same virtual
///    timestamps no matter the worker count (journal byte-identity).
/// 3. The functional `FleetReport` is byte-identical with the plane on
///    or off — health observes, it never steers the workload.
/// 4. The plane's host overhead stays within the 5% telemetry gate.
pub fn run_e19_health_plane() -> String {
    use perisec_core::fleet::{FleetConfig, PipelineFleet};
    use perisec_core::pipeline::{CameraPipelineConfig, DegradeSpec, SharedModels};
    use perisec_telemetry::{HealthConfig, HealthState, SloSpec};
    use perisec_workload::scenario::CameraScenario;

    let mut out = String::from(
        "## E19 — live fleet health plane (virtual-time epochs, SLO hysteresis, \
         deterministic alerts)\n\n",
    );

    let models = SharedModels::deferred(Architecture::Cnn, 60, 0xE19).with_vision_spec(120, 0xE19);
    models.audio().expect("train speech models");
    models.vision().expect("train frame classifier");

    // Part 1: state census of a healthy mixed fleet under attainable
    // objectives — the journal must come back empty.
    out.push_str("### Healthy fleet census\n\n");
    let generous = HealthConfig {
        slos: vec![SloSpec::p95("tee-filter", SimDuration::from_secs(5))],
        ..HealthConfig::with_window(SimDuration::from_secs(1))
    };
    let audio_pipeline = PipelineConfig {
        batch_windows: 4,
        ..PipelineConfig::default()
    };
    let camera_pipeline = CameraPipelineConfig {
        batch_windows: 4,
        ..CameraPipelineConfig::default()
    };
    let healthy_fleet = PipelineFleet::with_models(
        FleetConfig {
            devices: 128,
            pipeline: audio_pipeline.clone(),
            camera_devices: 128,
            camera_pipeline: camera_pipeline.clone(),
            workers: 8,
            health: Some(generous.clone()),
            ..FleetConfig::of(0)
        },
        models.clone(),
    );
    let healthy_audio = Scenario::mega_fleet(128, 2, 0.4, SimDuration::from_secs(1), 0xE19);
    let healthy_cameras = CameraScenario::fleet_high_fps(128, 4, 1, 30, 0.4, 0xE19);
    let (_, _, _, census) = healthy_fleet
        .run_mixed_health(&healthy_audio, &healthy_cameras)
        .expect("healthy fleet");
    out.push_str(
        "| devices | healthy | degraded | critical | journal entries |\n|---|---|---|---|---|\n",
    );
    let _ = writeln!(
        out,
        "| {} | {} | {} | {} | {} |",
        census.devices,
        census.healthy,
        census.degraded,
        census.critical,
        census.alerts.len(),
    );
    let _ = writeln!(
        out,
        "\nHealthy-fleet alert journal entries: {} (gate: 0).",
        census.alerts.len()
    );

    // Part 2: injected degradation — after 2 s of virtual time every
    // audio device's filter crossings slow by 10 ms per window, tearing
    // a 5 ms p95 objective. The alerts must land at identical virtual
    // timestamps at every worker count: the journal is a pure function
    // of the workload, not of the host schedule.
    out.push_str("\n### Injected degradation across worker counts\n\n");
    let strict = HealthConfig {
        slos: vec![SloSpec::p95("tee-filter", SimDuration::from_millis(5))],
        ..HealthConfig::with_window(SimDuration::from_secs(1))
    };
    let degraded_pipeline = PipelineConfig {
        batch_windows: 4,
        degrade: Some(DegradeSpec {
            after: SimDuration::from_secs(2),
            per_window: SimDuration::from_millis(10),
        }),
        ..PipelineConfig::default()
    };
    let degraded_fleet = |workers: usize, health: Option<HealthConfig>| {
        PipelineFleet::with_models(
            FleetConfig {
                devices: 12,
                pipeline: degraded_pipeline.clone(),
                workers,
                health,
                ..FleetConfig::of(0)
            },
            models.clone(),
        )
    };
    let degraded_audio = Scenario::fleet(12, 6, 0.5, SimDuration::from_secs(1), 0xE19);
    out.push_str("| workers | alerts | degraded transitions | journal == 1-worker journal |\n|---|---|---|---|\n");
    let mut reference_journal: Option<String> = None;
    let mut journals_identical = true;
    let mut degraded_transitions = 0usize;
    let mut sample_table = String::new();
    for workers in [1usize, 2, 8] {
        let (_, _, _, health) = degraded_fleet(workers, Some(strict.clone()))
            .run_mixed_health(&degraded_audio, &[])
            .expect("degraded fleet");
        let journal = health.alert_journal_json();
        let identical = match &reference_journal {
            None => {
                degraded_transitions = health.transitions_to(HealthState::Degraded);
                sample_table = health.to_table();
                reference_journal = Some(journal);
                true
            }
            Some(reference) => journal == *reference,
        };
        journals_identical &= identical;
        let _ = writeln!(
            out,
            "| {workers} | {} | {} | {} |",
            health.alerts.len(),
            health.transitions_to(HealthState::Degraded),
            if identical { "yes" } else { "NO (bug!)" },
        );
    }
    let _ = writeln!(
        out,
        "\nDegraded transitions under injected degradation: {degraded_transitions} (gate: >= 1)."
    );
    let _ = writeln!(
        out,
        "Alert journals byte-identical across worker counts: {}.",
        if journals_identical {
            "yes"
        } else {
            "NO (bug!)"
        },
    );
    out.push_str("\nOne-worker health table (virtual-time journal):\n\n```\n");
    out.push_str(&sample_table);
    out.push_str("```\n");

    // Part 3: zero perturbation — the functional report with the plane
    // on is byte-for-byte the report of a silent run, degradation and
    // all.
    let (report_on, _, _, _) = degraded_fleet(2, Some(strict.clone()))
        .run_mixed_health(&degraded_audio, &[])
        .expect("health-on fleet");
    let report_off = degraded_fleet(2, None)
        .run_mixed(&degraded_audio, &[])
        .expect("health-off fleet");
    let _ = writeln!(
        out,
        "\nReports byte-identical with the health plane on: {}.",
        if report_on.to_json() == report_off.to_json() {
            "yes"
        } else {
            "NO (bug!)"
        },
    );

    // Part 4: the plane's host cost on a 1024-device verdict-only camera
    // fleet — paired best-of-5 rounds after an unmeasured warm-up, the
    // E18/E16 discipline. The health fleet also arms the payload
    // tripwire: a verdict-only fleet must never relay raw payload bytes,
    // so its zero alert count doubles as the privacy claim, per epoch.
    out.push_str("\n### Health-plane overhead (1024 cameras, 8 workers)\n\n");
    let overhead_health = HealthConfig {
        slos: vec![SloSpec::p95("tee-filter", SimDuration::from_secs(5))],
        expect_zero_payload: true,
        ..HealthConfig::with_window(SimDuration::from_secs(1))
    };
    let overhead_fleet = |health: Option<HealthConfig>| {
        PipelineFleet::with_models(
            FleetConfig {
                workers: 8,
                camera_pipeline: camera_pipeline.clone(),
                health,
                ..FleetConfig::mixed(0, 1024)
            },
            models.clone(),
        )
    };
    let overhead_cameras = CameraScenario::fleet_high_fps(1024, 4, 1, 30, 0.4, 0x0E19);
    let off_fleet = overhead_fleet(None);
    let on_fleet = overhead_fleet(Some(overhead_health));
    let mut off_ms = f64::MAX;
    let mut on_ms = f64::MAX;
    let mut overhead_pct = f64::MAX;
    let mut tripwire_alerts = 0usize;
    for round in 0..6 {
        let (_, stats) = off_fleet
            .run_mixed_stats(&[], &overhead_cameras)
            .expect("health-off fleet");
        let round_off = stats.host_millis;
        let (_, stats, _, health) = on_fleet
            .run_mixed_health(&[], &overhead_cameras)
            .expect("health-on fleet");
        let round_on = stats.host_millis;
        tripwire_alerts = health.alerts.len();
        if round > 0 {
            off_ms = off_ms.min(round_off);
            on_ms = on_ms.min(round_on);
            overhead_pct = overhead_pct.min((round_on - round_off) / round_off.max(0.001) * 100.0);
        }
    }
    out.push_str("| health plane | best host ms (of 5) |\n|---|---|\n");
    let _ = writeln!(out, "| off | {off_ms:.0} |");
    let _ = writeln!(out, "| on | {on_ms:.0} |");
    let _ = writeln!(
        out,
        "\nHealth plane overhead at 1024 devices: {overhead_pct:.2}% \
         (best of 5 paired rounds; best off {off_ms:.0} ms, best on {on_ms:.0} ms; gate <= 5%).",
    );
    let _ = writeln!(
        out,
        "Payload tripwire alerts on the verdict-only camera fleet: {tripwire_alerts} (gate: 0).",
    );
    out
}

/// E20 — fault-tolerant sealed relay: deterministic network chaos,
/// virtual-time retry/backoff, replay-safe idempotent cloud ingest.
///
/// Four claims, each with an awk-checkable line:
/// 1. Under 10% drop plus duplication, reordering, corruption and one
///    outage window, the cloud's committed decision stream is
///    **byte-identical** to the fault-free run at every worker count —
///    no verdict lost, none double-counted, despite visible
///    redeliveries and loud corruption rejects.
/// 2. The outage drill fires at least one `retry_storm` alert, and the
///    alert journal is byte-identical across worker counts: chaos is a
///    pure function of `(seed, device, send sequence)`, never of the
///    host schedule.
/// 3. A zero-rate `FaultSpec` is a no-op — wiring the chaos plane in
///    costs nothing when every rate is zero.
pub fn run_e20_fault_tolerance() -> String {
    use perisec_core::fleet::{FleetConfig, PipelineFleet};
    use perisec_core::pipeline::{CameraPipelineConfig, SharedModels};
    use perisec_relay::netsim::FaultSpec;
    use perisec_telemetry::{HealthConfig, SloSpec};
    use perisec_workload::scenario::CameraScenario;

    let mut out = String::from(
        "## E20 — fault-tolerant sealed relay (deterministic chaos, virtual-time \
         retries, idempotent ingest)\n\n",
    );

    let models = SharedModels::deferred(Architecture::Cnn, 60, 0xE20).with_vision_spec(120, 0xE20);
    models.audio().expect("train speech models");
    models.vision().expect("train frame classifier");

    // The drill: 10% drop, plus duplication, reordering, corruption and
    // one outage window in per-device send-sequence space. Send
    // sequences are consumed by retransmissions too, so the outage
    // always terminates — the retry machine walks out of the window.
    let faults = FaultSpec {
        drop_permille: 100,
        duplicate_permille: 60,
        reorder_permille: 40,
        corrupt_permille: 40,
        outage: Some((2, 6)),
        ..FaultSpec::none(0xE20)
    };
    let audio_pipeline = PipelineConfig {
        batch_windows: 2,
        ..PipelineConfig::default()
    };
    let camera_pipeline = CameraPipelineConfig {
        batch_windows: 2,
        ..CameraPipelineConfig::default()
    };
    // Generous latency SLO (nothing should demote) but a live retry
    // tripwire: three retransmissions inside one epoch is a storm.
    let health = HealthConfig {
        slos: vec![SloSpec::p95("tee-filter", SimDuration::from_secs(5))],
        retry_storm_threshold: 3,
        ..HealthConfig::with_window(SimDuration::from_secs(1))
    };
    let audio_devices = 256;
    let camera_devices = 768;
    let fleet = |faults: Option<FaultSpec>, workers: usize| {
        PipelineFleet::with_models(
            FleetConfig {
                devices: audio_devices,
                pipeline: audio_pipeline.clone(),
                camera_devices,
                camera_pipeline: camera_pipeline.clone(),
                workers,
                health: Some(health.clone()),
                faults,
                ..FleetConfig::of(0)
            },
            models.clone(),
        )
    };
    let audio = Scenario::fleet(audio_devices, 4, 0.5, SimDuration::from_secs(1), 0xE20);
    let cameras = CameraScenario::fleet_high_fps(camera_devices, 4, 1, 30, 0.4, 0xE20);

    // Fault-free reference: the decision stream every chaotic run must
    // reproduce byte-for-byte.
    let reference = fleet(None, 8)
        .run_mixed(&audio, &cameras)
        .expect("fault-free reference fleet");
    let reference_decisions = reference.cloud_decisions_json();
    let reference_events: usize = reference
        .devices()
        .iter()
        .map(|d| d.report.cloud.report.events.len())
        .sum();

    out.push_str(&format!(
        "### Chaos drill: {}-device mixed fleet, 10% drop + duplication + \
         corruption + one outage window\n\n",
        audio_devices + camera_devices
    ));
    out.push_str(
        "| workers | committed | redelivered | rejected | retry-storm alerts | \
         decisions == fault-free | journal == workers=1 |\n|---|---|---|---|---|---|---|\n",
    );
    let mut decisions_identical = true;
    let mut journals_identical = true;
    let mut reference_journal: Option<String> = None;
    let mut min_storms = usize::MAX;
    let mut max_lost = 0usize;
    let mut max_duplicated = 0usize;
    let mut total_redelivered = 0u64;
    let mut total_rejected = 0u64;
    for workers in [1usize, 2, 8] {
        let (report, _, _, census) = fleet(Some(faults), workers)
            .run_mixed_health(&audio, &cameras)
            .expect("chaos fleet");
        let decisions = report.cloud_decisions_json();
        let journal = census.alert_journal_json();
        let events: usize = report
            .devices()
            .iter()
            .map(|d| d.report.cloud.report.events.len())
            .sum();
        let committed: u64 = report
            .devices()
            .iter()
            .map(|d| d.report.cloud.report.committed_records)
            .sum();
        let redelivered = report.total_redelivered_records();
        let rejected = report.total_rejected_records();
        let storms = census.alerts_of("retry_storm");
        let matches_reference = decisions == reference_decisions;
        decisions_identical &= matches_reference;
        let matches_serial = match &reference_journal {
            None => {
                reference_journal = Some(journal);
                true
            }
            Some(first) => *first == journal,
        };
        journals_identical &= matches_serial;
        min_storms = min_storms.min(storms);
        max_lost = max_lost.max(reference_events.saturating_sub(events));
        max_duplicated = max_duplicated.max(events.saturating_sub(reference_events));
        total_redelivered += redelivered;
        total_rejected += rejected;
        let _ = writeln!(
            out,
            "| {workers} | {committed} | {redelivered} | {rejected} | {storms} | {} | {} |",
            if matches_reference { "yes" } else { "NO" },
            if matches_serial { "yes" } else { "NO" },
        );
    }
    let _ = writeln!(
        out,
        "\nCloud decisions byte-identical to the fault-free run at every worker \
         count: {}.",
        if decisions_identical { "yes" } else { "NO" }
    );
    let _ = writeln!(out, "Verdicts lost under chaos: {max_lost} (gate: 0).");
    let _ = writeln!(
        out,
        "Duplicate cloud decisions: {max_duplicated} (gate: 0)."
    );
    let _ = writeln!(
        out,
        "Redelivered records across the drill: {total_redelivered} (gate: > 0)."
    );
    let _ = writeln!(
        out,
        "Rejected (corrupted) records across the drill: {total_rejected} (gate: > 0)."
    );
    let _ = writeln!(
        out,
        "Retry-storm alerts under the outage drill: {min_storms} (gate: >= 1)."
    );
    let _ = writeln!(
        out,
        "Retry/alert journals byte-identical across worker counts: {}.",
        if journals_identical { "yes" } else { "NO" }
    );

    // Part 2: a zero-rate FaultSpec must be indistinguishable from no
    // fault plane at all — the chaos hook costs nothing when disarmed.
    out.push_str("\n### Zero-rate chaos is a no-op\n\n");
    let quiet_pipeline = PipelineConfig {
        batch_windows: 2,
        ..PipelineConfig::default()
    };
    let quiet_config = |faults: Option<FaultSpec>| FleetConfig {
        devices: 12,
        pipeline: quiet_pipeline.clone(),
        workers: 2,
        faults,
        ..FleetConfig::of(0)
    };
    let quiet_audio = Scenario::fleet(12, 4, 0.5, SimDuration::from_secs(1), 0xE20);
    let plain = PipelineFleet::with_models(quiet_config(None), models.clone())
        .run_mixed(&quiet_audio, &[])
        .expect("plain fleet");
    let disarmed =
        PipelineFleet::with_models(quiet_config(Some(FaultSpec::none(0xE20))), models.clone())
            .run_mixed(&quiet_audio, &[])
            .expect("disarmed-chaos fleet");
    let _ = writeln!(
        out,
        "Zero-rate FaultSpec leaves the report byte-identical: {}.",
        if plain.to_json() == disarmed.to_json() {
            "yes"
        } else {
            "NO"
        }
    );
    out
}

/// E21 — the attested sharded ingest plane. Three parts:
///
/// 1. The crash drill: an audio fleet routed through a 2-shard plane
///    whose shards crash and restart mid-run, layered with a lossy
///    link. Sessions re-attest under bumped epochs, redeliveries are
///    absorbed idempotently, and the cloud decision stream stays
///    byte-identical to the direct (plane-less) path at workers 1/2/8.
/// 2. The mega-fleet: 100k+ wire-level device sessions against an
///    8-shard plane with two crash windows per shard — every committed
///    record survives exactly once.
/// 3. Shard scaling: the modeled service throughput grows with the
///    shard count because commit work parallelises across journals.
pub fn run_e21_ingest_plane() -> String {
    use std::sync::Arc;

    use perisec_core::fleet::{FleetConfig, PipelineFleet};
    use perisec_core::pipeline::SharedModels;
    use perisec_core::FILTER_TA_NAME;
    use perisec_ingest::{IngestPlane, IngestPlaneConfig, ShardFaultSpec};
    use perisec_relay::attest::{
        encode_attest_request, encode_ingest_record, SessionIngest, ATTEST_SEQ_BASE,
    };
    use perisec_relay::avs::AvsEvent;
    use perisec_relay::netsim::FaultSpec;
    use perisec_relay::{measurement_of, IngestReply, SecureChannelClient, PSK_LEN};

    let mut out = String::from(
        "## E21 — attested sharded ingest plane (epoch-fenced recovery, replay-safe \
         re-attestation, bounded backpressure)\n\n",
    );

    // --- Part 1: crash drill with byte-identity across worker counts ---
    let models = SharedModels::deferred(Architecture::Cnn, 60, 0xE21);
    models.audio().expect("train speech models");
    let pipeline = PipelineConfig {
        batch_windows: 2,
        ..PipelineConfig::default()
    };
    let devices = 8;
    let scenarios = Scenario::fleet(devices, 10, 0.3, SimDuration::from_secs(1), 0xE21);
    // Lossy link layered on top of the crashing plane: duplicated
    // requests land on the shards as redeliveries, dropped ones force
    // retransmissions through the retry machine.
    let link_faults = FaultSpec {
        drop_permille: 150,
        duplicate_permille: 200,
        ..FaultSpec::none(0xE21)
    };

    let direct = PipelineFleet::with_models(
        FleetConfig {
            devices,
            pipeline: pipeline.clone(),
            workers: 8,
            ..FleetConfig::of(0)
        },
        models.clone(),
    )
    .run(&scenarios)
    .expect("direct reference fleet");
    let reference_decisions = direct.cloud_decisions_json();
    let reference_events: usize = direct
        .devices()
        .iter()
        .map(|d| d.report.cloud.report.events.len())
        .sum();

    out.push_str(&format!(
        "### Crash drill: {devices}-device fleet through a 2-shard plane, shards \
         killed and restarted mid-run, 15% loss + 20% duplication on the link\n\n",
    ));
    out.push_str(
        "| workers | committed | redelivered | stale-epoch rejects | attest grants | \
         decisions == direct |\n|---|---|---|---|---|---|\n",
    );
    let mut identical = true;
    let mut min_stale = u64::MAX;
    let mut total_redelivered = 0u64;
    let mut max_lost = 0usize;
    let mut max_duplicated = 0usize;
    for workers in [1usize, 2, 8] {
        let plane = IngestPlane::new(
            IngestPlaneConfig::new(2, devices)
                .accepting(vec![measurement_of(FILTER_TA_NAME)])
                .with_faults(ShardFaultSpec::single(0xE21, 1_500_000_000, 150_000_000)),
        );
        let report = PipelineFleet::with_models(
            FleetConfig {
                devices,
                pipeline: pipeline.clone(),
                workers,
                ingest: Some(Arc::clone(&plane) as _),
                faults: Some(link_faults),
                ..FleetConfig::of(0)
            },
            models.clone(),
        )
        .run(&scenarios)
        .expect("plane-routed fleet");
        let decisions = report.cloud_decisions_json();
        let events: usize = report
            .devices()
            .iter()
            .map(|d| d.report.cloud.report.events.len())
            .sum();
        let counters = plane.counters();
        let matches_reference = decisions == reference_decisions;
        identical &= matches_reference;
        min_stale = min_stale.min(counters.stale_epoch_rejects);
        total_redelivered += counters.redelivered;
        max_lost = max_lost.max(reference_events.saturating_sub(events));
        max_duplicated = max_duplicated.max(events.saturating_sub(reference_events));
        let _ = writeln!(
            out,
            "| {workers} | {} | {} | {} | {} | {} |",
            plane.total_committed(),
            counters.redelivered,
            counters.stale_epoch_rejects,
            counters.attest_grants,
            if matches_reference { "yes" } else { "NO" },
        );
    }
    let _ = writeln!(
        out,
        "\nCloud decisions byte-identical to the direct path at every worker count: {}.",
        if identical { "yes" } else { "NO" }
    );
    let _ = writeln!(
        out,
        "Verdicts lost across the crash drill: {max_lost} (gate: 0)."
    );
    let _ = writeln!(
        out,
        "Duplicate verdicts across the crash drill: {max_duplicated} (gate: 0)."
    );
    let _ = writeln!(
        out,
        "Stale-epoch rejects under the crash drill: {min_stale} (gate: > 0)."
    );
    let _ = writeln!(
        out,
        "Redelivered records absorbed idempotently: {total_redelivered} (gate: > 0)."
    );

    // --- Part 2: the 100k-session mega-fleet, wire level ----------------
    // Each session speaks the plane's wire protocol directly (handshake,
    // attest, sealed records with epoch prefixes) with a retry loop that
    // walks out of crash windows via exponential backoff and re-attests
    // whenever the restarted shard fences its epoch.
    const SESSIONS: u64 = 100_000;
    const RECORDS: u64 = 2;
    const SPACING_NS: u64 = 10_000;
    let ta = measurement_of(FILTER_TA_NAME);
    let mega = IngestPlane::new(
        IngestPlaneConfig::new(8, SESSIONS as usize)
            .accepting(vec![ta])
            .with_faults(ShardFaultSpec {
                seed: 0xE21,
                crashes_per_shard: 2,
                first_crash_ns: 500_000_000,
                crash_period_ns: 700_000_000,
                downtime_ns: 10_000_000,
            }),
    );
    let started = std::time::Instant::now();
    for session in 0..SESSIONS {
        let mut now_ns = session * RECORDS * SPACING_NS;
        let mut client = SecureChannelClient::new([0x5a; PSK_LEN], session + 1);
        // Handshake, retrying through any crash window.
        loop {
            let hello = client.client_hello();
            let reply = mega.handle(session, now_ns, &hello);
            if !reply.is_empty() {
                client.process_server_hello(&reply).expect("server hello");
                break;
            }
            now_ns += SPACING_NS.max(1_000_000);
        }
        let mut counter = 1u64;
        let mut epoch;
        loop {
            let wire = client
                .seal_at(
                    ATTEST_SEQ_BASE + counter,
                    &encode_attest_request(&ta, counter),
                )
                .expect("seal attest");
            let reply = mega.handle(session, now_ns, &wire);
            if reply.is_empty() {
                now_ns += SPACING_NS.max(1_000_000);
                continue;
            }
            let (_, plain) = client.open_explicit(&reply).expect("attest reply");
            match IngestReply::decode(&plain) {
                Some(IngestReply::AttestGrant { epoch: granted }) => {
                    epoch = granted;
                    break;
                }
                other => panic!("mega-fleet attest refused: {other:?}"),
            }
        }
        for seq in 0..RECORDS {
            let event = AvsEvent::TextMessage {
                dialog_id: session * RECORDS + seq,
                text: String::from("verdict"),
            };
            let mut backoff = SPACING_NS;
            loop {
                let wire = client
                    .seal_at(seq, &encode_ingest_record(epoch, &event.encode()))
                    .expect("seal record");
                let reply = mega.handle(session, now_ns, &wire);
                if reply.is_empty() {
                    // Shard dark: wait out virtual time, doubling the step.
                    now_ns += backoff;
                    backoff = (backoff * 2).min(4_000_000);
                    continue;
                }
                let (_, plain) = client.open_explicit(&reply).expect("record reply");
                match IngestReply::decode(&plain) {
                    Some(IngestReply::Ack(_)) => break,
                    Some(IngestReply::NeedAttest) | Some(IngestReply::StaleEpoch { .. }) => {
                        counter += 1;
                        let wire = client
                            .seal_at(
                                ATTEST_SEQ_BASE + counter,
                                &encode_attest_request(&ta, counter),
                            )
                            .expect("seal re-attest");
                        let reply = mega.handle(session, now_ns, &wire);
                        if reply.is_empty() {
                            now_ns += backoff;
                            continue;
                        }
                        let (_, plain) = client.open_explicit(&reply).expect("re-attest reply");
                        match IngestReply::decode(&plain) {
                            Some(IngestReply::AttestGrant { epoch: granted }) => epoch = granted,
                            other => panic!("mega-fleet re-attest refused: {other:?}"),
                        }
                    }
                    other => panic!("mega-fleet unexpected reply: {other:?}"),
                }
            }
            now_ns += SPACING_NS;
        }
    }
    let elapsed = started.elapsed();
    let counters = mega.counters();
    let expected = SESSIONS * RECORDS;
    out.push_str(&format!(
        "\n### Mega-fleet: {SESSIONS} wire-level sessions, 8 shards, two crash \
         windows per shard\n\n"
    ));
    let _ = writeln!(
        out,
        "Mega-fleet sessions: {SESSIONS} (gate: >= 100000), host runtime {:.1}s.",
        elapsed.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "Committed exactly once: {} of {expected} (gate: all, no loss, no dup).",
        mega.total_committed()
    );
    let _ = writeln!(
        out,
        "Mega-fleet stale-epoch rejects: {} (gate: > 0).",
        counters.stale_epoch_rejects
    );
    let _ = writeln!(
        out,
        "Mega-fleet attest grants: {} (gate: >= {SESSIONS}).",
        counters.attest_grants
    );

    // --- Part 3: shard scaling -----------------------------------------
    // The same wire-level load against 1 vs 4 shards: the busiest
    // journal's commit work bounds the makespan, so the modeled service
    // throughput grows with the shard count.
    let scale_run = |shards: usize| -> f64 {
        let plane = IngestPlane::new(IngestPlaneConfig::new(shards, 16).accepting(vec![ta]));
        for session in 0..16u64 {
            let mut client = SecureChannelClient::new([0x5a; PSK_LEN], session + 1);
            let reply = mega_handshake(&plane, session, &mut client);
            assert!(reply, "scaling handshake");
            let wire = client
                .seal_at(ATTEST_SEQ_BASE + 1, &encode_attest_request(&ta, 1))
                .expect("seal attest");
            let reply = plane.handle(session, 0, &wire);
            let (_, plain) = client.open_explicit(&reply).expect("attest reply");
            assert!(matches!(
                IngestReply::decode(&plain),
                Some(IngestReply::AttestGrant { .. })
            ));
            for seq in 0..400u64 {
                let event = AvsEvent::TextMessage {
                    dialog_id: seq,
                    text: String::from("scale"),
                };
                let wire = client
                    .seal_at(seq, &encode_ingest_record(1, &event.encode()))
                    .expect("seal record");
                let reply = plane.handle(session, seq * SPACING_NS, &wire);
                let (_, plain) = client.open_explicit(&reply).expect("record reply");
                assert!(matches!(
                    IngestReply::decode(&plain),
                    Some(IngestReply::Ack(_))
                ));
            }
        }
        plane.modeled_throughput_rps()
    };
    fn mega_handshake(
        plane: &std::sync::Arc<perisec_ingest::IngestPlane>,
        session: u64,
        client: &mut perisec_relay::SecureChannelClient,
    ) -> bool {
        use perisec_relay::attest::SessionIngest;
        let hello = client.client_hello();
        let reply = plane.handle(session, 0, &hello);
        if reply.is_empty() {
            return false;
        }
        client.process_server_hello(&reply).is_ok()
    }
    let one = scale_run(1);
    let four = scale_run(4);
    out.push_str("\n### Shard scaling: modeled service throughput\n\n");
    let _ = writeln!(
        out,
        "| shards | modeled throughput (records/s) |\n|---|---|\n| 1 | {one:.0} |\n| 4 | {four:.0} |",
    );
    let _ = writeln!(
        out,
        "\nShard scaling 1 -> 4 shards: {:.2}x (gate: >= 2.0x).",
        four / one
    );
    out
}

/// Runs every experiment and concatenates the tables (used by the
/// `experiments` binary and by EXPERIMENTS.md generation).
pub fn run_all() -> String {
    [
        run_e1_tcb(),
        run_e2_throughput(),
        run_e3_latency(),
        run_e4_accuracy(),
        run_e5_model_memory(),
        run_e6_power(),
        run_e7_worldswitch(),
        run_e8_leakage(),
        run_e9_scalability(),
        run_e10_footprint(),
        run_e11_batch_sweep(),
        run_e12_fleet(),
        run_e13_vision(),
        run_e14_shard_sweep(),
        run_e15_fleet_executor(),
        run_e16_int8_inference().0,
        run_e18_telemetry().0,
        run_e19_health_plane(),
        run_e20_fault_tolerance(),
        run_e21_ingest_plane(),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_experiments_produce_tables() {
        // Only the cheap experiments are exercised in unit tests; the full
        // set runs through the `experiments` binary and integration tests.
        let e1 = run_e1_tcb();
        assert!(e1.contains("| record |"));
        assert!(e1.contains("yes"));
        let e2 = run_e2_throughput();
        assert!(e2.lines().count() > 6);
        let e7 = run_e7_worldswitch();
        assert!(e7.contains("SMC round trip"));
        let e9 = run_e9_scalability();
        assert!(e9.contains("| 16 |"));
        let e10_header = "## E10";
        assert!(run_e10_footprint().contains(e10_header));
    }
}
