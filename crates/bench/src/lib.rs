//! # perisec-bench — the experiment harness
//!
//! The paper contains no measured evaluation ("We are yet to perform
//! concrete experiments", §III); this crate operationalizes the evaluation
//! it promises. Each `run_eN` function reproduces one experiment from the
//! index in DESIGN.md §5 and returns a formatted table; the `exp_eN`
//! binaries print them, and EXPERIMENTS.md records the results.
//!
//! Criterion benches (under `benches/`) cover the microbenchmark side:
//! world-switch primitives, capture throughput, crypto, and ML inference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

pub use experiments::*;
