//! Adaptive batch sizing against a latency SLO.
//!
//! Experiment E11 established the cost curve of batched TEE crossings:
//! each crossing pays a fixed overhead (SMC trap, a world-switch round
//! trip, TA dispatch, the supplicant relay round trip), so crossings per
//! window fall as `1/B` — while the *last* window of a batch waits for
//! the whole batch, so per-window latency grows as `B · service +
//! overhead`. The [`AdaptiveBatcher`] walks that curve from the latency
//! side: given the current queue depth and a running estimate of the
//! per-window service time, it picks the largest batch that still meets
//! the SLO — maximum amortization, bounded latency.
//!
//! The batcher drives both the sharded vision pipeline (via
//! `perisec_sched::ShardedCameraConfig::latency_slo`) and the plain audio
//! pipeline (via [`crate::pipeline::PipelineConfig::latency_slo`]); it
//! lives in this crate so both can share one implementation, and the
//! scheduler crate re-exports it under its historical path.

use perisec_telemetry::HealthState;
use perisec_tz::cost::CostModel;
use perisec_tz::time::SimDuration;

/// Picks `batch_windows` per shard from queue depth against a latency
/// SLO, using the E11 cost curve.
#[derive(Debug, Clone)]
pub struct AdaptiveBatcher {
    slo: SimDuration,
    crossing: SimDuration,
    max_batch: usize,
    service: Option<SimDuration>,
    pressure: HealthState,
}

impl AdaptiveBatcher {
    /// Creates a batcher for a platform's cost model with a per-window
    /// latency SLO and an upper batch bound.
    pub fn new(cost: &CostModel, slo: SimDuration, max_batch: usize) -> Self {
        AdaptiveBatcher {
            slo,
            crossing: AdaptiveBatcher::crossing_overhead(cost),
            max_batch: max_batch.max(1),
            service: None,
            pressure: HealthState::Healthy,
        }
    }

    /// The fixed cost of one TEE crossing under `cost` — the constant the
    /// E11 sweep amortizes: one SMC trap, the world-switch round trip,
    /// one TA dispatch and one supplicant relay round trip.
    pub fn crossing_overhead(cost: &CostModel) -> SimDuration {
        cost.smc_round_trip
            + cost.world_switch
            + cost.world_switch
            + cost.ta_dispatch
            + cost.supplicant_rpc
    }

    /// Folds an observed per-window service time into the running
    /// estimate (EWMA, new observation weighted 1/4).
    pub fn observe(&mut self, per_window: SimDuration) {
        self.service = Some(match self.service {
            None => per_window,
            Some(current) => (current * 3 + per_window) / 4,
        });
    }

    /// The current per-window service estimate (zero before the first
    /// observation).
    pub fn service_estimate(&self) -> SimDuration {
        self.service.unwrap_or(SimDuration::ZERO)
    }

    /// The configured SLO.
    pub fn slo(&self) -> SimDuration {
        self.slo
    }

    /// Feeds the health plane's SLO-pressure verdict (see
    /// `perisec_telemetry::PressureMonitor`). Under `Degraded` pressure
    /// the batcher halves its latency headroom — the EWMA is clearly
    /// underestimating tail service time, so batches shrink before the
    /// SLO is torn further; under `Critical` it falls all the way back to
    /// single-window probes. `Healthy` (the initial state) restores the
    /// pure E11 curve.
    pub fn set_pressure(&mut self, pressure: HealthState) {
        self.pressure = pressure;
    }

    /// The most recent pressure verdict fed to the batcher.
    pub fn pressure(&self) -> HealthState {
        self.pressure
    }

    /// Picks the batch size for the next crossing given `queue_depth`
    /// windows waiting. Returns the largest `B` with
    /// `B · service + overhead <= slo`, clamped to `[1, min(depth, max)]`
    /// — never more than is queued, never zero, and a single window when
    /// the SLO is unattainable (smaller batches cannot help: the crossing
    /// overhead alone already exceeds it). Before the first
    /// [`AdaptiveBatcher::observe`] the batcher has no service estimate
    /// and plays it safe with a batch of one, which doubles as the
    /// measurement probe.
    /// Under SLO pressure (see [`AdaptiveBatcher::set_pressure`]) the
    /// curve is clipped: `Critical` always returns 1, `Degraded` fits the
    /// batch into half the headroom.
    pub fn pick_batch(&self, queue_depth: usize) -> usize {
        if self.pressure == HealthState::Critical {
            return 1;
        }
        let ceiling = self.max_batch.min(queue_depth.max(1));
        let service = match self.service {
            None => return 1,
            Some(service) if service.is_zero() => return ceiling,
            Some(service) => service,
        };
        if self.slo <= self.crossing + service {
            return 1;
        }
        let full = self.slo - self.crossing;
        let headroom = match self.pressure {
            HealthState::Degraded => full / 2,
            _ => full,
        };
        let fit = (headroom.as_nanos() / service.as_nanos()) as usize;
        fit.clamp(1, ceiling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batcher(slo_us: u64) -> AdaptiveBatcher {
        AdaptiveBatcher::new(
            &CostModel::jetson_agx_xavier(),
            SimDuration::from_micros(slo_us),
            64,
        )
    }

    #[test]
    fn first_batch_is_a_probe() {
        let b = batcher(10_000);
        assert_eq!(b.pick_batch(32), 1);
        assert_eq!(b.service_estimate(), SimDuration::ZERO);
    }

    #[test]
    fn batch_grows_with_slo_and_shrinks_with_service_time() {
        let mut b = batcher(1_000);
        b.observe(SimDuration::from_micros(50));
        let at_1ms = b.pick_batch(64);
        assert!(at_1ms > 1);

        let mut generous = batcher(5_000);
        generous.observe(SimDuration::from_micros(50));
        assert!(generous.pick_batch(64) > at_1ms);

        // Slower service under the same SLO means smaller batches.
        let mut slow = batcher(1_000);
        slow.observe(SimDuration::from_micros(400));
        assert!(slow.pick_batch(64) < at_1ms);
    }

    #[test]
    fn batch_never_exceeds_queue_depth_or_cap() {
        let mut b = AdaptiveBatcher::new(
            &CostModel::jetson_agx_xavier(),
            SimDuration::from_secs(1),
            8,
        );
        b.observe(SimDuration::from_micros(1));
        assert_eq!(b.pick_batch(3), 3);
        assert_eq!(b.pick_batch(100), 8);
        assert_eq!(b.pick_batch(0), 1);
    }

    #[test]
    fn unattainable_slo_degrades_to_single_windows() {
        // The crossing overhead alone exceeds a 1 µs SLO.
        let mut b = batcher(1);
        b.observe(SimDuration::from_micros(100));
        assert_eq!(b.pick_batch(64), 1);
    }

    #[test]
    fn ewma_tracks_service_drift() {
        let mut b = batcher(1_000);
        b.observe(SimDuration::from_micros(100));
        assert_eq!(b.service_estimate(), SimDuration::from_micros(100));
        b.observe(SimDuration::from_micros(200));
        // (3*100 + 200) / 4 = 125 µs.
        assert_eq!(b.service_estimate(), SimDuration::from_micros(125));
    }

    #[test]
    fn slo_pressure_clips_the_batch_curve() {
        let mut b = batcher(5_000);
        b.observe(SimDuration::from_micros(50));
        assert_eq!(b.pressure(), HealthState::Healthy);
        let healthy = b.pick_batch(64);
        assert!(healthy > 2);
        // Degraded pressure halves the headroom, so the batch roughly
        // halves; Critical falls back to single-window probes.
        b.set_pressure(HealthState::Degraded);
        let degraded = b.pick_batch(64);
        assert!(
            degraded < healthy,
            "degraded {degraded} vs healthy {healthy}"
        );
        assert!(degraded >= 1);
        b.set_pressure(HealthState::Critical);
        assert_eq!(b.pick_batch(64), 1);
        // Recovery restores the pure curve exactly.
        b.set_pressure(HealthState::Healthy);
        assert_eq!(b.pick_batch(64), healthy);
    }

    #[test]
    fn crossing_overhead_reflects_the_cost_model() {
        let jetson = AdaptiveBatcher::crossing_overhead(&CostModel::jetson_agx_xavier());
        let quad = AdaptiveBatcher::crossing_overhead(&CostModel::iot_quad_node());
        assert!(quad > jetson);
    }
}
