//! The TA-side cloud channel, shared by the audio filter TA and the
//! vision TA.
//!
//! Both TAs relay permitted content to the cloud the same way: a PSK
//! handshake over a supplicant socket, then sealed records with exactly
//! one send/recv round trip per event (whether the event is a single
//! utterance or a whole batch). Keeping that logic in one place means the
//! two TAs cannot drift apart.

use perisec_optee::{TaEnv, TeeError, TeeParam, TeeParams, TeeResult};
use perisec_relay::avs::{AvsDirective, AvsEvent};
use perisec_relay::tls::{seal_flops, SecureChannelClient, PSK_LEN};

use crate::filter_ta::encode_batch_verdicts;
use crate::policy::FilterDecision;

/// A lazily-established secure channel from a TA to the cloud host.
pub(crate) struct TaCloudChannel {
    cloud_host: String,
    psk: [u8; PSK_LEN],
    channel: Option<(u64, SecureChannelClient)>,
}

impl TaCloudChannel {
    /// Creates the (not yet connected) channel.
    pub(crate) fn new(cloud_host: impl Into<String>, psk: [u8; PSK_LEN]) -> Self {
        TaCloudChannel {
            cloud_host: cloud_host.into(),
            psk,
            channel: None,
        }
    }

    fn ensure(&mut self, env: &TaEnv<'_>) -> TeeResult<()> {
        if self.channel.is_some() {
            return Ok(());
        }
        let socket = env.net_connect(&self.cloud_host, 443)?;
        let mut client = SecureChannelClient::new(self.psk, socket);
        env.net_send(socket, &client.client_hello())?;
        let server_hello = env.net_recv(socket, 4096)?;
        client
            .process_server_hello(&server_hello)
            .map_err(|e| TeeError::Communication {
                reason: e.to_string(),
            })?;
        self.channel = Some((socket, client));
        Ok(())
    }

    /// Seals one event, ships it through the supplicant and decodes the
    /// cloud's directive — exactly one send/recv supplicant round trip,
    /// whether the event is a single utterance or a whole batch.
    pub(crate) fn send_event(&mut self, env: &TaEnv<'_>, event: &AvsEvent) -> TeeResult<()> {
        self.ensure(env)?;
        let (socket, channel) = self.channel.as_mut().expect("channel just ensured");
        let encoded = event.encode();
        env.charge_compute(seal_flops(encoded.len()));
        let record = channel
            .seal(&encoded)
            .map_err(|e| TeeError::Communication {
                reason: e.to_string(),
            })?;
        env.net_send(*socket, &record)?;
        let reply = env.net_recv(*socket, 4096)?;
        if !reply.is_empty() {
            let plaintext = channel.open(&reply).map_err(|e| TeeError::Communication {
                reason: e.to_string(),
            })?;
            let _directive =
                AvsDirective::decode(&plaintext).map_err(|e| TeeError::Communication {
                    reason: e.to_string(),
                })?;
        }
        Ok(())
    }

    /// Closes the supplicant socket, if a channel was ever established.
    pub(crate) fn close(&mut self, env: &TaEnv<'_>) {
        if let Some((socket, _)) = self.channel.take() {
            let _ = env.net_close(socket);
        }
    }
}

/// The shared tail of both TAs' `PROCESS_BATCH`: relays every permitted
/// event of the batch in **one** sealed record (one supplicant send/recv
/// round trip), then packs the reply contract `SecureFilterStage` decodes
/// — verdicts in slot 1, `(wire_ns, capture_cpu_ns)` in slot 2,
/// `(ml_ns, relay_ns)` in slot 3. Keeping this in one place means the
/// audio and vision TAs cannot drift apart on the wire contract.
pub(crate) fn relay_batch_and_pack(
    channel: &mut TaCloudChannel,
    env: &TaEnv<'_>,
    outbound: Vec<AvsEvent>,
    verdicts: &[(FilterDecision, u16)],
    capture: (u64, u64),
    ml_ns_total: u64,
    params: &mut TeeParams,
) -> TeeResult<()> {
    let relay_start = env.platform().clock().now();
    if !outbound.is_empty() {
        // The health plane's privacy tripwire: raw payload bytes crossing
        // the relay outward. A filtered fleet sends verdicts and text
        // only, so this counter staying zero *is* the privacy claim,
        // observable per epoch.
        let payload_bytes: u64 = outbound
            .iter()
            .map(|event| match event {
                AvsEvent::Recognize { audio, .. } => audio.len() as u64,
                _ => 0,
            })
            .sum();
        if payload_bytes > 0 {
            env.tracer().count("relay.payload_bytes", payload_bytes);
        }
        channel.send_event(env, &AvsEvent::Batch(outbound))?;
    }
    let relay_ns = env.platform().clock().elapsed_since(relay_start).as_nanos();

    params.set(1, TeeParam::MemRefOutput(encode_batch_verdicts(verdicts)));
    params.set(
        2,
        TeeParam::ValueOutput {
            a: capture.0,
            b: capture.1,
        },
    );
    params.set(
        3,
        TeeParam::ValueOutput {
            a: ml_ns_total,
            b: relay_ns,
        },
    );
    Ok(())
}
