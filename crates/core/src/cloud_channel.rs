//! The TA-side cloud channel, shared by the audio filter TA and the
//! vision TA.
//!
//! Both TAs relay permitted content to the cloud the same way: a PSK
//! handshake over a supplicant socket, then sealed records. Keeping that
//! logic in one place means the two TAs cannot drift apart.
//!
//! # Fault tolerance
//!
//! The network between the supplicant and the cloud may drop, duplicate,
//! reorder or corrupt records (see `perisec_relay::netsim::FaultSpec`), so
//! the channel runs a retry state machine over DTLS-style
//! explicit-sequence records:
//!
//! * every record carries a per-channel monotonic sequence number, sealed
//!   with `seal_at` so a retransmission is byte-identical;
//! * a record stays in a **bounded** in-TA unacked buffer until the cloud
//!   echoes its sequence back in a protected ack;
//! * silence is a timeout: the TA waits out a capped exponential backoff
//!   with deterministic jitter on the virtual [`SimClock`], then
//!   retransmits — all on simulated time, so retry schedules are identical
//!   at every worker count;
//! * an opportunistic flush that cannot drain within its round budget
//!   *defers* — the device keeps classifying, the deferral is journaled
//!   (`relay.deferred`), and the adaptive batcher is driven to `Critical`
//!   pressure — instead of panicking; `close` runs a blocking flush so an
//!   orderly shutdown never strands a verdict;
//! * persistent ack failure triggers a recovery handshake (the cloud
//!   reprocesses ClientHello idempotently), healing a corrupted-handshake
//!   key mismatch.

use std::collections::VecDeque;

use perisec_optee::{TaEnv, TeeError, TeeParam, TeeParams, TeeResult};
use perisec_relay::attest::{
    encode_attest_request, encode_ingest_record, IngestReply, ATTEST_SEQ_BASE, MEASUREMENT_LEN,
};
use perisec_relay::avs::AvsEvent;
use perisec_relay::tls::{seal_flops, SecureChannelClient, PSK_LEN};
use perisec_tz::time::SimDuration;

use crate::filter_ta::encode_batch_verdicts;
use crate::policy::FilterDecision;

/// Knobs of the relay retry state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelayRetryConfig {
    /// Base ack timeout — the wait before the first retransmission.
    pub ack_timeout: SimDuration,
    /// Cap of the exponential backoff between retransmission rounds.
    pub max_backoff: SimDuration,
    /// Transmission rounds an opportunistic flush may spend before it
    /// defers the leftovers to the next batch.
    pub flush_rounds: u32,
    /// Bound on the in-TA unacked buffer; a send into a full buffer
    /// first drains it with a blocking flush.
    pub unacked_capacity: usize,
    /// Transmission rounds a *blocking* flush (buffer full, or `close`)
    /// may spend before erroring loudly — the give-up point on a dead
    /// network.
    pub hard_rounds: u32,
    /// After this many consecutive fruitless rounds, replay the
    /// handshake to heal a corrupted-hello key mismatch.
    pub rekey_after: u32,
}

impl Default for RelayRetryConfig {
    fn default() -> Self {
        RelayRetryConfig {
            ack_timeout: SimDuration::from_millis(2),
            max_backoff: SimDuration::from_millis(64),
            flush_rounds: 4,
            unacked_capacity: 8,
            hard_rounds: 512,
            rekey_after: 8,
        }
    }
}

/// Deterministic retry jitter: a splitmix64-style hash of the retry
/// coordinates, so no two records (or rounds) back off in lockstep yet
/// every run reproduces the same schedule.
fn jitter_hash(socket: u64, seq: u64, attempt: u64) -> u64 {
    let mut z = socket
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seq.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(attempt);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The backoff interval before retransmission `attempt` of `seq` on
/// `socket`: `min(ack_timeout · 2^attempt, max_backoff)` plus
/// deterministic jitter of up to a quarter of the interval. Shared with
/// the baseline relay stage so both paths back off identically.
pub(crate) fn backoff_interval(
    retry: &RelayRetryConfig,
    socket: u64,
    seq: u64,
    attempt: u32,
) -> SimDuration {
    let exp = attempt.min(16);
    let backoff = (retry.ack_timeout * (1u64 << exp)).min(retry.max_backoff);
    let jitter = SimDuration::from_nanos(
        jitter_hash(socket, seq, u64::from(attempt)) % (backoff.as_nanos() / 4 + 1),
    );
    backoff + jitter
}

struct UnackedRecord {
    seq: u64,
    plaintext: Vec<u8>,
    attempts: u32,
}

/// Device-side state of the attested-ingest handshake (present only
/// when the channel targets the sharded ingest plane).
struct IngestSession {
    /// The TA's measurement, proven on every attestation.
    measurement: [u8; MEASUREMENT_LEN],
    /// The monotonic attestation counter: bumped once per *new*
    /// attestation attempt, never reused — the plane's replay fence.
    counter: u64,
    /// The epoch the plane granted; every data record is sealed under
    /// it, so a restarted shard can tell fresh records from stale ones.
    epoch: u64,
    /// Whether the current epoch grant is still believed live. Cleared
    /// when the plane answers `NeedAttest`/`StaleEpoch` (a shard
    /// restart), which makes the next flush round re-attest first.
    attested: bool,
}

/// A lazily-established secure channel from a TA to the cloud host.
pub(crate) struct TaCloudChannel {
    cloud_host: String,
    psk: [u8; PSK_LEN],
    retry: RelayRetryConfig,
    channel: Option<(u64, SecureChannelClient)>,
    next_seq: u64,
    unacked: VecDeque<UnackedRecord>,
    retries: u64,
    reported_retries: u64,
    ingest: Option<IngestSession>,
}

impl TaCloudChannel {
    /// Creates the (not yet connected) channel with default retry knobs.
    pub(crate) fn new(cloud_host: impl Into<String>, psk: [u8; PSK_LEN]) -> Self {
        TaCloudChannel {
            cloud_host: cloud_host.into(),
            psk,
            retry: RelayRetryConfig::default(),
            channel: None,
            next_seq: 0,
            unacked: VecDeque::new(),
            retries: 0,
            reported_retries: 0,
            ingest: None,
        }
    }

    /// Overrides the retry knobs (builder style, used by the TAs'
    /// `with_retry` constructors).
    pub(crate) fn set_retry(&mut self, retry: RelayRetryConfig) {
        self.retry = retry;
    }

    /// Switches the channel into attested-ingest mode (builder style,
    /// used by the TAs' `with_ingest` constructors): before data flows,
    /// the channel attests `measurement` to the plane, and every record
    /// is sealed under the granted session epoch.
    pub(crate) fn set_ingest(&mut self, measurement: [u8; MEASUREMENT_LEN]) {
        self.ingest = Some(IngestSession {
            measurement,
            counter: 0,
            epoch: 0,
            attested: false,
        });
    }

    /// The retransmissions accrued since the last call — what
    /// `relay_batch_and_pack` reports back to the stage.
    fn take_retries_delta(&mut self) -> u64 {
        let retries = self.retries - self.reported_retries;
        self.reported_retries = self.retries;
        retries
    }

    /// Records currently sitting unacknowledged in the bounded buffer —
    /// the live backlog `relay_batch_and_pack` reports back to the
    /// normal world, which drives the batcher to `Critical` and triggers
    /// the end-of-scenario drain when non-zero.
    pub(crate) fn unacked_len(&self) -> usize {
        self.unacked.len()
    }

    /// Waits out one backoff interval on the virtual clock.
    fn backoff_wait(
        env: &TaEnv<'_>,
        retry: &RelayRetryConfig,
        socket: u64,
        seq: u64,
        attempt: u32,
    ) {
        env.platform()
            .clock()
            .advance(backoff_interval(retry, socket, seq, attempt));
    }

    /// Establishes the channel (and, in ingest mode, a live attestation
    /// grant), retrying both under the same virtual-time backoff.
    fn ensure(&mut self, env: &TaEnv<'_>) -> TeeResult<()> {
        self.ensure_channel(env)?;
        self.ensure_attested(env)
    }

    /// Establishes the channel, retrying the handshake itself under the
    /// same virtual-time backoff — hellos cross the faulty network too.
    fn ensure_channel(&mut self, env: &TaEnv<'_>) -> TeeResult<()> {
        if let Some((_, client)) = &self.channel {
            if client.is_established() {
                return Ok(());
            }
        }
        if self.channel.is_none() {
            let socket = env.net_connect(&self.cloud_host, 443)?;
            self.channel = Some((socket, SecureChannelClient::new(self.psk, socket)));
        }
        let (socket, client) = self.channel.as_mut().expect("just connected");
        let socket = *socket;
        for round in 0..self.retry.hard_rounds {
            env.net_send(socket, &client.client_hello())?;
            let reply = env.net_recv(socket, 4096)?;
            if !reply.is_empty() && client.process_server_hello(&reply).is_ok() {
                return Ok(());
            }
            self.retries += 1;
            env.tracer().count("relay.retries", 1);
            let _span = env.tracer().span("relay.retry");
            Self::backoff_wait(env, &self.retry, socket, 0, round);
        }
        Err(TeeError::Communication {
            reason: format!(
                "relay handshake to {} exhausted {} retry rounds",
                self.cloud_host, self.retry.hard_rounds
            ),
        })
    }

    /// In ingest mode, runs the attestation handshake until the plane
    /// grants an epoch — a new attempt bumps the monotonic counter once,
    /// then retries the *same* counter under backoff so a lost grant is
    /// re-issued idempotently. A no-op on a direct channel or while the
    /// current grant is live.
    fn ensure_attested(&mut self, env: &TaEnv<'_>) -> TeeResult<()> {
        let Some(ingest) = self.ingest.as_mut() else {
            return Ok(());
        };
        if ingest.attested {
            return Ok(());
        }
        ingest.counter += 1;
        for round in 0..self.retry.hard_rounds {
            let (socket, client) = self.channel.as_mut().expect("channel ensured");
            let socket = *socket;
            let seq = ATTEST_SEQ_BASE + ingest.counter;
            let request = encode_attest_request(&ingest.measurement, ingest.counter);
            let wire = client
                .seal_at(seq, &request)
                .map_err(|e| TeeError::Communication {
                    reason: e.to_string(),
                })?;
            env.charge_compute(seal_flops(request.len()));
            env.net_send(socket, &wire)?;
            let reply = env.net_recv(socket, 4096)?;
            if !reply.is_empty() {
                if let Ok((reply_seq, plaintext)) = client.open_explicit(&reply) {
                    if reply_seq == seq {
                        match IngestReply::decode(&plaintext) {
                            Some(IngestReply::AttestGrant { epoch }) => {
                                ingest.epoch = epoch;
                                ingest.attested = true;
                                env.tracer().count("ingest.attest", 1);
                                return Ok(());
                            }
                            Some(IngestReply::AttestReject) => {
                                // The plane holds a higher counter than
                                // we believe (a lost grant from a past
                                // life): move strictly past it.
                                env.tracer().count("ingest.attest_reject", 1);
                                ingest.counter += 1;
                            }
                            _ => {}
                        }
                    }
                }
            }
            self.retries += 1;
            env.tracer().count("relay.retries", 1);
            let _span = env.tracer().span("relay.retry");
            Self::backoff_wait(env, &self.retry, socket, seq, round);
        }
        Err(TeeError::Communication {
            reason: format!(
                "ingest attestation exhausted {} retry rounds",
                self.retry.hard_rounds
            ),
        })
    }

    /// One transmission round: every unacked record is (re)sent oldest
    /// first, and each reply that authenticates as an explicit ack
    /// retires the sequence it names.
    fn transmit_round(&mut self, env: &TaEnv<'_>) -> TeeResult<()> {
        let sequences: Vec<u64> = self.unacked.iter().map(|record| record.seq).collect();
        for seq in sequences {
            // An earlier ack in this round may already have retired it.
            let Some(pos) = self.unacked.iter().position(|record| record.seq == seq) else {
                continue;
            };
            let (socket, client) = self.channel.as_mut().expect("channel ensured");
            let record = &mut self.unacked[pos];
            // In ingest mode the wire plaintext carries the granted
            // epoch; the buffer keeps the raw event, so a record resent
            // after a re-attestation is automatically re-sealed under
            // the new epoch.
            let plaintext = match self.ingest.as_ref() {
                Some(ingest) => encode_ingest_record(ingest.epoch, &record.plaintext),
                None => record.plaintext.clone(),
            };
            let wire =
                client
                    .seal_at(record.seq, &plaintext)
                    .map_err(|e| TeeError::Communication {
                        reason: e.to_string(),
                    })?;
            env.charge_compute(seal_flops(plaintext.len()));
            if record.attempts > 0 {
                self.retries += 1;
                env.tracer().count("relay.retries", 1);
            }
            record.attempts += 1;
            let socket = *socket;
            env.net_send(socket, &wire)?;
            let reply = env.net_recv(socket, 65536)?;
            if reply.is_empty() {
                continue;
            }
            let (_, client) = self.channel.as_ref().expect("channel ensured");
            if let Ok((acked, directive)) = client.open_explicit(&reply) {
                match self.ingest.as_mut() {
                    None => {
                        self.unacked.retain(|record| record.seq != acked);
                    }
                    Some(ingest) => match IngestReply::decode(&directive) {
                        Some(IngestReply::Ack(_)) => {
                            self.unacked.retain(|record| record.seq != acked);
                        }
                        Some(IngestReply::NeedAttest) | Some(IngestReply::StaleEpoch { .. }) => {
                            // A shard restart superseded our grant: the
                            // record stays buffered, and the next flush
                            // round re-attests before retransmitting.
                            ingest.attested = false;
                            env.tracer().count("ingest.stale_epoch", 1);
                        }
                        Some(IngestReply::Backpressure { .. }) => {
                            // Typed queue saturation: keep the record,
                            // let the backoff pace us, and surface the
                            // rejection to the health plane.
                            env.tracer().count("ingest.backpressure", 1);
                        }
                        _ => {}
                    },
                }
            }
        }
        Ok(())
    }

    /// Drains the unacked buffer. Opportunistic (`blocking == false`)
    /// flushes spend at most `flush_rounds` rounds and then defer the
    /// leftovers; blocking flushes spend up to `hard_rounds` and then
    /// fail loudly.
    fn flush(&mut self, env: &TaEnv<'_>, blocking: bool) -> TeeResult<()> {
        if self.unacked.is_empty() {
            return Ok(());
        }
        self.ensure(env)?;
        let rounds = if blocking {
            self.retry.hard_rounds
        } else {
            self.retry.flush_rounds
        };
        let mut fruitless = 0u32;
        for round in 0..rounds {
            let before = self.unacked.len();
            if round == 0 {
                self.transmit_round(env)?;
            } else {
                // A retry round: backoff, optional handshake recovery,
                // retransmit — all under the relay.retry span so the
                // telemetry plane sees exactly where virtual time went.
                let _span = env.tracer().span("relay.retry");
                let head = self.unacked.front().expect("checked non-empty");
                let (socket, _) = self.channel.as_ref().expect("channel ensured");
                let socket = *socket;
                Self::backoff_wait(env, &self.retry, socket, head.seq, head.attempts);
                if fruitless > 0
                    && self.retry.rekey_after > 0
                    && fruitless.is_multiple_of(self.retry.rekey_after)
                {
                    // Nothing has been acked for a while: suspect a
                    // corrupted handshake and replay it (the cloud
                    // re-derives the same keys idempotently).
                    let (socket, client) = self.channel.as_mut().expect("channel ensured");
                    let socket = *socket;
                    env.net_send(socket, &client.client_hello())?;
                    let reply = env.net_recv(socket, 4096)?;
                    if !reply.is_empty() {
                        let _ = client.process_server_hello(&reply);
                    }
                }
                // A restarted shard invalidated our epoch grant mid-
                // round: re-attest (bumping the monotonic counter)
                // before retransmitting, so the resent records go out
                // under the fresh epoch.
                self.ensure_attested(env)?;
                self.transmit_round(env)?;
            }
            if self.unacked.is_empty() {
                return Ok(());
            }
            fruitless = if self.unacked.len() == before {
                fruitless + 1
            } else {
                0
            };
        }
        if blocking {
            Err(TeeError::Communication {
                reason: format!(
                    "relay flush exhausted {} rounds with {} unacked records",
                    rounds,
                    self.unacked.len()
                ),
            })
        } else {
            env.tracer()
                .count("relay.deferred", self.unacked.len() as u64);
            Ok(())
        }
    }

    /// Queues one event at the next sequence and flushes
    /// opportunistically. A full unacked buffer degrades gracefully: the
    /// send first drains it with a blocking flush (paying virtual time,
    /// which the health plane and batcher observe) rather than dropping
    /// a verdict or growing without bound.
    pub(crate) fn send_event(&mut self, env: &TaEnv<'_>, event: &AvsEvent) -> TeeResult<()> {
        self.ensure(env)?;
        if self.unacked.len() >= self.retry.unacked_capacity.max(1) {
            self.flush(env, true)?;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked.push_back(UnackedRecord {
            seq,
            plaintext: event.encode(),
            attempts: 0,
        });
        self.flush(env, false)
    }

    /// Blocking drain of the unacked buffer — the end-of-scenario flush.
    /// Records an *opportunistic* flush deferred are retired here before
    /// a device's report is assembled; a finished run must not strand a
    /// verdict in the bounded buffer.
    ///
    /// # Errors
    ///
    /// Returns the blocking flush's error if the network stayed dead for
    /// `hard_rounds` rounds.
    pub(crate) fn drain(&mut self, env: &TaEnv<'_>) -> TeeResult<()> {
        self.flush(env, true)
    }

    /// Closes the supplicant socket after a blocking flush — an orderly
    /// shutdown never strands an unacked verdict.
    ///
    /// # Errors
    ///
    /// Returns the blocking flush's error if the network stayed dead for
    /// `hard_rounds` rounds.
    pub(crate) fn close(&mut self, env: &TaEnv<'_>) -> TeeResult<()> {
        let result = self.flush(env, true);
        if let Some((socket, _)) = self.channel.take() {
            let _ = env.net_close(socket);
        }
        result
    }
}

/// The shared tail of both TAs' `PROCESS_BATCH`: relays every permitted
/// event of the batch in **one** sealed record (one supplicant send/recv
/// round trip on the happy path), then packs the reply contract
/// `SecureFilterStage` decodes — `(retransmissions delta, unacked
/// backlog)` in slot 0, verdicts in slot 1, `(wire_ns, capture_cpu_ns)` in
/// slot 2, `(ml_ns, relay_ns)` in slot 3. Keeping this in one place means
/// the audio and vision TAs cannot drift apart on the wire contract.
pub(crate) fn relay_batch_and_pack(
    channel: &mut TaCloudChannel,
    env: &TaEnv<'_>,
    outbound: Vec<AvsEvent>,
    verdicts: &[(FilterDecision, u16)],
    capture: (u64, u64),
    ml_ns_total: u64,
    params: &mut TeeParams,
) -> TeeResult<()> {
    let relay_start = env.platform().clock().now();
    if !outbound.is_empty() {
        // The health plane's privacy tripwire: raw payload bytes crossing
        // the relay outward. A filtered fleet sends verdicts and text
        // only, so this counter staying zero *is* the privacy claim,
        // observable per epoch.
        let payload_bytes: u64 = outbound
            .iter()
            .map(|event| match event {
                AvsEvent::Recognize { audio, .. } => audio.len() as u64,
                _ => 0,
            })
            .sum();
        if payload_bytes > 0 {
            env.tracer().count("relay.payload_bytes", payload_bytes);
        }
        channel.send_event(env, &AvsEvent::Batch(outbound))?;
    }
    let relay_ns = env.platform().clock().elapsed_since(relay_start).as_nanos();

    let retries = channel.take_retries_delta();
    params.set(
        0,
        TeeParam::ValueOutput {
            a: retries,
            b: channel.unacked_len() as u64,
        },
    );
    params.set(1, TeeParam::MemRefOutput(encode_batch_verdicts(verdicts)));
    params.set(
        2,
        TeeParam::ValueOutput {
            a: capture.0,
            b: capture.1,
        },
    );
    params.set(
        3,
        TeeParam::ValueOutput {
            a: ml_ns_total,
            b: relay_ns,
        },
    );
    Ok(())
}
