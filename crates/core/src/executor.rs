//! The bounded work-stealing fleet executor.
//!
//! The fleet harnesses used to spawn **one OS thread per simulated
//! device**, so a fleet's host cost grew with its device count twice
//! over: once in scheduler pressure (thousands of runnable threads) and
//! once in memory (every device's full pipeline stack resident at the
//! same time). This module replaces that model with a fixed pool of
//! worker threads executing resumable [`DeviceTask`] state machines:
//!
//! * a device run is decomposed into *steps* over the staged pipeline
//!   architecture — each step is one batch through
//!   capture → filter → relay, i.e. one TEE crossing, the natural yield
//!   point named by the ROADMAP;
//! * each worker owns a run queue of pending devices and **builds at most
//!   one device stack at a time**, so a 10k-device fleet holds `workers`
//!   pipelines in memory instead of 10k — fleet scale is a function of
//!   work, not thread count;
//! * an idle worker **steals** pending devices from the back of a
//!   sibling's queue, victims probed in a deterministic seeded order, and
//!   every steal is recorded in the [`ExecutorStats`] seam.
//!
//! **Determinism contract.** Every device builds its own hermetic stack
//! (platform, virtual clock, TEE core, cloud) and no report field depends
//! on host time, so a given fleet seed reproduces a byte-identical
//! [`FleetReport`] for *any* worker count and *any* steal interleaving —
//! the executor analogue of the PR-3 scheduler-determinism contract,
//! pinned by `tests/executor_determinism.rs`. Steal decisions and peak
//! residency are host-side telemetry and live in [`ExecutorStats`], which
//! is deliberately **not** part of the fleet report.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use parking_lot::Mutex;

use crate::fleet::DeviceReport;
use crate::{CoreError, Result};

/// One step of a device task. The completed report is boxed: yields
/// outnumber completions by the batch count, and a yield should cost a
/// discriminant, not a report-sized move.
#[derive(Debug)]
pub enum StepOutcome {
    /// The task did one unit of work (one TEE crossing) and has more.
    Yielded,
    /// The task finished and produced its device report.
    Complete(Box<DeviceReport>),
}

/// A resumable device run: the capture → filter → relay state machine the
/// executor schedules. Implementations wrap a built pipeline plus a
/// scenario cursor; each [`DeviceTask::step`] drives one batch through
/// the stages.
pub trait DeviceTask {
    /// Performs one step.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures; the executor records the error as
    /// the device's outcome.
    fn step(&mut self) -> Result<StepOutcome>;
}

/// Builds a device task on first schedule. Deferred so that a fleet of
/// thousands of devices materializes only `workers` pipeline stacks at a
/// time — the bounded-memory half of the executor's contract.
type TaskBuilder = Box<dyn FnOnce() -> Result<Box<dyn DeviceTask>> + Send>;

/// A device waiting in a run queue: its index plus the deferred builder
/// of its pipeline stack.
pub struct QueuedDevice {
    device: usize,
    build: TaskBuilder,
}

impl QueuedDevice {
    /// Queues device `device` behind a deferred task builder.
    pub fn new(
        device: usize,
        build: impl FnOnce() -> Result<Box<dyn DeviceTask>> + Send + 'static,
    ) -> Self {
        QueuedDevice {
            device,
            build: Box::new(build),
        }
    }

    /// The device index the task reports as.
    pub fn device(&self) -> usize {
        self.device
    }
}

impl std::fmt::Debug for QueuedDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuedDevice")
            .field("device", &self.device)
            .finish()
    }
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Worker threads. `0` means auto: one per host core, capped by the
    /// task count.
    pub workers: usize,
    /// Seed of the deterministic victim-probe order used when stealing.
    pub steal_seed: u64,
    /// Task steps (TEE crossings) a worker runs before re-checking its
    /// bookkeeping — the slice length of the cooperative schedule.
    pub slice_steps: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            workers: 0,
            steal_seed: 0x57EA_15EED,
            slice_steps: 4,
        }
    }
}

impl ExecutorConfig {
    /// A config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        ExecutorConfig {
            workers,
            ..ExecutorConfig::default()
        }
    }

    fn effective_workers(&self, tasks: usize) -> usize {
        let auto = if self.workers == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.workers
        };
        auto.min(tasks).max(1)
    }
}

/// One recorded steal: `thief` took `tasks` pending devices from
/// `victim`'s queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealRecord {
    /// Worker that ran out of local work.
    pub thief: usize,
    /// Worker whose queue was raided.
    pub victim: usize,
    /// Pending devices moved.
    pub tasks: usize,
}

/// Host-side telemetry of one executor run. Timing-dependent (steal
/// interleavings vary run to run), which is exactly why it is kept out of
/// the deterministic [`FleetReport`].
#[derive(Debug, Clone, Default)]
pub struct ExecutorStats {
    /// Worker threads used.
    pub workers: usize,
    /// Devices completed.
    pub completed: usize,
    /// Every steal, grouped by thief worker (each worker logs its own
    /// steals; the groups concatenate at join time).
    pub steals: Vec<StealRecord>,
    /// Peak number of simultaneously-built device stacks — bounded by
    /// `workers`, the executor's memory contract (one per worker).
    pub peak_resident: usize,
    /// Host wall-clock of the run, in milliseconds.
    pub host_millis: f64,
    /// Step slices executed across all workers (each drives one device
    /// for up to `slice_steps` TEE crossings).
    pub step_slices: u64,
    /// Times a worker found nothing runnable and parked (all remaining
    /// devices were mid-run elsewhere).
    pub idle_parks: u64,
}

impl ExecutorStats {
    /// Total pending devices moved by steals.
    pub fn tasks_stolen(&self) -> usize {
        self.steals.iter().map(|s| s.tasks).sum()
    }
}

/// Shared state of one executor run. Only the run queues sit behind
/// locks — completions and steal records accumulate in per-worker
/// buffers and merge after the pool joins, so the hot path never
/// contends on a global mutex.
struct ExecutorShared {
    queues: Vec<Mutex<VecDeque<QueuedDevice>>>,
    /// Devices not yet finished (pending, building, or mid-run).
    remaining: AtomicUsize,
    /// Currently-built device stacks, and the high-water mark.
    resident: AtomicUsize,
    peak_resident: AtomicUsize,
}

impl ExecutorShared {
    fn enter_resident(&self) {
        let now = self.resident.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_resident.fetch_max(now, Ordering::Relaxed);
    }

    fn leave_resident(&self) {
        self.resident.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What one worker accumulated over the run.
#[derive(Default)]
struct WorkerOutcome {
    completions: Vec<(usize, Result<DeviceReport>)>,
    steals: Vec<StealRecord>,
    step_slices: u64,
    idle_parks: u64,
}

impl WorkerOutcome {
    fn record(&mut self, shared: &ExecutorShared, device: usize, outcome: Result<DeviceReport>) {
        self.completions.push((device, outcome));
        shared.remaining.fetch_sub(1, Ordering::Release);
    }
}

/// The bounded work-stealing executor.
#[derive(Debug, Clone, Default)]
pub struct FleetExecutor {
    config: ExecutorConfig,
}

impl FleetExecutor {
    /// Creates an executor.
    pub fn new(config: ExecutorConfig) -> Self {
        FleetExecutor { config }
    }

    /// Runs every queued device to completion on the worker pool and
    /// returns the device reports **in device order** (scheduling can
    /// never reorder a fleet report) plus the run's telemetry.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed device's failure after every device has
    /// been driven — the same first-failure contract as the historical
    /// thread-per-device harness. A panicking device task is translated
    /// into a [`CoreError::Config`] carrying the panic message.
    pub fn run(&self, tasks: Vec<QueuedDevice>) -> Result<(Vec<DeviceReport>, ExecutorStats)> {
        let total = tasks.len();
        if total == 0 {
            return Ok((Vec::new(), ExecutorStats::default()));
        }
        let workers = self.config.effective_workers(total);
        let slice = self.config.slice_steps.max(1);
        let started = std::time::Instant::now();

        // Highest device index bounds the results table; device indices
        // need not be dense, but must be unique.
        let queues: Vec<Mutex<VecDeque<QueuedDevice>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        // Deal pending devices round-robin, in device order: worker w
        // starts with devices w, w+workers, ...
        for (i, task) in tasks.into_iter().enumerate() {
            queues[i % workers].lock().push_back(task);
        }
        let shared = ExecutorShared {
            queues,
            remaining: AtomicUsize::new(total),
            resident: AtomicUsize::new(0),
            peak_resident: AtomicUsize::new(0),
        };

        let outcomes: Vec<WorkerOutcome> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let shared = &shared;
                    let seed = self.config.steal_seed;
                    scope.spawn(move || worker_loop(shared, worker, workers, seed, slice))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("executor workers do not panic"))
                .collect()
        });

        let mut steals = Vec::new();
        let mut completions: Vec<(usize, Result<DeviceReport>)> = Vec::with_capacity(total);
        let mut step_slices = 0u64;
        let mut idle_parks = 0u64;
        for outcome in outcomes {
            steals.extend(outcome.steals);
            completions.extend(outcome.completions);
            step_slices += outcome.step_slices;
            idle_parks += outcome.idle_parks;
        }
        let stats = ExecutorStats {
            workers,
            completed: completions.len(),
            steals,
            peak_resident: shared.peak_resident.load(Ordering::Relaxed),
            host_millis: started.elapsed().as_secs_f64() * 1000.0,
            step_slices,
            idle_parks,
        };
        // Device order, regardless of which worker finished what when.
        completions.sort_by_key(|(device, _)| *device);
        let mut reports = Vec::with_capacity(total);
        for (_, outcome) in completions {
            reports.push(outcome?);
        }
        debug_assert_eq!(reports.len(), total, "every device reported once");
        Ok((reports, stats))
    }
}

/// One worker: drain the local queue, steal when idle, run each acquired
/// device to completion in `slice`-step slices. At most one device stack
/// is resident per worker at any time.
fn worker_loop(
    shared: &ExecutorShared,
    worker: usize,
    workers: usize,
    seed: u64,
    slice: usize,
) -> WorkerOutcome {
    let mut rng = seed ^ (worker as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut outcome = WorkerOutcome::default();
    let mut current: Option<(usize, Box<dyn DeviceTask>)> = None;
    loop {
        if current.is_none() {
            let pending = pop_local(shared, worker)
                .or_else(|| steal(shared, worker, workers, &mut rng, &mut outcome.steals))
                .or_else(|| pop_any(shared));
            match pending {
                Some(task) => {
                    let device = task.device;
                    shared.enter_resident();
                    match build_task(task) {
                        Ok(built) => current = Some((device, built)),
                        Err(error) => {
                            shared.leave_resident();
                            outcome.record(shared, device, Err(error));
                        }
                    }
                }
                None => {
                    if shared.remaining.load(Ordering::Acquire) == 0 {
                        return outcome;
                    }
                    // Devices are still mid-run on other workers; nothing
                    // to steal (only pending devices are stealable).
                    // Sleep rather than yield: a yield spin starves the
                    // workers that still hold tasks on oversubscribed
                    // hosts and burns system time in sched_yield.
                    outcome.idle_parks += 1;
                    thread::sleep(std::time::Duration::from_micros(200));
                    continue;
                }
            }
        }
        if let Some((device, mut task)) = current.take() {
            outcome.step_slices += 1;
            match step_slice(device, &mut task, slice) {
                Ok(None) => current = Some((device, task)),
                Ok(Some(report)) => {
                    drop(task);
                    shared.leave_resident();
                    outcome.record(shared, device, Ok(report));
                }
                Err(error) => {
                    drop(task);
                    shared.leave_resident();
                    outcome.record(shared, device, Err(error));
                }
            }
        }
    }
}

fn pop_local(shared: &ExecutorShared, worker: usize) -> Option<QueuedDevice> {
    shared.queues[worker].lock().pop_front()
}

/// Probes the other workers' queues in a seeded pseudo-random order and
/// steals the back half of the first non-empty one.
fn steal(
    shared: &ExecutorShared,
    worker: usize,
    workers: usize,
    rng: &mut u64,
    log: &mut Vec<StealRecord>,
) -> Option<QueuedDevice> {
    if workers <= 1 {
        return None;
    }
    // Deterministic victim order: a fixed xorshift walk over the sibling
    // indices, seeded per worker. (Which probe *succeeds* still depends
    // on queue timing; the seam makes the probe sequence, and therefore
    // any replayed steal log, reproducible.)
    for _ in 0..workers * 2 {
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        let victim = (*rng % workers as u64) as usize;
        if victim == worker {
            continue;
        }
        let mut queue = shared.queues[victim].lock();
        let available = queue.len();
        if available == 0 {
            continue;
        }
        // Take the back half (at least one): the classic stealing split —
        // the victim keeps the work it is about to reach.
        let take = available.div_ceil(2);
        let stolen: Vec<QueuedDevice> = (0..take).filter_map(|_| queue.pop_back()).collect();
        drop(queue);
        log.push(StealRecord {
            thief: worker,
            victim,
            tasks: stolen.len(),
        });
        let mut local = shared.queues[worker].lock();
        // Stolen tasks came off the back in reverse; restore device order
        // locally so lower-indexed devices still run first.
        for task in stolen.into_iter().rev() {
            local.push_back(task);
        }
        return local.pop_front();
    }
    None
}

/// Fallback sweep over every queue in index order, for the tail of a run
/// where the seeded probe may keep missing the one non-empty queue.
fn pop_any(shared: &ExecutorShared) -> Option<QueuedDevice> {
    for queue in &shared.queues {
        if let Some(task) = queue.lock().pop_front() {
            return Some(task);
        }
    }
    None
}

/// Builds a pending device's stack, translating panics.
fn build_task(task: QueuedDevice) -> Result<Box<dyn DeviceTask>> {
    let device = task.device;
    catch_unwind(AssertUnwindSafe(move || (task.build)()))
        .unwrap_or_else(|payload| Err(device_panic_error(device, &panic_message(payload))))
}

/// Steps a built task up to `slice` times, translating panics. Returns
/// the report when the task completes within the slice.
fn step_slice(
    device: usize,
    task: &mut Box<dyn DeviceTask>,
    slice: usize,
) -> Result<Option<DeviceReport>> {
    for _ in 0..slice {
        let outcome = catch_unwind(AssertUnwindSafe(|| task.step()))
            .unwrap_or_else(|payload| Err(device_panic_error(device, &panic_message(payload))))?;
        if let StepOutcome::Complete(report) = outcome {
            return Ok(Some(*report));
        }
    }
    Ok(None)
}

/// Extracts the human-readable message of a panic payload — the one
/// panic-translation helper shared by the executor's workers and the
/// thread-per-device baseline below (it used to be duplicated across the
/// two fleet harnesses).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic payload".to_owned())
}

fn device_panic_error(device: usize, message: &str) -> CoreError {
    CoreError::Config {
        reason: format!("device {device} pipeline thread panicked: {message}"),
    }
}

/// The historical harness, kept as the executor's baseline: one OS thread
/// per device, each building its stack and stepping its task to
/// completion. E15 measures the executor against exactly this.
///
/// # Errors
///
/// Same first-failure and panic-translation contract as
/// [`FleetExecutor::run`].
pub fn run_thread_per_device(tasks: Vec<QueuedDevice>) -> Result<Vec<DeviceReport>> {
    let total = tasks.len();
    let outcomes: Vec<Result<DeviceReport>> = thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .map(|task| {
                let device = task.device;
                (
                    device,
                    scope.spawn(move || -> Result<DeviceReport> {
                        let mut built = (task.build)()?;
                        loop {
                            if let StepOutcome::Complete(report) = built.step()? {
                                return Ok(*report);
                            }
                        }
                    }),
                )
            })
            .collect();
        handles
            .into_iter()
            .map(|(device, handle)| {
                handle.join().unwrap_or_else(|payload| {
                    Err(device_panic_error(device, &panic_message(payload)))
                })
            })
            .collect()
    });
    let mut reports = Vec::with_capacity(total);
    for outcome in outcomes {
        reports.push(outcome?);
    }
    reports.sort_by_key(|report| report.device);
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Modality;
    use crate::report::{CloudOutcome, LatencyBreakdown, PipelineReport, WorkloadSummary};

    fn marker_report(device: usize) -> DeviceReport {
        DeviceReport {
            device,
            modality: Modality::Audio,
            scenario: format!("synthetic-{device}"),
            report: PipelineReport {
                pipeline: "synthetic".to_owned(),
                workload: WorkloadSummary::default(),
                latency: LatencyBreakdown::default(),
                cloud: CloudOutcome::default(),
                tz: Default::default(),
                energy: perisec_tz::power::EnergyReport {
                    window: perisec_tz::time::SimDuration::ZERO,
                    total_mj: 0.0,
                    per_component: Default::default(),
                },
                virtual_time: perisec_tz::time::SimDuration::ZERO,
                bytes_to_cloud: 0,
            },
        }
    }

    /// A synthetic task: yields `yields` times, then completes.
    struct CountdownTask {
        device: usize,
        yields: usize,
    }

    impl DeviceTask for CountdownTask {
        fn step(&mut self) -> Result<StepOutcome> {
            if self.yields == 0 {
                Ok(StepOutcome::Complete(Box::new(marker_report(self.device))))
            } else {
                self.yields -= 1;
                Ok(StepOutcome::Yielded)
            }
        }
    }

    fn countdown_fleet(devices: usize) -> Vec<QueuedDevice> {
        (0..devices)
            .map(|device| {
                QueuedDevice::new(device, move || {
                    Ok(Box::new(CountdownTask {
                        device,
                        yields: device % 5,
                    }) as Box<dyn DeviceTask>)
                })
            })
            .collect()
    }

    #[test]
    fn executor_runs_every_device_once_in_order() {
        for workers in [1usize, 2, 3, 8, 64] {
            let executor = FleetExecutor::new(ExecutorConfig::with_workers(workers));
            let (reports, stats) = executor.run(countdown_fleet(37)).unwrap();
            assert_eq!(reports.len(), 37);
            for (i, report) in reports.iter().enumerate() {
                assert_eq!(report.device, i, "{workers} workers reordered devices");
                assert_eq!(report.scenario, format!("synthetic-{i}"));
            }
            assert_eq!(stats.completed, 37);
            assert_eq!(stats.workers, workers.min(37));
            assert!(stats.peak_resident <= stats.workers, "residency unbounded");
        }
    }

    #[test]
    fn empty_fleet_is_a_no_op() {
        let (reports, stats) = FleetExecutor::default().run(Vec::new()).unwrap();
        assert!(reports.is_empty());
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn build_errors_surface_as_the_device_failure() {
        let mut tasks = countdown_fleet(4);
        tasks[2] = QueuedDevice::new(2, || {
            Err(CoreError::Config {
                reason: "synthetic build failure".to_owned(),
            })
        });
        let error = FleetExecutor::new(ExecutorConfig::with_workers(2))
            .run(tasks)
            .unwrap_err();
        assert!(error.to_string().contains("synthetic build failure"));
    }

    #[test]
    fn panicking_tasks_are_translated_not_propagated() {
        struct PanickingTask;
        impl DeviceTask for PanickingTask {
            fn step(&mut self) -> Result<StepOutcome> {
                panic!("synthetic step panic");
            }
        }
        let mut tasks = countdown_fleet(3);
        tasks[1] = QueuedDevice::new(1, || Ok(Box::new(PanickingTask) as Box<dyn DeviceTask>));
        let error = FleetExecutor::new(ExecutorConfig::with_workers(2))
            .run(tasks)
            .unwrap_err();
        assert!(
            error.to_string().contains("synthetic step panic"),
            "{error}"
        );
        // Step-time panics carry the device index, like the historical
        // thread-per-device message did.
        assert!(error.to_string().contains("device 1"), "{error}");
        // Build-time panics carry it too.
        let tasks = vec![QueuedDevice::new(0, || panic!("synthetic build panic"))];
        let error = FleetExecutor::default().run(tasks).unwrap_err();
        assert!(error.to_string().contains("device 0"), "{error}");
        let tasks = vec![QueuedDevice::new(0, || panic!("synthetic build panic"))];
        let error = run_thread_per_device(tasks).unwrap_err();
        assert!(error.to_string().contains("device 0"), "{error}");
    }

    #[test]
    fn thread_per_device_baseline_matches_the_executor() {
        let threaded = run_thread_per_device(countdown_fleet(12)).unwrap();
        let (pooled, _) = FleetExecutor::new(ExecutorConfig::with_workers(3))
            .run(countdown_fleet(12))
            .unwrap();
        assert_eq!(threaded.len(), pooled.len());
        for (a, b) in threaded.iter().zip(&pooled) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn starved_workers_steal_pending_devices() {
        // One worker hoards a long queue while the others start empty:
        // give worker 0 a slow head-of-line task so siblings must steal
        // to finish the backlog.
        struct SlowTask {
            device: usize,
            spins: usize,
        }
        impl DeviceTask for SlowTask {
            fn step(&mut self) -> Result<StepOutcome> {
                if self.spins == 0 {
                    return Ok(StepOutcome::Complete(Box::new(marker_report(self.device))));
                }
                self.spins -= 1;
                std::thread::sleep(std::time::Duration::from_micros(200));
                Ok(StepOutcome::Yielded)
            }
        }
        // 4 workers, 64 devices dealt round-robin; device 0 (worker 0's
        // head) is slow, so workers 1..3 drain their queues and then raid
        // worker 0's remaining pending devices.
        let tasks: Vec<QueuedDevice> = (0..64)
            .map(|device| {
                QueuedDevice::new(device, move || {
                    let spins = if device == 0 { 100 } else { 0 };
                    Ok(Box::new(SlowTask { device, spins }) as Box<dyn DeviceTask>)
                })
            })
            .collect();
        let (reports, stats) = FleetExecutor::new(ExecutorConfig::with_workers(4))
            .run(tasks)
            .unwrap();
        assert_eq!(reports.len(), 64);
        assert!(
            !stats.steals.is_empty(),
            "idle workers never stole from the backlogged sibling"
        );
        assert_eq!(
            stats.tasks_stolen(),
            stats.steals.iter().map(|s| s.tasks).sum::<usize>()
        );
        for steal in &stats.steals {
            assert_ne!(steal.thief, steal.victim);
            assert!(steal.tasks >= 1);
        }
    }
}
