//! The filter trusted application.
//!
//! This is the TA of the paper's Fig. 1 (steps 4–7): it receives the
//! encoded audio from the secure I2S driver through the PTA interface,
//! transcribes it with the in-TA speech-to-text model, classifies the
//! transcript with the sensitive-content classifier, applies the privacy
//! policy, and relays only permitted content to the cloud through the
//! TLS-like channel and the TEE supplicant.
//!
//! The raw audio and the transcript never leave the secure world: the
//! normal-world caller only learns the filter decision and timing figures.

use perisec_devices::codec::AudioEncoding;
use perisec_ml::classifier::SensitiveClassifier;
use perisec_ml::stt::KeywordStt;
use perisec_optee::{TaDescriptor, TaEnv, TeeError, TeeParam, TeeParams, TeeResult, TrustedApp, TaUuid};
use perisec_relay::avs::{AvsDirective, AvsEvent};
use perisec_relay::cloud::MockCloudService;
use perisec_relay::tls::{seal_flops, SecureChannelClient, PSK_LEN};
use perisec_tz::time::SimDuration;
use perisec_workload::vocab::Vocabulary;

use serde::{Deserialize, Serialize};

use crate::policy::{FilterDecision, PrivacyPolicy};

/// Registered name of the filter TA (its UUID derives from this).
pub const FILTER_TA_NAME: &str = "perisec.filter-ta";

/// Command identifiers of the filter TA.
pub mod cmd {
    /// Process one capture window: value param `a` = dialog id, `b` =
    /// number of periods to capture. Returns three value outputs:
    /// `(capture_wire_ns, capture_cpu_ns)`, `(ml_ns, relay_ns)` and
    /// `(decision_code, probability_milli)`.
    pub const PROCESS_WINDOW: u32 = 0;
    /// Replace the privacy policy: value param `a` = mode, `b` =
    /// threshold in thousandths.
    pub const SET_POLICY: u32 = 1;
    /// Query statistics: returns `(processed, forwarded)` and
    /// `(dropped, redacted)`.
    pub const GET_STATS: u32 = 2;
}

/// Cumulative statistics of the filter TA.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    /// Windows processed.
    pub processed: u64,
    /// Utterances forwarded unchanged.
    pub forwarded: u64,
    /// Utterances dropped.
    pub dropped: u64,
    /// Utterances forwarded redacted.
    pub redacted: u64,
}

/// The filter TA.
pub struct FilterTa {
    descriptor: TaDescriptor,
    i2s_pta: TaUuid,
    stt: KeywordStt,
    classifier: SensitiveClassifier,
    vocabulary: Vocabulary,
    policy: PrivacyPolicy,
    cloud_host: String,
    psk: [u8; PSK_LEN],
    channel: Option<(u64, SecureChannelClient)>,
    stats: FilterStats,
    encoding: AudioEncoding,
}

impl std::fmt::Debug for FilterTa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilterTa")
            .field("policy", &self.policy)
            .field("stats", &self.stats)
            .finish()
    }
}

impl FilterTa {
    /// Creates the TA.
    ///
    /// `data_kib` should be sized to the classifier so that registration
    /// reserves a realistic amount of secure memory.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        i2s_pta: TaUuid,
        stt: KeywordStt,
        classifier: SensitiveClassifier,
        vocabulary: Vocabulary,
        policy: PrivacyPolicy,
        cloud_host: impl Into<String>,
        psk: [u8; PSK_LEN],
        encoding: AudioEncoding,
    ) -> Self {
        let model_kib = (classifier.memory_bytes_f32() / 1024).max(1) as u32;
        FilterTa {
            descriptor: TaDescriptor::new(FILTER_TA_NAME, 64, 256 + model_kib),
            i2s_pta,
            stt,
            classifier,
            vocabulary,
            policy,
            cloud_host: cloud_host.into(),
            psk,
            channel: None,
            stats: FilterStats::default(),
            encoding,
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    fn ensure_channel(&mut self, env: &TaEnv<'_>) -> TeeResult<()> {
        if self.channel.is_some() {
            return Ok(());
        }
        let socket = env.net_connect(&self.cloud_host, 443)?;
        let mut client = SecureChannelClient::new(self.psk, socket);
        env.net_send(socket, &client.client_hello())?;
        let server_hello = env.net_recv(socket, 4096)?;
        client
            .process_server_hello(&server_hello)
            .map_err(|e| TeeError::Communication { reason: e.to_string() })?;
        self.channel = Some((socket, client));
        Ok(())
    }

    fn relay_text(&mut self, env: &TaEnv<'_>, dialog_id: u64, text: &str) -> TeeResult<()> {
        self.ensure_channel(env)?;
        let (socket, channel) = self.channel.as_mut().expect("channel just ensured");
        let event = AvsEvent::TextMessage {
            dialog_id,
            text: text.to_owned(),
        };
        let encoded = event.encode();
        env.charge_compute(seal_flops(encoded.len()));
        let record = channel
            .seal(&encoded)
            .map_err(|e| TeeError::Communication { reason: e.to_string() })?;
        env.net_send(*socket, &record)?;
        let reply = env.net_recv(*socket, 4096)?;
        if !reply.is_empty() {
            let plaintext = channel
                .open(&reply)
                .map_err(|e| TeeError::Communication { reason: e.to_string() })?;
            let _directive = AvsDirective::decode(&plaintext)
                .map_err(|e| TeeError::Communication { reason: e.to_string() })?;
        }
        Ok(())
    }

    fn process_window(
        &mut self,
        env: &mut TaEnv<'_>,
        dialog_id: u64,
        periods: u64,
        params: &mut TeeParams,
    ) -> TeeResult<()> {
        // 1. Pull one capture window from the secure driver through the PTA.
        let mut capture = TeeParams::new().with(0, TeeParam::ValueInput { a: periods, b: 0 });
        env.invoke_pta(self.i2s_pta, perisec_secure_driver::pta::cmd::CAPTURE, &mut capture)?;
        let encoded_audio = capture
            .get(1)
            .as_memref()
            .ok_or(TeeError::Communication {
                reason: "pta returned no audio".to_owned(),
            })?
            .to_vec();
        let (wire_ns, capture_cpu_ns) = capture.get(2).as_values().unwrap_or((0, 0));

        // 2. Decode and run the ML stage (STT + classifier), charging its
        //    compute to the secure world.
        let ml_start = env.platform().clock().now();
        let format = perisec_devices::audio::AudioFormat::speech_16khz_mono();
        let audio = self.encoding.decode(&encoded_audio, format);
        env.charge_compute(self.stt.flops_for(audio.samples().len()));
        let tokens = self.stt.transcribe_to_tokens(audio.samples());
        env.charge_compute(self.classifier.flops_per_inference(tokens.len().max(1)));
        let probability = if tokens.is_empty() {
            0.0
        } else {
            self.classifier
                .predict(&tokens)
                .map_err(|e| TeeError::Generic { reason: e.to_string() })?
        };
        let ml_ns = env.platform().clock().elapsed_since(ml_start).as_nanos();

        // 3. Apply the policy and relay what is permitted.
        let relay_start = env.platform().clock().now();
        let decision = self.policy.decide(probability);
        let words: Vec<String> = tokens
            .iter()
            .filter_map(|&t| self.vocabulary.word(t).map(|w| w.text.clone()))
            .collect();
        match decision {
            FilterDecision::Forward => {
                if !words.is_empty() {
                    self.relay_text(env, dialog_id, &words.join(" "))?;
                }
                self.stats.forwarded += 1;
            }
            FilterDecision::ForwardRedacted => {
                let redacted: Vec<String> = tokens
                    .iter()
                    .filter_map(|&t| self.vocabulary.word(t))
                    .map(|w| {
                        if w.category.is_sensitive() {
                            "[redacted]".to_owned()
                        } else {
                            w.text.clone()
                        }
                    })
                    .collect();
                if !redacted.is_empty() {
                    self.relay_text(env, dialog_id, &redacted.join(" "))?;
                }
                self.stats.redacted += 1;
            }
            FilterDecision::Drop => {
                self.stats.dropped += 1;
            }
        }
        let relay_ns = env.platform().clock().elapsed_since(relay_start).as_nanos();
        self.stats.processed += 1;

        // 4. Report timing and the decision back to the caller — but never
        //    the transcript or the audio.
        params.set(1, TeeParam::ValueOutput { a: wire_ns, b: capture_cpu_ns });
        params.set(2, TeeParam::ValueOutput { a: ml_ns, b: relay_ns });
        params.set(
            3,
            TeeParam::ValueOutput {
                a: decision.code(),
                b: (probability * 1000.0) as u64,
            },
        );
        Ok(())
    }
}

impl TrustedApp for FilterTa {
    fn descriptor(&self) -> TaDescriptor {
        self.descriptor.clone()
    }

    fn invoke(&mut self, env: &mut TaEnv<'_>, cmd_id: u32, params: &mut TeeParams) -> TeeResult<()> {
        match cmd_id {
            cmd::PROCESS_WINDOW => {
                let (dialog_id, periods) =
                    params.get(0).as_values().ok_or(TeeError::BadParameters {
                        reason: "process-window expects a value parameter".to_owned(),
                    })?;
                if periods == 0 {
                    return Err(TeeError::BadParameters {
                        reason: "periods must be at least 1".to_owned(),
                    });
                }
                // A small fixed cost for the TA's own bookkeeping.
                env.charge_cpu(SimDuration::from_micros(10));
                self.process_window(env, dialog_id, periods, params)
            }
            cmd::SET_POLICY => {
                let (mode, threshold) = params.get(0).as_values().ok_or(TeeError::BadParameters {
                    reason: "set-policy expects a value parameter".to_owned(),
                })?;
                self.policy = PrivacyPolicy::from_values(mode, threshold).ok_or(
                    TeeError::BadParameters {
                        reason: format!("unknown policy mode {mode}"),
                    },
                )?;
                Ok(())
            }
            cmd::GET_STATS => {
                params.set(
                    0,
                    TeeParam::ValueOutput {
                        a: self.stats.processed,
                        b: self.stats.forwarded,
                    },
                );
                params.set(
                    1,
                    TeeParam::ValueOutput {
                        a: self.stats.dropped,
                        b: self.stats.redacted,
                    },
                );
                Ok(())
            }
            other => Err(TeeError::ItemNotFound {
                what: format!("filter ta command {other}"),
            }),
        }
    }

    fn close_session(&mut self, env: &mut TaEnv<'_>) {
        if let Some((socket, _)) = self.channel.take() {
            let _ = env.net_close(socket);
        }
    }
}

/// Convenience used by pipelines and tests: the cloud-side counterpart must
/// share this PSK with the TA.
pub fn default_psk() -> [u8; PSK_LEN] {
    [0x5a; PSK_LEN]
}

/// The default cloud hostname pipelines register the mock cloud under.
pub fn default_cloud_host() -> String {
    MockCloudService::HOST.to_owned()
}
