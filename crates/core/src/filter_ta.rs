//! The filter trusted application.
//!
//! This is the TA of the paper's Fig. 1 (steps 4–7): it receives the
//! encoded audio from the secure I2S driver through the PTA interface,
//! transcribes it with the in-TA speech-to-text model, classifies the
//! transcript with the sensitive-content classifier, applies the privacy
//! policy, and relays only permitted content to the cloud through the
//! TLS-like channel and the TEE supplicant.
//!
//! The raw audio and the transcript never leave the secure world: the
//! normal-world caller only learns the filter decision and timing figures.

use std::sync::Arc;

use perisec_devices::codec::AudioEncoding;
use perisec_ml::classifier::SensitiveClassifier;
use perisec_ml::int8::QuantSensitiveClassifier;
use perisec_ml::plan::FeaturePlan;
use perisec_ml::quant::QuantMode;
use perisec_ml::stt::KeywordStt;
use perisec_optee::{
    TaDescriptor, TaEnv, TaUuid, TeeError, TeeParam, TeeParams, TeeResult, TrustedApp,
};
use perisec_relay::avs::AvsEvent;
use perisec_relay::cloud::MockCloudService;
use perisec_relay::tls::PSK_LEN;
use perisec_tz::time::SimDuration;
use perisec_workload::vocab::Vocabulary;

use serde::{Deserialize, Serialize};

use crate::cloud_channel::TaCloudChannel;
use crate::policy::{FilterDecision, PrivacyPolicy};

/// Registered name of the filter TA (its UUID derives from this).
pub const FILTER_TA_NAME: &str = "perisec.filter-ta";

/// Command identifiers of the filter TA.
pub mod cmd {
    /// Process one capture window: value param `a` = dialog id, `b` =
    /// number of periods to capture. Returns three value outputs:
    /// `(capture_wire_ns, capture_cpu_ns)`, `(ml_ns, relay_ns)` and
    /// `(decision_code, probability_milli)`.
    pub const PROCESS_WINDOW: u32 = 0;
    /// Replace the privacy policy: value param `a` = mode, `b` =
    /// threshold in thousandths.
    pub const SET_POLICY: u32 = 1;
    /// Query statistics: returns `(processed, forwarded)` and
    /// `(dropped, redacted)`.
    pub const GET_STATS: u32 = 2;
    /// Process a whole batch of capture windows in one invocation — the
    /// transition-amortized path. Param 0 is an input memref encoding the
    /// per-window `(dialog_id, periods)` pairs (see
    /// [`super::filter_ta::encode_batch_request`]); the reply carries the
    /// per-window verdicts in an output memref (see
    /// [`super::filter_ta::decode_batch_verdicts`]), the aggregate
    /// `(capture_wire_ns, capture_cpu_ns)` in value slot 2 and
    /// `(ml_ns, relay_ns)` in value slot 3. All permitted utterances of the
    /// batch are relayed in a **single** sealed record, so the whole batch
    /// costs one send/recv supplicant round trip.
    pub const PROCESS_BATCH: u32 = 3;
    /// Blocking drain of the relay's unacked buffer. Invoked once a
    /// scenario has stepped to completion, so records an opportunistic
    /// flush deferred under network faults are retired before the
    /// device's report is assembled. No parameters; errors if the
    /// network stays dead for the whole `hard_rounds` budget.
    pub const FLUSH_RELAY: u32 = 4;
}

/// Encodes a batch-process request: per window, the dialog id as a
/// little-endian `u64` followed by the window length in periods as a
/// little-endian `u32`.
pub fn encode_batch_request(windows: &[(u64, u32)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(windows.len() * 12);
    for (dialog_id, periods) in windows {
        out.extend_from_slice(&dialog_id.to_le_bytes());
        out.extend_from_slice(&periods.to_le_bytes());
    }
    out
}

/// Decodes a batch-process request produced by [`encode_batch_request`].
///
/// # Errors
///
/// Returns [`TeeError::BadParameters`] for empty or ragged buffers.
pub fn decode_batch_request(data: &[u8]) -> TeeResult<Vec<(u64, u32)>> {
    if data.is_empty() || !data.len().is_multiple_of(12) {
        return Err(TeeError::BadParameters {
            reason: "batch request must be a non-empty multiple of 12 bytes".to_owned(),
        });
    }
    Ok(data
        .chunks_exact(12)
        .map(|chunk| {
            (
                u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes")),
                u32::from_le_bytes(chunk[8..].try_into().expect("4 bytes")),
            )
        })
        .collect())
}

/// Encodes per-window verdicts: decision code as one byte, a padding byte,
/// then the probability in thousandths as a little-endian `u16`.
pub fn encode_batch_verdicts(verdicts: &[(FilterDecision, u16)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(verdicts.len() * 4);
    for (decision, probability_milli) in verdicts {
        out.push(decision.code() as u8);
        out.push(0);
        out.extend_from_slice(&probability_milli.to_le_bytes());
    }
    out
}

/// Decodes per-window verdicts produced by [`encode_batch_verdicts`].
///
/// # Errors
///
/// Returns [`TeeError::Communication`] for ragged buffers or unknown
/// decision codes.
pub fn decode_batch_verdicts(data: &[u8]) -> TeeResult<Vec<(FilterDecision, u16)>> {
    if !data.len().is_multiple_of(4) {
        return Err(TeeError::Communication {
            reason: "verdict buffer must be a multiple of 4 bytes".to_owned(),
        });
    }
    data.chunks_exact(4)
        .map(|chunk| {
            let decision =
                FilterDecision::from_code(u64::from(chunk[0])).ok_or(TeeError::Communication {
                    reason: format!("unknown decision code {}", chunk[0]),
                })?;
            let probability_milli = u16::from_le_bytes(chunk[2..].try_into().expect("2 bytes"));
            Ok((decision, probability_milli))
        })
        .collect()
}

/// Cumulative statistics of the filter TA.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    /// Windows processed.
    pub processed: u64,
    /// Utterances forwarded unchanged.
    pub forwarded: u64,
    /// Utterances dropped.
    pub dropped: u64,
    /// Utterances forwarded redacted.
    pub redacted: u64,
}

/// The trained models a [`FilterTa`] hosts: the speech front-end, the f32
/// classifier (the accuracy baseline and fallback), and — when available —
/// its int8 deployment form. All behind [`Arc`] so a fleet of device
/// pipelines shares one trained model set instead of retraining (or
/// copying) per device.
#[derive(Clone)]
pub struct FilterTaModels {
    /// The keyword speech-to-text model. The MFCC front end runs in f32
    /// with precomputed tables in both modes; int8 mode additionally
    /// matches segments against quantized templates on the integer
    /// kernels.
    pub stt: Arc<KeywordStt>,
    /// The f32 sensitive-content classifier.
    pub classifier: Arc<SensitiveClassifier>,
    /// The int8 deployment form, present for the CNN architecture.
    pub classifier_int8: Option<Arc<QuantSensitiveClassifier>>,
}

/// The filter TA.
pub struct FilterTa {
    descriptor: TaDescriptor,
    i2s_pta: TaUuid,
    models: FilterTaModels,
    quant: QuantMode,
    plan: FeaturePlan,
    vocabulary: Vocabulary,
    policy: PrivacyPolicy,
    channel: TaCloudChannel,
    stats: FilterStats,
    encoding: AudioEncoding,
}

impl std::fmt::Debug for FilterTa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilterTa")
            .field("policy", &self.policy)
            .field("quant", &self.quant)
            .field("stats", &self.stats)
            .finish()
    }
}

impl FilterTa {
    /// Creates the TA. In [`QuantMode::Int8`] (the default elsewhere) the
    /// TA keeps only the *quantized* classifier bytes resident, so its
    /// declared data segment — what registration reserves from the secure
    /// carve-out — shrinks by roughly the compression ratio.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        i2s_pta: TaUuid,
        models: FilterTaModels,
        quant: QuantMode,
        vocabulary: Vocabulary,
        policy: PrivacyPolicy,
        cloud_host: impl Into<String>,
        psk: [u8; PSK_LEN],
        encoding: AudioEncoding,
    ) -> Self {
        let model_bytes = match (&quant, &models.classifier_int8) {
            (QuantMode::Int8, Some(int8)) => int8.memory_bytes(),
            _ => models.classifier.memory_bytes_f32(),
        };
        let model_kib = (model_bytes / 1024).max(1) as u32;
        FilterTa {
            descriptor: TaDescriptor::new(FILTER_TA_NAME, 64, 256 + model_kib),
            i2s_pta,
            models,
            quant,
            plan: FeaturePlan::new(),
            vocabulary,
            policy,
            channel: TaCloudChannel::new(cloud_host, psk),
            stats: FilterStats::default(),
            encoding,
        }
    }

    /// Overrides the relay retry/backoff policy (builder-style).
    #[must_use]
    pub fn with_retry(mut self, retry: crate::RelayRetryConfig) -> Self {
        self.channel.set_retry(retry);
        self
    }

    /// Switches the relay to attested-ingest mode (builder-style): the
    /// channel performs the measurement + monotonic-counter handshake
    /// before shipping records, and every record carries the granted
    /// session epoch. Required when the pipeline routes through a
    /// sharded ingest plane instead of the direct mock cloud.
    #[must_use]
    pub fn with_ingest(mut self, measurement: [u8; perisec_relay::MEASUREMENT_LEN]) -> Self {
        self.channel.set_ingest(measurement);
        self
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Runs the in-TA ML stage over one window of encoded audio, charging
    /// its compute. Returns the recovered tokens, the sensitive
    /// probability and the ML time in nanoseconds.
    ///
    /// The STT front-end always runs over the TA's [`FeaturePlan`] (the
    /// MFCC scratch is mode-independent). The classifier dispatches on
    /// [`QuantMode`]: int8 runs the fused integer kernels over the same
    /// plan; f32 runs the baseline path. Both modes charge the same MAC
    /// count, so virtual-time accounting — and therefore every simulated
    /// latency and energy figure — is mode-independent; the int8 win is
    /// host wall-clock and secure-RAM residency.
    fn run_ml(
        &mut self,
        env: &TaEnv<'_>,
        encoded_audio: &[u8],
    ) -> TeeResult<(Vec<usize>, f32, u64)> {
        let tracer = env.tracer();
        let ml_start = env.platform().clock().now();
        let format = perisec_devices::audio::AudioFormat::speech_16khz_mono();
        let audio = self.encoding.decode(encoded_audio, format);
        let samples_len = audio.samples().len();
        // The STT charge is split by stage so each span covers its own
        // share of the virtual time; the split is unconditional, so the
        // charged total — and the report — is identical with telemetry
        // on, off, or absent.
        {
            let _mfcc = tracer.span("ta.mfcc");
            env.charge_compute(self.models.stt.mfcc_flops_for(samples_len));
        }
        // Both modes share segmentation and the f32 MFCC front end; in
        // int8 mode the template matching runs on the quantized kernels
        // (the cosine scales cancel, so decisions stay aligned with f32 —
        // pinned by the decision-parity tests).
        let tokens = {
            let _stt = tracer.span("ta.stt");
            env.charge_compute(self.models.stt.matching_flops_for(samples_len));
            match self.quant {
                QuantMode::Int8 => self
                    .models
                    .stt
                    .transcribe_to_tokens_int8_with(audio.samples(), &mut self.plan),
                QuantMode::F32 => self
                    .models
                    .stt
                    .transcribe_to_tokens_with(audio.samples(), &mut self.plan),
            }
        };
        let probability = {
            let _classify = tracer.span("ta.classify");
            env.charge_compute(
                self.models
                    .classifier
                    .flops_per_inference(tokens.len().max(1)),
            );
            if tokens.is_empty() {
                0.0
            } else {
                match (&self.quant, &self.models.classifier_int8) {
                    (QuantMode::Int8, Some(int8)) => int8.predict_with(&tokens, &mut self.plan),
                    _ => self.models.classifier.predict_with(&tokens, &mut self.plan),
                }
                .map_err(|e| TeeError::Generic {
                    reason: e.to_string(),
                })?
            }
        };
        let ml_ns = env.platform().clock().elapsed_since(ml_start).as_nanos();
        Ok((tokens, probability, ml_ns))
    }

    /// Applies the policy to one transcribed window, updates the decision
    /// statistics and builds the event to relay (if any content is
    /// permitted to leave the secure world).
    fn decide(
        &mut self,
        dialog_id: u64,
        tokens: &[usize],
        probability: f32,
    ) -> (FilterDecision, Option<AvsEvent>) {
        // Defense in depth: the policy combines the classifier's score
        // with a lexicon check over the recognized words (the TA already
        // holds the vocabulary's privacy categories for redaction).
        let lexical_hit = tokens
            .iter()
            .filter_map(|&t| self.vocabulary.word(t))
            .any(|w| w.category.is_sensitive());
        let decision = self.policy.decide_with_lexicon(probability, lexical_hit);
        let event = match decision {
            FilterDecision::Forward => {
                self.stats.forwarded += 1;
                let words: Vec<String> = tokens
                    .iter()
                    .filter_map(|&t| self.vocabulary.word(t).map(|w| w.text.clone()))
                    .collect();
                (!words.is_empty()).then(|| AvsEvent::TextMessage {
                    dialog_id,
                    text: words.join(" "),
                })
            }
            FilterDecision::ForwardRedacted => {
                self.stats.redacted += 1;
                let redacted: Vec<String> = tokens
                    .iter()
                    .filter_map(|&t| self.vocabulary.word(t))
                    .map(|w| {
                        if w.category.is_sensitive() {
                            "[redacted]".to_owned()
                        } else {
                            w.text.clone()
                        }
                    })
                    .collect();
                (!redacted.is_empty()).then(|| AvsEvent::TextMessage {
                    dialog_id,
                    text: redacted.join(" "),
                })
            }
            FilterDecision::Drop => {
                self.stats.dropped += 1;
                None
            }
        };
        self.stats.processed += 1;
        (decision, event)
    }

    /// The per-window path (`cmd::PROCESS_WINDOW`), kept for the original
    /// parameter contract. Internally it *is* a one-window batch — same
    /// capture, ML, policy and relay code as `cmd::PROCESS_BATCH` — so the
    /// two commands cannot drift apart; only the output layout differs.
    fn process_window(
        &mut self,
        env: &mut TaEnv<'_>,
        dialog_id: u64,
        periods: u64,
        params: &mut TeeParams,
    ) -> TeeResult<()> {
        let windows = [(dialog_id, periods as u32)];
        let mut batch = TeeParams::new();
        self.process_batch(env, &windows, &mut batch)?;

        let verdicts =
            decode_batch_verdicts(batch.get(1).as_memref().ok_or(TeeError::Communication {
                reason: "batch path returned no verdicts".to_owned(),
            })?)?;
        let (decision, probability_milli) =
            verdicts.first().copied().ok_or(TeeError::Communication {
                reason: "batch path returned an empty verdict list".to_owned(),
            })?;
        let (wire_ns, capture_cpu_ns) = batch.get(2).as_values().unwrap_or((0, 0));
        let (ml_ns, relay_ns) = batch.get(3).as_values().unwrap_or((0, 0));

        params.set(
            1,
            TeeParam::ValueOutput {
                a: wire_ns,
                b: capture_cpu_ns,
            },
        );
        params.set(
            2,
            TeeParam::ValueOutput {
                a: ml_ns,
                b: relay_ns,
            },
        );
        params.set(
            3,
            TeeParam::ValueOutput {
                a: decision.code(),
                b: u64::from(probability_milli),
            },
        );
        Ok(())
    }

    /// The transition-amortized batch path (`cmd::PROCESS_BATCH`): pulls
    /// every window of the batch from the secure driver in one PTA call,
    /// runs the ML stage and the policy per window, and relays **all**
    /// permitted utterances in a single sealed record — so an entire batch
    /// costs one client SMC plus one supplicant send/recv round trip,
    /// instead of one SMC and one round trip per utterance.
    fn process_batch(
        &mut self,
        env: &mut TaEnv<'_>,
        windows: &[(u64, u32)],
        params: &mut TeeParams,
    ) -> TeeResult<()> {
        // 1. One batched capture through the PTA.
        let request = perisec_secure_driver::pta::encode_windows_request(
            &windows.iter().map(|&(_, p)| p as usize).collect::<Vec<_>>(),
        );
        let mut capture = TeeParams::new().with(0, TeeParam::MemRefInput(request));
        env.invoke_pta(
            self.i2s_pta,
            perisec_secure_driver::pta::cmd::CAPTURE_BATCH,
            &mut capture,
        )?;
        let replies = perisec_secure_driver::pta::decode_windows_reply(
            capture.get(1).as_memref().ok_or(TeeError::Communication {
                reason: "pta returned no batched audio".to_owned(),
            })?,
        )?;
        if replies.len() != windows.len() {
            return Err(TeeError::Communication {
                reason: format!(
                    "pta returned {} windows for a {}-window batch",
                    replies.len(),
                    windows.len()
                ),
            });
        }
        let (wire_ns, capture_cpu_ns) = capture.get(2).as_values().unwrap_or((0, 0));

        // 2. Per-window ML + policy; permitted content accumulates into one
        //    batched relay event.
        let mut verdicts = Vec::with_capacity(windows.len());
        let mut outbound = Vec::new();
        let mut ml_ns_total = 0u64;
        for (&(dialog_id, _), reply) in windows.iter().zip(&replies) {
            let (tokens, probability, ml_ns) = self.run_ml(env, &reply.encoded)?;
            ml_ns_total += ml_ns;
            let (decision, event) = self.decide(dialog_id, &tokens, probability);
            verdicts.push((decision, (probability * 1000.0) as u16));
            if let Some(event) = event {
                outbound.push(event);
            }
        }

        // 3. One relay round trip for the whole batch, then the reply
        //    contract — never transcripts or audio.
        crate::cloud_channel::relay_batch_and_pack(
            &mut self.channel,
            env,
            outbound,
            &verdicts,
            (wire_ns, capture_cpu_ns),
            ml_ns_total,
            params,
        )
    }
}

impl TrustedApp for FilterTa {
    fn descriptor(&self) -> TaDescriptor {
        self.descriptor.clone()
    }

    fn invoke(
        &mut self,
        env: &mut TaEnv<'_>,
        cmd_id: u32,
        params: &mut TeeParams,
    ) -> TeeResult<()> {
        match cmd_id {
            cmd::PROCESS_WINDOW => {
                let (dialog_id, periods) =
                    params.get(0).as_values().ok_or(TeeError::BadParameters {
                        reason: "process-window expects a value parameter".to_owned(),
                    })?;
                if periods == 0 {
                    return Err(TeeError::BadParameters {
                        reason: "periods must be at least 1".to_owned(),
                    });
                }
                // A small fixed cost for the TA's own bookkeeping.
                env.charge_cpu(SimDuration::from_micros(10));
                self.process_window(env, dialog_id, periods, params)
            }
            cmd::PROCESS_BATCH => {
                let windows = decode_batch_request(params.get(0).as_memref().ok_or(
                    TeeError::BadParameters {
                        reason: "process-batch expects a memref parameter".to_owned(),
                    },
                )?)?;
                if windows.iter().any(|&(_, periods)| periods == 0) {
                    return Err(TeeError::BadParameters {
                        reason: "batch windows must be at least 1 period".to_owned(),
                    });
                }
                // The TA's own bookkeeping cost, once per batch.
                env.charge_cpu(SimDuration::from_micros(10));
                self.process_batch(env, &windows, params)
            }
            cmd::FLUSH_RELAY => self.channel.drain(env),
            cmd::SET_POLICY => {
                let (mode, threshold) =
                    params.get(0).as_values().ok_or(TeeError::BadParameters {
                        reason: "set-policy expects a value parameter".to_owned(),
                    })?;
                self.policy =
                    PrivacyPolicy::from_values(mode, threshold).ok_or(TeeError::BadParameters {
                        reason: format!("unknown policy mode {mode}"),
                    })?;
                Ok(())
            }
            cmd::GET_STATS => {
                params.set(
                    0,
                    TeeParam::ValueOutput {
                        a: self.stats.processed,
                        b: self.stats.forwarded,
                    },
                );
                params.set(
                    1,
                    TeeParam::ValueOutput {
                        a: self.stats.dropped,
                        b: self.stats.redacted,
                    },
                );
                Ok(())
            }
            other => Err(TeeError::ItemNotFound {
                what: format!("filter ta command {other}"),
            }),
        }
    }

    fn close_session(&mut self, env: &mut TaEnv<'_>) {
        // Close performs a *blocking* flush of unacknowledged relay
        // records; exhausting the retry budget here means verdicts were
        // lost, which must never pass silently.
        self.channel
            .close(env)
            .expect("relay close: blocking flush failed");
    }
}

/// Convenience used by pipelines and tests: the cloud-side counterpart must
/// share this PSK with the TA.
pub fn default_psk() -> [u8; PSK_LEN] {
    [0x5a; PSK_LEN]
}

/// The default cloud hostname pipelines register the mock cloud under.
pub fn default_cloud_host() -> String {
    MockCloudService::HOST.to_owned()
}
