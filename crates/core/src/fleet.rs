//! The multi-device fleet harness.
//!
//! A [`PipelineFleet`] runs M concurrent device pipelines — each with its
//! own platform, TEE core, secure driver and cloud connection — while
//! sharing **one** trained model set ([`crate::pipeline::SharedModels`])
//! across every device via [`Arc`](std::sync::Arc). Training dominates
//! pipeline setup cost, so a fleet of N devices sets up roughly N times
//! faster than N independently-built pipelines, and the secure model
//! weights exist once in (simulated) memory.
//!
//! Devices execute on the bounded work-stealing
//! [`FleetExecutor`](crate::executor::FleetExecutor):
//! [`FleetConfig::workers`] OS threads step resumable device tasks at
//! TEE-crossing granularity, so a 10k-device fleet holds `workers`
//! pipeline stacks in memory instead of 10k. The historical
//! thread-per-device harness survives as
//! [`PipelineFleet::run_mixed_threaded`] — the baseline experiment E15
//! measures the executor against.
//!
//! Fleets may be single-modality ([`PipelineFleet::run`]) or mixed
//! ([`PipelineFleet::run_mixed`]): audio devices and camera devices run
//! side by side off the same shared model set, since [`SharedModels`]
//! carries both the speech models and the frame classifier.
//!
//! Per-device [`PipelineReport`]s are merged into a [`FleetReport`] with
//! fleet-wide privacy, latency and transition aggregates.

use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use perisec_relay::attest::SessionIngest;
use perisec_relay::netsim::FaultSpec;
use perisec_telemetry::{
    DeviceHealthMonitor, FleetHealth, FleetHealthReport, FleetTelemetry, HealthConfig, HealthSink,
    TelemetryConfig,
};
use perisec_tz::time::SimDuration;
use perisec_workload::scenario::{CameraScenario, Scenario};

use serde::{Deserialize, Serialize};

use crate::executor::{
    run_thread_per_device, DeviceTask, ExecutorConfig, ExecutorStats, FleetExecutor, QueuedDevice,
    StepOutcome,
};
use crate::ingest::IngestHook;
use crate::pipeline::{
    CameraPipelineConfig, PipelineConfig, ScenarioProgress, SecureCameraPipeline, SecurePipeline,
    SharedModels,
};
use crate::report::{LatencyPercentiles, PipelineReport};
use crate::{CoreError, Result};

/// Fleet configuration: how many devices of each modality, and how each is
/// built.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of concurrent audio device pipelines.
    pub devices: usize,
    /// Configuration applied to every audio device pipeline (including
    /// its batch size).
    pub pipeline: PipelineConfig,
    /// Number of concurrent camera device pipelines (zero for an
    /// audio-only fleet).
    pub camera_devices: usize,
    /// Configuration applied to every camera device pipeline.
    pub camera_pipeline: CameraPipelineConfig,
    /// Secure cores per camera device: each camera device's frame stream
    /// is sharded across this many TA sessions on a multi-core TEE pool.
    /// `1` (the default) is the classic single-session pipeline that
    /// [`PipelineFleet`] runs directly; values above 1 are executed by the
    /// scheduler crate's `ShardedFleet` runner, and [`PipelineFleet`]
    /// rejects them loudly rather than silently running unsharded.
    pub tee_cores: usize,
    /// Worker threads of the fleet executor. `0` (the default) means one
    /// worker per host core; any value is capped by the device count. The
    /// merged [`FleetReport`] is byte-identical for every worker count —
    /// workers change wall-clock and memory, never outcomes.
    pub workers: usize,
    /// Fleet telemetry plane. When `enabled`, every device pipeline
    /// records bounded span histograms and counters in virtual time;
    /// [`PipelineFleet::run_mixed_telemetry`] folds them into one
    /// [`FleetTelemetry`]. Off by default — a disabled tracer costs one
    /// branch per would-be span. Per-device span *retention* is not
    /// controlled here (that would grow with fleet size); see
    /// [`FleetConfig::trace_devices`].
    pub telemetry: TelemetryConfig,
    /// The devices whose full span streams are retained for chrome-trace
    /// export (empty = metrics only, the default). Retaining every
    /// device's spans on a 10k-device fleet would be unbounded, so deep
    /// dives are opt-in and per-device — but comparing two devices side
    /// by side (one healthy, one degraded) needs more than a single
    /// slot, hence a set.
    pub trace_devices: BTreeSet<usize>,
    /// The live health plane (see [`PipelineFleet::run_mixed_health`]):
    /// when set, every device carries a
    /// [`DeviceHealthMonitor`] that cuts virtual-time epoch slices at
    /// its step boundaries, judges the configured SLOs and anomaly
    /// detectors, and feeds one shared [`HealthSink`]. Pure observation:
    /// the functional [`FleetReport`] stays byte-identical whether the
    /// plane is on or off.
    pub health: Option<HealthConfig>,
    /// Deterministic network chaos applied to **every** device's cloud
    /// link. Each device gets the spec salted with its fleet index
    /// ([`FaultSpec::for_device`]), so the fleet-wide fault schedule is a
    /// pure function of `(seed, device, send sequence)` — identical at
    /// every worker count, which is what lets the E20 chaos drill demand
    /// byte-identical cloud decisions. Overrides any per-pipeline spec.
    pub faults: Option<FaultSpec>,
    /// A fleet-shared sharded ingest plane. When set, every device
    /// relays through session `device` of the plane (attested,
    /// epoch-fenced, journaled) instead of a per-device mock cloud; the
    /// plane's crash schedule then exercises the fleet's recovery path.
    /// Overrides any per-pipeline [`PipelineConfig::ingest`] hook.
    pub ingest: Option<Arc<dyn SessionIngest>>,
}

impl FleetConfig {
    /// An audio-only fleet of `devices` devices with the default pipeline
    /// config.
    pub fn of(devices: usize) -> Self {
        FleetConfig {
            devices,
            pipeline: PipelineConfig::default(),
            camera_devices: 0,
            camera_pipeline: CameraPipelineConfig::default(),
            tee_cores: 1,
            workers: 0,
            telemetry: TelemetryConfig::default(),
            trace_devices: BTreeSet::new(),
            health: None,
            faults: None,
            ingest: None,
        }
    }

    /// A mixed fleet: `audio` microphone devices plus `cameras` camera
    /// devices, default configs for both.
    pub fn mixed(audio: usize, cameras: usize) -> Self {
        FleetConfig {
            devices: audio,
            camera_devices: cameras,
            ..FleetConfig::of(0)
        }
    }

    fn total_devices(&self) -> usize {
        self.devices + self.camera_devices
    }

    fn reject_sharding(&self) -> Result<()> {
        if self.tee_cores > 1 {
            return Err(CoreError::Config {
                reason: format!(
                    "fleet config asks for {} tee cores per camera device; \
                     PipelineFleet runs single-session devices only — use the \
                     scheduler crate's ShardedFleet for multi-core sharding",
                    self.tee_cores
                ),
            });
        }
        Ok(())
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig::of(8)
    }
}

/// Which sensor a fleet device carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Modality {
    /// An I2S microphone device running the audio pipeline.
    Audio,
    /// A camera device running the vision pipeline.
    Camera,
}

impl std::fmt::Display for Modality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Modality::Audio => "audio",
            Modality::Camera => "camera",
        };
        write!(f, "{s}")
    }
}

/// The report of one device's run within a fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Device index within the fleet.
    pub device: usize,
    /// Modality of the device.
    pub modality: Modality,
    /// Name of the scenario the device replayed.
    pub scenario: String,
    /// The device pipeline's full report.
    pub report: PipelineReport,
}

/// The merged report of a fleet run.
///
/// A report is treated as immutable once assembled: the fleet-wide
/// latency percentiles are computed — one sort over the pooled sample —
/// on first query and cached for every later `p50`/`p95`/`p99`/`mean`
/// call and for [`FleetReport::to_json`].
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Per-device reports, in device order. Private so nothing can grow
    /// or reorder the set after the percentile cache has been primed —
    /// reports are assembled once ([`FleetReport::new`]) and read-only
    /// after that ([`FleetReport::devices`]).
    devices: Vec<DeviceReport>,
    /// Lazily-computed fleet-wide percentiles (see the type docs).
    percentiles: OnceLock<LatencyPercentiles>,
}

impl PartialEq for FleetReport {
    fn eq(&self, other: &Self) -> bool {
        // The cache is derived data; two reports are equal iff their
        // devices are.
        self.devices == other.devices
    }
}

impl Serialize for FleetReport {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![("devices".to_owned(), self.devices.to_value())])
    }
}

impl Deserialize for FleetReport {
    fn from_value(value: &serde::value::Value) -> std::result::Result<Self, serde::Error> {
        Ok(FleetReport::new(Deserialize::from_value(
            value.field("devices")?,
        )?))
    }
}

impl FleetReport {
    /// Wraps per-device reports (already in device order) into a fleet
    /// report.
    pub fn new(devices: Vec<DeviceReport>) -> Self {
        FleetReport {
            devices,
            percentiles: OnceLock::new(),
        }
    }

    /// Per-device reports, in device order.
    pub fn devices(&self) -> &[DeviceReport] {
        &self.devices
    }

    /// Number of devices that ran.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of devices of the given modality.
    pub fn device_count_of(&self, modality: Modality) -> usize {
        self.devices
            .iter()
            .filter(|d| d.modality == modality)
            .count()
    }

    /// Total utterances processed across the fleet.
    pub fn total_utterances(&self) -> usize {
        self.devices
            .iter()
            .map(|d| d.report.workload.utterances)
            .sum()
    }

    /// Total ground-truth sensitive utterances across the fleet.
    pub fn total_sensitive_utterances(&self) -> usize {
        self.devices
            .iter()
            .map(|d| d.report.workload.sensitive_utterances)
            .sum()
    }

    /// Total sensitive utterances that leaked to the cloud, fleet-wide —
    /// the headline privacy metric.
    pub fn leaked_sensitive_utterances(&self) -> usize {
        self.devices
            .iter()
            .map(|d| d.report.cloud.leaked_sensitive_utterances())
            .sum()
    }

    /// Fleet-wide leakage rate.
    pub fn leakage_rate(&self) -> f64 {
        let sensitive = self.total_sensitive_utterances();
        if sensitive == 0 {
            return 0.0;
        }
        self.leaked_sensitive_utterances() as f64 / sensitive as f64
    }

    /// Total payload (audio/pixel) bytes that reached the cloud — zero
    /// for verdict-only relays.
    pub fn total_payload_bytes(&self) -> usize {
        self.devices
            .iter()
            .flat_map(|d| d.report.cloud.report.events.iter())
            .map(|e| e.audio_bytes)
            .sum()
    }

    /// Total world switches across every device's TEE.
    pub fn total_world_switches(&self) -> u64 {
        self.devices
            .iter()
            .map(|d| d.report.tz.world_switches)
            .sum()
    }

    /// Total SMCs across every device's TEE.
    pub fn total_smc_calls(&self) -> u64 {
        self.devices.iter().map(|d| d.report.tz.smc_calls).sum()
    }

    /// World switches per utterance, averaged over the fleet.
    pub fn world_switches_per_utterance(&self) -> f64 {
        let utterances = self.total_utterances();
        if utterances == 0 {
            return 0.0;
        }
        self.total_world_switches() as f64 / utterances as f64
    }

    /// Mean per-utterance processing latency across the fleet.
    pub fn mean_end_to_end(&self) -> SimDuration {
        self.latency_percentiles().mean
    }

    /// Every device's per-utterance latencies pooled into one sample.
    fn latency_sample(&self) -> Vec<SimDuration> {
        self.devices
            .iter()
            .flat_map(|d| d.report.latency.per_utterance().iter().copied())
            .collect()
    }

    /// Fleet-wide latency percentiles (mean/p50/p95/p99) over every
    /// device's per-utterance latencies — the figures E14's SLO claims
    /// are checked against. Computed with **one** sort on first call and
    /// cached; `p50`/`p95`/`p99`/`mean` and [`FleetReport::to_json`] all
    /// reuse the cached figures.
    pub fn latency_percentiles(&self) -> LatencyPercentiles {
        *self
            .percentiles
            .get_or_init(|| LatencyPercentiles::from_sample(self.latency_sample()))
    }

    /// Fleet-wide median per-utterance latency.
    pub fn p50_end_to_end(&self) -> SimDuration {
        self.latency_percentiles().p50
    }

    /// Fleet-wide 95th-percentile per-utterance latency.
    pub fn p95_end_to_end(&self) -> SimDuration {
        self.latency_percentiles().p95
    }

    /// Fleet-wide 99th-percentile per-utterance latency.
    pub fn p99_end_to_end(&self) -> SimDuration {
        self.latency_percentiles().p99
    }

    /// Total energy drawn across the fleet, in millijoules.
    pub fn total_energy_mj(&self) -> f64 {
        self.devices.iter().map(|d| d.report.energy.total_mj).sum()
    }

    /// Serializes the fleet report as pretty JSON, including the
    /// fleet-wide latency percentiles alongside the per-device reports.
    /// The document is assembled as a value tree over borrowed data — the
    /// vendored serde derive cannot express a borrowing wrapper struct,
    /// and cloning every device report just to serialize it would double
    /// a large fleet's report memory.
    ///
    /// # Panics
    ///
    /// Never panics: all fields are plain data.
    pub fn to_json(&self) -> String {
        use serde::Serialize as _;
        let document = serde::value::Value::Object(vec![
            (
                "latency_percentiles".to_owned(),
                self.latency_percentiles().to_value(),
            ),
            ("devices".to_owned(), self.devices.to_value()),
        ]);
        serde_json::to_string_pretty(&document).expect("fleet report is serializable")
    }

    /// Serializes only the fleet's **cloud decisions**: each device's
    /// ordered event stream exactly as the cloud committed it. Under
    /// network chaos the *full* report legitimately differs from a
    /// fault-free run — retries cost virtual time and wire bytes — but
    /// the decisions the cloud acts on must not, and this artifact is
    /// what the E20 determinism gate compares byte-for-byte.
    ///
    /// # Panics
    ///
    /// Never panics: all fields are plain data.
    pub fn cloud_decisions_json(&self) -> String {
        use serde::Serialize as _;
        let devices = self
            .devices
            .iter()
            .map(|d| {
                serde::value::Value::Object(vec![
                    ("device".to_owned(), d.device.to_value()),
                    ("modality".to_owned(), d.modality.to_value()),
                    ("events".to_owned(), d.report.cloud.report.events.to_value()),
                ])
            })
            .collect::<Vec<_>>();
        serde_json::to_string_pretty(&serde::value::Value::Array(devices))
            .expect("cloud decisions are serializable")
    }

    /// Total explicit-sequence records the fleet's cloud endpoints saw
    /// again after committing them — at-least-once delivery made visible.
    pub fn total_redelivered_records(&self) -> u64 {
        self.devices
            .iter()
            .map(|d| d.report.cloud.report.redelivered_records)
            .sum()
    }

    /// Total records the fleet's cloud endpoints rejected (failed
    /// authentication or decode — e.g. corrupted in flight).
    pub fn total_rejected_records(&self) -> u64 {
        self.devices
            .iter()
            .map(|d| d.report.cloud.report.rejected_records)
            .sum()
    }

    /// [`FleetReport::to_json`] with a `telemetry` section embedded. Kept
    /// separate from `to_json` on purpose: the plain report must stay
    /// byte-identical whether or not telemetry ran — that is the
    /// zero-perturbation contract the determinism tests pin — so the
    /// telemetry plane rides in its own section of a distinct document.
    ///
    /// The document also carries an `accounting` section: one per-tenant
    /// row per device session (committed / rejected / redelivered record
    /// counts from its cloud ledger) plus the fold's span names as the
    /// billing keys a metering pipeline would rate — usage attribution
    /// for a multi-tenant ingest plane, derived entirely from data the
    /// report already holds.
    pub fn to_json_with_telemetry(&self, telemetry: &perisec_telemetry::FleetTelemetry) -> String {
        use serde::Serialize as _;
        let tenants = self
            .devices
            .iter()
            .map(|d| {
                let cloud = &d.report.cloud.report;
                serde::value::Value::Object(vec![
                    ("session".to_owned(), d.device.to_value()),
                    ("modality".to_owned(), d.modality.to_value()),
                    ("committed".to_owned(), cloud.events.len().to_value()),
                    ("rejected".to_owned(), cloud.rejected_records.to_value()),
                    (
                        "redelivered".to_owned(),
                        cloud.redelivered_records.to_value(),
                    ),
                ])
            })
            .collect::<Vec<_>>();
        let billing_keys = telemetry
            .histograms
            .keys()
            .map(|span| span.to_value())
            .collect::<Vec<_>>();
        let accounting = serde::value::Value::Object(vec![
            (
                "billing_keys".to_owned(),
                serde::value::Value::Array(billing_keys),
            ),
            ("tenants".to_owned(), serde::value::Value::Array(tenants)),
        ]);
        let document = serde::value::Value::Object(vec![
            (
                "latency_percentiles".to_owned(),
                self.latency_percentiles().to_value(),
            ),
            ("telemetry".to_owned(), telemetry.to_value()),
            ("accounting".to_owned(), accounting),
            ("devices".to_owned(), self.devices.to_value()),
        ]);
        serde_json::to_string_pretty(&document).expect("fleet report is serializable")
    }
}

// ----- device tasks --------------------------------------------------------

/// Where completed devices deposit their telemetry. The fold is
/// commutative ([`FleetTelemetry::absorb`]), so a single shared sink
/// stays deterministic no matter which worker finishes which device
/// first — the same structural argument that makes the [`FleetReport`]
/// worker-count-invariant.
pub type TelemetrySink = Arc<Mutex<FleetTelemetry>>;

/// The resumable audio-device state machine: one built [`SecurePipeline`]
/// plus a scenario cursor; each step is one TEE crossing.
struct AudioDeviceTask {
    device: usize,
    scenario: Arc<Scenario>,
    pipeline: SecurePipeline,
    progress: Option<ScenarioProgress>,
    telemetry: Option<TelemetrySink>,
    health: Option<DeviceHealthMonitor>,
}

impl DeviceTask for AudioDeviceTask {
    fn step(&mut self) -> Result<StepOutcome> {
        let mut progress = self.progress.take().expect("task stepped after completion");
        if self.pipeline.step_scenario(&self.scenario, &mut progress)? {
            if let Some(monitor) = &mut self.health {
                monitor.advance(
                    self.pipeline.platform().clock().now(),
                    self.pipeline.tracer(),
                );
            }
            self.progress = Some(progress);
            return Ok(StepOutcome::Yielded);
        }
        let report = self.pipeline.finish_scenario(&self.scenario, progress);
        // The monitor must finish *before* the telemetry absorb:
        // `take_telemetry` drains the tracer, and an epoch cut over a
        // drained tracer would read every running total as zero.
        if let Some(monitor) = self.health.take() {
            monitor.finish(
                self.pipeline.platform().clock().now(),
                self.pipeline.tracer(),
            );
        }
        if let Some(sink) = &self.telemetry {
            sink.lock()
                .absorb(self.device, self.pipeline.take_telemetry());
        }
        Ok(StepOutcome::Complete(Box::new(DeviceReport {
            device: self.device,
            modality: Modality::Audio,
            scenario: self.scenario.name.clone(),
            report,
        })))
    }
}

/// The resumable camera-device state machine — the vision twin of
/// [`AudioDeviceTask`].
struct CameraDeviceTask {
    device: usize,
    scenario: Arc<CameraScenario>,
    pipeline: SecureCameraPipeline,
    progress: Option<ScenarioProgress>,
    telemetry: Option<TelemetrySink>,
    health: Option<DeviceHealthMonitor>,
}

impl DeviceTask for CameraDeviceTask {
    fn step(&mut self) -> Result<StepOutcome> {
        let mut progress = self.progress.take().expect("task stepped after completion");
        if self.pipeline.step_scenario(&self.scenario, &mut progress)? {
            if let Some(monitor) = &mut self.health {
                monitor.advance(
                    self.pipeline.platform().clock().now(),
                    self.pipeline.tracer(),
                );
            }
            self.progress = Some(progress);
            return Ok(StepOutcome::Yielded);
        }
        let report = self.pipeline.finish_scenario(&self.scenario, progress);
        // Finish before the absorb — see `AudioDeviceTask::step`.
        if let Some(monitor) = self.health.take() {
            monitor.finish(
                self.pipeline.platform().clock().now(),
                self.pipeline.tracer(),
            );
        }
        if let Some(sink) = &self.telemetry {
            sink.lock()
                .absorb(self.device, self.pipeline.take_telemetry());
        }
        Ok(StepOutcome::Complete(Box::new(DeviceReport {
            device: self.device,
            modality: Modality::Camera,
            scenario: self.scenario.name.clone(),
            report,
        })))
    }
}

/// Queues one audio device: the pipeline stack builds lazily when a
/// worker first schedules the device, and the scenario is shared by
/// `Arc` — a 10k-device fleet cycling over a few scenarios must not
/// hold 10k copies of their event lists in its run queues. Shared with
/// the scheduler crate's `ShardedFleet`, whose audio devices are
/// identical to this fleet's.
pub fn audio_device_task(
    device: usize,
    scenario: Arc<Scenario>,
    config: PipelineConfig,
    models: SharedModels,
) -> QueuedDevice {
    audio_device_task_observed(device, scenario, config, models, None, None)
}

/// [`audio_device_task`] with observation planes attached: the device's
/// tracer snapshot is folded into `telemetry` when the scenario
/// completes, and `health` judges its virtual-time epochs as it runs.
pub fn audio_device_task_observed(
    device: usize,
    scenario: Arc<Scenario>,
    config: PipelineConfig,
    models: SharedModels,
    telemetry: Option<TelemetrySink>,
    health: Option<DeviceHealthMonitor>,
) -> QueuedDevice {
    QueuedDevice::new(device, move || {
        let mut pipeline = SecurePipeline::with_models(config, &models)?;
        let progress = pipeline.begin_scenario();
        Ok(Box::new(AudioDeviceTask {
            device,
            scenario,
            pipeline,
            progress: Some(progress),
            telemetry,
            health,
        }))
    })
}

/// Queues one single-session camera device.
pub fn camera_device_task(
    device: usize,
    scenario: Arc<CameraScenario>,
    config: CameraPipelineConfig,
    models: SharedModels,
) -> QueuedDevice {
    camera_device_task_observed(device, scenario, config, models, None, None)
}

/// [`camera_device_task`] with observation planes attached.
pub fn camera_device_task_observed(
    device: usize,
    scenario: Arc<CameraScenario>,
    config: CameraPipelineConfig,
    models: SharedModels,
    telemetry: Option<TelemetrySink>,
    health: Option<DeviceHealthMonitor>,
) -> QueuedDevice {
    QueuedDevice::new(device, move || {
        let mut pipeline = SecureCameraPipeline::with_models(config, &models)?;
        let progress = pipeline.begin_scenario();
        Ok(Box::new(CameraDeviceTask {
            device,
            scenario,
            pipeline,
            progress: Some(progress),
            telemetry,
            health,
        }))
    })
}

// ----- the fleet -----------------------------------------------------------

/// The fleet: one shared trained model set plus the per-device config.
#[derive(Debug, Clone)]
pub struct PipelineFleet {
    config: FleetConfig,
    models: SharedModels,
}

impl PipelineFleet {
    /// Builds a fleet, training the shared model set **once**.
    ///
    /// # Errors
    ///
    /// Propagates ML training failures.
    pub fn new(config: FleetConfig) -> Result<Self> {
        // Fail before the expensive model training: a sharded config can
        // never run on this fleet, so it must not get to pay for setup.
        config.reject_sharding()?;
        if config.total_devices() == 0 {
            return Err(CoreError::Config {
                reason: "fleet needs at least one device".to_owned(),
            });
        }
        // Audio fleets train the speech models eagerly (errors surface at
        // construction, as before); camera-only fleets defer, so they
        // never pay for speech models they cannot use — the mirror of the
        // frame classifier's laziness for audio-only fleets.
        let models = if config.devices > 0 {
            SharedModels::for_config(&config.pipeline)?
        } else {
            SharedModels::deferred_for_config(&config.pipeline)
        }
        .with_vision_spec(
            config.camera_pipeline.train_frames,
            config.camera_pipeline.corpus_seed,
        );
        Ok(PipelineFleet { config, models })
    }

    /// Builds a fleet around an existing model set. The config's camera
    /// training spec is applied to the set (taking effect unless its
    /// vision model has already trained), exactly as
    /// [`PipelineFleet::new`] does.
    pub fn with_models(config: FleetConfig, models: SharedModels) -> Self {
        let models = models.with_vision_spec(
            config.camera_pipeline.train_frames,
            config.camera_pipeline.corpus_seed,
        );
        PipelineFleet { config, models }
    }

    /// The shared model set.
    pub fn models(&self) -> &SharedModels {
        &self.models
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs one scenario per audio device on the bounded executor —
    /// device `i` replays `scenarios[i % scenarios.len()]`. Every device
    /// task builds its own full stack (platform, TEE core, secure driver,
    /// cloud) around the shared models, runs its scenario, and reports.
    ///
    /// # Errors
    ///
    /// Returns the first device failure ([`CoreError`]), or a
    /// [`CoreError::Config`] for an empty scenario list.
    pub fn run(&self, scenarios: &[Scenario]) -> Result<FleetReport> {
        // Guard here as well as in `new`: `with_models` skips `new`'s
        // validation, and an empty fleet report would read as a perfectly
        // clean privacy outcome when nothing ran at all.
        self.config.reject_sharding()?;
        if self.config.devices == 0 {
            return Err(CoreError::Config {
                reason: "fleet needs at least one audio device".to_owned(),
            });
        }
        if self.config.camera_devices > 0 {
            return Err(CoreError::Config {
                reason: "fleet has camera devices configured; use run_mixed so their \
                         scene schedules are supplied instead of silently skipping them"
                    .to_owned(),
            });
        }
        if scenarios.is_empty() {
            return Err(CoreError::Config {
                reason: "fleet run needs at least one scenario".to_owned(),
            });
        }
        self.execute(scenarios, &[]).map(|(report, _)| report)
    }

    /// Runs a mixed fleet: the configured audio devices replay `audio`
    /// scenarios while the configured camera devices replay `cameras`
    /// scene schedules, all off the same shared model set, multiplexed
    /// onto [`FleetConfig::workers`] executor threads. Audio devices come
    /// first in the merged report, camera devices after.
    ///
    /// # Errors
    ///
    /// Returns the first device failure, or [`CoreError::Config`] when a
    /// modality's devices and scenarios disagree — devices with no
    /// scenarios *and* scenarios with no devices are both rejected, so
    /// nothing is ever silently skipped — or when the fleet is empty.
    pub fn run_mixed(&self, audio: &[Scenario], cameras: &[CameraScenario]) -> Result<FleetReport> {
        self.run_mixed_stats(audio, cameras)
            .map(|(report, _)| report)
    }

    /// [`PipelineFleet::run_mixed`], also returning the executor's
    /// host-side telemetry (steals, peak residency, wall-clock).
    ///
    /// # Errors
    ///
    /// Same contract as [`PipelineFleet::run_mixed`].
    pub fn run_mixed_stats(
        &self,
        audio: &[Scenario],
        cameras: &[CameraScenario],
    ) -> Result<(FleetReport, ExecutorStats)> {
        self.config.reject_sharding()?;
        self.validate_mixed(audio, cameras)?;
        self.execute(audio, cameras)
    }

    /// [`PipelineFleet::run_mixed_stats`] with the fleet telemetry plane
    /// collected: every completed device's tracer snapshot is folded into
    /// one [`FleetTelemetry`] through a shared sink. The fold is
    /// commutative, so the returned telemetry — like the report — is
    /// identical at every worker count and under any steal interleaving.
    /// With [`FleetConfig::telemetry`] disabled the returned fold is
    /// empty (devices fold in, but no histograms or counters exist).
    ///
    /// # Errors
    ///
    /// Same contract as [`PipelineFleet::run_mixed`].
    pub fn run_mixed_telemetry(
        &self,
        audio: &[Scenario],
        cameras: &[CameraScenario],
    ) -> Result<(FleetReport, ExecutorStats, FleetTelemetry)> {
        self.config.reject_sharding()?;
        self.validate_mixed(audio, cameras)?;
        let sink: TelemetrySink = Arc::new(Mutex::new(FleetTelemetry::new()));
        let executor = FleetExecutor::new(ExecutorConfig::with_workers(self.config.workers));
        let (reports, stats) =
            executor.run(self.queued_devices(audio, cameras, Some(&sink), None))?;
        // The executor has joined its workers; nothing else holds the
        // sink. The clone fallback is for safety only.
        let telemetry = Arc::try_unwrap(sink)
            .map(Mutex::into_inner)
            .unwrap_or_else(|sink| sink.lock().clone());
        Ok((FleetReport::new(reports), stats, telemetry))
    }

    /// [`PipelineFleet::run_mixed_telemetry`] with the live health plane
    /// attached: every device carries a [`DeviceHealthMonitor`] cutting
    /// virtual-time epochs at its step boundaries and feeding one shared
    /// [`FleetHealth`], whose [`FleetHealthReport`] — alert journal,
    /// per-device state machine history, SLO verdicts — is returned
    /// alongside the functional report and telemetry fold. Both folds are
    /// commutative, so every artifact is identical at every worker count.
    /// The functional [`FleetReport`] is byte-identical to a run with the
    /// plane off: health observes, it never steers the fleet.
    ///
    /// # Errors
    ///
    /// Same contract as [`PipelineFleet::run_mixed`], plus
    /// [`CoreError::Config`] when [`FleetConfig::health`] is unset — a
    /// health run with no health config would silently return an empty
    /// report that reads as a perfectly healthy fleet.
    pub fn run_mixed_health(
        &self,
        audio: &[Scenario],
        cameras: &[CameraScenario],
    ) -> Result<(
        FleetReport,
        ExecutorStats,
        FleetTelemetry,
        FleetHealthReport,
    )> {
        self.config.reject_sharding()?;
        self.validate_mixed(audio, cameras)?;
        let Some(health_config) = &self.config.health else {
            return Err(CoreError::Config {
                reason: "run_mixed_health needs FleetConfig::health set; an unconfigured \
                         health plane would report every device as healthy"
                    .to_owned(),
            });
        };
        let sink: TelemetrySink = Arc::new(Mutex::new(FleetTelemetry::new()));
        let health: HealthSink = Arc::new(Mutex::new(FleetHealth::new(health_config.window)));
        let executor = FleetExecutor::new(ExecutorConfig::with_workers(self.config.workers));
        let (reports, stats) =
            executor.run(self.queued_devices(audio, cameras, Some(&sink), Some(&health)))?;
        let telemetry = Arc::try_unwrap(sink)
            .map(Mutex::into_inner)
            .unwrap_or_else(|sink| sink.lock().clone());
        let health = Arc::try_unwrap(health)
            .map(Mutex::into_inner)
            .unwrap_or_else(|health| health.lock().clone());
        Ok((FleetReport::new(reports), stats, telemetry, health.report()))
    }

    /// The historical harness: one OS thread per device, every device
    /// stack resident at once. Kept as E15's baseline; produces a
    /// byte-identical [`FleetReport`] to the executor (device runs are
    /// hermetic), at one-thread-per-device host cost.
    ///
    /// # Errors
    ///
    /// Same contract as [`PipelineFleet::run_mixed`].
    pub fn run_mixed_threaded(
        &self,
        audio: &[Scenario],
        cameras: &[CameraScenario],
    ) -> Result<FleetReport> {
        self.config.reject_sharding()?;
        self.validate_mixed(audio, cameras)?;
        run_thread_per_device(self.queued_devices(audio, cameras, None, None)).map(FleetReport::new)
    }

    fn validate_mixed(&self, audio: &[Scenario], cameras: &[CameraScenario]) -> Result<()> {
        if self.config.total_devices() == 0 {
            return Err(CoreError::Config {
                reason: "fleet needs at least one device".to_owned(),
            });
        }
        if self.config.devices > 0 && audio.is_empty() {
            return Err(CoreError::Config {
                reason: "audio devices configured but no audio scenarios given".to_owned(),
            });
        }
        if self.config.devices == 0 && !audio.is_empty() {
            return Err(CoreError::Config {
                reason: "audio scenarios given but no audio devices configured".to_owned(),
            });
        }
        if self.config.camera_devices > 0 && cameras.is_empty() {
            return Err(CoreError::Config {
                reason: "camera devices configured but no camera scenarios given".to_owned(),
            });
        }
        if self.config.camera_devices == 0 && !cameras.is_empty() {
            return Err(CoreError::Config {
                reason: "camera scenarios given but no camera devices configured".to_owned(),
            });
        }
        Ok(())
    }

    /// The fleet-level telemetry config a given device runs under: the
    /// fleet's metrics switch, with span retention only on the designated
    /// deep-dive devices. Falls back to the per-pipeline config when the
    /// fleet plane is off, so direct pipeline telemetry keeps working —
    /// unless the health plane is on, which needs the tracer's metrics to
    /// cut epochs from and therefore forces them.
    fn device_telemetry(&self, base: TelemetryConfig, device: usize) -> TelemetryConfig {
        if !self.config.telemetry.enabled {
            if self.config.health.is_some() {
                return TelemetryConfig {
                    capture_spans: self.config.trace_devices.contains(&device),
                    ..TelemetryConfig::metrics()
                };
            }
            return base;
        }
        TelemetryConfig {
            capture_spans: self.config.trace_devices.contains(&device),
            ..self.config.telemetry
        }
    }

    /// Queues the fleet's devices. Callers have already validated that a
    /// modality's scenario slice is non-empty exactly when it has devices.
    fn queued_devices(
        &self,
        audio: &[Scenario],
        cameras: &[CameraScenario],
        sink: Option<&TelemetrySink>,
        health: Option<&HealthSink>,
    ) -> Vec<QueuedDevice> {
        let audio_devices = self.config.devices;
        let camera_devices = self.config.camera_devices;
        let monitor = |device: usize| match (health, &self.config.health) {
            (Some(sink), Some(config)) => Some(DeviceHealthMonitor::new(
                device,
                config.clone(),
                Arc::clone(sink),
            )),
            _ => None,
        };
        // One shared copy per distinct scenario; devices hold `Arc`s.
        let audio: Vec<Arc<Scenario>> = audio.iter().cloned().map(Arc::new).collect();
        let cameras: Vec<Arc<CameraScenario>> = cameras.iter().cloned().map(Arc::new).collect();
        let mut tasks = Vec::with_capacity(audio_devices + camera_devices);
        for device in 0..audio_devices {
            let mut config = self.config.pipeline.clone();
            config.telemetry = self.device_telemetry(config.telemetry, device);
            if let Some(spec) = self.config.faults {
                config.faults = Some(spec.for_device(device as u64));
            }
            if let Some(plane) = &self.config.ingest {
                config.ingest = Some(IngestHook::new(Arc::clone(plane), device as u64));
            }
            tasks.push(audio_device_task_observed(
                device,
                Arc::clone(&audio[device % audio.len()]),
                config,
                self.models.clone(),
                sink.cloned(),
                monitor(device),
            ));
        }
        for camera in 0..camera_devices {
            let device = audio_devices + camera;
            let mut config = self.config.camera_pipeline.clone();
            config.telemetry = self.device_telemetry(config.telemetry, device);
            if let Some(spec) = self.config.faults {
                config.faults = Some(spec.for_device(device as u64));
            }
            if let Some(plane) = &self.config.ingest {
                config.ingest = Some(IngestHook::new(Arc::clone(plane), device as u64));
            }
            tasks.push(camera_device_task_observed(
                device,
                Arc::clone(&cameras[camera % cameras.len()]),
                config,
                self.models.clone(),
                sink.cloned(),
                monitor(device),
            ));
        }
        tasks
    }

    fn execute(
        &self,
        audio: &[Scenario],
        cameras: &[CameraScenario],
    ) -> Result<(FleetReport, ExecutorStats)> {
        let executor = FleetExecutor::new(ExecutorConfig::with_workers(self.config.workers));
        let (reports, stats) = executor.run(self.queued_devices(audio, cameras, None, None))?;
        Ok((FleetReport::new(reports), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perisec_workload::scenario::Scenario;
    use std::sync::Arc;

    #[test]
    fn shared_models_cross_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedModels>();
        assert_send_sync::<FleetReport>();
    }

    #[test]
    fn fleet_cloud_decisions_survive_network_chaos() {
        use perisec_relay::netsim::FaultSpec;
        let faults = FaultSpec {
            drop_permille: 100,
            duplicate_permille: 150,
            reorder_permille: 80,
            corrupt_permille: 100,
            outage: Some((3, 6)),
            ..FaultSpec::none(0xC4A05)
        };
        let config = |faults, workers| FleetConfig {
            devices: 3,
            pipeline: PipelineConfig {
                train_utterances: 60,
                batch_windows: 2,
                ..PipelineConfig::default()
            },
            workers,
            faults,
            ..FleetConfig::of(0)
        };
        let models = SharedModels::for_config(&config(None, 1).pipeline).unwrap();
        let scenarios = Scenario::fleet(3, 5, 0.5, SimDuration::from_secs(1), 0xE20);
        let run = |faults, workers| {
            PipelineFleet::with_models(config(faults, workers), models.clone())
                .run(&scenarios)
                .unwrap()
        };

        let healthy = run(None, 2);
        let faulted = run(Some(faults), 2);
        // The chaos was real (the cloud saw redeliveries or rejected
        // corrupt records) yet the decision stream is byte-identical.
        assert!(
            faulted.total_redelivered_records() + faulted.total_rejected_records() > 0,
            "fault spec injected no observable chaos"
        );
        assert_eq!(
            healthy.cloud_decisions_json(),
            faulted.cloud_decisions_json(),
            "network chaos changed the cloud's decisions"
        );
        assert_eq!(healthy.total_utterances(), faulted.total_utterances());
        // And the faulted run itself is worker-count invariant.
        let faulted_serial = run(Some(faults), 1);
        assert_eq!(faulted_serial.to_json(), faulted.to_json());
    }

    #[test]
    fn fleet_runs_concurrent_devices_off_one_model_set() {
        let fleet = PipelineFleet::new(FleetConfig {
            devices: 4,
            pipeline: PipelineConfig {
                train_utterances: 60,
                batch_windows: 4,
                ..PipelineConfig::default()
            },
            ..FleetConfig::of(0)
        })
        .unwrap();
        let scenarios = Scenario::fleet(4, 6, 0.5, SimDuration::from_secs(2), 0xF1EE7);
        let report = fleet.run(&scenarios).unwrap();

        assert_eq!(report.device_count(), 4);
        assert_eq!(report.total_utterances(), 24);
        assert!(report.total_sensitive_utterances() > 0);
        assert!(report.leakage_rate() < 0.5);
        assert!(report.total_smc_calls() >= 4);
        assert!(report.mean_end_to_end() > SimDuration::ZERO);
        assert!(report.total_energy_mj() > 0.0);
        // Devices got distinct scenarios, in order.
        for (i, device) in report.devices().iter().enumerate() {
            assert_eq!(device.device, i);
            assert_eq!(device.scenario, scenarios[i].name);
        }
        // One model set shared by reference, not copied: building another
        // pipeline from the fleet's models bumps the weights' refcount.
        let audio = fleet.models().audio().unwrap();
        let before = Arc::strong_count(&audio.classifier);
        let _pipeline = crate::pipeline::SecurePipeline::with_models(
            fleet.config().pipeline.clone(),
            fleet.models(),
        )
        .unwrap();
        assert_eq!(Arc::strong_count(&audio.classifier), before + 1);
    }

    #[test]
    fn fleet_rejects_degenerate_configurations() {
        assert!(PipelineFleet::new(FleetConfig {
            devices: 0,
            ..FleetConfig::default()
        })
        .is_err());
        // `with_models` skips `new`'s validation; `run` must still refuse.
        let models =
            SharedModels::train(perisec_ml::classifier::Architecture::Cnn, 16, 0xF1EE).unwrap();
        let zero_fleet = PipelineFleet::with_models(
            FleetConfig {
                devices: 0,
                ..FleetConfig::default()
            },
            models,
        );
        let scenarios = Scenario::fleet(1, 2, 0.5, SimDuration::from_secs(1), 1);
        assert!(zero_fleet.run(&scenarios).is_err());
        let fleet = PipelineFleet::new(FleetConfig {
            devices: 1,
            pipeline: PipelineConfig {
                train_utterances: 30,
                ..PipelineConfig::default()
            },
            ..FleetConfig::of(0)
        })
        .unwrap();
        assert!(fleet.run(&[]).is_err());
        // Camera devices without camera scenarios are rejected too.
        let mixed = PipelineFleet::with_models(FleetConfig::mixed(0, 1), fleet.models().clone());
        assert!(mixed.run_mixed(&[], &[]).is_err());
        assert!(mixed.run_mixed_threaded(&[], &[]).is_err());
        // run() on a config with camera devices refuses instead of
        // silently running an audio-only subset of the fleet.
        let mixed = PipelineFleet::with_models(FleetConfig::mixed(1, 1), fleet.models().clone());
        let scenarios = Scenario::fleet(1, 2, 0.5, SimDuration::from_secs(1), 2);
        assert!(mixed.run(&scenarios).is_err());
    }

    #[test]
    fn camera_only_fleets_never_train_speech_models() {
        let fleet = PipelineFleet::new(FleetConfig::mixed(0, 2)).unwrap();
        // Construction deferred everything: no audio models exist yet.
        assert!(format!("{:?}", fleet.models()).contains("audio_trained: false"));
        let cameras = perisec_workload::scenario::CameraScenario::fleet_cameras(
            2,
            4,
            0.5,
            SimDuration::from_secs(1),
            0xCA0,
        );
        let report = fleet.run_mixed(&[], &cameras).unwrap();
        assert_eq!(report.device_count_of(Modality::Camera), 2);
        assert_eq!(report.leaked_sensitive_utterances(), 0);
        // Running the camera devices trained the frame classifier but
        // still no speech models.
        let debug = format!("{:?}", fleet.models());
        assert!(debug.contains("vision_trained: true"));
        assert!(debug.contains("audio_trained: false"));
    }

    #[test]
    fn mixed_fleet_runs_both_modalities_off_one_model_set() {
        let fleet = PipelineFleet::new(FleetConfig {
            devices: 2,
            pipeline: PipelineConfig {
                train_utterances: 60,
                batch_windows: 4,
                ..PipelineConfig::default()
            },
            camera_devices: 2,
            camera_pipeline: crate::pipeline::CameraPipelineConfig {
                batch_windows: 4,
                ..crate::pipeline::CameraPipelineConfig::default()
            },
            ..FleetConfig::of(0)
        })
        .unwrap();
        let audio = Scenario::fleet(2, 6, 0.5, SimDuration::from_secs(2), 0xA1);
        let cameras = perisec_workload::scenario::CameraScenario::fleet_cameras(
            2,
            6,
            0.5,
            SimDuration::from_secs(2),
            0xCA,
        );
        let (report, stats) = fleet.run_mixed_stats(&audio, &cameras).unwrap();

        assert_eq!(report.device_count(), 4);
        assert_eq!(report.device_count_of(Modality::Audio), 2);
        assert_eq!(report.device_count_of(Modality::Camera), 2);
        assert_eq!(report.total_utterances(), 24);
        // The executor really bounded residency: never more than one
        // built stack per worker.
        assert!(stats.peak_resident <= stats.workers);
        assert_eq!(stats.completed, 4);
        // Both modalities filter: most sensitive traffic is stopped.
        assert!(report.total_sensitive_utterances() > 0);
        assert!(report.leakage_rate() < 0.5);
        // Camera devices relay verdicts only — no payload bytes anywhere
        // in their cloud reports.
        for device in report.devices() {
            if device.modality == Modality::Camera {
                assert!(device
                    .report
                    .cloud
                    .report
                    .events
                    .iter()
                    .all(|e| e.audio_bytes == 0));
            }
        }
        // One model set: the frame classifier was trained once on first
        // use and every later request hands back the very same weights.
        let a = fleet.models().vision().unwrap();
        let b = fleet.models().vision().unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn sharded_configs_are_routed_to_the_scheduler_crate() {
        let models =
            SharedModels::train(perisec_ml::classifier::Architecture::Cnn, 16, 0x5C4E).unwrap();
        let fleet = PipelineFleet::with_models(
            FleetConfig {
                devices: 1,
                tee_cores: 4,
                ..FleetConfig::of(0)
            },
            models,
        );
        let scenarios = Scenario::fleet(1, 2, 0.5, SimDuration::from_secs(1), 3);
        let err = fleet.run(&scenarios).unwrap_err();
        assert!(err.to_string().contains("ShardedFleet"), "{err}");
        assert!(fleet.run_mixed(&scenarios, &[]).is_err());
        assert!(fleet.run_mixed_threaded(&scenarios, &[]).is_err());
        // `new` rejects before paying for model training.
        assert!(PipelineFleet::new(FleetConfig {
            devices: 1,
            tee_cores: 2,
            ..FleetConfig::of(0)
        })
        .is_err());
    }

    #[test]
    fn fleet_report_exposes_latency_percentiles() {
        let fleet = PipelineFleet::new(FleetConfig {
            devices: 2,
            pipeline: PipelineConfig {
                train_utterances: 60,
                batch_windows: 2,
                ..PipelineConfig::default()
            },
            ..FleetConfig::of(0)
        })
        .unwrap();
        let scenarios = Scenario::fleet(2, 6, 0.5, SimDuration::from_secs(1), 0x9E);
        let report = fleet.run(&scenarios).unwrap();
        let percentiles = report.latency_percentiles();
        assert!(percentiles.p50 > SimDuration::ZERO);
        assert!(percentiles.p50 <= percentiles.p95);
        assert!(percentiles.p95 <= percentiles.p99);
        assert_eq!(report.p50_end_to_end(), percentiles.p50);
        assert_eq!(report.p95_end_to_end(), percentiles.p95);
        assert_eq!(report.p99_end_to_end(), percentiles.p99);
        assert_eq!(report.mean_end_to_end(), percentiles.mean);
        // The cached figures are the same values a fresh computation
        // yields (the cache can never go stale on an assembled report).
        assert_eq!(
            LatencyPercentiles::from_sample(report.latency_sample()),
            percentiles
        );
        // The percentiles ride along in the serialized report.
        let json = report.to_json();
        assert!(json.contains("latency_percentiles"));
        assert!(json.contains("\"p99\""));
        assert!(json.contains("devices"));
        // An empty report yields zeroed percentiles, not a panic.
        assert_eq!(
            FleetReport::default().latency_percentiles(),
            crate::report::LatencyPercentiles::default()
        );
    }

    #[test]
    fn fleet_report_merges_device_outcomes() {
        let fleet = PipelineFleet::new(FleetConfig {
            devices: 2,
            pipeline: PipelineConfig {
                train_utterances: 60,
                ..PipelineConfig::default()
            },
            ..FleetConfig::of(0)
        })
        .unwrap();
        // Fewer scenarios than devices: they wrap around.
        let scenarios = Scenario::fleet(1, 4, 0.0, SimDuration::from_secs(1), 42);
        let report = fleet.run(&scenarios).unwrap();
        assert_eq!(report.device_count(), 2);
        assert_eq!(report.total_utterances(), 8);
        assert_eq!(report.total_sensitive_utterances(), 0);
        assert_eq!(report.leakage_rate(), 0.0);
        // The merged report serializes and round-trips.
        assert!(report.to_json().contains("devices"));
        use serde::{Deserialize as _, Serialize as _};
        let round = FleetReport::from_value(&report.to_value()).unwrap();
        assert_eq!(round, report);
    }

    #[test]
    fn fleet_telemetry_folds_devices_without_perturbing_the_report() {
        let fleet = |telemetry: TelemetryConfig, trace_devices: BTreeSet<usize>| {
            PipelineFleet::new(FleetConfig {
                devices: 3,
                pipeline: PipelineConfig {
                    train_utterances: 60,
                    batch_windows: 4,
                    ..PipelineConfig::default()
                },
                telemetry,
                trace_devices,
                ..FleetConfig::of(0)
            })
            .unwrap()
        };
        let scenarios = Scenario::fleet(3, 4, 0.5, SimDuration::from_secs(1), 0x7E1E);

        let observed = fleet(TelemetryConfig::metrics(), BTreeSet::from([1]));
        let (report, _, telemetry) = observed.run_mixed_telemetry(&scenarios, &[]).unwrap();
        assert_eq!(telemetry.devices, 3);
        // Metrics flowed from every layer: pipeline stages, SMC crossings
        // and TA inference all contributed histograms.
        assert!(telemetry.histograms.contains_key("smc.call"));
        assert!(telemetry.histograms.contains_key("ta.classify"));
        assert!(telemetry.counters.get("pipeline.windows").copied() > Some(0));
        // Only the designated deep-dive device retained spans.
        assert!(telemetry.trace(1).is_some());
        assert!(telemetry.trace(0).is_none());
        assert_eq!(telemetry.dropped_spans, 0);
        // Zero perturbation: the functional report is byte-identical to a
        // run with the telemetry plane off.
        let baseline = fleet(TelemetryConfig::default(), BTreeSet::new());
        let silent = baseline.run_mixed(&scenarios, &[]).unwrap();
        assert_eq!(silent.to_json(), report.to_json());
        // The combined export embeds the telemetry section.
        let combined = report.to_json_with_telemetry(&telemetry);
        assert!(combined.contains("\"telemetry\""));
        assert!(combined.contains("smc.call"));
    }

    #[test]
    fn health_plane_judges_slos_without_perturbing_the_report() {
        use perisec_telemetry::{HealthState, SloSpec};

        let fleet = |health: Option<HealthConfig>| {
            PipelineFleet::new(FleetConfig {
                devices: 2,
                pipeline: PipelineConfig {
                    train_utterances: 60,
                    batch_windows: 4,
                    ..PipelineConfig::default()
                },
                health,
                ..FleetConfig::of(0)
            })
            .unwrap()
        };
        let scenarios = Scenario::fleet(2, 6, 0.5, SimDuration::from_secs(1), 0x8EA1);

        // A health run without a health config is refused, not silently
        // reported as an all-healthy fleet.
        assert!(fleet(None).run_mixed_health(&scenarios, &[]).is_err());

        // Generous objectives: every device finishes Healthy with an
        // empty journal — and the functional report is byte-identical to
        // a plane-off run (health observes, never steers).
        let generous = HealthConfig {
            slos: vec![SloSpec::p95("tee-filter", SimDuration::from_secs(10))],
            ..HealthConfig::with_window(SimDuration::from_secs(1))
        };
        let (report, _, telemetry, health) = fleet(Some(generous))
            .run_mixed_health(&scenarios, &[])
            .unwrap();
        assert_eq!(health.devices, 2);
        assert_eq!(health.healthy, 2);
        assert!(health.alerts.is_empty(), "{}", health.to_table());
        assert!(!health.epochs.is_empty());
        // The health plane forced the metrics plane on (the fleet's own
        // telemetry config is off) so it had series to judge.
        assert!(telemetry.histograms.contains_key("tee-filter"));
        let silent = fleet(None).run_mixed(&scenarios, &[]).unwrap();
        assert_eq!(silent.to_json(), report.to_json());

        // An unattainable objective demotes every device and fills the
        // journal with breaches.
        let strict = HealthConfig {
            slos: vec![SloSpec::p50("tee-filter", SimDuration::from_nanos(1))],
            ..HealthConfig::with_window(SimDuration::from_secs(1))
        };
        let (_, _, _, judged) = fleet(Some(strict))
            .run_mixed_health(&scenarios, &[])
            .unwrap();
        assert_eq!(judged.healthy, 0);
        assert!(judged.transitions_to(HealthState::Degraded) >= 2);
        assert!(judged.alerts_of("slo_breach") > 0);
    }

    #[test]
    fn worker_counts_change_nothing_but_the_schedule() {
        let models =
            SharedModels::train(perisec_ml::classifier::Architecture::Cnn, 60, 0xF1E).unwrap();
        let cameras = perisec_workload::scenario::CameraScenario::fleet_cameras(
            6,
            4,
            0.5,
            SimDuration::from_secs(1),
            0xF1E,
        );
        let mut jsons = Vec::new();
        for workers in [1usize, 2, 8] {
            let fleet = PipelineFleet::with_models(
                FleetConfig {
                    workers,
                    ..FleetConfig::mixed(0, 6)
                },
                models.clone(),
            );
            let (report, stats) = fleet.run_mixed_stats(&[], &cameras).unwrap();
            assert!(stats.workers <= workers.max(1));
            jsons.push(report.to_json());
        }
        assert_eq!(jsons[0], jsons[1]);
        assert_eq!(jsons[1], jsons[2]);
    }
}
