//! Device-side wiring of the sharded attested ingest plane.
//!
//! The plane itself lives in `perisec-ingest` (which depends on this
//! crate's lower layers, not the other way round); the pipeline only
//! sees the [`SessionIngest`] trait object. An [`IngestHook`] is one
//! device's handle onto a shared plane — the plane plus the device's
//! session id — and [`IngestEndpoint`] adapts it to the network fabric:
//! registered under the cloud hostname, it forwards every wire request
//! to the plane together with the device's *virtual* clock reading, so
//! the plane can evaluate its crash schedule against the same timeline
//! the device retries on.

use std::sync::Arc;

use perisec_relay::attest::SessionIngest;
use perisec_relay::cloud::CloudReport;
use perisec_relay::netsim::NetworkService;
use perisec_tz::time::SimClock;

/// One device's handle onto a shared ingest plane.
#[derive(Clone)]
pub struct IngestHook {
    plane: Arc<dyn SessionIngest>,
    session: u64,
}

impl std::fmt::Debug for IngestHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestHook")
            .field("session", &self.session)
            .finish()
    }
}

impl IngestHook {
    /// Binds `session` of `plane` to a device.
    pub fn new(plane: Arc<dyn SessionIngest>, session: u64) -> Self {
        IngestHook { plane, session }
    }

    /// The session id this device ingests under.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The session's committed-decision report — the plane-side
    /// equivalent of `MockCloudService::report`.
    pub fn report(&self) -> CloudReport {
        self.plane.session_report(self.session)
    }

    /// Clears the session's report between experiment runs, mirroring
    /// `MockCloudService::reset`.
    pub fn reset(&self) {
        self.plane.reset_session(self.session);
    }

    /// The fabric-facing endpoint for this hook, reading request times
    /// off the device's virtual clock.
    pub(crate) fn endpoint(&self, clock: SimClock) -> Arc<IngestEndpoint> {
        Arc::new(IngestEndpoint {
            hook: self.clone(),
            clock,
        })
    }
}

/// [`NetworkService`] adapter: what the pipeline registers under the
/// cloud hostname instead of a local `MockCloudService` when a fleet
/// routes through the plane.
pub(crate) struct IngestEndpoint {
    hook: IngestHook,
    clock: SimClock,
}

impl NetworkService for IngestEndpoint {
    fn handle(&self, _conn: u64, request: &[u8]) -> Vec<u8> {
        self.hook
            .plane
            .handle(self.hook.session, self.clock.now().as_nanos(), request)
    }
}

/// Where a pipeline's cloud decisions land: the in-process mock cloud
/// (the direct path) or a session of the shared ingest plane. Both
/// reset and report the same way, so the pipeline helpers stay
/// path-agnostic.
#[derive(Debug, Clone)]
pub(crate) enum CloudLedger {
    /// The paper's single trusted endpoint, owned by this pipeline.
    Direct(Arc<perisec_relay::MockCloudService>),
    /// One session of a fleet-shared sharded plane.
    Plane(IngestHook),
}

impl CloudLedger {
    pub(crate) fn reset(&self) {
        match self {
            CloudLedger::Direct(cloud) => cloud.reset(),
            CloudLedger::Plane(hook) => hook.reset(),
        }
    }

    pub(crate) fn report(&self) -> CloudReport {
        match self {
            CloudLedger::Direct(cloud) => cloud.report(),
            CloudLedger::Plane(hook) => hook.report(),
        }
    }
}
