//! # perisec-core — the paper's end-to-end secure peripheral pipeline
//!
//! This crate composes every substrate into the system of the paper's
//! Fig. 1 and its untrusted baseline:
//!
//! * [`policy`] — the privacy policy: what counts as sensitive and what to
//!   do with it (drop, redact, forward);
//! * [`source`] — a shared playback signal source so scenario runners can
//!   feed utterances into a microphone owned by the secure driver;
//! * [`filter_ta`] — the trusted application at the heart of the design:
//!   pulls audio from the I2S PTA, transcribes it with the in-TA STT,
//!   classifies the transcript (CNN / Transformer / hybrid), applies the
//!   policy, and relays only permitted content to the cloud over the
//!   TLS-like channel through the TEE supplicant;
//! * [`stage`] — the staged architecture: capture → filter → relay behind
//!   the [`stage::PipelineStage`] trait, with batch-aware TEE crossings;
//! * [`pipeline`] — [`pipeline::SecurePipeline`] (the proposed design) and
//!   [`pipeline::BaselinePipeline`] (driver in the untrusted kernel, no
//!   filtering), both runnable against `perisec-workload` scenarios and
//!   both assembled from the stages;
//! * [`vision_ta`] — [`vision_ta::VisionTa`], the camera modality's filter
//!   TA: pulls frames from the camera PTA, classifies them with the in-TA
//!   frame CNN, and relays only sealed verdict records — never pixels;
//! * [`executor`] — the bounded work-stealing fleet executor:
//!   [`executor::FleetExecutor`] steps resumable device tasks on a fixed
//!   worker pool, so fleet scale is a function of work, not thread count;
//! * [`batcher`] — [`batcher::AdaptiveBatcher`]: picks each TEE
//!   crossing's batch size from queue depth against a latency SLO;
//! * [`fleet`] — [`fleet::PipelineFleet`]: M concurrent device pipelines
//!   (audio, camera, or a mix) sharing one trained model set, multiplexed
//!   onto the executor, with merged fleet reports;
//! * [`ingest`] — [`ingest::IngestHook`]: one device's handle onto a
//!   fleet-shared sharded attested ingest plane (`perisec-ingest`),
//!   routing the TA's relay records to an epoch-fenced shard under the
//!   cloud hostname instead of a per-device mock cloud;
//! * [`report`] — per-run reports: stage latencies, world-switch and
//!   energy accounting, and the privacy-leakage summary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
mod cloud_channel;
pub mod executor;
pub mod filter_ta;
pub mod fleet;
pub mod ingest;
pub mod pipeline;
pub mod policy;
pub mod report;
pub mod source;
pub mod stage;
pub mod vision_ta;

pub use batcher::AdaptiveBatcher;
pub use cloud_channel::RelayRetryConfig;
pub use executor::{
    DeviceTask, ExecutorConfig, ExecutorStats, FleetExecutor, QueuedDevice, StealRecord,
    StepOutcome,
};
pub use filter_ta::{FilterStats, FilterTa, FILTER_TA_NAME};
pub use fleet::{DeviceReport, FleetConfig, FleetReport, Modality, PipelineFleet};
pub use ingest::IngestHook;
pub use pipeline::{
    BaselinePipeline, CameraPipelineConfig, PipelineConfig, SecureCameraPipeline, SecurePipeline,
    SharedModels,
};
pub use policy::{FilterDecision, FilterMode, PrivacyPolicy};
pub use report::{CloudOutcome, LatencyBreakdown, PipelineReport, WorkloadSummary};
pub use source::{SharedPlayback, SharedSceneQueue};
pub use stage::{FilteredBatch, PipelineStage, PreparedBatch, WindowSpec, WindowVerdict};
pub use vision_ta::{VisionStats, VisionTa, VISION_TA_NAME};

use std::error::Error;
use std::fmt;

/// Errors raised while assembling or running a pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The TEE stack reported an error.
    Tee(perisec_optee::TeeError),
    /// The kernel substrate reported an error.
    Kernel(perisec_kernel::KernelError),
    /// The ML stack reported an error.
    Ml(perisec_ml::MlError),
    /// The relay stack reported an error.
    Relay(perisec_relay::RelayError),
    /// Pipeline configuration was inconsistent.
    Config {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Tee(e) => write!(f, "tee error: {e}"),
            CoreError::Kernel(e) => write!(f, "kernel error: {e}"),
            CoreError::Ml(e) => write!(f, "ml error: {e}"),
            CoreError::Relay(e) => write!(f, "relay error: {e}"),
            CoreError::Config { reason } => write!(f, "configuration error: {reason}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Tee(e) => Some(e),
            CoreError::Kernel(e) => Some(e),
            CoreError::Ml(e) => Some(e),
            CoreError::Relay(e) => Some(e),
            CoreError::Config { .. } => None,
        }
    }
}

impl From<perisec_optee::TeeError> for CoreError {
    fn from(e: perisec_optee::TeeError) -> Self {
        CoreError::Tee(e)
    }
}

impl From<perisec_kernel::KernelError> for CoreError {
    fn from(e: perisec_kernel::KernelError) -> Self {
        CoreError::Kernel(e)
    }
}

impl From<perisec_ml::MlError> for CoreError {
    fn from(e: perisec_ml::MlError) -> Self {
        CoreError::Ml(e)
    }
}

impl From<perisec_relay::RelayError> for CoreError {
    fn from(e: perisec_relay::RelayError) -> Self {
        CoreError::Relay(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_error_wraps_layer_errors() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
        let e = CoreError::from(perisec_ml::MlError::NotTrained);
        assert!(e.to_string().contains("ml error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
