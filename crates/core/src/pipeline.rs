//! The end-to-end pipelines: the paper's secure design and its baseline.
//!
//! Both pipelines are assembled from the staged architecture in
//! [`crate::stage`]: a capture stage, a filter stage and a relay stage
//! chained behind the [`crate::stage::PipelineStage`] trait. Scenario
//! events are driven through the stages in batches of
//! [`PipelineConfig::batch_windows`] utterances; for the secure pipeline
//! every batch crosses the TEE boundary exactly once (one SMC, one
//! world-switch round trip, one batched relay record), which is the
//! transition-amortization lever the related work identifies as the key to
//! production throughput on TrustZone-class hardware.

use std::sync::Arc;

use parking_lot::Mutex;
use perisec_devices::camera::{CameraSensor, SceneKind};
use perisec_devices::codec::AudioEncoding;
use perisec_devices::mic::Microphone;
use perisec_kernel::i2s_driver::BaselineI2sDriver;
use perisec_kernel::pcm::PcmHwParams;
use perisec_kernel::trace::FunctionTracer;
use perisec_ml::classifier::{Architecture, SensitiveClassifier, TrainConfig};
use perisec_ml::int8::{QuantFrameCnn, QuantSensitiveClassifier};
use perisec_ml::quant::QuantMode;
use perisec_ml::stt::{KeywordStt, SttConfig};
use perisec_ml::vision::{FrameCnn, VisionConfig};
use perisec_optee::{
    Supplicant, TaUuid, TeeClient, TeeCore, TeeParam, TeeParams, TeeSessionHandle,
};
use perisec_relay::cloud::MockCloudService;
use perisec_relay::netsim::{FaultSpec, NetworkFabric};
use perisec_secure_driver::camera::SecureCameraDriver;
use perisec_secure_driver::camera_pta::CameraPta;
use perisec_secure_driver::driver::SecureI2sDriver;
use perisec_secure_driver::pta::I2sPta;
use perisec_telemetry::{DeviceTelemetry, PressureMonitor, SloSpec, TelemetryConfig, Tracer};
use perisec_tz::platform::Platform;
use perisec_tz::stats::TzStatsSnapshot;
use perisec_tz::time::{SimClock, SimDuration, SimInstant};
use perisec_workload::corpus::CorpusGenerator;
use perisec_workload::scenario::{CameraScenario, Scenario};
use perisec_workload::synth::SpeechSynthesizer;
use perisec_workload::vocab::Vocabulary;

use crate::batcher::AdaptiveBatcher;
use crate::cloud_channel::RelayRetryConfig;
use crate::filter_ta::{cmd as filter_cmd, default_cloud_host, default_psk, FilterTa};
use crate::ingest::{CloudLedger, IngestHook};
use crate::policy::PrivacyPolicy;
use crate::report::{CloudOutcome, PipelineReport, WorkloadSummary};
use crate::source::{SharedPlayback, SharedSceneQueue};
use crate::stage::{
    CloudRelayStage, KernelCaptureStage, PassthroughFilterStage, PipelineStage, SecureCaptureStage,
    SecureFilterStage, SecureFrameCaptureStage, SecureRelayStage,
};
use crate::vision_ta::VisionTa;
use crate::{CoreError, Result};

/// Deterministic degradation injection for health-plane experiments:
/// once the device's virtual clock passes `after`, every processed
/// window costs an extra `per_window` of virtual time inside the filter
/// stage — the crossing gets slower mid-run, exactly as a thermal
/// throttle or a noisy co-tenant would make it. Pure virtual-time
/// arithmetic, so an injected fault fires the *same* health alerts at
/// the *same* virtual instants at any executor worker count (the E19
/// gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeSpec {
    /// Virtual time (from boot) at which the degradation sets in.
    pub after: SimDuration,
    /// Extra filter-stage cost per window from then on.
    pub per_window: SimDuration,
}

/// Configuration shared by both pipelines.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Classifier architecture hosted by the filter TA.
    pub architecture: Architecture,
    /// Privacy policy installed in the filter TA.
    pub policy: PrivacyPolicy,
    /// Capture period size in frames (10 ms at 16 kHz by default).
    pub period_frames: usize,
    /// Encoding applied by the driver before data leaves its buffers.
    pub encoding: AudioEncoding,
    /// Number of utterances used to train the classifier head.
    pub train_utterances: usize,
    /// Seed for the training corpus.
    pub corpus_seed: u64,
    /// Use the constrained IoT platform instead of the Jetson-class one.
    pub constrained_platform: bool,
    /// Override the secure carve-out size (KiB), if set.
    pub secure_ram_kib: Option<u64>,
    /// Utterances driven through the stages per batch. `1` reproduces the
    /// paper's per-utterance behaviour; larger batches amortize the TEE
    /// boundary: world switches per utterance drop by roughly this factor.
    pub batch_windows: usize,
    /// When set, an [`AdaptiveBatcher`] picks each TEE crossing's batch
    /// size from the remaining queue depth against this per-utterance
    /// latency SLO instead of the fixed `batch_windows` — the audio
    /// counterpart of the sharded vision pipeline's SLO knob.
    pub latency_slo: Option<SimDuration>,
    /// When set (and `latency_slo` is driving an adaptive batcher), a
    /// tracer-free [`PressureMonitor`] judges the per-window share of
    /// each filter crossing against this objective over fixed virtual
    /// windows (`budget ×`
    /// [`PressureMonitor::BUDGETS_PER_WINDOW`]) and feeds its verdict to
    /// the batcher: `Degraded` halves the batcher's headroom, `Critical`
    /// falls back to single-window probes. The observability→control
    /// loop of the health plane; inert without `latency_slo`.
    pub slo_pressure: Option<SloSpec>,
    /// Deterministic mid-run degradation injection (see [`DegradeSpec`]);
    /// `None` (the default) runs the undisturbed pipeline.
    pub degrade: Option<DegradeSpec>,
    /// Numeric representation of the in-TA classifier: [`QuantMode::Int8`]
    /// (the default) keeps the quantized weights resident and runs the
    /// fused integer kernels; [`QuantMode::F32`] is the accuracy baseline
    /// E16 compares against. Architectures without an int8 form
    /// (Transformer / Hybrid) fall back to f32 transparently.
    pub quant_mode: QuantMode,
    /// Telemetry plane switchboard (off by default). When enabled, the
    /// pipeline, the TEE core and the TAs record virtual-time spans into
    /// one shared tracer; spans read the *simulated* clock, so telemetry
    /// never changes a report.
    pub telemetry: TelemetryConfig,
    /// Deterministic network chaos between the device and the cloud (see
    /// [`FaultSpec`]); `None` (the default) runs a perfect network. The
    /// fault schedule is a pure function of `(seed, device, send
    /// sequence)`, so it replays identically at every worker count.
    pub faults: Option<FaultSpec>,
    /// Retry/backoff policy of the TA-side relay (and of the baseline's
    /// normal-world relay).
    pub retry: RelayRetryConfig,
    /// When set, the pipeline routes its cloud traffic through this
    /// session of a fleet-shared sharded ingest plane instead of a
    /// pipeline-local [`MockCloudService`]: the filter TA attests its
    /// measurement before data flows, and every record is epoch-fenced
    /// against shard restarts. `None` (the default) is the direct path.
    pub ingest: Option<IngestHook>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            architecture: Architecture::Cnn,
            policy: PrivacyPolicy::block_sensitive(),
            period_frames: 160,
            encoding: AudioEncoding::PcmLe16,
            train_utterances: 160,
            corpus_seed: 0xC0FFEE,
            constrained_platform: false,
            secure_ram_kib: None,
            batch_windows: 1,
            latency_slo: None,
            slo_pressure: None,
            degrade: None,
            quant_mode: QuantMode::default(),
            telemetry: TelemetryConfig::default(),
            faults: None,
            retry: RelayRetryConfig::default(),
            ingest: None,
        }
    }
}

fn build_platform(constrained: bool, secure_ram_kib: Option<u64>) -> Platform {
    let mut builder = Platform::builder();
    if constrained {
        builder = builder
            .spec(perisec_tz::platform::PlatformSpec::constrained_mcu())
            .cost_model(perisec_tz::cost::CostModel::constrained_mcu())
            .power_model(perisec_tz::power::PowerModel::constrained_mcu());
    }
    if let Some(kib) = secure_ram_kib {
        builder = builder.secure_ram_kib(kib);
    }
    builder.build()
}

impl PipelineConfig {
    fn build_platform(&self) -> Platform {
        build_platform(self.constrained_platform, self.secure_ram_kib)
    }

    fn effective_batch(&self) -> usize {
        self.batch_windows.max(1)
    }
}

/// Configuration of the secure camera pipeline — the vision modality's
/// counterpart of [`PipelineConfig`].
#[derive(Debug, Clone)]
pub struct CameraPipelineConfig {
    /// Privacy policy installed in the vision TA.
    pub policy: PrivacyPolicy,
    /// Frames used to train the frame classifier.
    pub train_frames: usize,
    /// Seed for the synthetic training frames.
    pub corpus_seed: u64,
    /// Use the constrained IoT platform instead of the Jetson-class one.
    pub constrained_platform: bool,
    /// Override the secure carve-out size (KiB), if set.
    pub secure_ram_kib: Option<u64>,
    /// Scene events driven through the stages per batch — the same
    /// TEE-boundary amortization lever as the audio pipeline's.
    pub batch_windows: usize,
    /// Numeric representation of the in-TA frame classifier (see
    /// [`PipelineConfig::quant_mode`]). Int8 by default.
    pub quant_mode: QuantMode,
    /// Deterministic mid-run degradation injection (see [`DegradeSpec`]).
    pub degrade: Option<DegradeSpec>,
    /// Telemetry plane switchboard (see [`PipelineConfig::telemetry`]).
    pub telemetry: TelemetryConfig,
    /// Deterministic network chaos (see [`PipelineConfig::faults`]).
    pub faults: Option<FaultSpec>,
    /// Retry/backoff policy of the vision TA's relay.
    pub retry: RelayRetryConfig,
    /// Sharded-ingest session routing (see [`PipelineConfig::ingest`]).
    pub ingest: Option<IngestHook>,
}

impl Default for CameraPipelineConfig {
    fn default() -> Self {
        CameraPipelineConfig {
            policy: PrivacyPolicy::block_sensitive(),
            train_frames: 120,
            corpus_seed: 0xCAFE,
            constrained_platform: false,
            secure_ram_kib: None,
            batch_windows: 1,
            quant_mode: QuantMode::default(),
            degrade: None,
            telemetry: TelemetryConfig::default(),
            faults: None,
            retry: RelayRetryConfig::default(),
            ingest: None,
        }
    }
}

impl CameraPipelineConfig {
    fn build_platform(&self) -> Platform {
        build_platform(self.constrained_platform, self.secure_ram_kib)
    }

    fn effective_batch(&self) -> usize {
        self.batch_windows.max(1)
    }
}

/// The trained audio-side models (speech-to-text, text classifier, and
/// the vocabulary/synthesizer they were trained against).
#[derive(Debug, Clone)]
pub struct AudioModels {
    /// The keyword speech-to-text model.
    pub stt: Arc<KeywordStt>,
    /// The sensitive-content classifier.
    pub classifier: Arc<SensitiveClassifier>,
    /// The classifier's int8 deployment form, quantized **once** right
    /// after training (present for the CNN architecture; Transformer /
    /// Hybrid stay on the f32 baseline).
    pub classifier_int8: Option<Arc<QuantSensitiveClassifier>>,
    /// The vocabulary both models were trained against.
    pub vocabulary: Vocabulary,
    /// The synthesizer rendering scenario utterances into waveforms.
    pub synth: SpeechSynthesizer,
}

/// One trained model set, shareable across any number of pipelines.
///
/// Training dominates pipeline setup cost; a fleet trains once and hands
/// every device pipeline an [`Arc`] of the same weights. Each modality's
/// models train lazily on first use, so audio-only fleets never pay for
/// the frame classifier and camera-only fleets never pay for the speech
/// models — while a mixed fleet holds **one** model set across both.
#[derive(Clone)]
pub struct SharedModels {
    audio_architecture: Architecture,
    audio_train_utterances: usize,
    audio_corpus_seed: u64,
    audio: Arc<Mutex<Option<AudioModels>>>,
    vision: Arc<Mutex<VisionState>>,
}

/// The shared vision half of a model set: the training spec and, once
/// trained, the weights. Spec and weights live behind one shared lock so
/// every clone of a [`SharedModels`] sees the same spec — there is no
/// per-handle divergence.
struct VisionState {
    train_frames: usize,
    corpus_seed: u64,
    model: Option<Arc<FrameCnn>>,
    /// The int8 deployment form, quantized once from `model` on first
    /// int8-mode use and shared by every camera TA afterwards.
    int8: Option<Arc<QuantFrameCnn>>,
}

impl std::fmt::Debug for SharedModels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedModels")
            .field("architecture", &self.audio_architecture)
            .field("audio_trained", &self.audio.lock().is_some())
            .field("vision_trained", &self.vision.lock().model.is_some())
            .finish()
    }
}

/// Trains the frame classifier on synthetic [`SceneKind`] frames: a
/// balanced schedule over every scene kind, labelled by the threat
/// model's ground truth.
fn train_frame_cnn(train_frames: usize, seed: u64) -> Result<FrameCnn> {
    let mut camera = CameraSensor::smart_home("training-cam", seed)
        .map_err(perisec_kernel::KernelError::from)?;
    camera.start();
    let n = train_frames.max(16);
    let mut examples = Vec::with_capacity(n);
    for i in 0..n {
        let scene = SceneKind::ALL[i % SceneKind::ALL.len()];
        let frame = camera
            .capture_frame(scene)
            .map_err(perisec_kernel::KernelError::from)?;
        examples.push((frame.pixels, scene.is_sensitive()));
    }
    let mut cnn = FrameCnn::new(VisionConfig::smart_home());
    cnn.fit(&examples).map_err(CoreError::from)?;
    Ok(cnn)
}

fn train_audio_models(
    architecture: Architecture,
    train_utterances: usize,
    corpus_seed: u64,
) -> Result<AudioModels> {
    let synth = SpeechSynthesizer::smart_home();
    let vocabulary = synth.vocabulary().clone();
    let stt = KeywordStt::train(&synth.reference_renderings(), SttConfig::default())
        .map_err(CoreError::from)?;
    let mut generator = CorpusGenerator::new(vocabulary.clone(), 0.5, corpus_seed);
    let corpus = generator.generate(train_utterances.max(16));
    // Train the classifier on what it will actually see in the TA: the
    // STT's (imperfect) transcription of the rendered waveform, not the
    // clean corpus tokens. Without this train/serve match, recognition
    // noise pushes neutral utterances across the sensitive threshold
    // and the filter over-drops. Utterances the STT loses entirely
    // fall back to their clean tokens so no label is wasted.
    let examples: Vec<(Vec<usize>, bool)> = corpus
        .iter()
        .map(|utterance| {
            let audio = synth.render_tokens(&utterance.tokens);
            let decoded = stt.transcribe_to_tokens(audio.samples());
            if decoded.is_empty() {
                (utterance.tokens.clone(), utterance.sensitive)
            } else {
                (decoded, utterance.sensitive)
            }
        })
        .collect();
    let mut classifier =
        SensitiveClassifier::new(architecture, TrainConfig::small(vocabulary.len()));
    classifier.fit(&examples).map_err(CoreError::from)?;
    // Train once, quantize once: every int8-mode TA of the fleet shares
    // this one deployment form.
    let classifier_int8 = QuantSensitiveClassifier::from_trained(&classifier).map(Arc::new);
    Ok(AudioModels {
        stt: Arc::new(stt),
        classifier: Arc::new(classifier),
        classifier_int8,
        vocabulary,
        synth,
    })
}

impl SharedModels {
    /// Creates a model set that trains **nothing** until a pipeline of the
    /// matching modality first asks for its models — camera-only fleets
    /// skip speech training, audio-only fleets skip frame training.
    pub fn deferred(architecture: Architecture, train_utterances: usize, corpus_seed: u64) -> Self {
        SharedModels {
            audio_architecture: architecture,
            audio_train_utterances: train_utterances,
            audio_corpus_seed: corpus_seed,
            audio: Arc::new(Mutex::new(None)),
            vision: Arc::new(Mutex::new(VisionState {
                train_frames: 120,
                corpus_seed: corpus_seed ^ 0xF7A3E5,
                model: None,
                int8: None,
            })),
        }
    }

    /// Overrides the frame-classifier training spec (frames and seed).
    /// The spec lives in the shared state, so **every** clone of this
    /// model set sees the change — but it must land before the vision
    /// model first trains: once the weights exist they are never
    /// retrained, and a later spec change has no effect.
    pub fn with_vision_spec(self, train_frames: usize, corpus_seed: u64) -> Self {
        {
            let mut vision = self.vision.lock();
            vision.train_frames = train_frames;
            vision.corpus_seed = corpus_seed;
        }
        self
    }

    /// Trains the in-TA audio models (keyword STT + sensitive-content
    /// classifier) on the synthetic corpus, eagerly.
    ///
    /// # Errors
    ///
    /// Propagates ML training failures.
    pub fn train(
        architecture: Architecture,
        train_utterances: usize,
        corpus_seed: u64,
    ) -> Result<Self> {
        let models = SharedModels::deferred(architecture, train_utterances, corpus_seed);
        models.audio()?;
        Ok(models)
    }

    /// The shared audio models, trained on first use with the
    /// configuration this set was created with; later calls reuse the
    /// cached weights, so every audio device of a fleet shares the same
    /// [`Arc`]s.
    ///
    /// # Errors
    ///
    /// Propagates ML training failures.
    pub fn audio(&self) -> Result<AudioModels> {
        let mut slot = self.audio.lock();
        if let Some(models) = slot.as_ref() {
            return Ok(models.clone());
        }
        let models = train_audio_models(
            self.audio_architecture,
            self.audio_train_utterances,
            self.audio_corpus_seed,
        )?;
        *slot = Some(models.clone());
        Ok(models)
    }

    /// The shared frame classifier, trained on first use with the spec
    /// this set was created with (see [`SharedModels::with_vision_spec`]);
    /// later calls reuse the cached weights, so every camera device of a
    /// fleet shares the same [`Arc`].
    ///
    /// # Errors
    ///
    /// Propagates frame-classifier training failures.
    pub fn vision(&self) -> Result<Arc<FrameCnn>> {
        let mut vision = self.vision.lock();
        if let Some(model) = &vision.model {
            return Ok(Arc::clone(model));
        }
        let model = Arc::new(train_frame_cnn(vision.train_frames, vision.corpus_seed)?);
        vision.model = Some(Arc::clone(&model));
        Ok(model)
    }

    /// The int8 deployment form of the shared frame classifier, quantized
    /// **once** on first use (training the f32 model first if needed);
    /// every int8-mode camera TA of a fleet shares the same [`Arc`].
    ///
    /// # Errors
    ///
    /// Propagates frame-classifier training failures.
    pub fn vision_int8(&self) -> Result<Arc<QuantFrameCnn>> {
        let model = self.vision()?;
        let mut vision = self.vision.lock();
        if let Some(int8) = &vision.int8 {
            return Ok(Arc::clone(int8));
        }
        let int8 = Arc::new(
            QuantFrameCnn::from_trained(&model).expect("vision() returns a trained classifier"),
        );
        vision.int8 = Some(Arc::clone(&int8));
        Ok(int8)
    }

    /// Trains the models a [`PipelineConfig`] asks for.
    ///
    /// # Errors
    ///
    /// Propagates ML training failures.
    pub fn for_config(config: &PipelineConfig) -> Result<Self> {
        SharedModels::train(
            config.architecture,
            config.train_utterances,
            config.corpus_seed,
        )
    }

    /// A deferred model set for a [`PipelineConfig`] (nothing trains
    /// until first use).
    pub fn deferred_for_config(config: &PipelineConfig) -> Self {
        SharedModels::deferred(
            config.architecture,
            config.train_utterances,
            config.corpus_seed,
        )
    }
}

/// Trains the in-TA models on the synthetic corpus. Exposed so examples,
/// benches and fleets can train once and reuse the models across pipeline
/// instances.
///
/// # Errors
///
/// Propagates ML training failures.
pub fn train_models(
    architecture: Architecture,
    train_utterances: usize,
    corpus_seed: u64,
) -> Result<SharedModels> {
    SharedModels::train(architecture, train_utterances, corpus_seed)
}

/// Cursor over one scenario replay: which event the stages have consumed
/// up to, plus the stats baseline the final report diffs against. This is
/// the resumable seam the fleet executor's `DeviceTask` state machine is
/// built on — a device run is `begin`, then `step` once per TEE crossing
/// (the natural yield point), then `finish`.
#[derive(Debug)]
pub struct ScenarioProgress {
    stats_before: TzStatsSnapshot,
    next_event: usize,
    relay_backlog: bool,
}

impl ScenarioProgress {
    /// Index of the first event the next step will consume.
    pub fn next_event(&self) -> usize {
        self.next_event
    }
}

/// Starts a staged scenario run: resets the cloud ledger and snapshots
/// the TEE counters the final report diffs against.
fn begin_secure_stages(platform: &Platform, ledger: &CloudLedger) -> ScenarioProgress {
    ledger.reset();
    ScenarioProgress {
        stats_before: platform.stats().snapshot(),
        next_event: 0,
        relay_backlog: false,
    }
}

/// Drives **one** batch through a secure capture → filter → relay stage
/// chain — one TEE crossing — and advances the cursor. Shared by the
/// audio and camera pipelines so their accounting can never drift apart.
/// Returns whether events remain after this step.
#[allow(clippy::too_many_arguments)]
fn step_secure_stages<E, C>(
    events: &[E],
    fixed_batch: usize,
    batcher: Option<&mut AdaptiveBatcher>,
    pressure: Option<&mut PressureMonitor>,
    degrade: Option<DegradeSpec>,
    clock: &SimClock,
    progress: &mut ScenarioProgress,
    capture: &mut C,
    filter: &mut SecureFilterStage,
    relay: &mut SecureRelayStage,
    tracer: &Tracer,
) -> Result<bool>
where
    E: Clone,
    C: PipelineStage<Input = Vec<E>, Output = crate::stage::PreparedBatch>,
{
    if progress.next_event >= events.len() {
        return Ok(false);
    }
    let depth = events.len() - progress.next_event;
    let batch = match &batcher {
        Some(batcher) => batcher.pick_batch(depth),
        None => fixed_batch.max(1),
    }
    .min(depth);
    let chunk = events[progress.next_event..progress.next_event + batch].to_vec();
    tracer.count("pipeline.windows", batch as u64);
    // Each stage runs under a span named after it; the filter stage's span
    // encloses the whole TEE crossing (smc.call, TA inference, tee.rpc),
    // so a chrome-trace dump shows the full nesting.
    let prepared = {
        let _span = tracer.span(capture.name());
        capture.process(chunk)?
    };
    let filter_start = clock.now();
    let filtered = {
        let _span = tracer.span(filter.name());
        let filtered = filter.process(prepared)?;
        // Injected degradation lands inside the filter span, so the
        // slowdown shows exactly where the health plane's SLO watches.
        if let Some(spec) = degrade {
            if clock.now().duration_since(SimInstant::EPOCH) >= spec.after {
                clock.advance(spec.per_window * batch as u64);
            }
        }
        filtered
    };
    if let Some(batcher) = batcher {
        if !filtered.per_utterance.is_empty() {
            let mean = filtered.per_utterance.iter().copied().sum::<SimDuration>()
                / filtered.per_utterance.len() as u64;
            batcher.observe(mean);
        }
        // The pressure monitor judges the per-window share of the whole
        // crossing (TA service *and* any degradation), then its verdict
        // clips the next pick — the observability→control loop.
        if let Some(pressure) = pressure {
            let per_window = clock.now().duration_since(filter_start) / batch as u64;
            pressure.observe(per_window);
            batcher.set_pressure(pressure.advance(clock.now()));
        }
        // Relay backlog overrides any SLO verdict: the TA's bounded
        // unacked buffer is backing up, so fall to single-window probes
        // until the network drains it.
        if filtered.backlog > 0 {
            batcher.set_pressure(perisec_telemetry::HealthState::Critical);
        }
    }
    progress.relay_backlog = filtered.backlog > 0;
    {
        let _span = tracer.span(relay.name());
        relay.process(filtered)?;
    }
    progress.next_event += batch;
    Ok(progress.next_event < events.len())
}

/// Assembles the run report once every batch has been stepped.
#[allow(clippy::too_many_arguments)]
fn finish_secure_stages(
    pipeline_name: &str,
    platform: &Platform,
    ledger: &CloudLedger,
    fabric: &NetworkFabric,
    relay: &mut SecureRelayStage,
    progress: ScenarioProgress,
    workload: WorkloadSummary,
    sensitive_ids: Vec<u64>,
) -> PipelineReport {
    let latency = relay.take_breakdown();
    let stats_after = platform.stats().snapshot();
    PipelineReport {
        pipeline: pipeline_name.to_owned(),
        workload,
        latency,
        cloud: CloudOutcome {
            report: ledger.report(),
            sensitive_ids,
        },
        tz: stats_after.delta_since(&progress.stats_before),
        energy: platform.energy_report(),
        virtual_time: platform.clock().now().duration_since(SimInstant::EPOCH),
        bytes_to_cloud: fabric.stats().bytes_sent,
    }
}

/// The paper's proposed design: secure driver in the TEE, PTA bridge,
/// in-TA ML filter, relay through the supplicant to the cloud — assembled
/// as capture → filter → relay stages.
pub struct SecurePipeline {
    config: PipelineConfig,
    platform: Platform,
    client: TeeClient,
    filter_session: TeeSessionHandle,
    cloud: Arc<MockCloudService>,
    ledger: CloudLedger,
    fabric: NetworkFabric,
    core: Arc<TeeCore>,
    i2s_pta: TaUuid,
    capture: SecureCaptureStage,
    filter: SecureFilterStage,
    relay: SecureRelayStage,
    batcher: Option<AdaptiveBatcher>,
    pressure: Option<PressureMonitor>,
    tracer: Tracer,
}

impl std::fmt::Debug for SecurePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecurePipeline")
            .field("architecture", &self.config.architecture)
            .field("policy", &self.config.policy)
            .field("batch_windows", &self.config.batch_windows)
            .finish()
    }
}

impl SecurePipeline {
    /// Builds the full secure stack, training a fresh model set.
    ///
    /// # Errors
    ///
    /// Fails if the models cannot be trained or a TEE component cannot be
    /// registered (e.g. the secure carve-out is too small for the model).
    pub fn new(config: PipelineConfig) -> Result<Self> {
        let models = SharedModels::for_config(&config)?;
        SecurePipeline::with_models(config, &models)
    }

    /// Builds the full secure stack around an existing trained model set —
    /// the fleet path: the models are shared by reference, not retrained.
    ///
    /// # Errors
    ///
    /// Fails if a TEE component cannot be registered (e.g. the secure
    /// carve-out is too small for the model).
    pub fn with_models(config: PipelineConfig, models: &SharedModels) -> Result<Self> {
        let audio = models.audio()?;
        let platform = config.build_platform();

        // Normal world: supplicant + network fabric + cloud endpoint. A
        // config routed through a sharded ingest plane registers the
        // plane's session endpoint under the cloud hostname instead of a
        // local mock cloud, so the TA dials the same host either way.
        let fabric = NetworkFabric::new().with_faults(config.faults);
        let cloud = MockCloudService::new(default_psk());
        let ledger = match &config.ingest {
            Some(hook) => {
                fabric.register_service(
                    MockCloudService::HOST,
                    hook.endpoint(platform.clock().clone()),
                );
                CloudLedger::Plane(hook.clone())
            }
            None => {
                fabric.register_service(MockCloudService::HOST, cloud.clone());
                CloudLedger::Direct(Arc::clone(&cloud))
            }
        };
        let supplicant = Arc::new(Supplicant::new());
        supplicant.set_net_backend(Arc::new(fabric.clone()));

        // Secure world: TEE core, secure driver PTA, filter TA.
        let core = TeeCore::boot(platform.clone(), supplicant);
        // One tracer over the device's virtual clock, shared by the
        // pipeline stages (below) and the TEE core / TAs (via set_tracer).
        let tracer = Tracer::new(platform.clock().clone(), &config.telemetry);
        core.set_tracer(tracer.clone());
        let playback = SharedPlayback::new();
        let mic = Microphone::speech_mic("secure-i2s-mic", playback.source())
            .map_err(perisec_kernel::KernelError::from)?;
        let secure_driver = SecureI2sDriver::new(platform.clone(), mic);
        let i2s_pta = core
            .register_pta(Box::new(I2sPta::new(secure_driver)))
            .map_err(CoreError::from)?;
        let mut filter = FilterTa::new(
            i2s_pta,
            crate::filter_ta::FilterTaModels {
                stt: Arc::clone(&audio.stt),
                classifier: Arc::clone(&audio.classifier),
                classifier_int8: match config.quant_mode {
                    QuantMode::Int8 => audio.classifier_int8.clone(),
                    QuantMode::F32 => None,
                },
            },
            config.quant_mode,
            audio.vocabulary.clone(),
            config.policy,
            default_cloud_host(),
            default_psk(),
            config.encoding,
        )
        .with_retry(config.retry);
        if config.ingest.is_some() {
            // Plane-routed relay: the TA attests its own measurement
            // before the shard will accept records.
            filter = filter.with_ingest(perisec_relay::measurement_of(
                crate::filter_ta::FILTER_TA_NAME,
            ));
        }
        core.register_ta(Box::new(filter))
            .map_err(CoreError::from)?;

        // Configure and start the secure driver through its PTA.
        let encoding_code = match config.encoding {
            AudioEncoding::PcmLe16 => 0,
            AudioEncoding::MuLaw => 1,
        };
        let mut p = TeeParams::new().with(
            0,
            TeeParam::ValueInput {
                a: config.period_frames as u64,
                b: encoding_code,
            },
        );
        core.invoke_pta(i2s_pta, perisec_secure_driver::pta::cmd::CONFIGURE, &mut p)
            .map_err(CoreError::from)?;
        core.invoke_pta(
            i2s_pta,
            perisec_secure_driver::pta::cmd::START,
            &mut TeeParams::new(),
        )
        .map_err(CoreError::from)?;

        // Normal world client session to the filter TA.
        let client = TeeClient::connect(Arc::clone(&core));
        let (filter_session, _) = client
            .open_session(
                TaUuid::from_name(crate::filter_ta::FILTER_TA_NAME),
                TeeParams::new(),
            )
            .map_err(CoreError::from)?;

        let capture = SecureCaptureStage::new(
            platform.clone(),
            playback,
            audio.synth.clone(),
            config.period_frames,
        );
        let filter_stage = SecureFilterStage::new(platform.clone(), client.clone(), filter_session);
        let batcher = config
            .latency_slo
            .map(|slo| AdaptiveBatcher::new(platform.cost(), slo, 64));
        // Pressure without a batcher has nothing to act on; build the
        // monitor only when both knobs are set.
        let pressure = match (&batcher, config.slo_pressure) {
            (Some(_), Some(spec)) => Some(PressureMonitor::for_spec(spec)),
            _ => None,
        };

        Ok(SecurePipeline {
            config,
            platform,
            client,
            filter_session,
            cloud,
            ledger,
            fabric,
            core,
            i2s_pta,
            capture,
            filter: filter_stage,
            relay: SecureRelayStage::new(),
            batcher,
            pressure,
            tracer,
        })
    }

    /// The device's telemetry tracer — disabled (recording nothing)
    /// unless the config's [`PipelineConfig::telemetry`] enabled it.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Drains the telemetry accumulated so far — per-span histograms and
    /// counters, plus the retained span events when span capture is on.
    /// The fleet harness calls this once per completed device.
    pub fn take_telemetry(&self) -> DeviceTelemetry {
        self.tracer.take()
    }

    /// The simulated platform (for inspecting stats and energy directly).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The mock cloud (for inspecting what it received). Empty when the
    /// config routes through an ingest plane — the plane's session
    /// ledger receives the records instead, and the scenario report's
    /// cloud outcome reads from whichever of the two is live.
    pub fn cloud(&self) -> &Arc<MockCloudService> {
        &self.cloud
    }

    /// The TEE core (for footprint reports).
    pub fn tee_core(&self) -> &Arc<TeeCore> {
        &self.core
    }

    /// The UUID of the secure-driver PTA.
    pub fn i2s_pta(&self) -> TaUuid {
        self.i2s_pta
    }

    /// The configured batch size.
    pub fn batch_windows(&self) -> usize {
        self.config.effective_batch()
    }

    /// The pressure monitor's current verdict, when the config wired one
    /// ([`PipelineConfig::slo_pressure`] alongside `latency_slo`).
    pub fn pressure_state(&self) -> Option<perisec_telemetry::HealthState> {
        self.pressure.as_ref().map(PressureMonitor::state)
    }

    /// Installs a new privacy policy in the filter TA.
    ///
    /// # Errors
    ///
    /// Propagates TEE invocation failures.
    pub fn set_policy(&mut self, policy: PrivacyPolicy) -> Result<()> {
        let (mode, threshold) = policy.to_values();
        let params = TeeParams::new().with(
            0,
            TeeParam::ValueInput {
                a: mode,
                b: threshold,
            },
        );
        self.client
            .invoke(&self.filter_session, filter_cmd::SET_POLICY, params)
            .map_err(CoreError::from)?;
        self.config.policy = policy;
        Ok(())
    }

    /// Starts a resumable scenario replay (see
    /// [`SecurePipeline::step_scenario`]).
    pub fn begin_scenario(&mut self) -> ScenarioProgress {
        begin_secure_stages(&self.platform, &self.ledger)
    }

    /// Drives **one** batch — one TEE crossing — of the scenario through
    /// the capture → filter → relay stages and advances the cursor; the
    /// batch size is the fixed `batch_windows` unless the config carries a
    /// latency SLO, in which case the adaptive batcher picks it from the
    /// remaining queue depth. Returns whether events remain. This is the
    /// fleet executor's yield point: a `DeviceTask` calls it once per
    /// executor step, so thousands of devices interleave at TEE-crossing
    /// granularity on a bounded worker pool.
    ///
    /// # Errors
    ///
    /// Propagates TEE and relay failures.
    pub fn step_scenario(
        &mut self,
        scenario: &Scenario,
        progress: &mut ScenarioProgress,
    ) -> Result<bool> {
        let more = step_secure_stages(
            &scenario.events,
            self.config.effective_batch(),
            self.batcher.as_mut(),
            self.pressure.as_mut(),
            self.config.degrade,
            self.platform.clock(),
            progress,
            &mut self.capture,
            &mut self.filter,
            &mut self.relay,
            &self.tracer,
        )?;
        if !more && progress.relay_backlog {
            // The scenario ended with unacked records still buffered in
            // the TA: a blocking drain retires them, so the report never
            // misses a verdict the network delayed. Skipped on a clean
            // finish — the healthy path pays no extra TEE crossing.
            self.filter.drain_relay()?;
            progress.relay_backlog = false;
        }
        Ok(more)
    }

    /// Assembles the report of a stepped-to-completion scenario replay.
    pub fn finish_scenario(
        &mut self,
        scenario: &Scenario,
        progress: ScenarioProgress,
    ) -> PipelineReport {
        finish_secure_stages(
            "secure",
            &self.platform,
            &self.ledger,
            &self.fabric,
            &mut self.relay,
            progress,
            WorkloadSummary {
                utterances: scenario.len(),
                sensitive_utterances: scenario.sensitive_count(),
            },
            scenario.sensitive_ids(),
        )
    }

    /// Replays a scenario end to end — batch by batch through the
    /// capture → filter → relay stages — and reports on it.
    ///
    /// # Errors
    ///
    /// Propagates TEE and relay failures.
    pub fn run_scenario(&mut self, scenario: &Scenario) -> Result<PipelineReport> {
        let mut progress = self.begin_scenario();
        while self.step_scenario(scenario, &mut progress)? {}
        Ok(self.finish_scenario(scenario, progress))
    }
}

/// The secure *camera* pipeline: secure camera driver in the TEE, camera
/// PTA bridge, in-TA frame classification, verdict-only relay — the
/// vision modality assembled from the very same
/// capture → filter → relay stages as the audio pipeline.
pub struct SecureCameraPipeline {
    config: CameraPipelineConfig,
    platform: Platform,
    client: TeeClient,
    vision_session: TeeSessionHandle,
    cloud: Arc<MockCloudService>,
    ledger: CloudLedger,
    fabric: NetworkFabric,
    core: Arc<TeeCore>,
    camera_pta: TaUuid,
    capture: SecureFrameCaptureStage,
    filter: SecureFilterStage,
    relay: SecureRelayStage,
    tracer: Tracer,
}

impl std::fmt::Debug for SecureCameraPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureCameraPipeline")
            .field("policy", &self.config.policy)
            .field("batch_windows", &self.config.batch_windows)
            .finish()
    }
}

impl SecureCameraPipeline {
    /// Builds the full secure camera stack, training a fresh model set.
    ///
    /// # Errors
    ///
    /// Fails if the frame classifier cannot be trained or a TEE component
    /// cannot be registered.
    pub fn new(config: CameraPipelineConfig) -> Result<Self> {
        let vision = Arc::new(train_frame_cnn(config.train_frames, config.corpus_seed)?);
        SecureCameraPipeline::with_vision_model(config, vision)
    }

    /// The int8 deployment form a config asks for: quantized once from
    /// the trained f32 classifier in int8 mode, absent in f32 mode.
    fn quantize_for(
        config: &CameraPipelineConfig,
        vision: &Arc<FrameCnn>,
    ) -> Option<Arc<QuantFrameCnn>> {
        match config.quant_mode {
            QuantMode::Int8 => QuantFrameCnn::from_trained(vision).map(Arc::new),
            QuantMode::F32 => None,
        }
    }

    /// Builds the camera stack around a shared model set — the mixed-fleet
    /// path: audio and camera devices hand out `Arc`s of one
    /// [`SharedModels`]. The frame classifier trains lazily inside the
    /// model set on first camera use, with the **model set's** vision
    /// spec (see [`SharedModels::with_vision_spec`]); this config's
    /// `train_frames` / `corpus_seed` only govern self-trained pipelines
    /// ([`SecureCameraPipeline::new`]).
    ///
    /// # Errors
    ///
    /// Fails if the frame classifier cannot be trained or a TEE component
    /// cannot be registered (e.g. the secure carve-out is too small for
    /// the model).
    pub fn with_models(config: CameraPipelineConfig, models: &SharedModels) -> Result<Self> {
        let vision = models.vision()?;
        // The fleet path reuses the model set's cached int8 form — the
        // "quantize once" half of train-once-quantize-once.
        let int8 = match config.quant_mode {
            QuantMode::Int8 => Some(models.vision_int8()?),
            QuantMode::F32 => None,
        };
        SecureCameraPipeline::build(config, vision, int8)
    }

    /// Builds the camera stack around an existing trained frame
    /// classifier (quantizing it on the spot when the config asks for
    /// int8 mode — self-trained pipelines have no shared cache).
    ///
    /// # Errors
    ///
    /// Fails if a TEE component cannot be registered.
    pub fn with_vision_model(config: CameraPipelineConfig, vision: Arc<FrameCnn>) -> Result<Self> {
        let int8 = SecureCameraPipeline::quantize_for(&config, &vision);
        SecureCameraPipeline::build(config, vision, int8)
    }

    fn build(
        config: CameraPipelineConfig,
        vision: Arc<FrameCnn>,
        vision_int8: Option<Arc<QuantFrameCnn>>,
    ) -> Result<Self> {
        let platform = config.build_platform();

        // Normal world: supplicant + network fabric + cloud endpoint —
        // plane-routed exactly as in [`SecurePipeline::with_models`].
        let fabric = NetworkFabric::new().with_faults(config.faults);
        let cloud = MockCloudService::new(default_psk());
        let ledger = match &config.ingest {
            Some(hook) => {
                fabric.register_service(
                    MockCloudService::HOST,
                    hook.endpoint(platform.clock().clone()),
                );
                CloudLedger::Plane(hook.clone())
            }
            None => {
                fabric.register_service(MockCloudService::HOST, cloud.clone());
                CloudLedger::Direct(Arc::clone(&cloud))
            }
        };
        let supplicant = Arc::new(Supplicant::new());
        supplicant.set_net_backend(Arc::new(fabric.clone()));

        // Secure world: TEE core, secure camera driver PTA, vision TA.
        let core = TeeCore::boot(platform.clone(), supplicant);
        let tracer = Tracer::new(platform.clock().clone(), &config.telemetry);
        core.set_tracer(tracer.clone());
        let scenes = SharedSceneQueue::new();
        let sensor = CameraSensor::smart_home("secure-camera", 0x5EC2)
            .map_err(perisec_kernel::KernelError::from)?;
        let camera_driver = SecureCameraDriver::new(platform.clone(), sensor, scenes.source());
        let camera_pta = core
            .register_pta(Box::new(CameraPta::new(camera_driver)))
            .map_err(CoreError::from)?;
        let mut vision_ta = VisionTa::new(
            camera_pta,
            vision,
            vision_int8,
            config.quant_mode,
            config.policy,
            default_cloud_host(),
            default_psk(),
        )
        .with_retry(config.retry);
        if config.ingest.is_some() {
            vision_ta = vision_ta.with_ingest(perisec_relay::measurement_of(
                crate::vision_ta::VISION_TA_NAME,
            ));
        }
        core.register_ta(Box::new(vision_ta))
            .map_err(CoreError::from)?;

        // Configure and start the secure camera driver through its PTA.
        core.invoke_pta(
            camera_pta,
            perisec_secure_driver::camera_pta::cmd::CONFIGURE,
            &mut TeeParams::new(),
        )
        .map_err(CoreError::from)?;
        core.invoke_pta(
            camera_pta,
            perisec_secure_driver::camera_pta::cmd::START,
            &mut TeeParams::new(),
        )
        .map_err(CoreError::from)?;

        // Normal world client session to the vision TA.
        let client = TeeClient::connect(Arc::clone(&core));
        let (vision_session, _) = client
            .open_session(
                TaUuid::from_name(crate::vision_ta::VISION_TA_NAME),
                TeeParams::new(),
            )
            .map_err(CoreError::from)?;

        let capture = SecureFrameCaptureStage::new(platform.clone(), scenes);
        let filter = SecureFilterStage::new(platform.clone(), client.clone(), vision_session);

        Ok(SecureCameraPipeline {
            config,
            platform,
            client,
            vision_session,
            cloud,
            ledger,
            fabric,
            core,
            camera_pta,
            capture,
            filter,
            relay: SecureRelayStage::new(),
            tracer,
        })
    }

    /// The device's telemetry tracer (see [`SecurePipeline::tracer`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Drains the telemetry accumulated so far (see
    /// [`SecurePipeline::take_telemetry`]).
    pub fn take_telemetry(&self) -> DeviceTelemetry {
        self.tracer.take()
    }

    /// The simulated platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The mock cloud (for inspecting what it received).
    pub fn cloud(&self) -> &Arc<MockCloudService> {
        &self.cloud
    }

    /// The TEE core (for footprint reports).
    pub fn tee_core(&self) -> &Arc<TeeCore> {
        &self.core
    }

    /// The UUID of the camera PTA.
    pub fn camera_pta(&self) -> TaUuid {
        self.camera_pta
    }

    /// The configured batch size.
    pub fn batch_windows(&self) -> usize {
        self.config.effective_batch()
    }

    /// Installs a new privacy policy in the vision TA.
    ///
    /// # Errors
    ///
    /// Propagates TEE invocation failures.
    pub fn set_policy(&mut self, policy: PrivacyPolicy) -> Result<()> {
        let (mode, threshold) = policy.to_values();
        let params = TeeParams::new().with(
            0,
            TeeParam::ValueInput {
                a: mode,
                b: threshold,
            },
        );
        self.client
            .invoke(
                &self.vision_session,
                crate::vision_ta::cmd::SET_POLICY,
                params,
            )
            .map_err(CoreError::from)?;
        self.config.policy = policy;
        Ok(())
    }

    /// Starts a resumable scenario replay (see
    /// [`SecureCameraPipeline::step_scenario`]).
    pub fn begin_scenario(&mut self) -> ScenarioProgress {
        begin_secure_stages(&self.platform, &self.ledger)
    }

    /// Drives **one** batch — one TEE crossing — of the camera scenario
    /// through the capture → filter → relay stages and advances the
    /// cursor. Returns whether events remain. The fleet executor's yield
    /// point for camera devices.
    ///
    /// # Errors
    ///
    /// Propagates TEE and relay failures.
    pub fn step_scenario(
        &mut self,
        scenario: &CameraScenario,
        progress: &mut ScenarioProgress,
    ) -> Result<bool> {
        let more = step_secure_stages(
            &scenario.events,
            self.config.effective_batch(),
            None,
            None,
            self.config.degrade,
            self.platform.clock(),
            progress,
            &mut self.capture,
            &mut self.filter,
            &mut self.relay,
            &self.tracer,
        )?;
        if !more && progress.relay_backlog {
            // The scenario ended with unacked records still buffered in
            // the TA: a blocking drain retires them, so the report never
            // misses a verdict the network delayed. Skipped on a clean
            // finish — the healthy path pays no extra TEE crossing.
            self.filter.drain_relay()?;
            progress.relay_backlog = false;
        }
        Ok(more)
    }

    /// Assembles the report of a stepped-to-completion scenario replay.
    /// The report counts scene events as the workload's "utterances".
    pub fn finish_scenario(
        &mut self,
        scenario: &CameraScenario,
        progress: ScenarioProgress,
    ) -> PipelineReport {
        finish_secure_stages(
            "secure-camera",
            &self.platform,
            &self.ledger,
            &self.fabric,
            &mut self.relay,
            progress,
            WorkloadSummary {
                utterances: scenario.len(),
                sensitive_utterances: scenario.sensitive_count(),
            },
            scenario.sensitive_ids(),
        )
    }

    /// Replays a camera scenario end to end — batch by batch through the
    /// capture → filter → relay stages — and reports on it. The report
    /// counts scene events as the workload's "utterances".
    ///
    /// # Errors
    ///
    /// Propagates TEE and relay failures.
    pub fn run_scenario(&mut self, scenario: &CameraScenario) -> Result<PipelineReport> {
        let mut progress = self.begin_scenario();
        while self.step_scenario(scenario, &mut progress)? {}
        Ok(self.finish_scenario(scenario, progress))
    }
}

/// The paper's baseline: the driver stays in the untrusted kernel and the
/// unfiltered capture is shipped to the cloud by a normal-world
/// application — the same three-stage shape, with a passthrough filter.
pub struct BaselinePipeline {
    config: PipelineConfig,
    platform: Platform,
    cloud: Arc<MockCloudService>,
    fabric: NetworkFabric,
    capture: KernelCaptureStage,
    filter: PassthroughFilterStage,
    relay: CloudRelayStage,
}

impl std::fmt::Debug for BaselinePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselinePipeline")
            .field("batch_windows", &self.config.batch_windows)
            .finish()
    }
}

impl BaselinePipeline {
    /// Builds the baseline stack: kernel driver, network fabric, cloud.
    ///
    /// # Errors
    ///
    /// Propagates kernel-substrate failures.
    pub fn new(config: PipelineConfig) -> Result<Self> {
        let platform = config.build_platform();
        let fabric = NetworkFabric::new().with_faults(config.faults);
        let cloud = MockCloudService::new(default_psk());
        fabric.register_service(MockCloudService::HOST, cloud.clone());

        let playback = SharedPlayback::new();
        let mic = Microphone::speech_mic("kernel-i2s-mic", playback.source())
            .map_err(perisec_kernel::KernelError::from)?;
        let tracer = FunctionTracer::new();
        let mut driver = BaselineI2sDriver::new(platform.clone(), mic, tracer);
        driver.probe()?;
        driver.configure(PcmHwParams {
            period_frames: config.period_frames,
            ..PcmHwParams::voice_default()
        })?;
        driver.start()?;

        let capture = KernelCaptureStage::new(
            platform.clone(),
            playback,
            SpeechSynthesizer::smart_home(),
            driver,
            config.period_frames,
        );
        let relay = CloudRelayStage::new(
            platform.clone(),
            fabric.clone(),
            MockCloudService::HOST,
            default_psk(),
            config.encoding,
        )
        .with_retry(config.retry);
        Ok(BaselinePipeline {
            config,
            platform,
            cloud,
            fabric,
            capture,
            filter: PassthroughFilterStage,
            relay,
        })
    }

    /// The simulated platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The mock cloud.
    pub fn cloud(&self) -> &Arc<MockCloudService> {
        &self.cloud
    }

    /// Replays a scenario: every utterance is captured by the in-kernel
    /// driver and forwarded to the cloud without any filtering.
    ///
    /// # Errors
    ///
    /// Propagates kernel and relay failures.
    pub fn run_scenario(&mut self, scenario: &Scenario) -> Result<PipelineReport> {
        self.cloud.reset();
        let stats_before = self.platform.stats().snapshot();
        let batch = self.config.effective_batch();
        for chunk in scenario.events.chunks(batch) {
            let captured = self.capture.process(chunk.to_vec())?;
            let passed = self.filter.process(captured)?;
            self.relay.process(passed)?;
        }
        let latency = self.relay.take_breakdown();
        let stats_after = self.platform.stats().snapshot();
        Ok(PipelineReport {
            pipeline: "baseline".to_owned(),
            workload: WorkloadSummary {
                utterances: scenario.len(),
                sensitive_utterances: scenario.sensitive_count(),
            },
            latency,
            cloud: CloudOutcome {
                report: self.cloud.report(),
                sensitive_ids: scenario.sensitive_ids(),
            },
            tz: stats_after.delta_since(&stats_before),
            energy: self.platform.energy_report(),
            virtual_time: self
                .platform
                .clock()
                .now()
                .duration_since(SimInstant::EPOCH),
            bytes_to_cloud: self.fabric.stats().bytes_sent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FilterMode;
    use perisec_tz::time::SimDuration;

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            train_utterances: 60,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn secure_pipeline_blocks_most_sensitive_utterances() {
        let mut pipeline = SecurePipeline::new(small_config()).unwrap();
        let scenario = Scenario::mixed(12, 0.5, SimDuration::from_secs(5), 77);
        let report = pipeline.run_scenario(&scenario).unwrap();

        assert_eq!(report.workload.utterances, 12);
        assert!(report.workload.sensitive_utterances > 0);
        // The filter must stop the majority of sensitive content.
        assert!(
            report.cloud.leakage_rate() < 0.5,
            "leakage rate {:.2}",
            report.cloud.leakage_rate()
        );
        // Non-sensitive content still flows: at least one utterance reached
        // the cloud, all of it encrypted.
        assert!(report.cloud.received_utterances() >= 1);
        assert!(report.cloud.report.events.iter().all(|e| e.encrypted));
        // TEE mechanics were exercised.
        assert!(report.tz.smc_calls >= 12);
        assert!(report.tz.world_switches >= 24);
        assert!(report.tz.supplicant_rpcs > 0);
        assert!(report.latency.ml > SimDuration::ZERO);
        assert!(report.energy.total_mj > 0.0);
    }

    #[test]
    fn baseline_pipeline_leaks_everything() {
        let mut pipeline = BaselinePipeline::new(small_config()).unwrap();
        let scenario = Scenario::mixed(8, 0.5, SimDuration::from_secs(5), 78);
        let report = pipeline.run_scenario(&scenario).unwrap();
        assert_eq!(report.cloud.received_utterances(), 8);
        assert!((report.cloud.leakage_rate() - 1.0).abs() < 1e-9);
        // The baseline never enters the secure world.
        assert_eq!(report.tz.world_switches, 0);
        assert_eq!(report.tz.smc_calls, 0);
        assert!(report.latency.ml.is_zero());
    }

    #[test]
    fn secure_pipeline_is_slower_per_utterance_than_baseline() {
        let scenario = Scenario::mixed(6, 0.5, SimDuration::from_secs(5), 79);
        let mut secure = SecurePipeline::new(small_config()).unwrap();
        let mut baseline = BaselinePipeline::new(small_config()).unwrap();
        let secure_report = secure.run_scenario(&scenario).unwrap();
        let baseline_report = baseline.run_scenario(&scenario).unwrap();
        assert!(
            secure_report.latency.mean_end_to_end() > baseline_report.latency.mean_end_to_end(),
            "secure {} vs baseline {}",
            secure_report.latency.mean_end_to_end(),
            baseline_report.latency.mean_end_to_end()
        );
    }

    #[test]
    fn allow_all_policy_forwards_sensitive_content() {
        let mut pipeline = SecurePipeline::new(PipelineConfig {
            policy: PrivacyPolicy {
                mode: FilterMode::AllowAll,
                threshold: 0.5,
                lexical_guard: false,
            },
            train_utterances: 60,
            ..PipelineConfig::default()
        })
        .unwrap();
        let scenario = Scenario::mixed(8, 1.0, SimDuration::from_secs(5), 80);
        let report = pipeline.run_scenario(&scenario).unwrap();
        assert!(report.cloud.leakage_rate() > 0.5);
        // Switching the policy at runtime changes behaviour.
        pipeline
            .set_policy(PrivacyPolicy::block_sensitive())
            .unwrap();
        let report2 = pipeline.run_scenario(&scenario).unwrap();
        assert!(report2.cloud.leakage_rate() < report.cloud.leakage_rate());
    }

    #[test]
    fn process_window_command_still_serves_single_windows() {
        // The per-window TA command is no longer on the pipelines' path
        // (they batch), but its parameter contract is public API; drive it
        // directly through a client session. The playback queue is empty,
        // so the window is silence: empty transcript, probability zero,
        // Forward decision, nothing relayed.
        let pipeline = SecurePipeline::new(small_config()).unwrap();
        let client = TeeClient::connect(Arc::clone(pipeline.tee_core()));
        let (session, _) = client
            .open_session(
                TaUuid::from_name(crate::filter_ta::FILTER_TA_NAME),
                TeeParams::new(),
            )
            .unwrap();
        let params = TeeParams::new().with(0, TeeParam::ValueInput { a: 42, b: 2 });
        let out = client
            .invoke(&session, filter_cmd::PROCESS_WINDOW, params)
            .unwrap();
        let (wire_ns, _cpu_ns) = out.get(1).as_values().unwrap();
        assert_eq!(wire_ns, 2 * 10_000_000, "two 10 ms periods on the wire");
        let (ml_ns, _relay_ns) = out.get(2).as_values().unwrap();
        assert!(ml_ns > 0);
        let (decision_code, probability_milli) = out.get(3).as_values().unwrap();
        assert_eq!(
            crate::policy::FilterDecision::from_code(decision_code),
            Some(crate::policy::FilterDecision::Forward)
        );
        assert_eq!(probability_milli, 0);
        assert!(pipeline.cloud().report().events.is_empty());
        // Zero periods are still rejected at the command boundary.
        let bad = TeeParams::new().with(0, TeeParam::ValueInput { a: 1, b: 0 });
        assert!(client
            .invoke(&session, filter_cmd::PROCESS_WINDOW, bad)
            .is_err());
    }

    #[test]
    fn batched_baseline_latency_excludes_scenario_spacing() {
        // Events are 5 s apart; with batching the capture stage advances
        // the clock between events of one chunk, which must not leak into
        // the reported per-utterance processing latency.
        let scenario = Scenario::mixed(6, 0.5, SimDuration::from_secs(5), 83);
        let mut batched = BaselinePipeline::new(PipelineConfig {
            train_utterances: 60,
            batch_windows: 3,
            ..PipelineConfig::default()
        })
        .unwrap();
        let report = batched.run_scenario(&scenario).unwrap();
        for (i, latency) in report.latency.per_utterance().iter().enumerate() {
            assert!(
                *latency < SimDuration::from_secs(1),
                "utterance {i} latency {latency} absorbed scenario spacing"
            );
        }
    }

    #[test]
    fn tiny_secure_ram_rejects_the_model() {
        let result = SecurePipeline::new(PipelineConfig {
            secure_ram_kib: Some(96),
            train_utterances: 30,
            ..PipelineConfig::default()
        });
        assert!(result.is_err());
    }

    #[test]
    fn shared_models_build_many_pipelines_without_retraining() {
        let config = small_config();
        let models = SharedModels::for_config(&config).unwrap();
        let scenario = Scenario::mixed(4, 0.5, SimDuration::from_secs(2), 81);
        let mut first = SecurePipeline::with_models(config.clone(), &models).unwrap();
        let mut second = SecurePipeline::with_models(config, &models).unwrap();
        let a = first.run_scenario(&scenario).unwrap();
        let b = second.run_scenario(&scenario).unwrap();
        // Same models, same scenario: identical privacy outcomes.
        assert_eq!(
            a.cloud.report.received_dialog_ids(),
            b.cloud.report.received_dialog_ids()
        );
        // The weights really are shared, not copied: the cached copy in
        // the model set plus one clone per live pipeline's filter TA.
        let audio = models.audio().unwrap();
        assert!(Arc::strong_count(&audio.classifier) >= 3);
    }

    #[test]
    fn camera_pipeline_relays_verdicts_never_pixels() {
        use perisec_workload::scenario::CameraScenario;
        let mut pipeline = SecureCameraPipeline::new(CameraPipelineConfig::default()).unwrap();
        let scenario = CameraScenario::mixed_scenes(12, 0.5, SimDuration::from_secs(4), 0xCA11);
        assert!(scenario.sensitive_count() > 0);
        let report = pipeline.run_scenario(&scenario).unwrap();

        assert_eq!(report.workload.utterances, 12);
        // No sensitive scene leaks, while non-sensitive verdicts flow.
        assert_eq!(report.cloud.leaked_sensitive_utterances(), 0);
        assert!(
            report.cloud.received_utterances()
                >= (scenario.len() - scenario.sensitive_count()) * 9 / 10
        );
        // Nothing that reached the cloud carries payload bytes: verdict
        // records only, all encrypted.
        for event in &report.cloud.report.events {
            assert_eq!(event.audio_bytes, 0);
            assert!(event.encrypted);
            assert!(event
                .text
                .as_deref()
                .unwrap_or("")
                .contains("frame-verdict"));
        }
        // TEE mechanics were exercised.
        assert!(report.tz.smc_calls >= 12);
        assert!(report.tz.secure_irqs >= 24, "two frames per scene event");
        assert!(report.latency.ml > SimDuration::ZERO);
    }

    #[test]
    fn camera_pipeline_batching_amortizes_the_boundary() {
        use perisec_workload::scenario::CameraScenario;
        // Deferred: this test runs only camera pipelines, so no speech
        // models need to train.
        let models = SharedModels::deferred_for_config(&small_config());
        let scenario = CameraScenario::mixed_scenes(8, 0.5, SimDuration::from_secs(2), 0xCA12);
        let mut unbatched =
            SecureCameraPipeline::with_models(CameraPipelineConfig::default(), &models).unwrap();
        let mut batched = SecureCameraPipeline::with_models(
            CameraPipelineConfig {
                batch_windows: 4,
                ..CameraPipelineConfig::default()
            },
            &models,
        )
        .unwrap();
        let a = unbatched.run_scenario(&scenario).unwrap();
        let b = batched.run_scenario(&scenario).unwrap();
        assert_eq!(
            a.cloud.report.received_dialog_ids(),
            b.cloud.report.received_dialog_ids()
        );
        assert_eq!(b.tz.smc_calls, 2);
        assert!(b.tz.world_switches < a.tz.world_switches);
    }

    #[test]
    fn camera_allow_all_policy_forwards_sensitive_verdicts() {
        use perisec_workload::scenario::CameraScenario;
        let mut pipeline = SecureCameraPipeline::new(CameraPipelineConfig {
            policy: PrivacyPolicy::allow_all(),
            ..CameraPipelineConfig::default()
        })
        .unwrap();
        let scenario = CameraScenario::mixed_scenes(6, 1.0, SimDuration::from_secs(2), 0xCA13);
        let report = pipeline.run_scenario(&scenario).unwrap();
        assert!(report.cloud.leakage_rate() > 0.5);
        // Even leaked verdicts carry no pixels — the leak is metadata only.
        assert!(report
            .cloud
            .report
            .events
            .iter()
            .all(|e| e.audio_bytes == 0));
        // Switching to blocking at runtime stops the verdict flow.
        pipeline
            .set_policy(PrivacyPolicy::block_sensitive())
            .unwrap();
        let report2 = pipeline.run_scenario(&scenario).unwrap();
        assert_eq!(report2.cloud.leaked_sensitive_utterances(), 0);
    }

    #[test]
    fn audio_latency_slo_drives_adaptive_batching() {
        let models = SharedModels::for_config(&small_config()).unwrap();
        let scenario = Scenario::mixed(12, 0.5, SimDuration::from_secs(1), 84);
        let mut fixed = SecurePipeline::with_models(small_config(), &models).unwrap();
        let mut adaptive = SecurePipeline::with_models(
            PipelineConfig {
                // A generous SLO: after the batch-of-one probe the
                // batcher grows the crossings well past one window.
                latency_slo: Some(SimDuration::from_secs(1)),
                ..small_config()
            },
            &models,
        )
        .unwrap();
        let a = fixed.run_scenario(&scenario).unwrap();
        let b = adaptive.run_scenario(&scenario).unwrap();
        // Same models, same scenario: identical cloud outcomes — the SLO
        // knob only changes how the work is chunked across crossings.
        assert_eq!(
            a.cloud.report.received_dialog_ids(),
            b.cloud.report.received_dialog_ids()
        );
        // The adaptive run amortized the boundary: strictly fewer SMCs
        // than one per utterance (batch 1 fixed pays one per utterance).
        assert_eq!(a.tz.smc_calls, 12);
        assert!(
            b.tz.smc_calls < a.tz.smc_calls,
            "adaptive run used {} SMCs vs {} fixed",
            b.tz.smc_calls,
            a.tz.smc_calls
        );
        // A tight SLO keeps batches at one — the probe behaviour.
        let mut tight = SecurePipeline::with_models(
            PipelineConfig {
                latency_slo: Some(SimDuration::from_nanos(1)),
                ..small_config()
            },
            &models,
        )
        .unwrap();
        let c = tight.run_scenario(&scenario).unwrap();
        assert_eq!(c.tz.smc_calls, 12);
        assert_eq!(
            c.cloud.report.received_dialog_ids(),
            a.cloud.report.received_dialog_ids()
        );
    }

    #[test]
    fn slo_pressure_shrinks_batches_without_changing_outcomes() {
        let models = SharedModels::for_config(&small_config()).unwrap();
        let scenario = Scenario::mixed(12, 0.5, SimDuration::from_secs(1), 85);
        let base = PipelineConfig {
            latency_slo: Some(SimDuration::from_secs(1)),
            ..small_config()
        };
        let mut unpressured = SecurePipeline::with_models(base.clone(), &models).unwrap();
        // An unattainable pressure objective: every crossing breaches, so
        // the monitor demotes toward Critical and the batcher falls back
        // to single-window probes.
        let mut pressured = SecurePipeline::with_models(
            PipelineConfig {
                slo_pressure: Some(perisec_telemetry::SloSpec::p95(
                    "service",
                    SimDuration::from_nanos(1),
                )),
                ..base.clone()
            },
            &models,
        )
        .unwrap();
        assert_eq!(
            pressured.pressure_state(),
            Some(perisec_telemetry::HealthState::Healthy)
        );
        let a = unpressured.run_scenario(&scenario).unwrap();
        let b = pressured.run_scenario(&scenario).unwrap();
        // Pressure only re-chunks the work — privacy outcomes match.
        assert_eq!(
            a.cloud.report.received_dialog_ids(),
            b.cloud.report.received_dialog_ids()
        );
        // The clipped batcher never pays fewer crossings than the free
        // one (Degraded halves headroom, Critical forces probes).
        assert!(
            b.tz.smc_calls >= a.tz.smc_calls,
            "pressured run used {} SMCs vs {} unpressured",
            b.tz.smc_calls,
            a.tz.smc_calls
        );
        assert_ne!(
            pressured.pressure_state(),
            Some(perisec_telemetry::HealthState::Healthy),
            "the unattainable objective must have tripped the monitor"
        );
        // Pressure without latency_slo is inert: no batcher, no monitor.
        let inert = SecurePipeline::with_models(
            PipelineConfig {
                slo_pressure: Some(perisec_telemetry::SloSpec::p95(
                    "service",
                    SimDuration::from_nanos(1),
                )),
                ..small_config()
            },
            &models,
        )
        .unwrap();
        assert_eq!(inert.pressure_state(), None);
    }

    #[test]
    fn injected_degradation_slows_the_run_deterministically() {
        let models = SharedModels::for_config(&small_config()).unwrap();
        let scenario = Scenario::mixed(8, 0.5, SimDuration::from_secs(1), 86);
        let degrade = DegradeSpec {
            after: SimDuration::from_secs(3),
            per_window: SimDuration::from_millis(10),
        };
        let mut clean = SecurePipeline::with_models(small_config(), &models).unwrap();
        let mut degraded = SecurePipeline::with_models(
            PipelineConfig {
                degrade: Some(degrade),
                ..small_config()
            },
            &models,
        )
        .unwrap();
        let a = clean.run_scenario(&scenario).unwrap();
        let b = degraded.run_scenario(&scenario).unwrap();
        // The fault is an environmental slowdown: privacy outcomes are
        // untouched, virtual time grows.
        assert_eq!(
            a.cloud.report.received_dialog_ids(),
            b.cloud.report.received_dialog_ids()
        );
        assert!(
            b.virtual_time > a.virtual_time,
            "degraded {} vs clean {}",
            b.virtual_time,
            a.virtual_time
        );
        // A far-future onset never fires: byte-identical virtual time.
        let mut dormant = SecurePipeline::with_models(
            PipelineConfig {
                degrade: Some(DegradeSpec {
                    after: SimDuration::from_secs(1_000_000),
                    per_window: SimDuration::from_millis(10),
                }),
                ..small_config()
            },
            &models,
        )
        .unwrap();
        let c = dormant.run_scenario(&scenario).unwrap();
        assert_eq!(c.virtual_time, a.virtual_time);
    }

    #[test]
    fn batched_secure_pipeline_matches_unbatched_outcomes() {
        let models = SharedModels::for_config(&small_config()).unwrap();
        let scenario = Scenario::mixed(8, 0.5, SimDuration::from_secs(2), 82);
        let mut unbatched = SecurePipeline::with_models(small_config(), &models).unwrap();
        let mut batched = SecurePipeline::with_models(
            PipelineConfig {
                batch_windows: 4,
                ..small_config()
            },
            &models,
        )
        .unwrap();
        let a = unbatched.run_scenario(&scenario).unwrap();
        let b = batched.run_scenario(&scenario).unwrap();
        assert_eq!(
            a.cloud.report.received_dialog_ids(),
            b.cloud.report.received_dialog_ids()
        );
        assert_eq!(
            a.cloud.leaked_sensitive_utterances(),
            b.cloud.leaked_sensitive_utterances()
        );
        // 8 utterances in batches of 4: two SMCs instead of eight.
        assert_eq!(b.tz.smc_calls, 2);
        assert!(b.tz.world_switches < a.tz.world_switches);
    }
}
