//! The end-to-end pipelines: the paper's secure design and its baseline.

use std::sync::Arc;

use perisec_devices::codec::AudioEncoding;
use perisec_devices::mic::Microphone;
use perisec_kernel::i2s_driver::BaselineI2sDriver;
use perisec_kernel::pcm::PcmHwParams;
use perisec_kernel::trace::FunctionTracer;
use perisec_ml::classifier::{Architecture, SensitiveClassifier, TrainConfig};
use perisec_ml::stt::{KeywordStt, SttConfig};
use perisec_optee::{Supplicant, TaUuid, TeeClient, TeeCore, TeeParam, TeeParams, TeeSessionHandle};
use perisec_relay::avs::AvsEvent;
use perisec_relay::cloud::MockCloudService;
use perisec_relay::netsim::NetworkFabric;
use perisec_relay::tls::SecureChannelClient;
use perisec_secure_driver::driver::SecureI2sDriver;
use perisec_secure_driver::pta::I2sPta;
use perisec_tz::platform::Platform;
use perisec_tz::time::{SimDuration, SimInstant};
use perisec_workload::corpus::{to_training_examples, CorpusGenerator};
use perisec_workload::scenario::Scenario;
use perisec_workload::synth::SpeechSynthesizer;
use perisec_workload::vocab::Vocabulary;

use crate::filter_ta::{cmd as filter_cmd, default_cloud_host, default_psk, FilterTa};
use crate::policy::PrivacyPolicy;
use crate::report::{CloudOutcome, LatencyBreakdown, PipelineReport, WorkloadSummary};
use crate::source::SharedPlayback;
use crate::{CoreError, Result};

/// Configuration shared by both pipelines.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Classifier architecture hosted by the filter TA.
    pub architecture: Architecture,
    /// Privacy policy installed in the filter TA.
    pub policy: PrivacyPolicy,
    /// Capture period size in frames (10 ms at 16 kHz by default).
    pub period_frames: usize,
    /// Encoding applied by the driver before data leaves its buffers.
    pub encoding: AudioEncoding,
    /// Number of utterances used to train the classifier head.
    pub train_utterances: usize,
    /// Seed for the training corpus.
    pub corpus_seed: u64,
    /// Use the constrained IoT platform instead of the Jetson-class one.
    pub constrained_platform: bool,
    /// Override the secure carve-out size (KiB), if set.
    pub secure_ram_kib: Option<u64>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            architecture: Architecture::Cnn,
            policy: PrivacyPolicy::block_sensitive(),
            period_frames: 160,
            encoding: AudioEncoding::PcmLe16,
            train_utterances: 160,
            corpus_seed: 0xC0FFEE,
            constrained_platform: false,
            secure_ram_kib: None,
        }
    }
}

impl PipelineConfig {
    fn build_platform(&self) -> Platform {
        let mut builder = Platform::builder();
        if self.constrained_platform {
            builder = builder
                .spec(perisec_tz::platform::PlatformSpec::constrained_mcu())
                .cost_model(perisec_tz::cost::CostModel::constrained_mcu())
                .power_model(perisec_tz::power::PowerModel::constrained_mcu());
        }
        if let Some(kib) = self.secure_ram_kib {
            builder = builder.secure_ram_kib(kib);
        }
        builder.build()
    }
}

/// Trains the in-TA models (keyword STT + sensitive-content classifier) on
/// the synthetic corpus. Exposed so examples and benches can reuse trained
/// models across pipeline instances.
pub fn train_models(
    architecture: Architecture,
    train_utterances: usize,
    corpus_seed: u64,
) -> Result<(KeywordStt, SensitiveClassifier, Vocabulary, SpeechSynthesizer)> {
    let synth = SpeechSynthesizer::smart_home();
    let vocabulary = synth.vocabulary().clone();
    let stt = KeywordStt::train(&synth.reference_renderings(), SttConfig::default())
        .map_err(CoreError::from)?;
    let mut generator = CorpusGenerator::new(vocabulary.clone(), 0.5, corpus_seed);
    let corpus = generator.generate(train_utterances.max(16));
    let mut classifier =
        SensitiveClassifier::new(architecture, TrainConfig::small(vocabulary.len()));
    classifier
        .fit(&to_training_examples(&corpus))
        .map_err(CoreError::from)?;
    Ok((stt, classifier, vocabulary, synth))
}

/// The paper's proposed design: secure driver in the TEE, PTA bridge,
/// in-TA ML filter, relay through the supplicant to the cloud.
pub struct SecurePipeline {
    config: PipelineConfig,
    platform: Platform,
    client: TeeClient,
    filter_session: TeeSessionHandle,
    playback: SharedPlayback,
    synth: SpeechSynthesizer,
    cloud: Arc<MockCloudService>,
    fabric: NetworkFabric,
    core: Arc<TeeCore>,
    i2s_pta: TaUuid,
}

impl std::fmt::Debug for SecurePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecurePipeline")
            .field("architecture", &self.config.architecture)
            .field("policy", &self.config.policy)
            .finish()
    }
}

impl SecurePipeline {
    /// Builds the full secure stack: platform, OP-TEE core, supplicant,
    /// network fabric + mock cloud, secure driver PTA, filter TA, and a
    /// normal-world client session to the TA.
    ///
    /// # Errors
    ///
    /// Fails if the models cannot be trained or a TEE component cannot be
    /// registered (e.g. the secure carve-out is too small for the model).
    pub fn new(config: PipelineConfig) -> Result<Self> {
        let platform = config.build_platform();
        let (stt, classifier, vocabulary, synth) = train_models(
            config.architecture,
            config.train_utterances,
            config.corpus_seed,
        )?;

        // Normal world: supplicant + network fabric + cloud.
        let fabric = NetworkFabric::new();
        let cloud = MockCloudService::new(default_psk());
        fabric.register_service(MockCloudService::HOST, cloud.clone());
        let supplicant = Arc::new(Supplicant::new());
        supplicant.set_net_backend(Arc::new(fabric.clone()));

        // Secure world: TEE core, secure driver PTA, filter TA.
        let core = TeeCore::boot(platform.clone(), supplicant);
        let playback = SharedPlayback::new();
        let mic = Microphone::speech_mic("secure-i2s-mic", playback.source())
            .map_err(perisec_kernel::KernelError::from)?;
        let secure_driver = SecureI2sDriver::new(platform.clone(), mic);
        let i2s_pta = core
            .register_pta(Box::new(I2sPta::new(secure_driver)))
            .map_err(CoreError::from)?;
        let filter = FilterTa::new(
            i2s_pta,
            stt,
            classifier,
            vocabulary,
            config.policy,
            default_cloud_host(),
            default_psk(),
            config.encoding,
        );
        core.register_ta(Box::new(filter)).map_err(CoreError::from)?;

        // Configure and start the secure driver through its PTA.
        let encoding_code = match config.encoding {
            AudioEncoding::PcmLe16 => 0,
            AudioEncoding::MuLaw => 1,
        };
        let mut p = TeeParams::new().with(
            0,
            TeeParam::ValueInput { a: config.period_frames as u64, b: encoding_code },
        );
        core.invoke_pta(i2s_pta, perisec_secure_driver::pta::cmd::CONFIGURE, &mut p)
            .map_err(CoreError::from)?;
        core.invoke_pta(i2s_pta, perisec_secure_driver::pta::cmd::START, &mut TeeParams::new())
            .map_err(CoreError::from)?;

        // Normal world client session to the filter TA.
        let client = TeeClient::connect(Arc::clone(&core));
        let (filter_session, _) = client
            .open_session(TaUuid::from_name(crate::filter_ta::FILTER_TA_NAME), TeeParams::new())
            .map_err(CoreError::from)?;

        Ok(SecurePipeline {
            config,
            platform,
            client,
            filter_session,
            playback,
            synth,
            cloud,
            fabric,
            core,
            i2s_pta,
        })
    }

    /// The simulated platform (for inspecting stats and energy directly).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The mock cloud (for inspecting what it received).
    pub fn cloud(&self) -> &Arc<MockCloudService> {
        &self.cloud
    }

    /// The TEE core (for footprint reports).
    pub fn tee_core(&self) -> &Arc<TeeCore> {
        &self.core
    }

    /// The UUID of the secure-driver PTA.
    pub fn i2s_pta(&self) -> TaUuid {
        self.i2s_pta
    }

    /// Installs a new privacy policy in the filter TA.
    ///
    /// # Errors
    ///
    /// Propagates TEE invocation failures.
    pub fn set_policy(&mut self, policy: PrivacyPolicy) -> Result<()> {
        let (mode, threshold) = policy.to_values();
        let params = TeeParams::new().with(0, TeeParam::ValueInput { a: mode, b: threshold });
        self.client
            .invoke(&self.filter_session, filter_cmd::SET_POLICY, params)
            .map_err(CoreError::from)?;
        self.config.policy = policy;
        Ok(())
    }

    /// Processes one utterance (already queued in the playback source) and
    /// returns the per-stage timings reported by the TA.
    fn process_event(
        &mut self,
        dialog_id: u64,
        periods: u64,
    ) -> Result<(SimDuration, SimDuration, SimDuration, SimDuration)> {
        let params = TeeParams::new().with(0, TeeParam::ValueInput { a: dialog_id, b: periods });
        let out = self
            .client
            .invoke(&self.filter_session, filter_cmd::PROCESS_WINDOW, params)
            .map_err(CoreError::from)?;
        let (wire_ns, capture_cpu_ns) = out.get(1).as_values().unwrap_or((0, 0));
        let (ml_ns, relay_ns) = out.get(2).as_values().unwrap_or((0, 0));
        Ok((
            SimDuration::from_nanos(wire_ns),
            SimDuration::from_nanos(capture_cpu_ns),
            SimDuration::from_nanos(ml_ns),
            SimDuration::from_nanos(relay_ns),
        ))
    }

    /// Replays a scenario end to end and reports on it.
    ///
    /// # Errors
    ///
    /// Propagates TEE and relay failures.
    pub fn run_scenario(&mut self, scenario: &Scenario) -> Result<PipelineReport> {
        self.cloud.reset();
        let stats_before = self.platform.stats().snapshot();
        let mut latency = LatencyBreakdown::default();
        for event in &scenario.events {
            // Advance virtual time to the moment the utterance is spoken so
            // idle power integrates over the scenario duration.
            self.platform
                .clock()
                .advance_to(SimInstant::EPOCH + event.at);
            let audio = self.synth.render_tokens(&event.utterance.tokens);
            let periods =
                (audio.frames() + self.config.period_frames - 1) / self.config.period_frames;
            self.playback.clear();
            self.playback.push(audio.samples());

            let start = self.platform.clock().now();
            let (wire, capture_cpu, ml, relay) =
                self.process_event(event.id, periods as u64)?;
            // Wire time is never charged to the platform clock (the audio
            // arrives in real time concurrently with processing), so the
            // elapsed virtual time is pure processing latency.
            let end_to_end = self.platform.clock().elapsed_since(start);
            latency.capture_wire += wire;
            latency.capture_cpu += capture_cpu;
            latency.ml += ml;
            latency.relay += relay;
            latency.per_utterance.push(end_to_end);
        }
        let stats_after = self.platform.stats().snapshot();
        Ok(PipelineReport {
            pipeline: "secure".to_owned(),
            workload: WorkloadSummary {
                utterances: scenario.len(),
                sensitive_utterances: scenario.sensitive_count(),
            },
            latency,
            cloud: CloudOutcome {
                report: self.cloud.report(),
                sensitive_ids: scenario.sensitive_ids(),
            },
            tz: stats_after.delta_since(&stats_before),
            energy: self.platform.energy_report(),
            virtual_time: self.platform.clock().now().duration_since(SimInstant::EPOCH),
            bytes_to_cloud: self.fabric.stats().bytes_sent,
        })
    }
}

/// The paper's baseline: the driver stays in the untrusted kernel and the
/// unfiltered capture is shipped to the cloud by a normal-world
/// application.
pub struct BaselinePipeline {
    config: PipelineConfig,
    platform: Platform,
    driver: BaselineI2sDriver,
    playback: SharedPlayback,
    synth: SpeechSynthesizer,
    cloud: Arc<MockCloudService>,
    fabric: NetworkFabric,
    channel: Option<(perisec_relay::netsim::Transport, SecureChannelClient)>,
}

impl std::fmt::Debug for BaselinePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselinePipeline").finish()
    }
}

impl BaselinePipeline {
    /// Builds the baseline stack: kernel driver, network fabric, cloud.
    ///
    /// # Errors
    ///
    /// Propagates kernel-substrate failures.
    pub fn new(config: PipelineConfig) -> Result<Self> {
        let platform = config.build_platform();
        let fabric = NetworkFabric::new();
        let cloud = MockCloudService::new(default_psk());
        fabric.register_service(MockCloudService::HOST, cloud.clone());

        let playback = SharedPlayback::new();
        let mic = Microphone::speech_mic("kernel-i2s-mic", playback.source())
            .map_err(perisec_kernel::KernelError::from)?;
        let tracer = FunctionTracer::new();
        let mut driver = BaselineI2sDriver::new(platform.clone(), mic, tracer);
        driver.probe()?;
        driver.configure(PcmHwParams {
            period_frames: config.period_frames,
            ..PcmHwParams::voice_default()
        })?;
        driver.start()?;
        Ok(BaselinePipeline {
            config,
            platform,
            driver,
            playback,
            synth: SpeechSynthesizer::smart_home(),
            cloud,
            fabric,
            channel: None,
        })
    }

    /// The simulated platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The mock cloud.
    pub fn cloud(&self) -> &Arc<MockCloudService> {
        &self.cloud
    }

    fn ensure_channel(&mut self) -> Result<()> {
        if self.channel.is_some() {
            return Ok(());
        }
        let transport = self
            .fabric
            .open_transport(MockCloudService::HOST, 443)
            .map_err(CoreError::from)?;
        let mut client = SecureChannelClient::new(default_psk(), 1);
        transport.send(&client.client_hello()).map_err(CoreError::from)?;
        let hello = transport.recv(4096).map_err(CoreError::from)?;
        client.process_server_hello(&hello).map_err(CoreError::from)?;
        self.channel = Some((transport, client));
        Ok(())
    }

    /// Replays a scenario: every utterance is captured by the in-kernel
    /// driver and forwarded to the cloud without any filtering.
    ///
    /// # Errors
    ///
    /// Propagates kernel and relay failures.
    pub fn run_scenario(&mut self, scenario: &Scenario) -> Result<PipelineReport> {
        self.cloud.reset();
        self.ensure_channel()?;
        let stats_before = self.platform.stats().snapshot();
        let mut latency = LatencyBreakdown::default();
        for event in &scenario.events {
            self.platform
                .clock()
                .advance_to(SimInstant::EPOCH + event.at);
            let audio = self.synth.render_tokens(&event.utterance.tokens);
            let periods =
                (audio.frames() + self.config.period_frames - 1) / self.config.period_frames;
            self.playback.clear();
            self.playback.push(audio.samples());

            let start = self.platform.clock().now();
            let outcome = self.driver.capture_periods(periods)?;
            // The normal-world app ships the raw (encoded) capture to the
            // cloud: encryption but no filtering.
            let relay_start = self.platform.clock().now();
            let payload = self.config.encoding.encode(&outcome.audio);
            let event_bytes = AvsEvent::Recognize {
                dialog_id: event.id,
                audio: payload,
            }
            .encode();
            self.platform.charge_compute(
                perisec_tz::world::World::Normal,
                perisec_relay::tls::seal_flops(event_bytes.len()),
            );
            let (transport, channel) = self.channel.as_mut().expect("channel established above");
            let record = channel.seal(&event_bytes).map_err(CoreError::from)?;
            transport.send(&record).map_err(CoreError::from)?;
            let reply = transport.recv(4096).map_err(CoreError::from)?;
            if !reply.is_empty() {
                let _ = channel.open(&reply).map_err(CoreError::from)?;
            }
            let relay_time = self.platform.clock().elapsed_since(relay_start);

            latency.capture_wire += outcome.wire_time;
            latency.capture_cpu += outcome.cpu_time;
            latency.relay += relay_time;
            latency
                .per_utterance
                .push(self.platform.clock().elapsed_since(start));
        }
        let stats_after = self.platform.stats().snapshot();
        Ok(PipelineReport {
            pipeline: "baseline".to_owned(),
            workload: WorkloadSummary {
                utterances: scenario.len(),
                sensitive_utterances: scenario.sensitive_count(),
            },
            latency,
            cloud: CloudOutcome {
                report: self.cloud.report(),
                sensitive_ids: scenario.sensitive_ids(),
            },
            tz: stats_after.delta_since(&stats_before),
            energy: self.platform.energy_report(),
            virtual_time: self.platform.clock().now().duration_since(SimInstant::EPOCH),
            bytes_to_cloud: self.fabric.stats().bytes_sent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FilterMode;

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            train_utterances: 60,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn secure_pipeline_blocks_most_sensitive_utterances() {
        let mut pipeline = SecurePipeline::new(small_config()).unwrap();
        let scenario = Scenario::mixed(12, 0.5, SimDuration::from_secs(5), 77);
        let report = pipeline.run_scenario(&scenario).unwrap();

        assert_eq!(report.workload.utterances, 12);
        assert!(report.workload.sensitive_utterances > 0);
        // The filter must stop the majority of sensitive content.
        assert!(
            report.cloud.leakage_rate() < 0.5,
            "leakage rate {:.2}",
            report.cloud.leakage_rate()
        );
        // Non-sensitive content still flows: at least one utterance reached
        // the cloud, all of it encrypted.
        assert!(report.cloud.received_utterances() >= 1);
        assert!(report.cloud.report.events.iter().all(|e| e.encrypted));
        // TEE mechanics were exercised.
        assert!(report.tz.smc_calls >= 12);
        assert!(report.tz.world_switches >= 24);
        assert!(report.tz.supplicant_rpcs > 0);
        assert!(report.latency.ml > SimDuration::ZERO);
        assert!(report.energy.total_mj > 0.0);
    }

    #[test]
    fn baseline_pipeline_leaks_everything() {
        let mut pipeline = BaselinePipeline::new(small_config()).unwrap();
        let scenario = Scenario::mixed(8, 0.5, SimDuration::from_secs(5), 78);
        let report = pipeline.run_scenario(&scenario).unwrap();
        assert_eq!(report.cloud.received_utterances(), 8);
        assert!((report.cloud.leakage_rate() - 1.0).abs() < 1e-9);
        // The baseline never enters the secure world.
        assert_eq!(report.tz.world_switches, 0);
        assert_eq!(report.tz.smc_calls, 0);
        assert!(report.latency.ml.is_zero());
    }

    #[test]
    fn secure_pipeline_is_slower_per_utterance_than_baseline() {
        let scenario = Scenario::mixed(6, 0.5, SimDuration::from_secs(5), 79);
        let mut secure = SecurePipeline::new(small_config()).unwrap();
        let mut baseline = BaselinePipeline::new(small_config()).unwrap();
        let secure_report = secure.run_scenario(&scenario).unwrap();
        let baseline_report = baseline.run_scenario(&scenario).unwrap();
        assert!(
            secure_report.latency.mean_end_to_end() > baseline_report.latency.mean_end_to_end(),
            "secure {} vs baseline {}",
            secure_report.latency.mean_end_to_end(),
            baseline_report.latency.mean_end_to_end()
        );
    }

    #[test]
    fn allow_all_policy_forwards_sensitive_content() {
        let mut pipeline = SecurePipeline::new(PipelineConfig {
            policy: PrivacyPolicy { mode: FilterMode::AllowAll, threshold: 0.5 },
            train_utterances: 60,
            ..PipelineConfig::default()
        })
        .unwrap();
        let scenario = Scenario::mixed(8, 1.0, SimDuration::from_secs(5), 80);
        let report = pipeline.run_scenario(&scenario).unwrap();
        assert!(report.cloud.leakage_rate() > 0.5);
        // Switching the policy at runtime changes behaviour.
        pipeline.set_policy(PrivacyPolicy::block_sensitive()).unwrap();
        let report2 = pipeline.run_scenario(&scenario).unwrap();
        assert!(report2.cloud.leakage_rate() < report.cloud.leakage_rate());
    }

    #[test]
    fn tiny_secure_ram_rejects_the_model() {
        let result = SecurePipeline::new(PipelineConfig {
            secure_ram_kib: Some(96),
            train_utterances: 30,
            ..PipelineConfig::default()
        });
        assert!(result.is_err());
    }
}
