//! The privacy policy applied by the filter TA.

use serde::{Deserialize, Serialize};

/// What the filter does with content it deems sensitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterMode {
    /// Drop sensitive utterances entirely (the paper's default: sensitive
    /// data is "filtered out of the data stream").
    BlockSensitive,
    /// Forward sensitive utterances with the sensitive words removed.
    RedactSensitive,
    /// Forward everything (equivalent to no filter; used as an ablation).
    AllowAll,
    /// Forward nothing (maximum privacy, zero utility; used as an
    /// ablation).
    BlockAll,
}

impl std::fmt::Display for FilterMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FilterMode::BlockSensitive => "block-sensitive",
            FilterMode::RedactSensitive => "redact-sensitive",
            FilterMode::AllowAll => "allow-all",
            FilterMode::BlockAll => "block-all",
        };
        write!(f, "{s}")
    }
}

/// What the filter decided for one utterance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterDecision {
    /// Forward the utterance unchanged.
    Forward,
    /// Forward a redacted version.
    ForwardRedacted,
    /// Do not forward anything.
    Drop,
}

impl FilterDecision {
    /// Stable numeric code used on the TA parameter interface.
    pub fn code(self) -> u64 {
        match self {
            FilterDecision::Forward => 0,
            FilterDecision::ForwardRedacted => 2,
            FilterDecision::Drop => 1,
        }
    }

    /// Parses a numeric code back into a decision.
    pub fn from_code(code: u64) -> Option<FilterDecision> {
        match code {
            0 => Some(FilterDecision::Forward),
            1 => Some(FilterDecision::Drop),
            2 => Some(FilterDecision::ForwardRedacted),
            _ => None,
        }
    }
}

/// The privacy policy evaluated inside the TA.
///
/// The filter applies **defense in depth**: the trained classifier scores
/// each transcript, and — when [`PrivacyPolicy::lexical_guard`] is on —
/// any transcript containing a word from a sensitive vocabulary category
/// is treated as sensitive regardless of the classifier's score. The
/// guard gives deterministic recall on known-sensitive vocabulary (the
/// classifier can never "miss" a bank keyword), while the classifier
/// generalizes to combinations the lexicon alone would pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyPolicy {
    /// What to do with sensitive content.
    pub mode: FilterMode,
    /// Probability above which the classifier's verdict counts as
    /// sensitive.
    pub threshold: f32,
    /// Whether a recognized sensitive-category word forces the sensitive
    /// verdict independent of the classifier.
    pub lexical_guard: bool,
}

/// Bit set in the encoded mode value when the lexical guard is enabled.
const GUARD_BIT: u64 = 0x8;

impl PrivacyPolicy {
    /// The paper's default: block anything the filter deems sensitive
    /// (classifier or lexicon).
    pub fn block_sensitive() -> Self {
        PrivacyPolicy {
            mode: FilterMode::BlockSensitive,
            threshold: 0.5,
            lexical_guard: true,
        }
    }

    /// Forward everything (the unprotected behaviour).
    pub fn allow_all() -> Self {
        PrivacyPolicy {
            mode: FilterMode::AllowAll,
            threshold: 0.5,
            lexical_guard: false,
        }
    }

    /// Redact sensitive words but keep the rest of the utterance.
    pub fn redact_sensitive() -> Self {
        PrivacyPolicy {
            mode: FilterMode::RedactSensitive,
            threshold: 0.5,
            lexical_guard: true,
        }
    }

    /// Like [`PrivacyPolicy::block_sensitive`], but relying on the
    /// classifier alone — the ablation the architecture-comparison
    /// experiments measure.
    pub fn classifier_only(mode: FilterMode, threshold: f32) -> Self {
        PrivacyPolicy {
            mode,
            threshold,
            lexical_guard: false,
        }
    }

    /// Decides what to do given the classifier's sensitive probability
    /// (no lexicon input; see [`PrivacyPolicy::decide_with_lexicon`]).
    pub fn decide(&self, sensitive_probability: f32) -> FilterDecision {
        self.decide_with_lexicon(sensitive_probability, false)
    }

    /// Decides what to do given the classifier's probability and whether
    /// the transcript contained a sensitive-category vocabulary word.
    pub fn decide_with_lexicon(
        &self,
        sensitive_probability: f32,
        lexical_hit: bool,
    ) -> FilterDecision {
        let sensitive =
            sensitive_probability >= self.threshold || (self.lexical_guard && lexical_hit);
        match (self.mode, sensitive) {
            (FilterMode::AllowAll, _) => FilterDecision::Forward,
            (FilterMode::BlockAll, _) => FilterDecision::Drop,
            (_, false) => FilterDecision::Forward,
            (FilterMode::BlockSensitive, true) => FilterDecision::Drop,
            (FilterMode::RedactSensitive, true) => FilterDecision::ForwardRedacted,
        }
    }

    /// Encodes the policy as two values for the TA parameter interface
    /// (the lexical-guard flag rides in a high bit of the mode value).
    pub fn to_values(&self) -> (u64, u64) {
        let mode = match self.mode {
            FilterMode::BlockSensitive => 0,
            FilterMode::RedactSensitive => 1,
            FilterMode::AllowAll => 2,
            FilterMode::BlockAll => 3,
        };
        let guard = if self.lexical_guard { GUARD_BIT } else { 0 };
        (mode | guard, (self.threshold * 1000.0) as u64)
    }

    /// Decodes a policy from the TA parameter interface.
    pub fn from_values(mode: u64, threshold_milli: u64) -> Option<Self> {
        let lexical_guard = mode & GUARD_BIT != 0;
        let mode = match mode & !GUARD_BIT {
            0 => FilterMode::BlockSensitive,
            1 => FilterMode::RedactSensitive,
            2 => FilterMode::AllowAll,
            3 => FilterMode::BlockAll,
            _ => return None,
        };
        Some(PrivacyPolicy {
            mode,
            threshold: (threshold_milli as f32 / 1000.0).clamp(0.0, 1.0),
            lexical_guard,
        })
    }
}

impl Default for PrivacyPolicy {
    fn default() -> Self {
        PrivacyPolicy::block_sensitive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_sensitive_drops_only_above_threshold() {
        let p = PrivacyPolicy::block_sensitive();
        assert_eq!(p.decide(0.9), FilterDecision::Drop);
        assert_eq!(p.decide(0.1), FilterDecision::Forward);
        assert_eq!(p.decide(0.5), FilterDecision::Drop);
    }

    #[test]
    fn ablation_modes() {
        assert_eq!(
            PrivacyPolicy::allow_all().decide(0.99),
            FilterDecision::Forward
        );
        let block_all = PrivacyPolicy {
            mode: FilterMode::BlockAll,
            threshold: 0.5,
            lexical_guard: true,
        };
        assert_eq!(block_all.decide(0.01), FilterDecision::Drop);
        assert_eq!(
            PrivacyPolicy::redact_sensitive().decide(0.9),
            FilterDecision::ForwardRedacted
        );
        assert_eq!(
            PrivacyPolicy::redact_sensitive().decide(0.1),
            FilterDecision::Forward
        );
    }

    #[test]
    fn value_and_code_round_trips() {
        for policy in [
            PrivacyPolicy::block_sensitive(),
            PrivacyPolicy::redact_sensitive(),
            PrivacyPolicy::allow_all(),
            PrivacyPolicy {
                mode: FilterMode::BlockAll,
                threshold: 0.73,
                lexical_guard: false,
            },
        ] {
            let (m, t) = policy.to_values();
            let decoded = PrivacyPolicy::from_values(m, t).unwrap();
            assert_eq!(decoded.mode, policy.mode);
            assert_eq!(decoded.lexical_guard, policy.lexical_guard);
            assert!((decoded.threshold - policy.threshold).abs() < 0.001);
        }
        // 7 is not a mode even after masking off the guard bit; 9 decodes
        // as redact-sensitive with the guard bit set.
        assert!(PrivacyPolicy::from_values(7, 500).is_none());
        assert_eq!(
            PrivacyPolicy::from_values(9, 500).unwrap(),
            PrivacyPolicy {
                mode: FilterMode::RedactSensitive,
                threshold: 0.5,
                lexical_guard: true
            }
        );
        for d in [
            FilterDecision::Forward,
            FilterDecision::Drop,
            FilterDecision::ForwardRedacted,
        ] {
            assert_eq!(FilterDecision::from_code(d.code()), Some(d));
        }
        assert!(FilterDecision::from_code(99).is_none());
    }
}
