//! Per-run reports: latency, accounting, energy, privacy leakage.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use perisec_relay::cloud::CloudReport;
use perisec_tz::power::EnergyReport;
use perisec_tz::stats::TzStatsSnapshot;
use perisec_tz::time::SimDuration;

/// Summary of the workload a pipeline processed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Number of utterances replayed.
    pub utterances: usize,
    /// Number of ground-truth sensitive utterances among them.
    pub sensitive_utterances: usize,
}

/// Accumulated per-stage latency over a run.
///
/// The per-utterance sample is private behind cache-resetting mutators:
/// `percentile` (and the `p50`/`p95`/`p99` helpers) sorts the sample
/// **once** on first query and reuses the sorted copy for every later
/// quantile, mirroring [`FleetReport`](crate::fleet::FleetReport)'s
/// percentile cache. Appending latencies resets the cache.
#[derive(Debug, Clone, Default)]
pub struct LatencyBreakdown {
    /// Time the audio spent on the I2S wire (real-time capture).
    pub capture_wire: SimDuration,
    /// CPU time spent by the driver moving/encoding the audio.
    pub capture_cpu: SimDuration,
    /// Time spent in the ML stage (STT + classification).
    pub ml: SimDuration,
    /// Time spent in the relay stage (policy, channel, supplicant RPCs).
    pub relay: SimDuration,
    /// End-to-end processing time observed by the caller, per utterance
    /// (excludes the real-time audio capture on the wire). Private so the
    /// sorted cache below can never go stale.
    per_utterance: Vec<SimDuration>,
    /// Lazily-sorted copy of `per_utterance`, shared by every quantile
    /// query. Derived data: excluded from equality and serialization.
    sorted: OnceLock<Vec<SimDuration>>,
}

impl PartialEq for LatencyBreakdown {
    fn eq(&self, other: &Self) -> bool {
        self.capture_wire == other.capture_wire
            && self.capture_cpu == other.capture_cpu
            && self.ml == other.ml
            && self.relay == other.relay
            && self.per_utterance == other.per_utterance
    }
}

impl Serialize for LatencyBreakdown {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            ("capture_wire".to_owned(), self.capture_wire.to_value()),
            ("capture_cpu".to_owned(), self.capture_cpu.to_value()),
            ("ml".to_owned(), self.ml.to_value()),
            ("relay".to_owned(), self.relay.to_value()),
            ("per_utterance".to_owned(), self.per_utterance.to_value()),
        ])
    }
}

impl Deserialize for LatencyBreakdown {
    fn from_value(value: &serde::value::Value) -> std::result::Result<Self, serde::Error> {
        Ok(LatencyBreakdown {
            capture_wire: Deserialize::from_value(value.field("capture_wire")?)?,
            capture_cpu: Deserialize::from_value(value.field("capture_cpu")?)?,
            ml: Deserialize::from_value(value.field("ml")?)?,
            relay: Deserialize::from_value(value.field("relay")?)?,
            per_utterance: Deserialize::from_value(value.field("per_utterance")?)?,
            sorted: OnceLock::new(),
        })
    }
}

impl LatencyBreakdown {
    /// The per-utterance latencies, in arrival order.
    pub fn per_utterance(&self) -> &[SimDuration] {
        &self.per_utterance
    }

    /// Appends one per-utterance latency (resets the percentile cache).
    pub fn push_latency(&mut self, latency: SimDuration) {
        self.per_utterance.push(latency);
        self.sorted = OnceLock::new();
    }

    /// Appends a batch of per-utterance latencies (resets the percentile
    /// cache).
    pub fn extend_latencies(&mut self, latencies: impl IntoIterator<Item = SimDuration>) {
        self.per_utterance.extend(latencies);
        self.sorted = OnceLock::new();
    }

    /// Mean end-to-end processing latency per utterance.
    pub fn mean_end_to_end(&self) -> SimDuration {
        if self.per_utterance.is_empty() {
            return SimDuration::ZERO;
        }
        self.per_utterance.iter().copied().sum::<SimDuration>() / self.per_utterance.len() as u64
    }

    /// The `q`-quantile (0 < q <= 1) of the per-utterance latencies. The
    /// sample is sorted once and cached, so querying p50/p95/p99 costs one
    /// sort total, not one per call.
    pub fn percentile(&self, q: f64) -> SimDuration {
        let sorted = self.sorted.get_or_init(|| {
            let mut sample = self.per_utterance.clone();
            sample.sort();
            sample
        });
        nearest_rank(sorted, q)
    }

    /// Median end-to-end processing latency.
    pub fn p50_end_to_end(&self) -> SimDuration {
        self.percentile(0.50)
    }

    /// 95th-percentile end-to-end processing latency.
    pub fn p95_end_to_end(&self) -> SimDuration {
        self.percentile(0.95)
    }

    /// 99th-percentile end-to-end processing latency.
    pub fn p99_end_to_end(&self) -> SimDuration {
        self.percentile(0.99)
    }

    /// Total processing time across all stages (excluding wire time).
    pub fn total_processing(&self) -> SimDuration {
        self.capture_cpu + self.ml + self.relay
    }
}

/// Nearest-rank percentile over an unsorted latency sample (the one
/// definition every report in the workspace shares, so a fleet's p99 and a
/// device's p99 can never disagree on method). Returns zero for an empty
/// sample.
pub fn latency_percentile(mut sample: Vec<SimDuration>, q: f64) -> SimDuration {
    sample.sort();
    nearest_rank(&sample, q)
}

/// The shared rank rule behind every percentile in the workspace.
fn nearest_rank(sorted: &[SimDuration], q: f64) -> SimDuration {
    if sorted.is_empty() {
        return SimDuration::ZERO;
    }
    let idx = ((sorted.len() as f64) * q.clamp(0.0, 1.0)).ceil() as usize;
    sorted[idx.saturating_sub(1).min(sorted.len() - 1)]
}

/// End-to-end latency percentiles of one run or fleet, as serialized into
/// report JSON — the figures SLO claims (E14) are checked against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyPercentiles {
    /// Mean per-utterance latency.
    pub mean: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
}

impl LatencyPercentiles {
    /// Computes the percentiles from a latency sample.
    pub fn from_sample(sample: Vec<SimDuration>) -> Self {
        if sample.is_empty() {
            return LatencyPercentiles::default();
        }
        let mean = sample.iter().copied().sum::<SimDuration>() / sample.len() as u64;
        let mut sorted = sample;
        sorted.sort();
        LatencyPercentiles {
            mean,
            p50: nearest_rank(&sorted, 0.50),
            p95: nearest_rank(&sorted, 0.95),
            p99: nearest_rank(&sorted, 0.99),
        }
    }
}

/// What reached the cloud, matched against the scenario's ground truth.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CloudOutcome {
    /// Everything the cloud recorded.
    pub report: CloudReport,
    /// Ground-truth sensitive dialog ids of the scenario.
    pub sensitive_ids: Vec<u64>,
}

impl CloudOutcome {
    /// Number of distinct utterances for which *any* content reached the
    /// cloud.
    pub fn received_utterances(&self) -> usize {
        self.report.received_dialog_ids().len()
    }

    /// Number of ground-truth sensitive utterances for which content
    /// reached the cloud — the paper's headline privacy metric.
    pub fn leaked_sensitive_utterances(&self) -> usize {
        let received = self.report.received_dialog_ids();
        self.sensitive_ids
            .iter()
            .filter(|id| received.binary_search(id).is_ok())
            .count()
    }

    /// Leakage rate: leaked sensitive / total sensitive (zero if the
    /// scenario had none).
    pub fn leakage_rate(&self) -> f64 {
        if self.sensitive_ids.is_empty() {
            return 0.0;
        }
        self.leaked_sensitive_utterances() as f64 / self.sensitive_ids.len() as f64
    }
}

/// The complete report of one pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Which pipeline produced the report ("secure" or "baseline").
    pub pipeline: String,
    /// Workload summary.
    pub workload: WorkloadSummary,
    /// Per-stage latency accounting.
    pub latency: LatencyBreakdown,
    /// Cloud-side outcome (the privacy result).
    pub cloud: CloudOutcome,
    /// TrustZone machine counters accumulated during the run.
    pub tz: TzStatsSnapshot,
    /// Energy report over the run's observation window.
    pub energy: EnergyReport,
    /// Virtual time at the end of the run.
    pub virtual_time: SimDuration,
    /// Application bytes that crossed the network towards the cloud.
    pub bytes_to_cloud: u64,
}

impl PipelineReport {
    /// Energy per utterance in millijoules.
    pub fn energy_per_utterance_mj(&self) -> f64 {
        if self.workload.utterances == 0 {
            return 0.0;
        }
        self.energy.total_mj / self.workload.utterances as f64
    }

    /// Serializes the report as pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics: all fields are plain data.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serializable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perisec_relay::cloud::ReceivedEvent;

    #[test]
    fn latency_statistics() {
        let mut breakdown = LatencyBreakdown::default();
        assert_eq!(breakdown.mean_end_to_end(), SimDuration::ZERO);
        assert_eq!(breakdown.p99_end_to_end(), SimDuration::ZERO);
        breakdown.extend_latencies((1..=100).map(SimDuration::from_micros));
        assert_eq!(breakdown.mean_end_to_end(), SimDuration::from_nanos(50_500));
        assert_eq!(breakdown.p50_end_to_end(), SimDuration::from_micros(50));
        assert_eq!(breakdown.p95_end_to_end(), SimDuration::from_micros(95));
        assert_eq!(breakdown.p99_end_to_end(), SimDuration::from_micros(99));
        breakdown.capture_cpu = SimDuration::from_micros(10);
        breakdown.ml = SimDuration::from_micros(20);
        breakdown.relay = SimDuration::from_micros(30);
        assert_eq!(breakdown.total_processing(), SimDuration::from_micros(60));
    }

    #[test]
    fn percentiles_are_order_invariant_and_serializable() {
        let forwards: Vec<SimDuration> = (1..=50).map(SimDuration::from_micros).collect();
        let mut backwards = forwards.clone();
        backwards.reverse();
        let a = LatencyPercentiles::from_sample(forwards);
        let b = LatencyPercentiles::from_sample(backwards);
        assert_eq!(a, b);
        assert_eq!(a.p50, SimDuration::from_micros(25));
        assert_eq!(a.p95, SimDuration::from_micros(48));
        assert_eq!(a.p99, SimDuration::from_micros(50));
        assert!(a.mean > SimDuration::ZERO);
        assert_eq!(
            LatencyPercentiles::from_sample(Vec::new()),
            LatencyPercentiles::default()
        );
        let json = serde_json::to_string(&a).unwrap();
        assert!(json.contains("p95"));
        // A one-element sample pins every percentile to that element.
        assert_eq!(
            latency_percentile(vec![SimDuration::from_micros(7)], 0.5),
            SimDuration::from_micros(7)
        );
        assert_eq!(latency_percentile(Vec::new(), 0.99), SimDuration::ZERO);
    }

    #[test]
    fn leakage_accounting_matches_ground_truth() {
        let mut outcome = CloudOutcome {
            report: CloudReport::default(),
            sensitive_ids: vec![1, 3, 5],
        };
        assert_eq!(outcome.leaked_sensitive_utterances(), 0);
        assert_eq!(outcome.leakage_rate(), 0.0);
        outcome.report.events.push(ReceivedEvent {
            dialog_id: 3,
            text: Some("bank transfer".into()),
            audio_bytes: 0,
            encrypted: true,
        });
        outcome.report.events.push(ReceivedEvent {
            dialog_id: 2,
            text: Some("play music".into()),
            audio_bytes: 0,
            encrypted: true,
        });
        assert_eq!(outcome.received_utterances(), 2);
        assert_eq!(outcome.leaked_sensitive_utterances(), 1);
        assert!((outcome.leakage_rate() - 1.0 / 3.0).abs() < 1e-9);
        let empty = CloudOutcome::default();
        assert_eq!(empty.leakage_rate(), 0.0);
    }
}
