//! Shared "physical world" sources feeding the secure drivers.
//!
//! The secure drivers own their sensors, but scenario runners need to feed
//! the outside world into those sensors from outside the TEE simulation:
//!
//! * [`SharedPlayback`] is a [`SignalSource`] backed by a sample queue the
//!   runner refills between utterances; the microphone drains it sample by
//!   sample and reads silence when it is empty.
//! * [`SharedSceneQueue`] is its camera counterpart: a [`SceneSource`]
//!   backed by a scene queue; the camera sensor pops one scene per frame
//!   and sees an empty room when the queue runs dry.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use perisec_devices::camera::{SceneKind, SceneSource};
use perisec_devices::signal::SignalSource;

/// Shared handle used to refill the queue.
#[derive(Debug, Clone, Default)]
pub struct SharedPlayback {
    queue: Arc<Mutex<VecDeque<i16>>>,
}

impl SharedPlayback {
    /// Creates an empty shared playback queue.
    pub fn new() -> Self {
        SharedPlayback::default()
    }

    /// Appends samples to be played next.
    pub fn push(&self, samples: &[i16]) {
        self.queue.lock().extend(samples.iter().copied());
    }

    /// Appends samples padded with trailing silence up to `total_samples`.
    ///
    /// Batched capture queues several utterances back to back; padding each
    /// to its whole-period window keeps later windows aligned to period
    /// boundaries (the unbatched path gets the same effect from clearing
    /// the queue between utterances).
    pub fn push_padded(&self, samples: &[i16], total_samples: usize) {
        let mut queue = self.queue.lock();
        queue.extend(samples.iter().copied());
        for _ in samples.len()..total_samples {
            queue.push_back(0);
        }
    }

    /// Number of queued samples not yet consumed.
    pub fn remaining(&self) -> usize {
        self.queue.lock().len()
    }

    /// Discards everything still queued.
    pub fn clear(&self) {
        self.queue.lock().clear();
    }

    /// Creates the [`SignalSource`] half to hand to a microphone.
    pub fn source(&self) -> Box<dyn SignalSource> {
        Box::new(SharedPlaybackSource {
            queue: Arc::clone(&self.queue),
        })
    }
}

struct SharedPlaybackSource {
    queue: Arc<Mutex<VecDeque<i16>>>,
}

impl SignalSource for SharedPlaybackSource {
    fn next_samples(&mut self, count: usize) -> Vec<i16> {
        let mut queue = self.queue.lock();
        let n = count.min(queue.len());
        let mut out: Vec<i16> = queue.drain(..n).collect();
        out.resize(count, 0);
        out
    }

    fn describe(&self) -> String {
        format!(
            "shared playback ({} samples queued)",
            self.queue.lock().len()
        )
    }
}

/// Shared handle used to schedule scenes in front of a camera.
#[derive(Debug, Clone, Default)]
pub struct SharedSceneQueue {
    queue: Arc<Mutex<VecDeque<SceneKind>>>,
}

impl SharedSceneQueue {
    /// Creates an empty scene queue.
    pub fn new() -> Self {
        SharedSceneQueue::default()
    }

    /// Appends `frames` frames of `scene`.
    pub fn push(&self, scene: SceneKind, frames: usize) {
        let mut queue = self.queue.lock();
        for _ in 0..frames {
            queue.push_back(scene);
        }
    }

    /// Number of queued frames not yet consumed.
    pub fn remaining(&self) -> usize {
        self.queue.lock().len()
    }

    /// Discards everything still queued.
    pub fn clear(&self) {
        self.queue.lock().clear();
    }

    /// Creates the [`SceneSource`] half to hand to a camera driver.
    pub fn source(&self) -> Box<dyn SceneSource> {
        Box::new(SharedSceneSource {
            queue: Arc::clone(&self.queue),
        })
    }
}

struct SharedSceneSource {
    queue: Arc<Mutex<VecDeque<SceneKind>>>,
}

impl SceneSource for SharedSceneSource {
    fn next_scene(&mut self) -> SceneKind {
        self.queue
            .lock()
            .pop_front()
            .unwrap_or(SceneKind::EmptyRoom)
    }

    fn describe(&self) -> String {
        format!(
            "shared scene queue ({} frames queued)",
            self.queue.lock().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_queue_is_shared_between_handle_and_source() {
        let scenes = SharedSceneQueue::new();
        let mut source = scenes.source();
        assert_eq!(source.next_scene(), SceneKind::EmptyRoom);
        scenes.push(SceneKind::Person, 2);
        scenes.push(SceneKind::Document, 1);
        assert_eq!(scenes.remaining(), 3);
        assert_eq!(source.next_scene(), SceneKind::Person);
        assert_eq!(source.next_scene(), SceneKind::Person);
        assert_eq!(source.next_scene(), SceneKind::Document);
        assert_eq!(source.next_scene(), SceneKind::EmptyRoom);
        scenes.push(SceneKind::Pet, 5);
        scenes.clear();
        assert_eq!(source.next_scene(), SceneKind::EmptyRoom);
        assert!(source.describe().contains("scene queue"));
    }

    #[test]
    fn queue_is_shared_between_handle_and_source() {
        let playback = SharedPlayback::new();
        let mut source = playback.source();
        assert_eq!(source.next_samples(4), vec![0, 0, 0, 0]);
        playback.push(&[1, 2, 3]);
        assert_eq!(playback.remaining(), 3);
        assert_eq!(source.next_samples(2), vec![1, 2]);
        assert_eq!(source.next_samples(4), vec![3, 0, 0, 0]);
        assert_eq!(playback.remaining(), 0);
        playback.push(&[9; 10]);
        playback.clear();
        assert_eq!(source.next_samples(1), vec![0]);
        assert!(source.describe().contains("shared playback"));
    }
}
