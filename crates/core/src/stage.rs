//! The staged pipeline architecture.
//!
//! Both pipelines are decomposed into three stages behind one trait:
//!
//! * a **capture stage** that turns scenario events into capture work
//!   (queued waveforms plus window descriptions);
//! * a **filter stage** that moves the captured audio through the privacy
//!   filter — a TEE round trip for the secure pipeline, a no-op for the
//!   baseline;
//! * a **relay stage** that accounts for (secure) or performs (baseline)
//!   the delivery of permitted content to the cloud.
//!
//! Stages communicate through explicit batch types, and every stage is
//! batch-aware: the secure filter stage crosses the TEE boundary **once
//! per batch** (`PROCESS_BATCH` + a single batched relay record), which is
//! what drops world switches per utterance by the batch factor.

use perisec_devices::codec::AudioEncoding;
use perisec_kernel::i2s_driver::BaselineI2sDriver;
use perisec_optee::{TeeClient, TeeParam, TeeParams, TeeSessionHandle};
use perisec_relay::avs::AvsEvent;
use perisec_relay::netsim::{NetworkFabric, Transport};
use perisec_relay::tls::{seal_flops, SecureChannelClient, PSK_LEN};
use perisec_tz::platform::Platform;
use perisec_tz::time::{SimDuration, SimInstant};
use perisec_workload::scenario::{CameraScenarioEvent, ScenarioEvent};
use perisec_workload::synth::SpeechSynthesizer;

use crate::cloud_channel::backoff_interval;
use crate::filter_ta::{cmd as filter_cmd, decode_batch_verdicts, encode_batch_request};
use crate::policy::FilterDecision;
use crate::report::LatencyBreakdown;
use crate::source::{SharedPlayback, SharedSceneQueue};
use crate::RelayRetryConfig;
use crate::{CoreError, Result};

/// One stage of a pipeline: a named transformation over batch work items.
///
/// Stages are chained `CaptureStage -> FilterStage -> RelayStage` by the
/// pipelines; the associated types make each hand-off explicit and let the
/// two pipelines share the same driving loop.
pub trait PipelineStage {
    /// What the stage consumes.
    type Input;
    /// What the stage produces.
    type Output;

    /// Short stable stage name (for traces and reports).
    fn name(&self) -> &'static str;

    /// Processes one batch.
    ///
    /// # Errors
    ///
    /// Stage-specific; see each implementation.
    fn process(&mut self, input: Self::Input) -> Result<Self::Output>;
}

/// One capture window awaiting the filter: an utterance already queued on
/// the device's signal path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Dialog id of the utterance (the scenario event id).
    pub dialog_id: u64,
    /// Window length in capture periods.
    pub periods: usize,
}

/// Output of the secure capture stage: windows queued for the TEE.
#[derive(Debug, Clone)]
pub struct PreparedBatch {
    /// The windows, in capture order.
    pub windows: Vec<WindowSpec>,
    /// Virtual time at which the batch was handed to the filter.
    pub started: SimInstant,
}

/// The filter's verdict on one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowVerdict {
    /// Dialog id of the utterance.
    pub dialog_id: u64,
    /// The policy decision the TA applied.
    pub decision: FilterDecision,
    /// Classifier probability in thousandths.
    pub probability_milli: u16,
}

/// Output of a filter stage: per-window verdicts plus stage accounting.
#[derive(Debug, Clone, Default)]
pub struct FilteredBatch {
    /// Verdicts in window order (empty for the baseline, which never
    /// inspects content).
    pub verdicts: Vec<WindowVerdict>,
    /// Time the batch's audio occupied the wire.
    pub wire: SimDuration,
    /// Driver CPU time spent capturing/encoding.
    pub capture_cpu: SimDuration,
    /// ML time (STT + classification); zero for the baseline.
    pub ml: SimDuration,
    /// Relay time (policy, sealing, supplicant round trips).
    pub relay: SimDuration,
    /// End-to-end processing latency of each utterance in the batch. For
    /// batched TEE crossings the batch latency is attributed evenly.
    pub per_utterance: Vec<SimDuration>,
    /// Relay retransmissions the TA performed while this batch was in
    /// flight (zero on a healthy network).
    pub retries: u64,
    /// Unacked relay records still buffered in the TA after this batch —
    /// the graceful-degradation signal that drives the batcher to
    /// `Critical` and triggers the end-of-scenario drain when non-zero.
    pub backlog: u64,
}

// ----- secure pipeline stages ---------------------------------------------

/// Normal-world half of the secure capture path: renders each utterance,
/// queues it (padded to whole periods so batched windows stay aligned) on
/// the shared playback source feeding the in-TEE driver's microphone, and
/// describes the windows for the filter TA.
pub struct SecureCaptureStage {
    platform: Platform,
    playback: SharedPlayback,
    synth: SpeechSynthesizer,
    period_frames: usize,
}

impl SecureCaptureStage {
    /// Creates the stage.
    pub fn new(
        platform: Platform,
        playback: SharedPlayback,
        synth: SpeechSynthesizer,
        period_frames: usize,
    ) -> Self {
        SecureCaptureStage {
            platform,
            playback,
            synth,
            period_frames,
        }
    }
}

impl PipelineStage for SecureCaptureStage {
    type Input = Vec<ScenarioEvent>;
    type Output = PreparedBatch;

    fn name(&self) -> &'static str {
        "secure-capture"
    }

    fn process(&mut self, events: Self::Input) -> Result<PreparedBatch> {
        self.playback.clear();
        let mut windows = Vec::with_capacity(events.len());
        for event in &events {
            // Advance virtual time to the utterance so idle power
            // integrates over the scenario duration.
            self.platform
                .clock()
                .advance_to(SimInstant::EPOCH + event.at);
            let audio = self.synth.render_tokens(&event.utterance.tokens);
            let periods = audio.frames().div_ceil(self.period_frames);
            let periods = periods.max(1);
            self.playback
                .push_padded(audio.samples(), periods * self.period_frames);
            windows.push(WindowSpec {
                dialog_id: event.id,
                periods,
            });
        }
        Ok(PreparedBatch {
            windows,
            started: self.platform.clock().now(),
        })
    }
}

/// Normal-world half of the secure *camera* capture path: schedules each
/// event's scene on the shared scene queue feeding the in-TEE camera
/// driver's sensor, and describes the frame windows for the vision TA.
/// Produces the same [`PreparedBatch`] as the audio capture stage (a
/// window's `periods` are its frames), so the downstream filter and relay
/// stages serve both modalities unchanged.
pub struct SecureFrameCaptureStage {
    platform: Platform,
    scenes: SharedSceneQueue,
}

impl SecureFrameCaptureStage {
    /// Creates the stage.
    pub fn new(platform: Platform, scenes: SharedSceneQueue) -> Self {
        SecureFrameCaptureStage { platform, scenes }
    }
}

impl PipelineStage for SecureFrameCaptureStage {
    type Input = Vec<CameraScenarioEvent>;
    type Output = PreparedBatch;

    fn name(&self) -> &'static str {
        "secure-frame-capture"
    }

    fn process(&mut self, events: Self::Input) -> Result<PreparedBatch> {
        self.scenes.clear();
        let mut windows = Vec::with_capacity(events.len());
        for event in &events {
            self.platform
                .clock()
                .advance_to(SimInstant::EPOCH + event.at);
            let frames = event.frames.max(1);
            self.scenes.push(event.scene, frames);
            windows.push(WindowSpec {
                dialog_id: event.id,
                periods: frames,
            });
        }
        Ok(PreparedBatch {
            windows,
            started: self.platform.clock().now(),
        })
    }
}

/// The secure filter stage: one `PROCESS_BATCH` invocation — a single SMC
/// and world-switch round trip — covers capture, ML, policy and the
/// batched relay for every window in the batch. Because the audio filter
/// TA and the vision TA share one batch parameter contract, this stage
/// drives either modality: hand it a session on the filter TA and it
/// filters utterances, hand it a session on the vision TA and it filters
/// frame windows.
pub struct SecureFilterStage {
    platform: Platform,
    client: TeeClient,
    session: TeeSessionHandle,
}

impl SecureFilterStage {
    /// Creates the stage over an open filter-TA session.
    pub fn new(platform: Platform, client: TeeClient, session: TeeSessionHandle) -> Self {
        SecureFilterStage {
            platform,
            client,
            session,
        }
    }

    /// The platform whose clock this stage measures latency against.
    /// Multi-core schedulers use this to stamp batches in the stage's own
    /// clock domain — an instant from another core's clock would make
    /// `elapsed_since` meaningless.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Blocking drain of the TA's relay buffer: records an opportunistic
    /// flush deferred under network faults are retired here. Called once
    /// a scenario has stepped to completion — a finished device must not
    /// strand acknowledged-pending verdicts in the TA. Idempotent: with
    /// an empty buffer the invocation is a no-op.
    ///
    /// # Errors
    ///
    /// Propagates the TA's flush failure — the network stayed dead for
    /// the whole `hard_rounds` retry budget.
    pub fn drain_relay(&mut self) -> Result<()> {
        self.client
            .invoke(&self.session, filter_cmd::FLUSH_RELAY, TeeParams::new())
            .map_err(CoreError::from)?;
        Ok(())
    }
}

impl PipelineStage for SecureFilterStage {
    type Input = PreparedBatch;
    type Output = FilteredBatch;

    fn name(&self) -> &'static str {
        "tee-filter"
    }

    fn process(&mut self, prepared: Self::Input) -> Result<FilteredBatch> {
        if prepared.windows.is_empty() {
            return Ok(FilteredBatch::default());
        }
        let request = encode_batch_request(
            &prepared
                .windows
                .iter()
                .map(|w| (w.dialog_id, w.periods as u32))
                .collect::<Vec<_>>(),
        );
        let params = TeeParams::new().with(0, TeeParam::MemRefInput(request));
        let out = self
            .client
            .invoke(&self.session, filter_cmd::PROCESS_BATCH, params)
            .map_err(CoreError::from)?;

        let verdicts =
            decode_batch_verdicts(out.get(1).as_memref().ok_or(missing_verdicts_error())?)?;
        if verdicts.len() != prepared.windows.len() {
            return Err(CoreError::Tee(perisec_optee::TeeError::Communication {
                reason: format!(
                    "filter ta returned {} verdicts for a {}-window batch",
                    verdicts.len(),
                    prepared.windows.len()
                ),
            }));
        }
        let verdicts = prepared
            .windows
            .iter()
            .zip(verdicts)
            .map(|(w, (decision, probability_milli))| WindowVerdict {
                dialog_id: w.dialog_id,
                decision,
                probability_milli,
            })
            .collect::<Vec<_>>();

        let (retries, backlog) = out.get(0).as_values().unwrap_or((0, 0));
        let (wire_ns, capture_cpu_ns) = out.get(2).as_values().unwrap_or((0, 0));
        let (ml_ns, relay_ns) = out.get(3).as_values().unwrap_or((0, 0));
        let elapsed = self.platform.clock().elapsed_since(prepared.started);
        let share = elapsed / prepared.windows.len() as u64;
        Ok(FilteredBatch {
            per_utterance: vec![share; prepared.windows.len()],
            verdicts,
            wire: SimDuration::from_nanos(wire_ns),
            capture_cpu: SimDuration::from_nanos(capture_cpu_ns),
            ml: SimDuration::from_nanos(ml_ns),
            relay: SimDuration::from_nanos(relay_ns),
            retries,
            backlog,
        })
    }
}

fn missing_verdicts_error() -> CoreError {
    CoreError::Tee(perisec_optee::TeeError::Communication {
        reason: "filter ta returned no verdicts".to_owned(),
    })
}

/// The secure relay stage. The relay itself ran *inside* the TA (nothing
/// sensitive may cross back to the normal world), so this stage's job is
/// the normal-world accounting: it folds each batch's timings into the
/// run's latency breakdown. (Per-decision tallies live in the TA and are
/// queryable through its `GET_STATS` command.)
#[derive(Debug, Default)]
pub struct SecureRelayStage {
    breakdown: LatencyBreakdown,
}

impl SecureRelayStage {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        SecureRelayStage::default()
    }

    /// Takes the accumulated breakdown, resetting the stage.
    pub fn take_breakdown(&mut self) -> LatencyBreakdown {
        std::mem::take(&mut self.breakdown)
    }
}

impl PipelineStage for SecureRelayStage {
    type Input = FilteredBatch;
    type Output = ();

    fn name(&self) -> &'static str {
        "secure-relay"
    }

    fn process(&mut self, batch: Self::Input) -> Result<()> {
        self.breakdown.capture_wire += batch.wire;
        self.breakdown.capture_cpu += batch.capture_cpu;
        self.breakdown.ml += batch.ml;
        self.breakdown.relay += batch.relay;
        self.breakdown.extend_latencies(batch.per_utterance);
        Ok(())
    }
}

// ----- baseline pipeline stages -------------------------------------------

/// One captured (unfiltered) utterance of the baseline pipeline.
#[derive(Debug, Clone)]
pub struct RawCapture {
    /// Dialog id of the utterance.
    pub dialog_id: u64,
    /// The captured audio.
    pub audio: perisec_devices::audio::AudioBuffer,
    /// Wire time of the capture.
    pub wire: SimDuration,
    /// Kernel-driver CPU time of the capture.
    pub cpu: SimDuration,
    /// Virtual time the capture call itself took. Stored as a duration,
    /// not an instant: later events in the same batch advance the clock
    /// to their scenario timestamps, so an instant-based measurement in
    /// the relay stage would absorb the inter-utterance spacing.
    pub capture_elapsed: SimDuration,
}

/// The baseline capture stage: the in-kernel driver reads every utterance
/// into normal-world memory, where the whole OS can see it.
pub struct KernelCaptureStage {
    platform: Platform,
    playback: SharedPlayback,
    synth: SpeechSynthesizer,
    driver: BaselineI2sDriver,
    period_frames: usize,
}

impl KernelCaptureStage {
    /// Creates the stage around a probed, configured, started driver.
    pub fn new(
        platform: Platform,
        playback: SharedPlayback,
        synth: SpeechSynthesizer,
        driver: BaselineI2sDriver,
        period_frames: usize,
    ) -> Self {
        KernelCaptureStage {
            platform,
            playback,
            synth,
            driver,
            period_frames,
        }
    }
}

impl PipelineStage for KernelCaptureStage {
    type Input = Vec<ScenarioEvent>;
    type Output = Vec<RawCapture>;

    fn name(&self) -> &'static str {
        "kernel-capture"
    }

    fn process(&mut self, events: Self::Input) -> Result<Vec<RawCapture>> {
        let mut captures = Vec::with_capacity(events.len());
        for event in &events {
            self.platform
                .clock()
                .advance_to(SimInstant::EPOCH + event.at);
            let audio = self.synth.render_tokens(&event.utterance.tokens);
            let periods = audio.frames().div_ceil(self.period_frames);
            self.playback.clear();
            self.playback.push(audio.samples());
            let started = self.platform.clock().now();
            let outcome = self.driver.capture_periods(periods.max(1))?;
            captures.push(RawCapture {
                dialog_id: event.id,
                audio: outcome.audio,
                wire: outcome.wire_time,
                cpu: outcome.cpu_time,
                capture_elapsed: self.platform.clock().elapsed_since(started),
            });
        }
        Ok(captures)
    }
}

/// The baseline "filter": there is none. Raw captures pass through
/// untouched — precisely the leak the paper's design removes.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassthroughFilterStage;

impl PassthroughFilterStage {
    /// Creates the stage (equivalent to [`Default`]; both exist so every
    /// argument-less stage follows the same construction convention).
    pub fn new() -> Self {
        PassthroughFilterStage
    }
}

impl PipelineStage for PassthroughFilterStage {
    type Input = Vec<RawCapture>;
    type Output = Vec<RawCapture>;

    fn name(&self) -> &'static str {
        "passthrough-filter"
    }

    fn process(&mut self, captures: Self::Input) -> Result<Vec<RawCapture>> {
        Ok(captures)
    }
}

/// The baseline relay stage: encodes and ships every capture to the cloud
/// over the normal-world secure channel (encryption but no filtering).
///
/// Records carry explicit sequence numbers (the same DTLS-style framing
/// the TAs use), so the stage rides out drops, duplicates and reorderings
/// with the shared capped-exponential backoff instead of desynchronizing
/// its record nonces on the first lost packet.
pub struct CloudRelayStage {
    platform: Platform,
    fabric: NetworkFabric,
    cloud_host: &'static str,
    psk: [u8; PSK_LEN],
    encoding: AudioEncoding,
    retry: RelayRetryConfig,
    next_seq: u64,
    channel: Option<(Transport, SecureChannelClient)>,
    breakdown: LatencyBreakdown,
}

impl CloudRelayStage {
    /// Creates the stage; the channel is established lazily on first use.
    pub fn new(
        platform: Platform,
        fabric: NetworkFabric,
        cloud_host: &'static str,
        psk: [u8; PSK_LEN],
        encoding: AudioEncoding,
    ) -> Self {
        CloudRelayStage {
            platform,
            fabric,
            cloud_host,
            psk,
            encoding,
            retry: RelayRetryConfig::default(),
            next_seq: 0,
            channel: None,
            breakdown: LatencyBreakdown::default(),
        }
    }

    /// Overrides the relay retry/backoff policy (builder-style).
    #[must_use]
    pub fn with_retry(mut self, retry: RelayRetryConfig) -> Self {
        self.retry = retry;
        self
    }

    /// Takes the accumulated breakdown, resetting the stage.
    pub fn take_breakdown(&mut self) -> LatencyBreakdown {
        std::mem::take(&mut self.breakdown)
    }

    fn ensure_channel(&mut self) -> Result<()> {
        if let Some((_, client)) = &self.channel {
            if client.is_established() {
                return Ok(());
            }
        }
        if self.channel.is_none() {
            let transport = self
                .fabric
                .open_transport(self.cloud_host, 443)
                .map_err(CoreError::from)?;
            let socket = transport.socket();
            self.channel = Some((transport, SecureChannelClient::new(self.psk, socket)));
        }
        let (transport, client) = self.channel.as_mut().expect("just connected");
        for round in 0..self.retry.hard_rounds {
            transport
                .send(&client.client_hello())
                .map_err(CoreError::from)?;
            let hello = transport.recv(4096).map_err(CoreError::from)?;
            if !hello.is_empty() && client.process_server_hello(&hello).is_ok() {
                return Ok(());
            }
            self.platform.clock().advance(backoff_interval(
                &self.retry,
                transport.socket(),
                0,
                round,
            ));
        }
        Err(CoreError::Relay(perisec_relay::RelayError::ChannelError {
            reason: format!(
                "baseline handshake to {} exhausted {} retry rounds",
                self.cloud_host, self.retry.hard_rounds
            ),
        }))
    }

    /// Ships one sealed record and waits (on virtual time) for the ack
    /// that echoes its sequence, retransmitting the byte-identical record
    /// under capped exponential backoff until acked or out of rounds.
    fn send_acked(&mut self, event_bytes: &[u8]) -> Result<()> {
        let seq = self.next_seq;
        self.next_seq += 1;
        for attempt in 0..self.retry.hard_rounds {
            let (transport, channel) = self.channel.as_mut().expect("channel ensured");
            let record = channel.seal_at(seq, event_bytes).map_err(CoreError::from)?;
            transport.send(&record).map_err(CoreError::from)?;
            let reply = transport.recv(65536).map_err(CoreError::from)?;
            if !reply.is_empty() {
                if let Ok((acked, _directive)) = channel.open_explicit(&reply) {
                    if acked == seq {
                        return Ok(());
                    }
                }
            }
            let socket = transport.socket();
            self.platform
                .clock()
                .advance(backoff_interval(&self.retry, socket, seq, attempt));
        }
        Err(CoreError::Relay(perisec_relay::RelayError::Transport {
            reason: format!(
                "baseline relay record {seq} exhausted {} retry rounds",
                self.retry.hard_rounds
            ),
        }))
    }
}

impl PipelineStage for CloudRelayStage {
    type Input = Vec<RawCapture>;
    type Output = ();

    fn name(&self) -> &'static str {
        "cloud-relay"
    }

    fn process(&mut self, captures: Self::Input) -> Result<()> {
        self.ensure_channel()?;
        for capture in captures {
            let relay_start = self.platform.clock().now();
            let payload = self.encoding.encode(&capture.audio);
            let event_bytes = AvsEvent::Recognize {
                dialog_id: capture.dialog_id,
                audio: payload,
            }
            .encode();
            self.platform.charge_compute(
                perisec_tz::world::World::Normal,
                seal_flops(event_bytes.len()),
            );
            self.send_acked(&event_bytes)?;
            let relay_elapsed = self.platform.clock().elapsed_since(relay_start);
            self.breakdown.relay += relay_elapsed;
            self.breakdown.capture_wire += capture.wire;
            self.breakdown.capture_cpu += capture.cpu;
            // Processing latency = time spent capturing plus time spent
            // relaying; inter-utterance scenario gaps are excluded.
            self.breakdown
                .push_latency(capture.capture_elapsed + relay_elapsed);
        }
        Ok(())
    }
}
