//! The vision filter trusted application.
//!
//! The camera-modality sibling of [`crate::filter_ta::FilterTa`]: it pulls
//! raw grayscale frames from the secure camera driver through the camera
//! PTA, featurizes and classifies each frame with the in-TA [`FrameCnn`],
//! applies the privacy policy per window, and relays only **sealed verdict
//! records** ([`AvsEvent::FrameVerdict`]) to the cloud — a frame count and
//! a coarse probability, never pixels.
//!
//! The TA speaks the *same* batch parameter contract as the audio filter
//! TA (`PROCESS_BATCH` with `(dialog_id, frames)` windows in a memref,
//! verdicts + timing out), which is what lets the
//! [`crate::stage::SecureFilterStage`] drive either modality unchanged —
//! the `PipelineStage` abstraction proving itself across sensors.

use std::sync::Arc;

use perisec_ml::int8::QuantFrameCnn;
use perisec_ml::plan::FeaturePlan;
use perisec_ml::quant::QuantMode;
use perisec_ml::vision::FrameCnn;
use perisec_optee::{
    TaDescriptor, TaEnv, TaUuid, TeeError, TeeParam, TeeParams, TeeResult, TrustedApp,
};
use perisec_relay::avs::AvsEvent;
use perisec_relay::tls::PSK_LEN;
use perisec_tz::time::SimDuration;

use serde::{Deserialize, Serialize};

use crate::cloud_channel::TaCloudChannel;
use crate::filter_ta::decode_batch_request;
use crate::policy::{FilterDecision, PrivacyPolicy};

/// Registered name of the vision TA (its UUID derives from this).
pub const VISION_TA_NAME: &str = "perisec.vision-ta";

/// Command identifiers of the vision TA. The numeric values match the
/// audio filter TA's so batch-aware clients drive both TAs identically.
pub mod cmd {
    /// Replace the privacy policy: value param `a` = mode, `b` =
    /// threshold in thousandths.
    pub const SET_POLICY: u32 = 1;
    /// Query statistics: returns `(windows, forwarded)` and
    /// `(dropped, frames)`.
    pub const GET_STATS: u32 = 2;
    /// Process a whole batch of frame windows in one invocation. Param 0
    /// is an input memref encoding the per-window `(dialog_id, frames)`
    /// pairs (the same framing as the audio filter TA, see
    /// [`crate::filter_ta::encode_batch_request`]); the reply carries the
    /// per-window verdicts in an output memref, the aggregate
    /// `(wire_ns, capture_cpu_ns)` in value slot 2 and `(ml_ns, relay_ns)`
    /// in value slot 3. All permitted windows of the batch are relayed as
    /// verdict records in a **single** sealed record.
    pub const PROCESS_BATCH: u32 = 3;
    /// Blocking drain of the relay's unacked buffer. Invoked once a
    /// scenario has stepped to completion, so records an opportunistic
    /// flush deferred under network faults are retired before the
    /// device's report is assembled. No parameters; errors if the
    /// network stays dead for the whole `hard_rounds` budget.
    pub const FLUSH_RELAY: u32 = 4;
}

/// Cumulative statistics of the vision TA.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisionStats {
    /// Frame windows processed.
    pub windows: u64,
    /// Frames classified.
    pub frames: u64,
    /// Windows whose verdict was forwarded.
    pub forwarded: u64,
    /// Windows dropped.
    pub dropped: u64,
}

/// The vision TA.
///
/// The frame classifier is held behind [`Arc`] so a fleet of camera
/// pipelines shares one trained model instead of retraining per device.
/// In [`QuantMode::Int8`] the int8 deployment form carries the per-frame
/// hot path (fused integer kernels over the TA's [`FeaturePlan`]) and
/// only the quantized bytes are declared against the secure carve-out.
pub struct VisionTa {
    descriptor: TaDescriptor,
    camera_pta: TaUuid,
    model: Arc<FrameCnn>,
    model_int8: Option<Arc<QuantFrameCnn>>,
    quant: QuantMode,
    plan: FeaturePlan,
    policy: PrivacyPolicy,
    channel: TaCloudChannel,
    stats: VisionStats,
}

impl std::fmt::Debug for VisionTa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VisionTa")
            .field("policy", &self.policy)
            .field("quant", &self.quant)
            .field("stats", &self.stats)
            .finish()
    }
}

impl VisionTa {
    /// Creates the TA around a trained frame classifier, plus — for
    /// [`QuantMode::Int8`] — its int8 deployment form.
    pub fn new(
        camera_pta: TaUuid,
        model: Arc<FrameCnn>,
        model_int8: Option<Arc<QuantFrameCnn>>,
        quant: QuantMode,
        policy: PrivacyPolicy,
        cloud_host: impl Into<String>,
        psk: [u8; PSK_LEN],
    ) -> Self {
        let model_bytes = match (&quant, &model_int8) {
            (QuantMode::Int8, Some(int8)) => int8.memory_bytes(),
            _ => model.memory_bytes_f32(),
        };
        let model_kib = (model_bytes / 1024).max(1) as u32;
        VisionTa {
            descriptor: TaDescriptor::new(VISION_TA_NAME, 48, 128 + model_kib),
            camera_pta,
            model,
            model_int8,
            quant,
            plan: FeaturePlan::new(),
            policy,
            channel: TaCloudChannel::new(cloud_host, psk),
            stats: VisionStats::default(),
        }
    }

    /// Overrides the relay retry/backoff policy (builder-style).
    #[must_use]
    pub fn with_retry(mut self, retry: crate::RelayRetryConfig) -> Self {
        self.channel.set_retry(retry);
        self
    }

    /// Switches the relay to attested-ingest mode (builder-style); see
    /// [`crate::filter_ta::FilterTa::with_ingest`].
    #[must_use]
    pub fn with_ingest(mut self, measurement: [u8; perisec_relay::MEASUREMENT_LEN]) -> Self {
        self.channel.set_ingest(measurement);
        self
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> VisionStats {
        self.stats
    }

    /// The transition-amortized batch path (`cmd::PROCESS_BATCH`): one
    /// batched frame capture through the camera PTA, per-frame
    /// featurization + classification, per-window policy, and a single
    /// sealed relay record of verdicts for the whole batch.
    fn process_batch(
        &mut self,
        env: &mut TaEnv<'_>,
        windows: &[(u64, u32)],
        params: &mut TeeParams,
    ) -> TeeResult<()> {
        // 1. One batched capture through the camera PTA.
        let request = perisec_secure_driver::camera_pta::encode_frames_request(
            &windows.iter().map(|&(_, f)| f as usize).collect::<Vec<_>>(),
        );
        let mut capture = TeeParams::new().with(0, TeeParam::MemRefInput(request));
        env.invoke_pta(
            self.camera_pta,
            perisec_secure_driver::camera_pta::cmd::CAPTURE_FRAME_BATCH,
            &mut capture,
        )?;
        let replies = perisec_secure_driver::camera_pta::decode_frame_windows_reply(
            capture.get(1).as_memref().ok_or(TeeError::Communication {
                reason: "camera pta returned no batched frames".to_owned(),
            })?,
        )?;
        if replies.len() != windows.len() {
            return Err(TeeError::Communication {
                reason: format!(
                    "camera pta returned {} windows for a {}-window batch",
                    replies.len(),
                    windows.len()
                ),
            });
        }
        let (wire_ns, capture_cpu_ns) = capture.get(2).as_values().unwrap_or((0, 0));

        // 2. Per-window ML + policy; permitted verdicts accumulate into
        //    one batched relay event. The sensitive probability of a
        //    window is the max over its frames (one suspicious frame taints
        //    the window).
        let frame_len = self.model.frame_len();
        let mut verdicts = Vec::with_capacity(windows.len());
        let mut outbound = Vec::new();
        let mut ml_ns_total = 0u64;
        for (&(dialog_id, frames), reply) in windows.iter().zip(&replies) {
            // Hold the reply to the *requested* window length (validated
            // >= 1 at the command boundary) rather than trusting the
            // PTA's echoed count: a short or zero-frame reply must never
            // yield a verdict for content that was not classified.
            let frames = frames as usize;
            if reply.frames != frames || reply.pixels.len() != frames * frame_len {
                return Err(TeeError::Communication {
                    reason: format!(
                        "window of {frames} requested frames delivered {} frames / {} pixel \
                         bytes (model expects {frame_len} per frame)",
                        reply.frames,
                        reply.pixels.len(),
                    ),
                });
            }
            let ml_start = env.platform().clock().now();
            let tracer = env.tracer();
            let _classify = tracer.span("ta.classify");
            let mut probability = 0.0f32;
            for frame in reply.pixels.chunks_exact(frame_len) {
                // Both modes charge the same MAC count — virtual time is
                // mode-independent; int8 wins host time and residency.
                env.charge_compute(self.model.flops_per_inference());
                let p = match (&self.quant, &self.model_int8) {
                    (QuantMode::Int8, Some(int8)) => int8.predict_with(frame, &mut self.plan),
                    _ => self.model.predict_with(frame, &mut self.plan),
                }
                .map_err(|e| TeeError::Generic {
                    reason: e.to_string(),
                })?;
                probability = probability.max(p);
                self.stats.frames += 1;
            }
            ml_ns_total += env.platform().clock().elapsed_since(ml_start).as_nanos();

            // The vision policy has no lexicon; redaction degenerates to
            // forwarding, because a verdict record already contains
            // nothing to redact.
            let probability_milli = (probability * 1000.0) as u16;
            let decision = match self.policy.decide(probability) {
                FilterDecision::ForwardRedacted => FilterDecision::Forward,
                other => other,
            };
            match decision {
                FilterDecision::Forward => {
                    self.stats.forwarded += 1;
                    outbound.push(AvsEvent::FrameVerdict {
                        dialog_id,
                        frames: frames as u32,
                        probability_milli,
                    });
                }
                FilterDecision::Drop => self.stats.dropped += 1,
                FilterDecision::ForwardRedacted => unreachable!("mapped to Forward above"),
            }
            self.stats.windows += 1;
            verdicts.push((decision, probability_milli));
        }

        // 3. One relay round trip for the whole batch, then the same
        //    reply contract as the audio filter TA — never pixels.
        crate::cloud_channel::relay_batch_and_pack(
            &mut self.channel,
            env,
            outbound,
            &verdicts,
            (wire_ns, capture_cpu_ns),
            ml_ns_total,
            params,
        )
    }
}

impl TrustedApp for VisionTa {
    fn descriptor(&self) -> TaDescriptor {
        self.descriptor.clone()
    }

    fn invoke(
        &mut self,
        env: &mut TaEnv<'_>,
        cmd_id: u32,
        params: &mut TeeParams,
    ) -> TeeResult<()> {
        match cmd_id {
            cmd::PROCESS_BATCH => {
                let windows = decode_batch_request(params.get(0).as_memref().ok_or(
                    TeeError::BadParameters {
                        reason: "process-batch expects a memref parameter".to_owned(),
                    },
                )?)?;
                if windows.iter().any(|&(_, frames)| frames == 0) {
                    return Err(TeeError::BadParameters {
                        reason: "batch windows must be at least 1 frame".to_owned(),
                    });
                }
                // The TA's own bookkeeping cost, once per batch.
                env.charge_cpu(SimDuration::from_micros(10));
                self.process_batch(env, &windows, params)
            }
            cmd::FLUSH_RELAY => self.channel.drain(env),
            cmd::SET_POLICY => {
                let (mode, threshold) =
                    params.get(0).as_values().ok_or(TeeError::BadParameters {
                        reason: "set-policy expects a value parameter".to_owned(),
                    })?;
                self.policy =
                    PrivacyPolicy::from_values(mode, threshold).ok_or(TeeError::BadParameters {
                        reason: format!("unknown policy mode {mode}"),
                    })?;
                Ok(())
            }
            cmd::GET_STATS => {
                params.set(
                    0,
                    TeeParam::ValueOutput {
                        a: self.stats.windows,
                        b: self.stats.forwarded,
                    },
                );
                params.set(
                    1,
                    TeeParam::ValueOutput {
                        a: self.stats.dropped,
                        b: self.stats.frames,
                    },
                );
                Ok(())
            }
            other => Err(TeeError::ItemNotFound {
                what: format!("vision ta command {other}"),
            }),
        }
    }

    fn close_session(&mut self, env: &mut TaEnv<'_>) {
        // Close performs a *blocking* flush of unacknowledged relay
        // records; exhausting the retry budget here means verdicts were
        // lost, which must never pass silently.
        self.channel
            .close(env)
            .expect("relay close: blocking flush failed");
    }
}
