//! Audio sample formats and PCM buffers.

use std::fmt;

use serde::{Deserialize, Serialize};

use perisec_tz::time::SimDuration;

/// A PCM audio format: rate, channel count and sample width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AudioFormat {
    /// Samples per second per channel.
    pub sample_rate_hz: u32,
    /// Number of interleaved channels.
    pub channels: u16,
    /// Bits per sample (the models use 16-bit signed PCM).
    pub bits_per_sample: u16,
}

impl AudioFormat {
    /// 16 kHz mono, 16-bit — the format used by the paper's speech
    /// pipeline (typical for far-field voice capture and keyword STT).
    pub const fn speech_16khz_mono() -> Self {
        AudioFormat {
            sample_rate_hz: 16_000,
            channels: 1,
            bits_per_sample: 16,
        }
    }

    /// 48 kHz stereo, 16-bit — a typical high-quality capture format used
    /// in the throughput sweeps.
    pub const fn hifi_48khz_stereo() -> Self {
        AudioFormat {
            sample_rate_hz: 48_000,
            channels: 2,
            bits_per_sample: 16,
        }
    }

    /// Bytes in one frame (one sample per channel).
    pub const fn bytes_per_frame(&self) -> usize {
        (self.bits_per_sample as usize / 8) * self.channels as usize
    }

    /// Bytes per second of audio in this format.
    pub const fn bytes_per_second(&self) -> usize {
        self.bytes_per_frame() * self.sample_rate_hz as usize
    }

    /// Number of frames contained in `duration` of audio.
    pub fn frames_in(&self, duration: SimDuration) -> usize {
        (duration.as_secs_f64() * self.sample_rate_hz as f64).round() as usize
    }

    /// Duration covered by `frames` frames.
    pub fn duration_of_frames(&self, frames: usize) -> SimDuration {
        SimDuration::from_secs_f64(frames as f64 / self.sample_rate_hz as f64)
    }

    /// Duration covered by `bytes` bytes of audio.
    pub fn duration_of_bytes(&self, bytes: usize) -> SimDuration {
        self.duration_of_frames(bytes / self.bytes_per_frame().max(1))
    }
}

impl Default for AudioFormat {
    fn default() -> Self {
        AudioFormat::speech_16khz_mono()
    }
}

impl fmt::Display for AudioFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} Hz, {} ch, {}-bit",
            self.sample_rate_hz, self.channels, self.bits_per_sample
        )
    }
}

/// An owned buffer of interleaved signed 16-bit PCM samples plus its format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AudioBuffer {
    format: AudioFormat,
    samples: Vec<i16>,
}

impl AudioBuffer {
    /// Creates a buffer from interleaved samples.
    pub fn new(format: AudioFormat, samples: Vec<i16>) -> Self {
        AudioBuffer { format, samples }
    }

    /// Creates a silent buffer holding `frames` frames.
    pub fn silence(format: AudioFormat, frames: usize) -> Self {
        AudioBuffer {
            format,
            samples: vec![0i16; frames * format.channels as usize],
        }
    }

    /// The buffer's format.
    pub fn format(&self) -> AudioFormat {
        self.format
    }

    /// Interleaved samples.
    pub fn samples(&self) -> &[i16] {
        &self.samples
    }

    /// Mutable access to the interleaved samples.
    pub fn samples_mut(&mut self) -> &mut [i16] {
        &mut self.samples
    }

    /// Number of frames (samples per channel).
    pub fn frames(&self) -> usize {
        self.samples.len() / self.format.channels as usize
    }

    /// Whether the buffer holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration of the audio in the buffer.
    pub fn duration(&self) -> SimDuration {
        self.format.duration_of_frames(self.frames())
    }

    /// Size of the buffer's payload in bytes.
    pub fn byte_len(&self) -> usize {
        self.samples.len() * 2
    }

    /// Appends another buffer of the same format.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ; callers mix formats only through
    /// explicit resampling, which the pipeline does not need.
    pub fn append(&mut self, other: &AudioBuffer) {
        assert_eq!(
            self.format, other.format,
            "cannot append audio buffers with different formats"
        );
        self.samples.extend_from_slice(&other.samples);
    }

    /// Splits off the first `frames` frames into a new buffer, leaving the
    /// remainder in `self`. If fewer frames are available, everything is
    /// taken.
    pub fn take_frames(&mut self, frames: usize) -> AudioBuffer {
        let take = (frames * self.format.channels as usize).min(self.samples.len());
        let taken: Vec<i16> = self.samples.drain(..take).collect();
        AudioBuffer {
            format: self.format,
            samples: taken,
        }
    }

    /// Root-mean-square amplitude of the buffer, normalized to `[0, 1]`.
    /// Used by the voice-activity gate and by tests.
    pub fn rms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum_sq: f64 = self
            .samples
            .iter()
            .map(|&s| {
                let v = s as f64 / i16::MAX as f64;
                v * v
            })
            .sum();
        (sum_sq / self.samples.len() as f64).sqrt()
    }

    /// Consumes the buffer and returns the raw samples.
    pub fn into_samples(self) -> Vec<i16> {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_arithmetic_is_consistent() {
        let f = AudioFormat::speech_16khz_mono();
        assert_eq!(f.bytes_per_frame(), 2);
        assert_eq!(f.bytes_per_second(), 32_000);
        assert_eq!(f.frames_in(SimDuration::from_secs(1)), 16_000);
        assert_eq!(f.duration_of_frames(16_000), SimDuration::from_secs(1));
        assert_eq!(f.duration_of_bytes(32_000), SimDuration::from_secs(1));

        let s = AudioFormat::hifi_48khz_stereo();
        assert_eq!(s.bytes_per_frame(), 4);
        assert_eq!(s.bytes_per_second(), 192_000);
    }

    #[test]
    fn silence_has_zero_rms_and_right_duration() {
        let buf = AudioBuffer::silence(AudioFormat::speech_16khz_mono(), 8_000);
        assert_eq!(buf.frames(), 8_000);
        assert_eq!(buf.duration(), SimDuration::from_millis(500));
        assert_eq!(buf.rms(), 0.0);
        assert_eq!(buf.byte_len(), 16_000);
    }

    #[test]
    fn append_and_take_frames_round_trip() {
        let f = AudioFormat::speech_16khz_mono();
        let mut a = AudioBuffer::new(f, vec![1, 2, 3, 4]);
        let b = AudioBuffer::new(f, vec![5, 6]);
        a.append(&b);
        assert_eq!(a.frames(), 6);
        let head = a.take_frames(4);
        assert_eq!(head.samples(), &[1, 2, 3, 4]);
        assert_eq!(a.samples(), &[5, 6]);
        let rest = a.take_frames(100);
        assert_eq!(rest.samples(), &[5, 6]);
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "different formats")]
    fn append_rejects_mismatched_formats() {
        let mut a = AudioBuffer::silence(AudioFormat::speech_16khz_mono(), 10);
        let b = AudioBuffer::silence(AudioFormat::hifi_48khz_stereo(), 10);
        a.append(&b);
    }

    #[test]
    fn rms_of_full_scale_square_wave_is_one() {
        let f = AudioFormat::speech_16khz_mono();
        let samples: Vec<i16> = (0..1000)
            .map(|i| if i % 2 == 0 { i16::MAX } else { -i16::MAX })
            .collect();
        let buf = AudioBuffer::new(f, samples);
        assert!((buf.rms() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stereo_frame_count_halves_sample_count() {
        let buf = AudioBuffer::new(AudioFormat::hifi_48khz_stereo(), vec![0; 96_000]);
        assert_eq!(buf.frames(), 48_000);
        assert_eq!(buf.duration(), SimDuration::from_secs(1));
    }
}
