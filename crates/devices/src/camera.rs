//! Camera sensor model.
//!
//! The paper names cameras alongside microphones as the peripherals whose
//! data can leak sensitive information (images of people, documents). The
//! camera model is intentionally lighter than the audio path — the paper's
//! proof of concept focuses on I2S audio — but it produces frames with
//! enough structure for the image-side classifier and for the scalability
//! experiment (E9): every frame carries a small grayscale pixel block whose
//! statistics differ between "scene kinds".

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use perisec_tz::time::SimDuration;

use crate::{DeviceError, Result};

/// What a synthetic frame depicts. Determines the pixel statistics and the
/// ground-truth sensitivity label used in experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SceneKind {
    /// An empty room: low-variance, mid-gray pixels. Not sensitive.
    EmptyRoom,
    /// A person present: high-contrast blob in the frame. Sensitive.
    Person,
    /// A document / screen in view: regular high-frequency stripes. Sensitive.
    Document,
    /// A pet moving through the frame: medium-contrast blob. Not sensitive.
    Pet,
}

impl SceneKind {
    /// Ground-truth sensitivity of the scene, per the paper's threat model
    /// (people and readable documents are private; empty rooms and pets are
    /// not).
    pub fn is_sensitive(self) -> bool {
        matches!(self, SceneKind::Person | SceneKind::Document)
    }

    /// All scene kinds.
    pub const ALL: [SceneKind; 4] = [
        SceneKind::EmptyRoom,
        SceneKind::Person,
        SceneKind::Document,
        SceneKind::Pet,
    ];
}

/// A captured frame: grayscale pixels plus capture metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageFrame {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Row-major grayscale pixels (one byte per pixel).
    pub pixels: Vec<u8>,
    /// The scene the synthetic generator rendered (ground truth for
    /// experiments; a real frame would not carry this).
    pub scene: SceneKind,
    /// Frame sequence number.
    pub sequence: u64,
}

impl ImageFrame {
    /// Size of the pixel payload in bytes.
    pub fn byte_len(&self) -> usize {
        self.pixels.len()
    }

    /// Mean pixel intensity in `[0, 255]`.
    pub fn mean_intensity(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|&p| p as f64).sum::<f64>() / self.pixels.len() as f64
    }

    /// Pixel intensity variance.
    pub fn intensity_variance(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        let mean = self.mean_intensity();
        self.pixels
            .iter()
            .map(|&p| {
                let d = p as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.pixels.len() as f64
    }
}

/// Where the scenes in front of a camera come from.
///
/// This mirrors [`crate::signal::SignalSource`] on the audio side: the
/// "physical world" in front of the sensor is modelled outside the sensor
/// itself, so scenario runners can schedule what the camera sees while the
/// driver that owns the sensor stays oblivious to the ground truth.
pub trait SceneSource: Send {
    /// The scene in front of the camera for the next frame.
    fn next_scene(&mut self) -> SceneKind;

    /// Human-readable description (for traces).
    fn describe(&self) -> String {
        "scene source".to_owned()
    }
}

/// A scene source that always shows the same scene.
#[derive(Debug, Clone, Copy)]
pub struct FixedScene(pub SceneKind);

impl SceneSource for FixedScene {
    fn next_scene(&mut self) -> SceneKind {
        self.0
    }

    fn describe(&self) -> String {
        format!("fixed scene {:?}", self.0)
    }
}

/// A camera sensor producing synthetic frames.
#[derive(Debug)]
pub struct CameraSensor {
    name: String,
    width: u32,
    height: u32,
    fps: u32,
    rng: SmallRng,
    sequence: u64,
    streaming: bool,
}

impl CameraSensor {
    /// Creates a camera named `name` with the given geometry and frame rate.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnsupportedConfig`] for zero dimensions or a
    /// zero frame rate.
    pub fn new(
        name: impl Into<String>,
        width: u32,
        height: u32,
        fps: u32,
        seed: u64,
    ) -> Result<Self> {
        if width == 0 || height == 0 || fps == 0 {
            return Err(DeviceError::UnsupportedConfig {
                reason: "camera dimensions and frame rate must be non-zero".to_owned(),
            });
        }
        Ok(CameraSensor {
            name: name.into(),
            width,
            height,
            fps,
            rng: SmallRng::seed_from_u64(seed),
            sequence: 0,
            streaming: false,
        })
    }

    /// A small smart-home style camera (64x48 @ 15 fps) — kept tiny so the
    /// in-TEE image classifier stays within secure-memory budgets, matching
    /// the paper's "smaller ML models" mitigation.
    ///
    /// # Errors
    ///
    /// Never fails for the fixed parameters; the `Result` mirrors
    /// [`CameraSensor::new`].
    pub fn smart_home(name: impl Into<String>, seed: u64) -> Result<Self> {
        CameraSensor::new(name, 64, 48, 15, seed)
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Configured frame rate.
    pub fn fps(&self) -> u32 {
        self.fps
    }

    /// Time between consecutive frames.
    pub fn frame_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.fps as f64)
    }

    /// Starts streaming.
    pub fn start(&mut self) {
        self.streaming = true;
    }

    /// Stops streaming.
    pub fn stop(&mut self) {
        self.streaming = false;
    }

    /// Whether the sensor is streaming.
    pub fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// Captures one frame of the given scene.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidState`] if the camera is not streaming.
    pub fn capture_frame(&mut self, scene: SceneKind) -> Result<ImageFrame> {
        if !self.streaming {
            return Err(DeviceError::InvalidState {
                operation: "capture frame".to_owned(),
                state: "stopped".to_owned(),
            });
        }
        let (w, h) = (self.width as usize, self.height as usize);
        let mut pixels = vec![0u8; w * h];
        match scene {
            SceneKind::EmptyRoom => {
                for p in pixels.iter_mut() {
                    *p = 120u8.saturating_add(self.rng.gen_range(0..8));
                }
            }
            SceneKind::Person => {
                // Background plus a dark high-contrast blob roughly centred.
                let cx = self.rng.gen_range(w / 4..3 * w / 4) as f64;
                let cy = self.rng.gen_range(h / 4..3 * h / 4) as f64;
                let radius = (w.min(h) as f64) / 3.0;
                for y in 0..h {
                    for x in 0..w {
                        let d =
                            (((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt()) / radius;
                        let base = 130.0 + self.rng.gen_range(-6.0f64..6.0);
                        let v = if d < 1.0 {
                            base - 90.0 * (1.0 - d)
                        } else {
                            base
                        };
                        pixels[y * w + x] = v.clamp(0.0, 255.0) as u8;
                    }
                }
            }
            SceneKind::Document => {
                // High-frequency horizontal stripes (text lines on a bright page).
                for y in 0..h {
                    for x in 0..w {
                        let stripe = if y % 4 < 2 { 230 } else { 40 };
                        let noise: i16 = self.rng.gen_range(-10..10);
                        pixels[y * w + x] = (stripe as i16 + noise).clamp(0, 255) as u8;
                    }
                }
            }
            SceneKind::Pet => {
                let cx = self.rng.gen_range(0..w) as f64;
                let radius = (w.min(h) as f64) / 6.0;
                for y in 0..h {
                    for x in 0..w {
                        let d = (((x as f64 - cx).powi(2) + (y as f64 - (h as f64) * 0.8).powi(2))
                            .sqrt())
                            / radius;
                        let base = 125.0 + self.rng.gen_range(-5.0f64..5.0);
                        let v = if d < 1.0 {
                            base - 40.0 * (1.0 - d)
                        } else {
                            base
                        };
                        pixels[y * w + x] = v.clamp(0.0, 255.0) as u8;
                    }
                }
            }
        }
        let frame = ImageFrame {
            width: self.width,
            height: self.height,
            pixels,
            scene,
            sequence: self.sequence,
        };
        self.sequence += 1;
        Ok(frame)
    }

    /// Captures one frame of whatever scene the source presents.
    ///
    /// # Errors
    ///
    /// Same as [`CameraSensor::capture_frame`].
    pub fn capture_from(&mut self, source: &mut dyn SceneSource) -> Result<ImageFrame> {
        let scene = source.next_scene();
        self.capture_frame(scene)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn camera() -> CameraSensor {
        let mut cam = CameraSensor::smart_home("cam0", 42).unwrap();
        cam.start();
        cam
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(CameraSensor::new("bad", 0, 10, 10, 0).is_err());
        assert!(CameraSensor::new("bad", 10, 10, 0, 0).is_err());
    }

    #[test]
    fn capture_requires_streaming() {
        let mut cam = CameraSensor::smart_home("cam0", 1).unwrap();
        assert!(cam.capture_frame(SceneKind::EmptyRoom).is_err());
        cam.start();
        assert!(cam.capture_frame(SceneKind::EmptyRoom).is_ok());
        cam.stop();
        assert!(cam.capture_frame(SceneKind::EmptyRoom).is_err());
    }

    #[test]
    fn frames_have_expected_geometry_and_sequence() {
        let mut cam = camera();
        let a = cam.capture_frame(SceneKind::EmptyRoom).unwrap();
        let b = cam.capture_frame(SceneKind::Person).unwrap();
        assert_eq!(a.byte_len(), 64 * 48);
        assert_eq!(a.sequence, 0);
        assert_eq!(b.sequence, 1);
        assert_eq!(cam.frame_interval(), SimDuration::from_secs_f64(1.0 / 15.0));
    }

    #[test]
    fn scene_kinds_have_distinguishable_statistics() {
        let mut cam = camera();
        let empty = cam.capture_frame(SceneKind::EmptyRoom).unwrap();
        let person = cam.capture_frame(SceneKind::Person).unwrap();
        let document = cam.capture_frame(SceneKind::Document).unwrap();
        // The empty room is the flattest; documents have by far the most variance.
        assert!(person.intensity_variance() > empty.intensity_variance() * 2.0);
        assert!(document.intensity_variance() > person.intensity_variance());
    }

    #[test]
    fn capture_from_draws_scenes_off_the_source() {
        let mut cam = camera();
        let mut source = FixedScene(SceneKind::Document);
        let frame = cam.capture_from(&mut source).unwrap();
        assert_eq!(frame.scene, SceneKind::Document);
        assert!(source.describe().contains("Document"));
    }

    #[test]
    fn sensitivity_ground_truth_follows_threat_model() {
        assert!(SceneKind::Person.is_sensitive());
        assert!(SceneKind::Document.is_sensitive());
        assert!(!SceneKind::EmptyRoom.is_sensitive());
        assert!(!SceneKind::Pet.is_sensitive());
    }
}
