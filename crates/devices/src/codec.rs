//! Audio encoding helpers.
//!
//! The paper's secure driver "securely processes (e.g., encoding an audio
//! signal)" the captured data before handing it to the TA (§II). This
//! module provides that encoding step: raw PCM <-> little-endian bytes and
//! ITU-T G.711 µ-law companding, which roughly halves the bytes crossing the
//! PTA/TA boundary — relevant to the world-switch amortization experiments.

use crate::audio::{AudioBuffer, AudioFormat};

const MU_LAW_BIAS: i32 = 0x84;
const MU_LAW_CLIP: i32 = 32_635;

/// Encodes interleaved PCM samples as little-endian bytes.
pub fn pcm_to_bytes(samples: &[i16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len() * 2);
    for &s in samples {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// Decodes little-endian bytes back into PCM samples (odd trailing byte is
/// ignored).
pub fn bytes_to_pcm(bytes: &[u8]) -> Vec<i16> {
    bytes
        .chunks_exact(2)
        .map(|c| i16::from_le_bytes([c[0], c[1]]))
        .collect()
}

/// Compresses one PCM sample to 8-bit µ-law.
pub fn mulaw_encode_sample(sample: i16) -> u8 {
    let mut pcm = sample as i32;
    let sign: u8 = if pcm < 0 {
        pcm = -pcm;
        0x80
    } else {
        0
    };
    if pcm > MU_LAW_CLIP {
        pcm = MU_LAW_CLIP;
    }
    pcm += MU_LAW_BIAS;
    let mut exponent: u8 = 7;
    let mut mask = 0x4000;
    while exponent > 0 && (pcm & mask) == 0 {
        exponent -= 1;
        mask >>= 1;
    }
    let mantissa = ((pcm >> (exponent + 3)) & 0x0F) as u8;
    !(sign | (exponent << 4) | mantissa)
}

/// Expands one 8-bit µ-law byte back to PCM.
pub fn mulaw_decode_sample(byte: u8) -> i16 {
    let byte = !byte;
    let sign = byte & 0x80;
    let exponent = (byte >> 4) & 0x07;
    let mantissa = byte & 0x0F;
    let mut pcm: i32 = (((mantissa as i32) << 3) + MU_LAW_BIAS) << exponent;
    pcm -= MU_LAW_BIAS;
    if sign != 0 {
        (-pcm) as i16
    } else {
        pcm as i16
    }
}

/// Encodes a whole buffer to µ-law.
pub fn mulaw_encode(samples: &[i16]) -> Vec<u8> {
    samples.iter().map(|&s| mulaw_encode_sample(s)).collect()
}

/// Decodes a µ-law byte stream to PCM.
pub fn mulaw_decode(bytes: &[u8]) -> Vec<i16> {
    bytes.iter().map(|&b| mulaw_decode_sample(b)).collect()
}

/// Encoding applied by the driver before data leaves its I/O buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AudioEncoding {
    /// Raw 16-bit little-endian PCM (2 bytes per sample).
    PcmLe16,
    /// 8-bit µ-law companded audio (1 byte per sample).
    MuLaw,
}

impl AudioEncoding {
    /// Bytes produced per input sample.
    pub fn bytes_per_sample(self) -> usize {
        match self {
            AudioEncoding::PcmLe16 => 2,
            AudioEncoding::MuLaw => 1,
        }
    }

    /// Encodes an audio buffer into a byte stream.
    pub fn encode(self, audio: &AudioBuffer) -> Vec<u8> {
        match self {
            AudioEncoding::PcmLe16 => pcm_to_bytes(audio.samples()),
            AudioEncoding::MuLaw => mulaw_encode(audio.samples()),
        }
    }

    /// Decodes a byte stream produced by [`AudioEncoding::encode`] back into
    /// an audio buffer of the given format.
    pub fn decode(self, bytes: &[u8], format: AudioFormat) -> AudioBuffer {
        let samples = match self {
            AudioEncoding::PcmLe16 => bytes_to_pcm(bytes),
            AudioEncoding::MuLaw => mulaw_decode(bytes),
        };
        AudioBuffer::new(format, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audio::AudioFormat;

    #[test]
    fn pcm_bytes_round_trip() {
        let samples = vec![0i16, 1, -1, i16::MAX, i16::MIN, -12345];
        assert_eq!(bytes_to_pcm(&pcm_to_bytes(&samples)), samples);
    }

    #[test]
    fn mulaw_round_trip_is_close_for_speech_levels() {
        // µ-law is lossy; for moderate amplitudes the round-trip error must
        // stay small relative to the signal.
        for &amp in &[500i16, 2_000, 8_000, 20_000] {
            for i in 0..200 {
                let s = ((i as f64 / 200.0 * std::f64::consts::TAU).sin() * amp as f64) as i16;
                let rt = mulaw_decode_sample(mulaw_encode_sample(s));
                let err = (s as i32 - rt as i32).abs();
                assert!(
                    err <= (s.unsigned_abs() as i32 / 8) + 64,
                    "sample {s} decoded to {rt} (err {err})"
                );
            }
        }
    }

    #[test]
    fn mulaw_preserves_sign_and_monotonic_order_of_extremes() {
        assert!(mulaw_decode_sample(mulaw_encode_sample(i16::MAX)) > 30_000);
        assert!(mulaw_decode_sample(mulaw_encode_sample(-30_000)) < -28_000);
        assert!(mulaw_decode_sample(mulaw_encode_sample(0)).abs() < 16);
    }

    #[test]
    fn encoding_sizes_match_contract() {
        let audio = AudioBuffer::new(AudioFormat::speech_16khz_mono(), vec![100i16; 1_000]);
        let pcm = AudioEncoding::PcmLe16.encode(&audio);
        let mulaw = AudioEncoding::MuLaw.encode(&audio);
        assert_eq!(pcm.len(), 2_000);
        assert_eq!(mulaw.len(), 1_000);
        assert_eq!(AudioEncoding::PcmLe16.bytes_per_sample(), 2);
        assert_eq!(AudioEncoding::MuLaw.bytes_per_sample(), 1);
    }

    #[test]
    fn encoding_decode_round_trip_preserves_length_and_energy() {
        let format = AudioFormat::speech_16khz_mono();
        let samples: Vec<i16> = (0..1_600)
            .map(|i| ((i as f64 / 20.0).sin() * 9_000.0) as i16)
            .collect();
        let audio = AudioBuffer::new(format, samples);
        for encoding in [AudioEncoding::PcmLe16, AudioEncoding::MuLaw] {
            let encoded = encoding.encode(&audio);
            let decoded = encoding.decode(&encoded, format);
            assert_eq!(decoded.frames(), audio.frames());
            assert!((decoded.rms() - audio.rms()).abs() < 0.02);
        }
    }
}
