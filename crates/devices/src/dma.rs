//! DMA engine model.
//!
//! On the real platform the I2S controller's FIFO is drained by a DMA
//! channel into a ring of period buffers in memory; the CPU is only
//! interrupted once per period. The driver (baseline or secure) programs
//! the channel with a destination buffer and a period size, and consumes
//! periods as they complete.
//!
//! The model is synchronous: [`DmaChannel::transfer`] moves samples into a
//! byte buffer and reports the transfer it performed, including the bus
//! time the transfer would occupy. Period-interrupt pacing is handled by
//! the driver layers, which know about the platform clock.

use serde::{Deserialize, Serialize};

use perisec_tz::time::SimDuration;

use crate::{DeviceError, Result};

/// A completed DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaTransfer {
    /// Bytes written to the destination.
    pub bytes: usize,
    /// Time the transfer occupied on the memory bus.
    pub bus_time: SimDuration,
}

/// Configuration of a DMA channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaConfig {
    /// Burst size in bytes; transfers are rounded up to whole bursts when
    /// computing bus occupancy.
    pub burst_bytes: usize,
    /// Sustained copy bandwidth of the engine in MiB/s.
    pub bandwidth_mib_s: u32,
}

impl DmaConfig {
    /// A Tegra-class audio DMA channel (APE ADMA): 64-byte bursts, ample
    /// bandwidth for audio.
    pub fn audio_default() -> Self {
        DmaConfig {
            burst_bytes: 64,
            bandwidth_mib_s: 1_000,
        }
    }
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig::audio_default()
    }
}

/// A DMA channel that moves 16-bit samples into byte buffers.
#[derive(Debug, Clone)]
pub struct DmaChannel {
    config: DmaConfig,
    transfers: u64,
    bytes_moved: u64,
}

impl DmaChannel {
    /// Creates a channel with the given configuration.
    pub fn new(config: DmaConfig) -> Self {
        DmaChannel {
            config,
            transfers: 0,
            bytes_moved: 0,
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> DmaConfig {
        self.config
    }

    /// Number of transfers performed.
    pub fn transfer_count(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Copies `samples` into `dst` as little-endian bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BufferTooSmall`] if `dst` cannot hold all the
    /// samples; nothing is written in that case.
    pub fn transfer(&mut self, samples: &[i16], dst: &mut [u8]) -> Result<DmaTransfer> {
        let required = samples.len() * 2;
        if dst.len() < required {
            return Err(DeviceError::BufferTooSmall {
                required,
                available: dst.len(),
            });
        }
        for (i, &s) in samples.iter().enumerate() {
            let le = s.to_le_bytes();
            dst[2 * i] = le[0];
            dst[2 * i + 1] = le[1];
        }
        let bus_time = self.bus_time_for(required);
        self.transfers += 1;
        self.bytes_moved += required as u64;
        Ok(DmaTransfer {
            bytes: required,
            bus_time,
        })
    }

    /// Bus time a transfer of `bytes` occupies, rounded up to whole bursts.
    pub fn bus_time_for(&self, bytes: usize) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let bursts = bytes.div_ceil(self.config.burst_bytes);
        let effective_bytes = bursts * self.config.burst_bytes;
        let bytes_per_sec = self.config.bandwidth_mib_s as f64 * 1024.0 * 1024.0;
        SimDuration::from_secs_f64(effective_bytes as f64 / bytes_per_sec)
    }
}

impl Default for DmaChannel {
    fn default() -> Self {
        DmaChannel::new(DmaConfig::default())
    }
}

/// Decodes a little-endian byte buffer produced by [`DmaChannel::transfer`]
/// back into samples. Odd trailing bytes are ignored.
pub fn bytes_to_samples(bytes: &[u8]) -> Vec<i16> {
    bytes
        .chunks_exact(2)
        .map(|c| i16::from_le_bytes([c[0], c[1]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_round_trips_samples() {
        let mut dma = DmaChannel::default();
        let samples = vec![0i16, 1, -1, i16::MAX, i16::MIN, 12345];
        let mut dst = vec![0u8; samples.len() * 2];
        let t = dma.transfer(&samples, &mut dst).unwrap();
        assert_eq!(t.bytes, 12);
        assert_eq!(bytes_to_samples(&dst), samples);
        assert_eq!(dma.transfer_count(), 1);
        assert_eq!(dma.bytes_moved(), 12);
    }

    #[test]
    fn transfer_into_small_buffer_fails_cleanly() {
        let mut dma = DmaChannel::default();
        let mut dst = vec![0u8; 4];
        let err = dma.transfer(&[1, 2, 3], &mut dst).unwrap_err();
        assert!(matches!(
            err,
            DeviceError::BufferTooSmall {
                required: 6,
                available: 4
            }
        ));
        assert_eq!(dma.transfer_count(), 0);
        assert!(dst.iter().all(|&b| b == 0));
    }

    #[test]
    fn bus_time_rounds_up_to_bursts_and_scales() {
        let dma = DmaChannel::new(DmaConfig {
            burst_bytes: 64,
            bandwidth_mib_s: 1,
        });
        assert_eq!(dma.bus_time_for(0), SimDuration::ZERO);
        let one_burst = dma.bus_time_for(1);
        assert_eq!(one_burst, dma.bus_time_for(64));
        assert_eq!(dma.bus_time_for(65), dma.bus_time_for(128));
        // 1 MiB at 1 MiB/s takes one second.
        let one_mib = dma.bus_time_for(1024 * 1024);
        assert_eq!(one_mib, SimDuration::from_secs(1));
    }

    #[test]
    fn bytes_to_samples_ignores_trailing_odd_byte() {
        assert_eq!(bytes_to_samples(&[0x01, 0x00, 0xFF]), vec![1]);
        assert!(bytes_to_samples(&[]).is_empty());
    }
}
