//! Inter-IC Sound (I2S) bus and controller model.
//!
//! The paper chose I2S "because it is lightweight, contrary to more complex
//! protocols like USB" (§III). The model captures the properties the driver
//! depends on:
//!
//! * the bus carries fixed-size sample words framed by a word-select clock
//!   at the sample rate;
//! * the SoC-side controller receives words into a small hardware FIFO;
//! * if the CPU/DMA does not drain the FIFO fast enough, samples are
//!   dropped and an overrun is latched — the phenomenon that makes the
//!   secure-world driver's latency budget interesting.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use perisec_tz::time::SimDuration;

use crate::audio::AudioFormat;
use crate::signal::SignalSource;
use crate::{DeviceError, Result};

/// Bus role of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum I2sRole {
    /// The controller drives the bit and word-select clocks.
    Master,
    /// The external device drives the clocks.
    Slave,
}

/// Static configuration of an I2S link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct I2sConfig {
    /// PCM format carried on the bus.
    pub format: AudioFormat,
    /// Role of the SoC-side controller.
    pub role: I2sRole,
    /// Capacity of the controller receive FIFO, in samples.
    pub fifo_depth: usize,
}

impl I2sConfig {
    /// Configuration used by the paper's microphone use case: 16 kHz mono
    /// capture, SoC as master, a 64-sample receive FIFO (typical of Tegra
    /// I2S blocks).
    pub fn microphone_default() -> Self {
        I2sConfig {
            format: AudioFormat::speech_16khz_mono(),
            role: I2sRole::Master,
            fifo_depth: 64,
        }
    }

    /// Bit-clock frequency implied by the format (word size × channels ×
    /// sample rate).
    pub fn bit_clock_hz(&self) -> u64 {
        self.format.bits_per_sample as u64
            * self.format.channels as u64
            * self.format.sample_rate_hz as u64
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnsupportedConfig`] for empty FIFOs, zero
    /// sample rates or sample widths other than 16 bits (the only width the
    /// models produce).
    pub fn validate(&self) -> Result<()> {
        if self.fifo_depth == 0 {
            return Err(DeviceError::UnsupportedConfig {
                reason: "fifo depth must be at least 1 sample".to_owned(),
            });
        }
        if self.format.sample_rate_hz == 0 {
            return Err(DeviceError::UnsupportedConfig {
                reason: "sample rate must be non-zero".to_owned(),
            });
        }
        if self.format.bits_per_sample != 16 {
            return Err(DeviceError::UnsupportedConfig {
                reason: format!(
                    "only 16-bit samples are supported, got {}",
                    self.format.bits_per_sample
                ),
            });
        }
        if self.format.channels == 0 || self.format.channels > 2 {
            return Err(DeviceError::UnsupportedConfig {
                reason: format!("i2s carries 1 or 2 channels, got {}", self.format.channels),
            });
        }
        Ok(())
    }
}

impl Default for I2sConfig {
    fn default() -> Self {
        I2sConfig::microphone_default()
    }
}

/// The SoC-side I2S controller: receive FIFO plus overrun accounting.
#[derive(Debug)]
pub struct I2sController {
    config: I2sConfig,
    fifo: VecDeque<i16>,
    overrun_samples: u64,
    received_samples: u64,
    enabled: bool,
}

impl I2sController {
    /// Creates a controller with the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`I2sConfig::validate`] failures.
    pub fn new(config: I2sConfig) -> Result<Self> {
        config.validate()?;
        Ok(I2sController {
            config,
            fifo: VecDeque::with_capacity(config.fifo_depth),
            overrun_samples: 0,
            received_samples: 0,
            enabled: false,
        })
    }

    /// The controller configuration.
    pub fn config(&self) -> I2sConfig {
        self.config
    }

    /// Enables reception.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Disables reception and clears the FIFO.
    pub fn disable(&mut self) {
        self.enabled = false;
        self.fifo.clear();
    }

    /// Whether reception is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Pushes samples arriving from the bus into the FIFO. Samples that do
    /// not fit are dropped and counted as overruns. Returns the number of
    /// samples accepted.
    pub fn receive(&mut self, samples: &[i16]) -> usize {
        if !self.enabled {
            return 0;
        }
        let mut accepted = 0;
        for &s in samples {
            if self.fifo.len() < self.config.fifo_depth {
                self.fifo.push_back(s);
                accepted += 1;
            } else {
                self.overrun_samples += 1;
            }
        }
        self.received_samples += accepted as u64;
        accepted
    }

    /// Drains up to `max` samples from the FIFO (oldest first).
    pub fn drain(&mut self, max: usize) -> Vec<i16> {
        let n = max.min(self.fifo.len());
        self.fifo.drain(..n).collect()
    }

    /// Number of samples currently waiting in the FIFO.
    pub fn fifo_level(&self) -> usize {
        self.fifo.len()
    }

    /// Samples dropped because the FIFO was full.
    pub fn overrun_samples(&self) -> u64 {
        self.overrun_samples
    }

    /// Samples successfully received since creation.
    pub fn received_samples(&self) -> u64 {
        self.received_samples
    }
}

/// An I2S link: an external device (signal source) wired to a controller.
///
/// [`I2sBus::transfer_frames`] models the passage of real time on the bus:
/// the attached device produces `frames` samples-per-channel, they are
/// shifted into the controller FIFO, and the call reports how long that
/// takes on the wire. The caller (the driver / DMA model) is responsible
/// for draining the FIFO between transfers; this is exactly where the
/// baseline and secure drivers differ in how much latency they can afford.
pub struct I2sBus {
    config: I2sConfig,
    source: Box<dyn SignalSource>,
    controller: I2sController,
}

impl std::fmt::Debug for I2sBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("I2sBus")
            .field("config", &self.config)
            .field("source", &self.source.describe())
            .field("controller_fifo", &self.controller.fifo_level())
            .finish()
    }
}

impl I2sBus {
    /// Wires `source` to a new controller with `config`.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn new(config: I2sConfig, source: Box<dyn SignalSource>) -> Result<Self> {
        let controller = I2sController::new(config)?;
        Ok(I2sBus {
            config,
            source,
            controller,
        })
    }

    /// The bus configuration.
    pub fn config(&self) -> I2sConfig {
        self.config
    }

    /// Access to the controller (e.g. for the driver to drain the FIFO).
    pub fn controller(&mut self) -> &mut I2sController {
        &mut self.controller
    }

    /// Read-only access to the controller.
    pub fn controller_ref(&self) -> &I2sController {
        &self.controller
    }

    /// Replaces the attached signal source, returning the previous one.
    pub fn set_source(&mut self, source: Box<dyn SignalSource>) -> Box<dyn SignalSource> {
        std::mem::replace(&mut self.source, source)
    }

    /// Transfers `frames` frames across the bus into the controller FIFO.
    ///
    /// Returns the wire time consumed. Samples that overflow the FIFO are
    /// dropped by the controller (see [`I2sController::receive`]).
    pub fn transfer_frames(&mut self, frames: usize) -> SimDuration {
        if frames == 0 || !self.controller.is_enabled() {
            return SimDuration::ZERO;
        }
        let samples = frames * self.config.format.channels as usize;
        let produced = self.source.next_samples(samples);
        self.controller.receive(&produced);
        self.config.format.duration_of_frames(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{SilenceSource, SineSource};

    #[test]
    fn config_validation_catches_bad_configs() {
        let mut c = I2sConfig::microphone_default();
        assert!(c.validate().is_ok());
        c.fifo_depth = 0;
        assert!(c.validate().is_err());
        let mut c = I2sConfig::microphone_default();
        c.format.bits_per_sample = 24;
        assert!(c.validate().is_err());
        let mut c = I2sConfig::microphone_default();
        c.format.channels = 4;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bit_clock_matches_format() {
        let c = I2sConfig::microphone_default();
        assert_eq!(c.bit_clock_hz(), 16 * 16_000);
    }

    #[test]
    fn controller_rejects_input_when_disabled() {
        let mut ctrl = I2sController::new(I2sConfig::microphone_default()).unwrap();
        assert_eq!(ctrl.receive(&[1, 2, 3]), 0);
        ctrl.enable();
        assert_eq!(ctrl.receive(&[1, 2, 3]), 3);
        assert_eq!(ctrl.fifo_level(), 3);
        ctrl.disable();
        assert_eq!(ctrl.fifo_level(), 0);
    }

    #[test]
    fn fifo_overruns_are_counted_not_lost_silently() {
        let config = I2sConfig {
            fifo_depth: 4,
            ..I2sConfig::microphone_default()
        };
        let mut ctrl = I2sController::new(config).unwrap();
        ctrl.enable();
        let accepted = ctrl.receive(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(accepted, 4);
        assert_eq!(ctrl.overrun_samples(), 2);
        assert_eq!(ctrl.drain(10), vec![1, 2, 3, 4]);
    }

    #[test]
    fn bus_transfer_returns_wire_time_and_fills_fifo() {
        let config = I2sConfig {
            fifo_depth: 1024,
            ..I2sConfig::microphone_default()
        };
        let mut bus = I2sBus::new(config, Box::new(SineSource::new(440.0, 16_000, 0.5))).unwrap();
        bus.controller().enable();
        let t = bus.transfer_frames(160); // 10 ms at 16 kHz
        assert_eq!(t, SimDuration::from_millis(10));
        assert_eq!(bus.controller_ref().fifo_level(), 160);
        let drained = bus.controller().drain(160);
        assert_eq!(drained.len(), 160);
        assert!(drained.iter().any(|&s| s != 0));
    }

    #[test]
    fn transfer_on_disabled_controller_is_a_noop() {
        let mut bus =
            I2sBus::new(I2sConfig::microphone_default(), Box::new(SilenceSource)).unwrap();
        assert_eq!(bus.transfer_frames(100), SimDuration::ZERO);
        assert_eq!(bus.controller_ref().fifo_level(), 0);
    }

    #[test]
    fn set_source_swaps_the_device() {
        let mut bus = I2sBus::new(
            I2sConfig {
                fifo_depth: 256,
                ..I2sConfig::microphone_default()
            },
            Box::new(SilenceSource),
        )
        .unwrap();
        bus.controller().enable();
        bus.transfer_frames(16);
        assert!(bus.controller().drain(16).iter().all(|&s| s == 0));
        let old = bus.set_source(Box::new(SineSource::new(1000.0, 16_000, 0.9)));
        assert!(old.describe().contains("silence"));
        bus.transfer_frames(64);
        assert!(bus.controller().drain(64).iter().any(|&s| s != 0));
    }
}
