//! # perisec-devices — peripheral device models
//!
//! The paper's proof of concept targets *inter-IC sound (I2S) capable
//! peripheral devices, like microphones* on the Jetson AGX Xavier (§III),
//! with cameras named as the other motivating peripheral. This crate models
//! that hardware:
//!
//! * [`audio`] — sample formats and PCM buffers shared by the whole stack;
//! * [`signal`] — signal sources that feed the microphone (silence, tones,
//!   noise, or externally synthesized speech from `perisec-workload`);
//! * [`i2s`] — the I2S serial bus: framing, clocking, the controller FIFO
//!   and its overrun behaviour;
//! * [`mic`] — a MEMS digital microphone attached to the I2S bus;
//! * [`dma`] — the DMA engine that moves controller FIFO contents into
//!   memory buffers and raises period interrupts;
//! * [`camera`] — a simple frame-producing camera sensor (the paper's
//!   secondary peripheral);
//! * [`codec`] — audio encoding helpers (PCM <-> bytes, µ-law) used by the
//!   driver's "encoding an audio signal" step.
//!
//! The models are deterministic and independent of wall-clock time: all
//! timing is expressed through `perisec_tz::time` durations so that the
//! kernel substrate and the OP-TEE simulator can charge them against the
//! shared platform clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audio;
pub mod camera;
pub mod codec;
pub mod dma;
pub mod i2s;
pub mod mic;
pub mod signal;

pub use audio::{AudioBuffer, AudioFormat};
pub use camera::{CameraSensor, FixedScene, ImageFrame, SceneKind, SceneSource};
pub use dma::{DmaChannel, DmaTransfer};
pub use i2s::{I2sBus, I2sConfig, I2sController};
pub use mic::Microphone;
pub use signal::{SignalSource, SilenceSource, SineSource, WhiteNoiseSource};

use std::error::Error;
use std::fmt;

/// Errors raised by the device models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeviceError {
    /// The requested configuration is not supported by the device.
    UnsupportedConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// An operation was attempted while the device was in the wrong state
    /// (e.g. capturing from a stopped microphone).
    InvalidState {
        /// What was attempted.
        operation: String,
        /// Current state of the device.
        state: String,
    },
    /// A DMA transfer referenced a destination that is too small.
    BufferTooSmall {
        /// Bytes required.
        required: usize,
        /// Bytes available.
        available: usize,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::UnsupportedConfig { reason } => {
                write!(f, "unsupported device configuration: {reason}")
            }
            DeviceError::InvalidState { operation, state } => {
                write!(f, "cannot {operation} while device is {state}")
            }
            DeviceError::BufferTooSmall {
                required,
                available,
            } => {
                write!(
                    f,
                    "destination buffer too small: need {required} bytes, have {available}"
                )
            }
        }
    }
}

impl Error for DeviceError {}

/// Convenience result alias for device operations.
pub type Result<T> = std::result::Result<T, DeviceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_error_is_well_behaved() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<DeviceError>();
        let e = DeviceError::BufferTooSmall {
            required: 10,
            available: 4,
        };
        assert!(e.to_string().contains("10"));
    }
}
