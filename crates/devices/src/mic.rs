//! MEMS digital microphone model.
//!
//! A thin device wrapper around an [`I2sBus`]: power state, capture
//! start/stop, and chunked capture that respects the controller FIFO. The
//! driver layers (both the untrusted baseline in `perisec-kernel` and the
//! TEE-ported driver in `perisec-secure-driver`) talk to this type.

use serde::{Deserialize, Serialize};

use perisec_tz::time::SimDuration;

use crate::audio::{AudioBuffer, AudioFormat};
use crate::i2s::{I2sBus, I2sConfig};
use crate::signal::SignalSource;
use crate::{DeviceError, Result};

/// Power/operational state of the microphone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MicState {
    /// Powered down.
    Off,
    /// Powered, clocks running, not capturing.
    Standby,
    /// Actively capturing.
    Capturing,
}

impl std::fmt::Display for MicState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MicState::Off => write!(f, "off"),
            MicState::Standby => write!(f, "standby"),
            MicState::Capturing => write!(f, "capturing"),
        }
    }
}

/// Statistics of a microphone since power-on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MicStats {
    /// Frames captured and delivered.
    pub frames_captured: u64,
    /// Samples dropped in controller FIFO overruns.
    pub overrun_samples: u64,
    /// Number of capture chunks delivered.
    pub chunks: u64,
}

/// An I2S MEMS microphone (e.g. the Knowles part cited by the paper).
pub struct Microphone {
    name: String,
    bus: I2sBus,
    state: MicState,
    stats: MicStats,
}

impl std::fmt::Debug for Microphone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Microphone")
            .field("name", &self.name)
            .field("state", &self.state)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Microphone {
    /// Creates a microphone with the given name, I2S configuration and
    /// signal source.
    ///
    /// # Errors
    ///
    /// Propagates I2S configuration validation failures.
    pub fn new(
        name: impl Into<String>,
        config: I2sConfig,
        source: Box<dyn SignalSource>,
    ) -> Result<Self> {
        Ok(Microphone {
            name: name.into(),
            bus: I2sBus::new(config, source)?,
            state: MicState::Off,
            stats: MicStats::default(),
        })
    }

    /// Convenience constructor: 16 kHz mono microphone with the default
    /// FIFO depth.
    ///
    /// # Errors
    ///
    /// Propagates I2S configuration validation failures.
    pub fn speech_mic(name: impl Into<String>, source: Box<dyn SignalSource>) -> Result<Self> {
        Microphone::new(name, I2sConfig::microphone_default(), source)
    }

    /// The device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current state.
    pub fn state(&self) -> MicState {
        self.state
    }

    /// Capture format.
    pub fn format(&self) -> AudioFormat {
        self.bus.config().format
    }

    /// Statistics since creation.
    pub fn stats(&self) -> MicStats {
        self.stats
    }

    /// Powers the microphone on into standby.
    pub fn power_on(&mut self) {
        if self.state == MicState::Off {
            self.state = MicState::Standby;
        }
    }

    /// Powers the microphone off, stopping any capture.
    pub fn power_off(&mut self) {
        self.bus.controller().disable();
        self.state = MicState::Off;
    }

    /// Starts capturing.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidState`] if the microphone is off.
    pub fn start_capture(&mut self) -> Result<()> {
        match self.state {
            MicState::Off => Err(DeviceError::InvalidState {
                operation: "start capture".to_owned(),
                state: self.state.to_string(),
            }),
            MicState::Standby | MicState::Capturing => {
                self.bus.controller().enable();
                self.state = MicState::Capturing;
                Ok(())
            }
        }
    }

    /// Stops capturing (back to standby).
    pub fn stop_capture(&mut self) {
        if self.state == MicState::Capturing {
            self.bus.controller().disable();
            self.state = MicState::Standby;
        }
    }

    /// Replaces the signal source feeding the microphone (e.g. to play the
    /// next utterance of a scenario). Returns the previous source.
    pub fn set_source(&mut self, source: Box<dyn SignalSource>) -> Box<dyn SignalSource> {
        self.bus.set_source(source)
    }

    /// Captures `frames` frames in FIFO-sized chunks, returning the audio
    /// and the bus time it took.
    ///
    /// This models a well-behaved consumer that drains the FIFO every chunk
    /// (what the DMA engine or a polling driver does). Overruns can still
    /// occur if the configured chunk exceeds the FIFO depth.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidState`] if the microphone is not
    /// capturing.
    pub fn capture(&mut self, frames: usize) -> Result<(AudioBuffer, SimDuration)> {
        if self.state != MicState::Capturing {
            return Err(DeviceError::InvalidState {
                operation: "capture".to_owned(),
                state: self.state.to_string(),
            });
        }
        let format = self.format();
        let chunk_frames = self.bus.config().fifo_depth / format.channels as usize;
        let mut samples: Vec<i16> = Vec::with_capacity(frames * format.channels as usize);
        let mut elapsed = SimDuration::ZERO;
        let mut remaining = frames;
        while remaining > 0 {
            let n = remaining.min(chunk_frames.max(1));
            elapsed += self.bus.transfer_frames(n);
            let drained = self.bus.controller().drain(n * format.channels as usize);
            samples.extend_from_slice(&drained);
            remaining -= n;
        }
        self.stats.frames_captured += frames as u64;
        self.stats.chunks += 1;
        self.stats.overrun_samples = self.bus.controller_ref().overrun_samples();
        Ok((AudioBuffer::new(format, samples), elapsed))
    }

    /// Captures `duration` worth of audio.
    ///
    /// # Errors
    ///
    /// Same as [`Microphone::capture`].
    pub fn capture_duration(
        &mut self,
        duration: SimDuration,
    ) -> Result<(AudioBuffer, SimDuration)> {
        let frames = self.format().frames_in(duration);
        self.capture(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{SilenceSource, SineSource};

    fn test_mic() -> Microphone {
        Microphone::speech_mic("mic0", Box::new(SineSource::new(440.0, 16_000, 0.8))).unwrap()
    }

    #[test]
    fn lifecycle_transitions() {
        let mut mic = test_mic();
        assert_eq!(mic.state(), MicState::Off);
        assert!(mic.start_capture().is_err());
        mic.power_on();
        assert_eq!(mic.state(), MicState::Standby);
        mic.start_capture().unwrap();
        assert_eq!(mic.state(), MicState::Capturing);
        mic.stop_capture();
        assert_eq!(mic.state(), MicState::Standby);
        mic.power_off();
        assert_eq!(mic.state(), MicState::Off);
    }

    #[test]
    fn capture_returns_audio_of_requested_length() {
        let mut mic = test_mic();
        mic.power_on();
        mic.start_capture().unwrap();
        let (audio, wire_time) = mic.capture(1600).unwrap();
        assert_eq!(audio.frames(), 1600);
        assert_eq!(wire_time, SimDuration::from_millis(100));
        assert!(audio.rms() > 0.1);
        assert_eq!(mic.stats().frames_captured, 1600);
        assert_eq!(mic.stats().overrun_samples, 0);
    }

    #[test]
    fn capture_duration_matches_format() {
        let mut mic = test_mic();
        mic.power_on();
        mic.start_capture().unwrap();
        let (audio, _) = mic.capture_duration(SimDuration::from_millis(250)).unwrap();
        assert_eq!(audio.frames(), 4000);
        assert_eq!(audio.duration(), SimDuration::from_millis(250));
    }

    #[test]
    fn capture_when_not_capturing_is_an_error() {
        let mut mic = test_mic();
        mic.power_on();
        let err = mic.capture(100).unwrap_err();
        assert!(matches!(err, DeviceError::InvalidState { .. }));
    }

    #[test]
    fn swapping_the_source_changes_captured_audio() {
        let mut mic = Microphone::speech_mic("mic0", Box::new(SilenceSource)).unwrap();
        mic.power_on();
        mic.start_capture().unwrap();
        let (silent, _) = mic.capture(800).unwrap();
        assert_eq!(silent.rms(), 0.0);
        mic.set_source(Box::new(SineSource::new(440.0, 16_000, 0.8)));
        let (tone, _) = mic.capture(800).unwrap();
        assert!(tone.rms() > 0.1);
    }
}
