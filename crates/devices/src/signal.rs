//! Signal sources that feed the microphone model.
//!
//! The microphone does not know where its analog signal comes from; a
//! [`SignalSource`] provides the next chunk of samples. The workload crate
//! implements a source that renders labelled synthetic speech; this module
//! provides the basic sources used in unit tests and microbenchmarks.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A producer of mono 16-bit PCM samples.
///
/// Implementations must be deterministic for a fixed construction (the
/// experiments rely on reproducible runs), and are expected to be infinite:
/// a source never "runs out", it keeps producing (silence if nothing else).
pub trait SignalSource: Send {
    /// Produces the next `count` samples.
    fn next_samples(&mut self, count: usize) -> Vec<i16>;

    /// A short human-readable description of the source.
    fn describe(&self) -> String {
        "signal source".to_owned()
    }
}

/// A source that produces digital silence.
#[derive(Debug, Clone, Copy, Default)]
pub struct SilenceSource;

impl SignalSource for SilenceSource {
    fn next_samples(&mut self, count: usize) -> Vec<i16> {
        vec![0i16; count]
    }

    fn describe(&self) -> String {
        "silence".to_owned()
    }
}

/// A pure sine tone.
#[derive(Debug, Clone)]
pub struct SineSource {
    freq_hz: f64,
    sample_rate_hz: f64,
    amplitude: f64,
    phase: f64,
}

impl SineSource {
    /// Creates a tone of `freq_hz` at `sample_rate_hz`, with `amplitude` in
    /// `[0, 1]` of full scale.
    pub fn new(freq_hz: f64, sample_rate_hz: u32, amplitude: f64) -> Self {
        SineSource {
            freq_hz,
            sample_rate_hz: sample_rate_hz as f64,
            amplitude: amplitude.clamp(0.0, 1.0),
            phase: 0.0,
        }
    }
}

impl SignalSource for SineSource {
    fn next_samples(&mut self, count: usize) -> Vec<i16> {
        let mut out = Vec::with_capacity(count);
        let step = 2.0 * std::f64::consts::PI * self.freq_hz / self.sample_rate_hz;
        for _ in 0..count {
            let v = (self.phase.sin() * self.amplitude * i16::MAX as f64) as i16;
            out.push(v);
            self.phase += step;
            if self.phase > 2.0 * std::f64::consts::PI {
                self.phase -= 2.0 * std::f64::consts::PI;
            }
        }
        out
    }

    fn describe(&self) -> String {
        format!("sine {}Hz", self.freq_hz)
    }
}

/// Uniform white noise with a fixed seed.
#[derive(Debug, Clone)]
pub struct WhiteNoiseSource {
    rng: SmallRng,
    amplitude: f64,
}

impl WhiteNoiseSource {
    /// Creates a noise source with the given seed and amplitude in `[0, 1]`.
    pub fn new(seed: u64, amplitude: f64) -> Self {
        WhiteNoiseSource {
            rng: SmallRng::seed_from_u64(seed),
            amplitude: amplitude.clamp(0.0, 1.0),
        }
    }
}

impl SignalSource for WhiteNoiseSource {
    fn next_samples(&mut self, count: usize) -> Vec<i16> {
        let scale = self.amplitude * i16::MAX as f64;
        (0..count)
            .map(|_| (self.rng.gen_range(-1.0..=1.0) * scale) as i16)
            .collect()
    }

    fn describe(&self) -> String {
        format!("white noise (amplitude {:.2})", self.amplitude)
    }
}

/// A source that plays back a fixed sample buffer and then loops silence.
///
/// The workload crate uses this to feed pre-rendered utterances into the
/// microphone.
#[derive(Debug, Clone)]
pub struct PlaybackSource {
    samples: Vec<i16>,
    position: usize,
    label: String,
}

impl PlaybackSource {
    /// Creates a playback source over `samples`.
    pub fn new(samples: Vec<i16>, label: impl Into<String>) -> Self {
        PlaybackSource {
            samples,
            position: 0,
            label: label.into(),
        }
    }

    /// Samples remaining before the source starts producing silence.
    pub fn remaining(&self) -> usize {
        self.samples.len() - self.position
    }

    /// Whether the recorded material has been fully played back.
    pub fn exhausted(&self) -> bool {
        self.position >= self.samples.len()
    }
}

impl SignalSource for PlaybackSource {
    fn next_samples(&mut self, count: usize) -> Vec<i16> {
        let available = self.remaining().min(count);
        let mut out = self.samples[self.position..self.position + available].to_vec();
        self.position += available;
        out.resize(count, 0);
        out
    }

    fn describe(&self) -> String {
        format!("playback '{}' ({} samples)", self.label, self.samples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_is_all_zeros() {
        let mut s = SilenceSource;
        assert!(s.next_samples(100).iter().all(|&v| v == 0));
        assert_eq!(s.next_samples(0).len(), 0);
    }

    #[test]
    fn sine_has_expected_period() {
        // 1 kHz at 16 kHz: one period every 16 samples.
        let mut s = SineSource::new(1_000.0, 16_000, 0.9);
        let samples = s.next_samples(16_000);
        assert_eq!(samples.len(), 16_000);
        // Sign changes ~2 per period => ~2000 zero crossings in one second.
        let crossings = samples
            .windows(2)
            .filter(|w| (w[0] >= 0) != (w[1] >= 0))
            .count();
        assert!((1900..2100).contains(&crossings), "crossings = {crossings}");
        let peak = samples.iter().map(|&v| v.unsigned_abs()).max().unwrap();
        assert!(peak > (0.85 * i16::MAX as f64) as u16);
    }

    #[test]
    fn noise_is_deterministic_for_a_seed() {
        let mut a = WhiteNoiseSource::new(7, 0.5);
        let mut b = WhiteNoiseSource::new(7, 0.5);
        assert_eq!(a.next_samples(256), b.next_samples(256));
        let mut c = WhiteNoiseSource::new(8, 0.5);
        assert_ne!(a.next_samples(256), c.next_samples(256));
    }

    #[test]
    fn playback_pads_with_silence_when_exhausted() {
        let mut p = PlaybackSource::new(vec![1, 2, 3], "clip");
        assert_eq!(p.next_samples(2), vec![1, 2]);
        assert!(!p.exhausted());
        assert_eq!(p.next_samples(4), vec![3, 0, 0, 0]);
        assert!(p.exhausted());
        assert_eq!(p.next_samples(2), vec![0, 0]);
    }

    #[test]
    fn describe_mentions_the_source_kind() {
        assert!(SineSource::new(440.0, 16_000, 1.0)
            .describe()
            .contains("sine"));
        assert!(WhiteNoiseSource::new(1, 0.1).describe().contains("noise"));
        assert!(PlaybackSource::new(vec![], "x")
            .describe()
            .contains("playback"));
    }
}
