//! The shard chaos model: whole-shard crash/restart windows in virtual
//! time, as a pure function of a seed — the same discipline as the link
//! model's `FaultSpec`. Every observer (any worker, any replay) computes
//! the identical schedule, so chaos runs stay deterministic.
//!
//! A crash window `[start, end)` means the shard answers nothing: its
//! volatile state (channels, stashes, attestation grants) is considered
//! lost, and the first request at or after `end` sees a new *incarnation*
//! that rebuilds from the durable journal.

/// Deterministic crash schedule for the shards of one ingest plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFaultSpec {
    /// Seed the per-shard jitter derives from.
    pub seed: u64,
    /// Crash windows per shard (0 disables chaos entirely).
    pub crashes_per_shard: u32,
    /// Virtual instant (ns) of the first crash window's nominal start.
    pub first_crash_ns: u64,
    /// Nominal spacing between successive crash windows (ns).
    pub crash_period_ns: u64,
    /// How long each crash keeps the shard dark (ns).
    pub downtime_ns: u64,
}

impl ShardFaultSpec {
    /// A schedule with no crashes (the fault-free plane).
    pub fn none(seed: u64) -> Self {
        ShardFaultSpec {
            seed,
            crashes_per_shard: 0,
            first_crash_ns: 0,
            crash_period_ns: 0,
            downtime_ns: 0,
        }
    }

    /// One crash window per shard, starting exactly at `at_ns` (no
    /// jitter) and lasting `downtime_ns`.
    pub fn single(seed: u64, at_ns: u64, downtime_ns: u64) -> Self {
        ShardFaultSpec {
            seed,
            crashes_per_shard: 1,
            first_crash_ns: at_ns,
            crash_period_ns: 0,
            downtime_ns,
        }
    }

    /// The `k`-th crash window of `shard`, jittered by up to a quarter
    /// period so shards do not fall in lockstep.
    fn window(&self, shard: usize, k: u32) -> (u64, u64) {
        let nominal = self
            .first_crash_ns
            .saturating_add(self.crash_period_ns.saturating_mul(u64::from(k)));
        let jitter_range = self.crash_period_ns / 4;
        let jitter = if jitter_range == 0 {
            0
        } else {
            splitmix(self.seed ^ (shard as u64).rotate_left(17) ^ u64::from(k)) % (jitter_range + 1)
        };
        let start = nominal.saturating_add(jitter);
        (start, start.saturating_add(self.downtime_ns))
    }

    /// All crash windows of one shard, in start order.
    pub fn windows(&self, shard: usize) -> Vec<(u64, u64)> {
        (0..self.crashes_per_shard)
            .map(|k| self.window(shard, k))
            .collect()
    }

    /// Whether `shard` is inside a crash window at `now_ns`.
    pub fn is_down(&self, shard: usize, now_ns: u64) -> bool {
        (0..self.crashes_per_shard).any(|k| {
            let (start, end) = self.window(shard, k);
            now_ns >= start && now_ns < end
        })
    }

    /// The shard's incarnation at `now_ns`: 0 before the first crash,
    /// bumped once per crash window whose start has passed. A session
    /// that observes a higher incarnation than the one its channel was
    /// built under knows the volatile state is gone.
    pub fn incarnation(&self, shard: usize, now_ns: u64) -> u64 {
        (0..self.crashes_per_shard)
            .filter(|&k| self.window(shard, k).0 <= now_ns)
            .count() as u64
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_crashes() {
        let spec = ShardFaultSpec::none(7);
        assert!(!spec.is_down(0, 0));
        assert!(!spec.is_down(3, u64::MAX));
        assert_eq!(spec.incarnation(0, u64::MAX), 0);
        assert!(spec.windows(0).is_empty());
    }

    #[test]
    fn single_window_is_exact() {
        let spec = ShardFaultSpec::single(1, 1_000, 500);
        assert!(!spec.is_down(0, 999));
        assert!(spec.is_down(0, 1_000));
        assert!(spec.is_down(0, 1_499));
        assert!(!spec.is_down(0, 1_500));
        assert_eq!(spec.incarnation(0, 999), 0);
        assert_eq!(spec.incarnation(0, 1_000), 1);
        assert_eq!(spec.windows(0), vec![(1_000, 1_500)]);
    }

    #[test]
    fn schedule_is_a_pure_function_of_inputs() {
        let spec = ShardFaultSpec {
            seed: 42,
            crashes_per_shard: 3,
            first_crash_ns: 10_000,
            crash_period_ns: 40_000,
            downtime_ns: 5_000,
        };
        assert_eq!(spec.windows(2), spec.windows(2));
        // Different shards get different jitter.
        assert_ne!(spec.windows(0), spec.windows(1));
        // Incarnation counts window starts monotonically.
        let windows = spec.windows(1);
        for (k, (start, _)) in windows.iter().enumerate() {
            assert_eq!(spec.incarnation(1, start.saturating_sub(1)), k as u64);
            assert_eq!(spec.incarnation(1, *start), k as u64 + 1);
        }
    }
}
