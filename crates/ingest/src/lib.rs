//! # perisec-ingest — the sharded attested ingest plane
//!
//! The paper's cloud endpoint is a single trusted ingest point; at the
//! fleet north star it has to be a sharded service that keeps the
//! zero-leak, exactly-once verdict contract *through* shard failures,
//! not only through lossy links. This crate supplies that plane:
//!
//! * [`fault`] — [`ShardFaultSpec`], whole-shard crash/restart windows
//!   in virtual time as a pure function of a seed (the shard-level
//!   sibling of the link layer's `FaultSpec`);
//! * [`shard`] — the journaled, attestation-gated per-session ingest
//!   state machine: volatile channel/stash tier rebuilt from an
//!   append-only journal on every crash, commit logic shared
//!   byte-for-byte with the direct `MockCloudService`;
//! * [`plane`] — [`IngestPlane`]: deterministic session→shard placement
//!   via the scheduler's least-loaded seam, plus per-shard telemetry
//!   folds, health reports and the modeled-throughput figure E21 gates
//!   on.
//!
//! The trust story, per the edge-to-cloud confidential-computing
//! literature: a session may only deposit records after attesting its
//! TA measurement together with a *monotonic counter*; each grant
//! carries a *session epoch*. Crashing a shard wipes its volatile tier,
//! so the session must re-attest (a strictly higher counter, a bumped
//! epoch) before any new record is accepted — records sealed under the
//! superseded epoch are rejected loudly, never replayed into a
//! rolled-back dedup window, while already-committed records are
//! re-acked from the journal without being recorded twice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod plane;
pub(crate) mod shard;

pub use fault::ShardFaultSpec;
pub use plane::{IngestPlane, IngestPlaneConfig};
pub use shard::ShardCounters;
