//! The sharded ingest plane: deterministic session placement over N
//! journaled shards, plus the per-shard observability fold.

use std::sync::Arc;

use perisec_relay::attest::SessionIngest;
use perisec_relay::attest::MEASUREMENT_LEN;
use perisec_relay::cloud::CloudReport;
use perisec_relay::tls::PSK_LEN;
use perisec_sched::scheduler::SessionScheduler;
use perisec_telemetry::{
    Alert, AlertKind, FleetHealth, FleetHealthReport, FleetTelemetry, HealthConfig, HealthMachine,
    HealthState,
};
use perisec_tz::time::{SimDuration, SimInstant};

use crate::fault::ShardFaultSpec;
use crate::shard::{IngestShard, ShardConfig, ShardCounters};

/// Configuration of an [`IngestPlane`].
#[derive(Debug, Clone)]
pub struct IngestPlaneConfig {
    /// Number of shards (at least one).
    pub shards: usize,
    /// Number of sessions the plane will serve; placement is computed
    /// up front so it is a pure function of this config.
    pub sessions: usize,
    /// The device-provisioned PSK.
    pub psk: [u8; PSK_LEN],
    /// TA measurements the plane attests.
    pub accept: Vec<[u8; MEASUREMENT_LEN]>,
    /// Per-session bounded stash depth; beyond it the shard answers
    /// with a typed backpressure rejection instead of stashing further.
    pub queue_cap: usize,
    /// The shard crash schedule.
    pub faults: ShardFaultSpec,
    /// Modeled per-commit service cost (drives the commit-latency
    /// series and the throughput model).
    pub service_cost_ns: u64,
}

impl IngestPlaneConfig {
    /// A fault-free plane over `shards` shards and `sessions` sessions
    /// with the workspace-default PSK and service cost.
    pub fn new(shards: usize, sessions: usize) -> Self {
        IngestPlaneConfig {
            shards,
            sessions,
            psk: [0x5a; PSK_LEN],
            accept: Vec::new(),
            queue_cap: 256,
            faults: ShardFaultSpec::none(0),
            service_cost_ns: 20_000,
        }
    }

    /// Sets the accepted TA measurements.
    pub fn accepting(mut self, accept: Vec<[u8; MEASUREMENT_LEN]>) -> Self {
        self.accept = accept;
        self
    }

    /// Sets the crash schedule.
    pub fn with_faults(mut self, faults: ShardFaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the PSK.
    pub fn with_psk(mut self, psk: [u8; PSK_LEN]) -> Self {
        self.psk = psk;
        self
    }

    /// Sets the bounded per-session stash depth.
    pub fn with_queue_cap(mut self, queue_cap: usize) -> Self {
        self.queue_cap = queue_cap;
        self
    }
}

/// The sharded attested ingest plane. Sessions are placed onto shards
/// deterministically at construction (the scheduler's least-loaded
/// placement, which is exact round-robin for uniform sessions), so any
/// observer — any worker count, any replay — agrees which shard owns
/// which session, and a shard's crash schedule affects exactly the
/// sessions placed on it.
pub struct IngestPlane {
    config: IngestPlaneConfig,
    placement: Vec<usize>,
    shards: Vec<IngestShard>,
}

impl std::fmt::Debug for IngestPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestPlane")
            .field("shards", &self.shards.len())
            .field("sessions", &self.placement.len())
            .finish()
    }
}

impl IngestPlane {
    /// Builds the plane.
    ///
    /// # Panics
    ///
    /// Panics on zero shards or zero sessions — a plane with nowhere to
    /// place work is a construction bug.
    pub fn new(config: IngestPlaneConfig) -> Arc<Self> {
        assert!(config.shards > 0, "ingest plane needs at least one shard");
        assert!(
            config.sessions > 0,
            "ingest plane needs at least one session"
        );
        let mut scheduler = SessionScheduler::new(config.shards);
        let placement = scheduler.assign(&vec![1; config.sessions]);
        let shards = (0..config.shards)
            .map(|shard| {
                IngestShard::new(ShardConfig {
                    shard,
                    psk: config.psk,
                    accept: config.accept.clone(),
                    queue_cap: config.queue_cap,
                    faults: config.faults,
                    service_cost_ns: config.service_cost_ns,
                })
            })
            .collect();
        Arc::new(IngestPlane {
            config,
            placement,
            shards,
        })
    }

    /// The shard a session is placed on.
    pub fn shard_of(&self, session: u64) -> usize {
        self.placement
            .get(session as usize)
            .copied()
            .unwrap_or(session as usize % self.shards.len())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Committed records per shard, in shard order.
    pub fn committed_per_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.committed()).collect()
    }

    /// Committed records across the plane.
    pub fn total_committed(&self) -> u64 {
        self.committed_per_shard().iter().sum()
    }

    /// Durable counters summed across one shard's sessions.
    pub fn shard_counters(&self, shard: usize) -> ShardCounters {
        self.shards[shard].counter_totals()
    }

    /// Durable counters summed across the plane.
    pub fn counters(&self) -> ShardCounters {
        let mut totals = ShardCounters::default();
        for shard in &self.shards {
            let c = shard.counter_totals();
            totals.stale_epoch_rejects += c.stale_epoch_rejects;
            totals.backpressure_rejects += c.backpressure_rejects;
            totals.attest_grants += c.attest_grants;
            totals.attest_rejects += c.attest_rejects;
            totals.redelivered += c.redelivered;
            totals.rejected += c.rejected;
        }
        totals
    }

    /// One shard's telemetry fold: per-tenant histograms and counters,
    /// absorbed under the owning session ids (commutative merges, so
    /// folding order cannot show).
    pub fn shard_telemetry(&self, shard: usize) -> FleetTelemetry {
        let mut fleet = FleetTelemetry::new();
        for (session, telemetry) in self.shards[shard].session_telemetry() {
            fleet.absorb(session as usize, telemetry);
        }
        fleet
    }

    /// The whole plane's telemetry fold.
    pub fn telemetry(&self) -> FleetTelemetry {
        let mut fleet = FleetTelemetry::new();
        for shard in 0..self.shards.len() {
            fleet.merge(&self.shard_telemetry(shard));
        }
        fleet
    }

    /// One shard's health report: per-tenant SLO machines over the
    /// commit-latency series, plus shard-down/recovered journal entries
    /// derived from the crash schedule. Deterministic — it reads only
    /// durable session state and the pure crash schedule.
    pub fn shard_health(&self, shard: usize, config: &HealthConfig) -> FleetHealthReport {
        let mut health = FleetHealth::new(config.window);
        for (session, telemetry) in self.shards[shard].session_telemetry() {
            let device = session as usize;
            health.ingest_epoch(0, device, &telemetry);
            let mut alerts = Vec::new();
            let mut machine = HealthMachine::new(config);
            let mut breached = false;
            for spec in &config.slos {
                let Some(histogram) = telemetry.histograms.get(spec.span) else {
                    continue;
                };
                if histogram.count() < config.min_samples {
                    continue;
                }
                let p = histogram.percentile(spec.q());
                if p > spec.budget {
                    breached = true;
                    alerts.push(Alert {
                        device,
                        epoch: 0,
                        at: SimInstant::EPOCH,
                        kind: AlertKind::SloBreach,
                        span: Some(spec.span),
                        detail: format!(
                            "{} ns over budget {} ns",
                            p.as_nanos(),
                            spec.budget.as_nanos()
                        ),
                    });
                }
            }
            if config.backpressure_threshold > 0 {
                if let Some(&rejections) = telemetry.counters.get("ingest.backpressure") {
                    if rejections >= config.backpressure_threshold {
                        alerts.push(Alert {
                            device,
                            epoch: 0,
                            at: SimInstant::EPOCH,
                            kind: AlertKind::Backpressure,
                            span: None,
                            detail: format!("{rejections} ingest backpressure rejections"),
                        });
                    }
                }
            }
            if let Some((from, to)) = machine.step(breached) {
                alerts.push(Alert {
                    device,
                    epoch: 0,
                    at: SimInstant::EPOCH,
                    kind: AlertKind::StateChange { from, to },
                    span: None,
                    detail: format!("{from} -> {to}"),
                });
            }
            health.finish_device(device, machine.state(), alerts);
        }
        // The shard itself journals its crash windows under a pseudo
        // device id just past the session space, so downtime is part of
        // the same sorted alert journal the fleet plane uses.
        let shard_device = self.config.sessions + shard;
        let mut shard_alerts = Vec::new();
        for (k, (start, end)) in self.config.faults.windows(shard).into_iter().enumerate() {
            shard_alerts.push(Alert {
                device: shard_device,
                epoch: k as u64,
                at: SimInstant::EPOCH + SimDuration::from_nanos(start),
                kind: AlertKind::ShardDown,
                span: None,
                detail: format!("shard {shard} crash window {k} began"),
            });
            shard_alerts.push(Alert {
                device: shard_device,
                epoch: k as u64,
                at: SimInstant::EPOCH + SimDuration::from_nanos(end),
                kind: AlertKind::ShardRecovered,
                span: None,
                detail: format!("shard {shard} crash window {k} ended; sessions must re-attest"),
            });
        }
        health.finish_device(shard_device, HealthState::Healthy, shard_alerts);
        health.report()
    }

    /// Modeled sustained ingest throughput in records per second: total
    /// commits divided by the makespan of the busiest shard (each commit
    /// costing the configured service time). A single shard serializes
    /// everything; N balanced shards divide the makespan by ~N — the
    /// quantity E21's scaling gate measures, independent of host wall
    /// clock.
    pub fn modeled_throughput_rps(&self) -> f64 {
        let busiest = self.committed_per_shard().into_iter().max().unwrap_or(0);
        if busiest == 0 || self.config.service_cost_ns == 0 {
            return 0.0;
        }
        let makespan_secs = (busiest as f64 * self.config.service_cost_ns as f64) / 1e9;
        self.total_committed() as f64 / makespan_secs
    }
}

impl SessionIngest for IngestPlane {
    fn handle(&self, session: u64, now_ns: u64, request: &[u8]) -> Vec<u8> {
        self.shards[self.shard_of(session)].handle(session, now_ns, request)
    }

    fn session_report(&self, session: u64) -> CloudReport {
        self.shards[self.shard_of(session)].session_report(session)
    }

    fn reset_session(&self, session: u64) {
        self.shards[self.shard_of(session)].reset_session(session);
    }
}
