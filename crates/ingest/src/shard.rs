//! One ingest shard: journaled, crash-recoverable, attestation-gated
//! session state.
//!
//! A shard splits every session's state into two tiers, mirroring what a
//! real enclave-hosted ingest node can and cannot keep through a crash:
//!
//! * **volatile** — the secure-channel server, the out-of-order stash's
//!   working set, and the "has this session attested to *this*
//!   incarnation" bit. Lost on every crash.
//! * **durable** — the append-only journal (hello, attestation grants,
//!   stashed arrivals, commits), the committed-decision report, and the
//!   rollback-protected monotonic counter / epoch pair. Survives
//!   crashes; the journal is the single source the volatile tier is
//!   rebuilt from.
//!
//! The commit path is byte-for-byte the direct `MockCloudService`
//! discipline (shared `record_event_into` / `ack_for_event`), with two
//! additions: acceptance is gated on the session's epoch, and every
//! accepted arrival is journaled *before* it is acked — so an ack is a
//! durable promise that survives the shard, and redelivered records are
//! re-acked from the journal without re-recording.

use std::collections::{BTreeMap, HashMap};

use perisec_relay::attest::{
    decode_attest_request, decode_ingest_record, IngestReply, ATTEST_SEQ_BASE, MEASUREMENT_LEN,
};
use perisec_relay::avs::AvsEvent;
use perisec_relay::cloud::{ack_for_event, record_event_into, CloudReport};
use perisec_relay::tls::{
    peek_record_type, SecureChannelServer, CLIENT_HELLO, EXPLICIT_RECORD, PSK_LEN,
};
use perisec_telemetry::{DeviceTelemetry, LogHistogram};
use perisec_tz::time::SimDuration;

use crate::fault::ShardFaultSpec;

/// Static configuration one shard runs with.
#[derive(Debug, Clone)]
pub(crate) struct ShardConfig {
    /// This shard's index in the plane.
    pub shard: usize,
    /// The device-provisioned PSK (the same one the direct cloud uses).
    pub psk: [u8; PSK_LEN],
    /// TA measurements the shard attests.
    pub accept: Vec<[u8; MEASUREMENT_LEN]>,
    /// Most records a session may stash ahead of the commit point before
    /// the shard answers with a typed backpressure rejection.
    pub queue_cap: usize,
    /// The crash schedule.
    pub faults: ShardFaultSpec,
    /// Modeled per-commit service cost, for the commit-latency series
    /// and the throughput model.
    pub service_cost_ns: u64,
}

/// One durable journal entry. Replaying the journal in order rebuilds
/// every volatile structure a crash destroys.
#[derive(Debug, Clone)]
enum JournalEntry {
    /// The session's client hello (both randoms are deterministic, so
    /// replaying it re-derives the same channel keys).
    Hello(Vec<u8>),
    /// An attestation grant: the monotonic counter accepted and the
    /// epoch issued for it.
    Attest { counter: u64, epoch: u64 },
    /// An arrival accepted into the stash (acked, not yet committed).
    Stashed { seq: u64, event: Vec<u8> },
    /// A commit: the sequence retired and the full reply plaintext its
    /// redeliveries are re-acked with.
    Committed { seq: u64, ack: Vec<u8> },
}

/// Per-session state. See the module docs for the volatile/durable
/// split; `rebuild` is the crash-recovery path.
struct SessionState {
    // Volatile tier.
    channel: Option<SecureChannelServer>,
    stash: BTreeMap<u64, Vec<u8>>,
    attested: bool,
    built_incarnation: u64,
    // Durable tier.
    journal: Vec<JournalEntry>,
    next_commit: u64,
    acks: HashMap<u64, Vec<u8>>,
    last_counter: u64,
    epoch: u64,
    report: CloudReport,
    // Durable observability.
    stale_epoch_rejects: u64,
    backpressure_rejects: u64,
    attest_grants: u64,
    attest_rejects: u64,
    commit_hist: LogHistogram,
}

impl SessionState {
    fn new(incarnation: u64) -> Self {
        SessionState {
            channel: None,
            stash: BTreeMap::new(),
            attested: false,
            built_incarnation: incarnation,
            journal: Vec::new(),
            next_commit: 0,
            acks: HashMap::new(),
            last_counter: 0,
            epoch: 0,
            report: CloudReport::default(),
            stale_epoch_rejects: 0,
            backpressure_rejects: 0,
            attest_grants: 0,
            attest_rejects: 0,
            commit_hist: LogHistogram::new(),
        }
    }

    /// Crash recovery: drops the volatile tier and replays the journal.
    /// The channel comes back from the journaled hello (same
    /// deterministic keys), the stash from `Stashed` entries not yet
    /// superseded by a `Committed` one, and the dedup window
    /// (`next_commit` + re-ack table) from the `Committed` entries. The
    /// attested bit is *not* restored — that is the rollback fence: the
    /// session must re-prove itself to the new incarnation before any
    /// new record is accepted.
    fn rebuild(&mut self, psk: [u8; PSK_LEN], session: u64, incarnation: u64) {
        self.channel = None;
        self.stash.clear();
        self.attested = false;
        self.built_incarnation = incarnation;
        self.next_commit = 0;
        self.acks.clear();
        for entry in &self.journal {
            match entry {
                JournalEntry::Hello(hello) => {
                    let mut server = SecureChannelServer::new(psk, session);
                    if server.process_client_hello(hello).is_ok() {
                        self.channel = Some(server);
                    }
                }
                JournalEntry::Attest { counter, epoch } => {
                    // The counter/epoch pair lives in rollback-protected
                    // storage and survives on its own; replaying the
                    // grants keeps the journal self-contained.
                    self.last_counter = self.last_counter.max(*counter);
                    self.epoch = self.epoch.max(*epoch);
                }
                JournalEntry::Stashed { seq, event } => {
                    self.stash.insert(*seq, event.clone());
                }
                JournalEntry::Committed { seq, ack } => {
                    self.stash.remove(seq);
                    self.acks.insert(*seq, ack.clone());
                    self.next_commit = self.next_commit.max(seq + 1);
                }
            }
        }
    }
}

/// One shard of the ingest plane.
pub(crate) struct IngestShard {
    config: ShardConfig,
    sessions: parking_lot::Mutex<HashMap<u64, SessionState>>,
}

impl IngestShard {
    pub(crate) fn new(config: ShardConfig) -> Self {
        IngestShard {
            config,
            sessions: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// Handles one wire request from `session` at `now_ns` on the
    /// session's virtual clock. An empty reply means the shard is down
    /// or the record failed authentication — in either case the device
    /// backs off and retries.
    pub(crate) fn handle(&self, session: u64, now_ns: u64, request: &[u8]) -> Vec<u8> {
        if self.config.faults.is_down(self.config.shard, now_ns) {
            return Vec::new();
        }
        let incarnation = self.config.faults.incarnation(self.config.shard, now_ns);
        let mut sessions = self.sessions.lock();
        let state = sessions
            .entry(session)
            .or_insert_with(|| SessionState::new(incarnation));
        if state.built_incarnation < incarnation {
            state.rebuild(self.config.psk, session, incarnation);
        }

        if peek_record_type(request) == Some(CLIENT_HELLO) {
            return self.handle_hello(session, state, request);
        }
        if peek_record_type(request) != Some(EXPLICIT_RECORD) {
            // The plane speaks only the explicit-sequence protocol; a
            // legacy implicit or plaintext record is a protocol error.
            state.report.rejected_records += 1;
            return Vec::new();
        }
        let Some(channel) = state.channel.as_ref() else {
            // No handshake on record: nothing to authenticate with.
            state.report.rejected_records += 1;
            return Vec::new();
        };
        let (seq, plaintext) = match channel.open_explicit(request) {
            Ok(opened) => opened,
            Err(_) => {
                state.report.rejected_records += 1;
                return Vec::new();
            }
        };
        if seq >= ATTEST_SEQ_BASE {
            self.handle_attest(state, seq, &plaintext)
        } else {
            self.handle_record(state, seq, &plaintext)
        }
    }

    fn handle_hello(&self, session: u64, state: &mut SessionState, request: &[u8]) -> Vec<u8> {
        // First hello journals; replays (device recovering, or the
        // journal replay on rebuild already restored the channel) are
        // idempotent because both randoms are deterministic.
        let fresh = state.channel.is_none();
        let mut server = SecureChannelServer::new(self.config.psk, session);
        match server.process_client_hello(request) {
            Ok(server_hello) => {
                state.channel = Some(server);
                if fresh
                    && !state
                        .journal
                        .iter()
                        .any(|e| matches!(e, JournalEntry::Hello(_)))
                {
                    state.journal.push(JournalEntry::Hello(request.to_vec()));
                }
                server_hello
            }
            Err(_) => {
                state.report.rejected_records += 1;
                Vec::new()
            }
        }
    }

    /// The attestation handshake. The monotonic counter is the replay
    /// fence: a grant is issued only for a counter strictly above every
    /// previously granted one (bumping the epoch), re-issued verbatim
    /// for the exact last counter (a lost grant being retried), and
    /// refused for anything below (a replayed or rolled-back request).
    fn handle_attest(&self, state: &mut SessionState, seq: u64, plaintext: &[u8]) -> Vec<u8> {
        let reply = match decode_attest_request(plaintext) {
            Some((measurement, counter)) => {
                if !self.config.accept.contains(&measurement)
                    || counter == 0
                    || counter < state.last_counter
                {
                    state.attest_rejects += 1;
                    IngestReply::AttestReject
                } else {
                    if counter > state.last_counter {
                        state.last_counter = counter;
                        state.epoch += 1;
                        state.journal.push(JournalEntry::Attest {
                            counter,
                            epoch: state.epoch,
                        });
                    }
                    state.attested = true;
                    state.attest_grants += 1;
                    IngestReply::AttestGrant { epoch: state.epoch }
                }
            }
            None => {
                state.attest_rejects += 1;
                IngestReply::AttestReject
            }
        };
        seal_reply(state, seq, &reply)
    }

    /// The epoch-fenced, journaled version of the direct cloud's
    /// exactly-once ingest.
    fn handle_record(&self, state: &mut SessionState, seq: u64, plaintext: &[u8]) -> Vec<u8> {
        let Some((epoch, event_bytes)) = decode_ingest_record(plaintext) else {
            state.report.rejected_records += 1;
            return Vec::new();
        };
        // Redelivery of something already durable: re-ack from the
        // journal (committed) or recompute from the stash (accepted but
        // not yet committed). Deliberately epoch-agnostic — the promise
        // was already made; only the ack needs retransmitting.
        if seq < state.next_commit || state.stash.contains_key(&seq) {
            state.report.redelivered_records += 1;
            let ack = match state.acks.get(&seq) {
                Some(ack) => ack.clone(),
                None => match state.stash.get(&seq).map(|b| AvsEvent::decode(b)) {
                    Some(Ok(event)) => IngestReply::Ack(ack_for_event(&event).encode()).encode(),
                    _ => return Vec::new(),
                },
            };
            return state
                .channel
                .as_ref()
                .and_then(|c| c.seal_at(seq, &ack).ok())
                .unwrap_or_default();
        }
        // The rollback fence: no new promise without a live attestation
        // for this incarnation, and none for a superseded epoch.
        if !state.attested || epoch != state.epoch {
            state.stale_epoch_rejects += 1;
            let reply = if state.attested {
                IngestReply::StaleEpoch {
                    granted: state.epoch,
                }
            } else {
                IngestReply::NeedAttest
            };
            return seal_reply(state, seq, &reply);
        }
        if seq != state.next_commit {
            if state.stash.len() >= self.config.queue_cap {
                state.backpressure_rejects += 1;
                let reply = IngestReply::Backpressure {
                    depth: state.stash.len() as u64,
                };
                return seal_reply(state, seq, &reply);
            }
            state.report.out_of_order_records += 1;
        }
        let Ok(event) = AvsEvent::decode(event_bytes) else {
            state.report.rejected_records += 1;
            return Vec::new();
        };
        let ack = IngestReply::Ack(ack_for_event(&event).encode()).encode();
        // Journal the arrival before acking it: the ack below is a
        // durable promise, so redelivery after a crash must find it.
        state.journal.push(JournalEntry::Stashed {
            seq,
            event: event_bytes.to_vec(),
        });
        state.stash.insert(seq, event_bytes.to_vec());
        while let Some(ready) = state.stash.remove(&state.next_commit) {
            if let Ok(ready_event) = AvsEvent::decode(&ready) {
                record_event_into(&mut state.report, &ready_event, true);
                state.report.committed_records += 1;
                let committed_ack = IngestReply::Ack(ack_for_event(&ready_event).encode()).encode();
                state.journal.push(JournalEntry::Committed {
                    seq: state.next_commit,
                    ack: committed_ack.clone(),
                });
                state.acks.insert(state.next_commit, committed_ack);
                state.commit_hist.record(SimDuration::from_nanos(
                    self.config.service_cost_ns * (state.stash.len() as u64 + 1),
                ));
            }
            state.next_commit += 1;
        }
        state
            .channel
            .as_ref()
            .and_then(|c| c.seal_at(seq, &ack).ok())
            .unwrap_or_default()
    }

    /// The committed report of one session.
    pub(crate) fn session_report(&self, session: u64) -> CloudReport {
        self.sessions
            .lock()
            .get(&session)
            .map(|s| s.report.clone())
            .unwrap_or_default()
    }

    /// Clears one session's report (between experiment runs); journal,
    /// dedup window and attestation state survive, mirroring the direct
    /// cloud's `reset`.
    pub(crate) fn reset_session(&self, session: u64) {
        if let Some(state) = self.sessions.lock().get_mut(&session) {
            state.report = CloudReport::default();
        }
    }

    /// Committed records across every session of this shard.
    pub(crate) fn committed(&self) -> u64 {
        self.sessions
            .lock()
            .values()
            .map(|s| s.report.committed_records)
            .sum()
    }

    /// Sums one durable counter across sessions.
    pub(crate) fn counter_totals(&self) -> ShardCounters {
        let sessions = self.sessions.lock();
        let mut totals = ShardCounters::default();
        for state in sessions.values() {
            totals.stale_epoch_rejects += state.stale_epoch_rejects;
            totals.backpressure_rejects += state.backpressure_rejects;
            totals.attest_grants += state.attest_grants;
            totals.attest_rejects += state.attest_rejects;
            totals.redelivered += state.report.redelivered_records;
            totals.rejected += state.report.rejected_records;
        }
        totals
    }

    /// The per-tenant telemetry fold of this shard: one
    /// [`DeviceTelemetry`] per session, keyed by session id, with the
    /// span names the billing/accounting plane reuses as keys.
    pub(crate) fn session_telemetry(&self) -> Vec<(u64, DeviceTelemetry)> {
        let sessions = self.sessions.lock();
        let mut out: Vec<(u64, DeviceTelemetry)> = sessions
            .iter()
            .map(|(&session, state)| {
                let mut telemetry = DeviceTelemetry::default();
                let mut count = |name: &'static str, value: u64| {
                    if value > 0 {
                        telemetry.counters.insert(name, value);
                    }
                };
                count("ingest.committed", state.report.committed_records);
                count("ingest.redelivered", state.report.redelivered_records);
                count("ingest.rejected", state.report.rejected_records);
                count("ingest.stale_epoch", state.stale_epoch_rejects);
                count("ingest.backpressure", state.backpressure_rejects);
                count("ingest.attest", state.attest_grants);
                count("ingest.journal", state.journal.len() as u64);
                if !state.commit_hist.is_empty() {
                    telemetry
                        .histograms
                        .insert("ingest.commit", state.commit_hist.clone());
                }
                (session, telemetry)
            })
            .collect();
        out.sort_by_key(|(session, _)| *session);
        out
    }
}

/// Durable counters of one shard, summed across its sessions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Records refused for a superseded epoch (including records that
    /// arrived before the session re-attested to a new incarnation).
    pub stale_epoch_rejects: u64,
    /// Records refused because the session's ingest queue was full.
    pub backpressure_rejects: u64,
    /// Attestation grants issued.
    pub attest_grants: u64,
    /// Attestation requests refused (bad measurement, replayed or
    /// rolled-back counter).
    pub attest_rejects: u64,
    /// Redeliveries re-acked without re-recording.
    pub redelivered: u64,
    /// Records that failed authentication or decoding.
    pub rejected: u64,
}

fn seal_reply(state: &SessionState, seq: u64, reply: &IngestReply) -> Vec<u8> {
    state
        .channel
        .as_ref()
        .and_then(|c| c.seal_at(seq, &reply.encode()).ok())
        .unwrap_or_default()
}
