//! Inventory of the full audio driver code base.
//!
//! The paper observes that platforms like the Jetson AGX Xavier "provide a
//! large set of I/O devices and driver software, sometimes for the same
//! purpose", so "just part of a large driver code base could be used by a
//! target protocol, e.g., I2S, and thus the full driver code need not be
//! secured within the TEE" (§IV.2).
//!
//! [`DriverCatalog`] is the model of that code base: every function of the
//! (simulated) Tegra audio stack, its approximate size in lines of code and
//! the feature group it belongs to. The baseline driver executes (and
//! traces) a subset of these functions per task; `perisec-tcb` combines the
//! traces with this catalog to compute how much code actually needs to be
//! ported into OP-TEE.
//!
//! Function names and the rough size distribution mirror the upstream Linux
//! `sound/soc/tegra` drivers (tegra210_i2s, tegra210_admaif, tegra210_ahub,
//! tegra210_dmic, tegra_pcm, the ADMA dmaengine driver and the machine
//! driver); sizes are order-of-magnitude estimates, not exact line counts.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Feature group a driver function belongs to. Conditional compilation in
/// the TEE port happens at this granularity or per function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FeatureGroup {
    /// Probe/remove, clock and regmap setup shared by everything.
    CoreInit,
    /// I2S capture path (hw_params, trigger, FIFO/DMA hookup for capture).
    I2sCapture,
    /// I2S playback path.
    I2sPlayback,
    /// The PDM digital-microphone (DMIC) controller.
    DmicCapture,
    /// Audio hub (AHUB/XBAR) routing between audio IP blocks.
    AhubRouting,
    /// ADMAIF / ADMA DMA engine glue.
    Dma,
    /// ALSA mixer controls (volume, mute, routing controls).
    MixerControls,
    /// Runtime and system power management.
    PowerManagement,
    /// debugfs / tracing / diagnostics.
    Diagnostics,
    /// The ASoC machine driver binding the card together.
    MachineDriver,
    /// USB audio class driver (present on the board, irrelevant to I2S).
    UsbAudio,
    /// HDA codec support (present on the board, irrelevant to I2S).
    HdaAudio,
    /// VI/CSI camera frame-capture path.
    CameraCapture,
    /// Camera ISP processing (demosaic, scaling, tone mapping — stays in
    /// the normal world; the vision TA consumes raw grayscale surfaces).
    CameraIsp,
    /// V4L2 media-controller plumbing around the camera pipeline.
    CameraMediaController,
}

impl FeatureGroup {
    /// All groups, in reporting order.
    pub const ALL: [FeatureGroup; 15] = [
        FeatureGroup::CoreInit,
        FeatureGroup::I2sCapture,
        FeatureGroup::I2sPlayback,
        FeatureGroup::DmicCapture,
        FeatureGroup::AhubRouting,
        FeatureGroup::Dma,
        FeatureGroup::MixerControls,
        FeatureGroup::PowerManagement,
        FeatureGroup::Diagnostics,
        FeatureGroup::MachineDriver,
        FeatureGroup::UsbAudio,
        FeatureGroup::HdaAudio,
        FeatureGroup::CameraCapture,
        FeatureGroup::CameraIsp,
        FeatureGroup::CameraMediaController,
    ];
}

impl std::fmt::Display for FeatureGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FeatureGroup::CoreInit => "core-init",
            FeatureGroup::I2sCapture => "i2s-capture",
            FeatureGroup::I2sPlayback => "i2s-playback",
            FeatureGroup::DmicCapture => "dmic-capture",
            FeatureGroup::AhubRouting => "ahub-routing",
            FeatureGroup::Dma => "dma",
            FeatureGroup::MixerControls => "mixer-controls",
            FeatureGroup::PowerManagement => "power-management",
            FeatureGroup::Diagnostics => "diagnostics",
            FeatureGroup::MachineDriver => "machine-driver",
            FeatureGroup::UsbAudio => "usb-audio",
            FeatureGroup::HdaAudio => "hda-audio",
            FeatureGroup::CameraCapture => "camera-capture",
            FeatureGroup::CameraIsp => "camera-isp",
            FeatureGroup::CameraMediaController => "camera-media-controller",
        };
        write!(f, "{s}")
    }
}

/// One function of the driver code base.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriverFunction {
    /// Function name (as it would appear in a kernel trace).
    pub name: String,
    /// Approximate size in lines of code.
    pub loc: u32,
    /// Feature group the function belongs to.
    pub group: FeatureGroup,
}

/// The catalog of all driver functions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DriverCatalog {
    functions: BTreeMap<String, DriverFunction>,
}

impl DriverCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        DriverCatalog::default()
    }

    /// Adds a function to the catalog (replacing an existing entry with the
    /// same name).
    pub fn add(&mut self, name: &str, loc: u32, group: FeatureGroup) {
        self.functions.insert(
            name.to_owned(),
            DriverFunction {
                name: name.to_owned(),
                loc,
                group,
            },
        );
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&DriverFunction> {
        self.functions.get(name)
    }

    /// Iterates over all functions.
    pub fn iter(&self) -> impl Iterator<Item = &DriverFunction> {
        self.functions.values()
    }

    /// Number of functions in the catalog.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Total lines of code across all functions.
    pub fn total_loc(&self) -> u64 {
        self.functions.values().map(|f| f.loc as u64).sum()
    }

    /// Lines of code of the named functions (unknown names contribute 0).
    pub fn loc_of<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> u64 {
        names
            .into_iter()
            .filter_map(|n| self.functions.get(n))
            .map(|f| f.loc as u64)
            .sum()
    }

    /// All functions belonging to `group`.
    pub fn by_group(&self, group: FeatureGroup) -> Vec<&DriverFunction> {
        self.functions
            .values()
            .filter(|f| f.group == group)
            .collect()
    }

    /// Lines of code per feature group.
    pub fn loc_by_group(&self) -> BTreeMap<FeatureGroup, u64> {
        let mut out = BTreeMap::new();
        for f in self.functions.values() {
            *out.entry(f.group).or_insert(0u64) += f.loc as u64;
        }
        out
    }

    /// The full Tegra-class audio driver stack modelled by this repository.
    pub fn tegra_audio_stack() -> Self {
        let mut c = DriverCatalog::new();
        // Core init: probe/remove, clocks, regmap, of-match.
        for (name, loc) in [
            ("tegra210_i2s_probe", 120),
            ("tegra210_i2s_remove", 25),
            ("tegra210_i2s_of_match", 10),
            ("tegra210_i2s_init_regmap", 60),
            ("tegra210_i2s_clk_get", 45),
            ("tegra210_i2s_clk_enable", 30),
            ("tegra210_i2s_clk_disable", 20),
            ("tegra210_i2s_reset_control", 35),
            ("tegra_isomgr_register", 55),
        ] {
            c.add(name, loc, FeatureGroup::CoreInit);
        }
        // I2S capture path.
        for (name, loc) in [
            ("tegra210_i2s_startup_capture", 40),
            ("tegra210_i2s_hw_params", 180),
            ("tegra210_i2s_set_fmt", 90),
            ("tegra210_i2s_set_tdm_slot", 70),
            ("tegra210_i2s_set_clock_rate", 85),
            ("tegra210_i2s_set_timing", 60),
            ("tegra210_i2s_rx_fifo_enable", 30),
            ("tegra210_i2s_rx_fifo_disable", 20),
            ("tegra210_i2s_trigger_start_capture", 55),
            ("tegra210_i2s_trigger_stop_capture", 40),
            ("tegra210_i2s_rx_irq_handler", 75),
            ("tegra210_i2s_read_fifo", 65),
            ("tegra210_i2s_capture_pointer", 25),
            ("tegra210_i2s_sample_convert", 50),
        ] {
            c.add(name, loc, FeatureGroup::I2sCapture);
        }
        // I2S playback path (unused by the microphone use case).
        for (name, loc) in [
            ("tegra210_i2s_startup_playback", 40),
            ("tegra210_i2s_tx_fifo_enable", 30),
            ("tegra210_i2s_tx_fifo_disable", 20),
            ("tegra210_i2s_trigger_start_playback", 55),
            ("tegra210_i2s_trigger_stop_playback", 40),
            ("tegra210_i2s_tx_irq_handler", 70),
            ("tegra210_i2s_write_fifo", 60),
            ("tegra210_i2s_playback_pointer", 25),
            ("tegra210_i2s_loopback_set", 45),
        ] {
            c.add(name, loc, FeatureGroup::I2sPlayback);
        }
        // DMIC controller (alternative capture device, unused for I2S).
        for (name, loc) in [
            ("tegra210_dmic_probe", 100),
            ("tegra210_dmic_hw_params", 140),
            ("tegra210_dmic_enable", 40),
            ("tegra210_dmic_disable", 30),
            ("tegra210_dmic_set_osr", 55),
        ] {
            c.add(name, loc, FeatureGroup::DmicCapture);
        }
        // AHUB / XBAR routing.
        for (name, loc) in [
            ("tegra210_ahub_probe", 150),
            ("tegra210_ahub_route_setup", 120),
            ("tegra210_xbar_connect", 80),
            ("tegra210_xbar_disconnect", 45),
            ("tegra210_ahub_get_value_enum", 60),
            ("tegra210_ahub_put_value_enum", 70),
        ] {
            c.add(name, loc, FeatureGroup::AhubRouting);
        }
        // ADMAIF / ADMA DMA glue.
        for (name, loc) in [
            ("tegra210_admaif_probe", 130),
            ("tegra210_admaif_hw_params", 110),
            ("tegra210_admaif_trigger", 65),
            ("tegra210_admaif_pcm_pointer", 30),
            ("tegra_adma_alloc_chan", 70),
            ("tegra_adma_release_chan", 35),
            ("tegra_adma_prep_cyclic", 140),
            ("tegra_adma_issue_pending", 30),
            ("tegra_adma_terminate_all", 45),
            ("tegra_adma_irq_handler", 85),
            ("tegra_adma_period_complete", 40),
        ] {
            c.add(name, loc, FeatureGroup::Dma);
        }
        // Mixer controls.
        for (name, loc) in [
            ("tegra210_i2s_get_control", 45),
            ("tegra210_i2s_put_control", 60),
            ("tegra_audio_graph_card_controls", 110),
            ("tegra210_i2s_mono_to_stereo_get", 25),
            ("tegra210_i2s_mono_to_stereo_put", 30),
            ("tegra210_i2s_stereo_to_mono_get", 25),
            ("tegra210_i2s_stereo_to_mono_put", 30),
        ] {
            c.add(name, loc, FeatureGroup::MixerControls);
        }
        // Power management.
        for (name, loc) in [
            ("tegra210_i2s_runtime_suspend", 45),
            ("tegra210_i2s_runtime_resume", 55),
            ("tegra210_i2s_system_suspend", 35),
            ("tegra210_i2s_system_resume", 40),
            ("tegra_audio_powergate", 60),
            ("tegra_audio_unpowergate", 60),
        ] {
            c.add(name, loc, FeatureGroup::PowerManagement);
        }
        // Diagnostics.
        for (name, loc) in [
            ("tegra210_i2s_debugfs_init", 50),
            ("tegra210_i2s_debugfs_show_regs", 90),
            ("tegra210_i2s_trace_point", 15),
            ("tegra_audio_stats_show", 70),
        ] {
            c.add(name, loc, FeatureGroup::Diagnostics);
        }
        // Machine driver.
        for (name, loc) in [
            ("tegra_machine_probe", 160),
            ("tegra_machine_dai_init", 95),
            ("tegra_machine_parse_card", 120),
            ("tegra_machine_hw_params_fixup", 75),
        ] {
            c.add(name, loc, FeatureGroup::MachineDriver);
        }
        // USB audio class (irrelevant to I2S but part of the board's audio
        // code base).
        for (name, loc) in [
            ("snd_usb_audio_probe", 220),
            ("snd_usb_parse_descriptors", 350),
            ("snd_usb_endpoint_start", 130),
            ("snd_usb_pcm_ops", 180),
            ("snd_usb_mixer_build", 260),
        ] {
            c.add(name, loc, FeatureGroup::UsbAudio);
        }
        // HDA codec support (also irrelevant to I2S capture).
        for (name, loc) in [
            ("hda_tegra_probe", 190),
            ("hda_codec_build_controls", 240),
            ("hda_codec_runtime_pm", 90),
            ("hdmi_codec_hw_params", 150),
        ] {
            c.add(name, loc, FeatureGroup::HdaAudio);
        }
        c
    }

    /// The Tegra-class camera driver stack (VI/CSI capture, ISP, media
    /// controller, sensor control). Function names and rough sizes mirror
    /// the upstream `drivers/staging/media/tegra-video` and `imx219`
    /// drivers; like the audio catalog, sizes are order-of-magnitude
    /// estimates.
    pub fn tegra_camera_stack() -> Self {
        let mut c = DriverCatalog::new();
        // Core init: probe, clocks, regmap, resets.
        for (name, loc) in [
            ("tegra_vi_probe", 140),
            ("tegra_vi_remove", 30),
            ("tegra_vi_init_regmap", 55),
            ("tegra_vi_clk_get", 40),
            ("tegra_vi_clk_enable", 30),
            ("tegra_vi_clk_disable", 20),
            ("tegra_vi_reset_control", 35),
        ] {
            c.add(name, loc, FeatureGroup::CoreInit);
        }
        // Frame-capture path (VI channel + CSI receiver + sensor control).
        for (name, loc) in [
            ("tegra_channel_capture_setup", 90),
            ("tegra_channel_set_format", 110),
            ("tegra_channel_start_streaming", 75),
            ("tegra_channel_stop_streaming", 50),
            ("tegra_channel_capture_frame", 130),
            ("tegra_channel_frame_irq_handler", 80),
            ("tegra_channel_read_surface", 70),
            ("tegra_csi_start_streaming", 65),
            ("tegra_csi_stop_streaming", 45),
            ("tegra_csi_error_recover", 85),
            ("imx219_set_mode", 95),
            ("imx219_start_streaming", 55),
            ("imx219_stop_streaming", 35),
            ("tegra_vi_syncpt_wait", 60),
            ("tegra_vi_buffer_queue", 45),
            ("tegra_vi_buffer_done", 40),
        ] {
            c.add(name, loc, FeatureGroup::CameraCapture);
        }
        // ISP processing (stays in the normal world).
        for (name, loc) in [
            ("tegra_isp_probe", 160),
            ("tegra_isp_demosaic", 220),
            ("tegra_isp_scale", 180),
            ("tegra_isp_tonemap", 150),
            ("tegra_isp_awb_stats", 130),
            ("tegra_isp_program_pipeline", 200),
        ] {
            c.add(name, loc, FeatureGroup::CameraIsp);
        }
        // V4L2 media-controller plumbing.
        for (name, loc) in [
            ("tegra_v4l2_device_register", 120),
            ("tegra_media_link_setup", 90),
            ("tegra_graph_parse", 140),
            ("tegra_subdev_notifier_bound", 70),
            ("v4l2_ioctl_dispatch", 260),
        ] {
            c.add(name, loc, FeatureGroup::CameraMediaController);
        }
        // Power management and diagnostics shared with the board support.
        for (name, loc) in [
            ("tegra_vi_runtime_suspend", 40),
            ("tegra_vi_runtime_resume", 50),
            ("tegra_camera_powergate", 55),
        ] {
            c.add(name, loc, FeatureGroup::PowerManagement);
        }
        for (name, loc) in [("tegra_vi_debugfs_init", 45), ("tegra_vi_stats_show", 65)] {
            c.add(name, loc, FeatureGroup::Diagnostics);
        }
        c
    }

    /// Merges another catalog into this one (same-name entries are
    /// replaced). Used to build the full audio+camera code base for
    /// cross-modality TCB reports.
    pub fn merge_from(&mut self, other: &DriverCatalog) {
        for f in other.iter() {
            self.add(&f.name, f.loc, f.group);
        }
    }

    /// The combined audio + camera driver code base of the board.
    pub fn tegra_av_stack() -> Self {
        let mut c = DriverCatalog::tegra_audio_stack();
        c.merge_from(&DriverCatalog::tegra_camera_stack());
        c
    }
}

impl<'a> IntoIterator for &'a DriverCatalog {
    type Item = &'a DriverFunction;
    type IntoIter = std::collections::btree_map::Values<'a, String, DriverFunction>;
    fn into_iter(self) -> Self::IntoIter {
        self.functions.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tegra_catalog_is_substantial() {
        let c = DriverCatalog::tegra_audio_stack();
        assert!(c.len() >= 70, "expected a large catalog, got {}", c.len());
        assert!(c.total_loc() > 5_000, "total loc = {}", c.total_loc());
        assert!(!c.is_empty());
    }

    #[test]
    fn capture_path_is_a_small_fraction_of_the_whole() {
        let c = DriverCatalog::tegra_audio_stack();
        let by_group = c.loc_by_group();
        let capture = by_group[&FeatureGroup::I2sCapture]
            + by_group[&FeatureGroup::CoreInit]
            + by_group[&FeatureGroup::Dma];
        // The claim behind plan item 2: the task-relevant portion is well
        // under half of the code base.
        assert!(
            (capture as f64) < 0.4 * c.total_loc() as f64,
            "capture-related loc {capture} vs total {}",
            c.total_loc()
        );
    }

    #[test]
    fn lookup_and_loc_of_work() {
        let c = DriverCatalog::tegra_audio_stack();
        let f = c.function("tegra210_i2s_hw_params").unwrap();
        assert_eq!(f.group, FeatureGroup::I2sCapture);
        assert_eq!(f.loc, 180);
        assert!(c.function("not_a_function").is_none());
        let loc = c.loc_of(["tegra210_i2s_hw_params", "tegra210_i2s_set_fmt", "ghost_fn"]);
        assert_eq!(loc, 180 + 90);
    }

    #[test]
    fn groups_cover_all_functions() {
        let c = DriverCatalog::tegra_audio_stack();
        let grouped: usize = FeatureGroup::ALL.iter().map(|&g| c.by_group(g).len()).sum();
        assert_eq!(grouped, c.len());
        let loc_sum: u64 = c.loc_by_group().values().sum();
        assert_eq!(loc_sum, c.total_loc());
    }

    #[test]
    fn camera_catalog_covers_the_camera_path() {
        let c = DriverCatalog::tegra_camera_stack();
        assert!(c.len() >= 35, "camera catalog too small: {}", c.len());
        assert!(c.total_loc() > 2_500, "total loc = {}", c.total_loc());
        let by_group = c.loc_by_group();
        // The capture path is a minority of the camera code base: ISP and
        // the media controller dominate, and neither needs to be ported.
        let capture = by_group[&FeatureGroup::CameraCapture] + by_group[&FeatureGroup::CoreInit];
        assert!(
            (capture as f64) < 0.6 * c.total_loc() as f64,
            "capture-related loc {capture} vs total {}",
            c.total_loc()
        );
    }

    #[test]
    fn av_stack_merges_both_modalities() {
        let audio = DriverCatalog::tegra_audio_stack();
        let camera = DriverCatalog::tegra_camera_stack();
        let av = DriverCatalog::tegra_av_stack();
        assert_eq!(av.len(), audio.len() + camera.len());
        assert_eq!(av.total_loc(), audio.total_loc() + camera.total_loc());
        assert!(av.function("tegra210_i2s_hw_params").is_some());
        assert!(av.function("tegra_channel_capture_frame").is_some());
    }

    #[test]
    fn add_replaces_existing_entries() {
        let mut c = DriverCatalog::new();
        c.add("f", 10, FeatureGroup::CoreInit);
        c.add("f", 20, FeatureGroup::Dma);
        assert_eq!(c.len(), 1);
        assert_eq!(c.function("f").unwrap().loc, 20);
        assert_eq!(c.function("f").unwrap().group, FeatureGroup::Dma);
    }
}
