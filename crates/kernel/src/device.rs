//! Device registry and driver binding.
//!
//! A minimal analogue of the Linux device model: devices are registered
//! with a class and a name, drivers bind to device classes, and the
//! registry answers lookups. The paper's tracing methodology needs this
//! because the Jetson platform "provides a large set of I/O devices and
//! driver software, sometimes for the same purpose" (§IV.2) — the registry
//! is where that surplus is visible.

use std::collections::BTreeMap;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::{KernelError, Result};

/// Coarse class of a device, mirroring Linux subsystems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DeviceClass {
    /// Audio capture/playback devices (I2S, DMIC, HDA...).
    Sound,
    /// Camera / video capture devices.
    Video,
    /// Network interfaces.
    Network,
    /// DMA engines.
    Dma,
    /// Everything else.
    Misc,
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeviceClass::Sound => "sound",
            DeviceClass::Video => "video",
            DeviceClass::Network => "network",
            DeviceClass::Dma => "dma",
            DeviceClass::Misc => "misc",
        };
        write!(f, "{s}")
    }
}

/// A registered device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceDescriptor {
    /// Unique device name (e.g. `tegra210-i2s.1`).
    pub name: String,
    /// Device class.
    pub class: DeviceClass,
    /// Name of the driver bound to the device, if any.
    pub driver: Option<String>,
    /// IRQ line assigned to the device, if any.
    pub irq_line: Option<u32>,
}

/// The registry of devices known to the kernel.
#[derive(Debug, Default)]
pub struct DeviceRegistry {
    devices: RwLock<BTreeMap<String, DeviceDescriptor>>,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// Creates a registry pre-populated with the audio-relevant devices of
    /// a Jetson-class board (I2S controllers, DMIC, ADMA, plus a few
    /// unrelated devices that the TCB analysis should learn to ignore).
    pub fn jetson_audio_board() -> Self {
        let registry = DeviceRegistry::new();
        let devices = [
            ("tegra210-i2s.0", DeviceClass::Sound, Some(40)),
            ("tegra210-i2s.1", DeviceClass::Sound, Some(41)),
            ("tegra210-dmic.0", DeviceClass::Sound, Some(42)),
            ("tegra210-admaif", DeviceClass::Sound, None),
            ("tegra-adma", DeviceClass::Dma, Some(48)),
            ("tegra-ahub", DeviceClass::Sound, None),
            ("imx219-camera.0", DeviceClass::Video, Some(60)),
            ("eqos-ethernet", DeviceClass::Network, Some(70)),
            ("tegra-xudc", DeviceClass::Misc, Some(80)),
        ];
        for (name, class, irq) in devices {
            registry
                .register(DeviceDescriptor {
                    name: name.to_owned(),
                    class,
                    driver: None,
                    irq_line: irq,
                })
                .expect("static device table has unique names");
        }
        registry
    }

    /// Registers a device.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidState`] if a device with the same name
    /// already exists.
    pub fn register(&self, descriptor: DeviceDescriptor) -> Result<()> {
        let mut devices = self.devices.write();
        if devices.contains_key(&descriptor.name) {
            return Err(KernelError::InvalidState {
                operation: format!("register device '{}'", descriptor.name),
                state: "already registered".to_owned(),
            });
        }
        devices.insert(descriptor.name.clone(), descriptor);
        Ok(())
    }

    /// Removes a device, returning its descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchDevice`] if the device does not exist.
    pub fn unregister(&self, name: &str) -> Result<DeviceDescriptor> {
        self.devices
            .write()
            .remove(name)
            .ok_or(KernelError::NoSuchDevice {
                name: name.to_owned(),
            })
    }

    /// Looks up a device by name.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchDevice`] if the device does not exist.
    pub fn find(&self, name: &str) -> Result<DeviceDescriptor> {
        self.devices
            .read()
            .get(name)
            .cloned()
            .ok_or(KernelError::NoSuchDevice {
                name: name.to_owned(),
            })
    }

    /// Binds `driver` to the named device.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchDevice`] if the device does not exist.
    pub fn bind_driver(&self, name: &str, driver: &str) -> Result<()> {
        let mut devices = self.devices.write();
        match devices.get_mut(name) {
            Some(d) => {
                d.driver = Some(driver.to_owned());
                Ok(())
            }
            None => Err(KernelError::NoSuchDevice {
                name: name.to_owned(),
            }),
        }
    }

    /// All devices of a class.
    pub fn by_class(&self, class: DeviceClass) -> Vec<DeviceDescriptor> {
        self.devices
            .read()
            .values()
            .filter(|d| d.class == class)
            .cloned()
            .collect()
    }

    /// Total number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jetson_board_has_multiple_sound_devices() {
        let reg = DeviceRegistry::jetson_audio_board();
        let sound = reg.by_class(DeviceClass::Sound);
        assert!(
            sound.len() >= 4,
            "expected several sound devices, got {}",
            sound.len()
        );
        assert!(reg.len() > sound.len());
    }

    #[test]
    fn register_find_unregister_cycle() {
        let reg = DeviceRegistry::new();
        assert!(reg.is_empty());
        reg.register(DeviceDescriptor {
            name: "mic0".to_owned(),
            class: DeviceClass::Sound,
            driver: None,
            irq_line: Some(12),
        })
        .unwrap();
        assert_eq!(reg.find("mic0").unwrap().irq_line, Some(12));
        assert!(matches!(
            reg.find("nope"),
            Err(KernelError::NoSuchDevice { .. })
        ));
        let removed = reg.unregister("mic0").unwrap();
        assert_eq!(removed.name, "mic0");
        assert!(reg.unregister("mic0").is_err());
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let reg = DeviceRegistry::new();
        let d = DeviceDescriptor {
            name: "dup".to_owned(),
            class: DeviceClass::Misc,
            driver: None,
            irq_line: None,
        };
        reg.register(d.clone()).unwrap();
        assert!(reg.register(d).is_err());
    }

    #[test]
    fn bind_driver_updates_descriptor() {
        let reg = DeviceRegistry::jetson_audio_board();
        reg.bind_driver("tegra210-i2s.1", "tegra210-i2s-driver")
            .unwrap();
        assert_eq!(
            reg.find("tegra210-i2s.1").unwrap().driver.as_deref(),
            Some("tegra210-i2s-driver")
        );
        assert!(reg.bind_driver("ghost", "x").is_err());
    }
}
