//! The baseline (untrusted, in-kernel) I2S capture driver.
//!
//! This is the "regular setup" of the paper's §II: the driver lives in the
//! Linux kernel, its I/O buffers are ordinary (non-secure) DRAM, and the
//! captured audio is visible to the whole OS. It is both the performance
//! baseline and the code base whose execution traces drive the TCB
//! minimization.
//!
//! Every driver entry point records the catalog functions it executes into
//! the shared [`FunctionTracer`], so a harness that wraps an operation in
//! `tracer.begin_task("record")`/`end_task()` obtains exactly the trace the
//! paper's plan item 2 describes.

use perisec_devices::audio::AudioBuffer;
use perisec_devices::dma::DmaChannel;
use perisec_devices::mic::Microphone;
use perisec_tz::platform::Platform;
use perisec_tz::power::Component;
use perisec_tz::time::SimDuration;
use perisec_tz::world::World;

use crate::pcm::{PcmHwParams, PcmState, PcmSubstream};
use crate::trace::FunctionTracer;
use crate::{KernelError, Result};

/// Catalog functions executed by `probe`.
pub const PROBE_FUNCTIONS: &[&str] = &[
    "tegra210_i2s_probe",
    "tegra210_i2s_init_regmap",
    "tegra210_i2s_clk_get",
    "tegra210_i2s_reset_control",
    "tegra_isomgr_register",
    "tegra210_ahub_probe",
    "tegra210_admaif_probe",
    "tegra_adma_alloc_chan",
    "tegra_machine_probe",
    "tegra_machine_dai_init",
    "tegra_machine_parse_card",
    "tegra210_i2s_debugfs_init",
];

/// Catalog functions executed when capture hardware parameters are set.
pub const CONFIGURE_FUNCTIONS: &[&str] = &[
    "tegra210_i2s_startup_capture",
    "tegra210_i2s_hw_params",
    "tegra210_i2s_set_fmt",
    "tegra210_i2s_set_clock_rate",
    "tegra210_i2s_set_timing",
    "tegra210_ahub_route_setup",
    "tegra210_xbar_connect",
    "tegra210_admaif_hw_params",
    "tegra_adma_prep_cyclic",
    "tegra_machine_hw_params_fixup",
];

/// Catalog functions executed when capture starts.
pub const START_FUNCTIONS: &[&str] = &[
    "tegra210_i2s_clk_enable",
    "tegra210_i2s_rx_fifo_enable",
    "tegra210_i2s_trigger_start_capture",
    "tegra210_admaif_trigger",
    "tegra_adma_issue_pending",
];

/// Catalog functions executed on every capture period interrupt.
pub const PERIOD_FUNCTIONS: &[&str] = &[
    "tegra_adma_irq_handler",
    "tegra_adma_period_complete",
    "tegra210_admaif_pcm_pointer",
    "tegra210_i2s_capture_pointer",
    "tegra210_i2s_sample_convert",
];

/// Catalog functions executed when capture stops.
pub const STOP_FUNCTIONS: &[&str] = &[
    "tegra210_i2s_trigger_stop_capture",
    "tegra210_i2s_rx_fifo_disable",
    "tegra_adma_terminate_all",
    "tegra210_i2s_clk_disable",
];

/// Catalog functions executed on driver removal.
pub const REMOVE_FUNCTIONS: &[&str] = &[
    "tegra210_i2s_remove",
    "tegra_adma_release_chan",
    "tegra210_i2s_runtime_suspend",
];

/// Catalog functions executed by the (unused-for-capture) playback task.
pub const PLAYBACK_FUNCTIONS: &[&str] = &[
    "tegra210_i2s_startup_playback",
    "tegra210_i2s_tx_fifo_enable",
    "tegra210_i2s_trigger_start_playback",
    "tegra210_i2s_write_fifo",
    "tegra210_i2s_tx_irq_handler",
    "tegra210_i2s_playback_pointer",
    "tegra210_i2s_trigger_stop_playback",
    "tegra210_i2s_tx_fifo_disable",
];

/// Catalog functions executed by mixer-control accesses.
pub const MIXER_FUNCTIONS: &[&str] = &[
    "tegra210_i2s_get_control",
    "tegra210_i2s_put_control",
    "tegra_audio_graph_card_controls",
    "tegra210_i2s_mono_to_stereo_get",
    "tegra210_i2s_mono_to_stereo_put",
];

/// Catalog functions executed by a runtime power-management cycle.
pub const PM_FUNCTIONS: &[&str] = &[
    "tegra210_i2s_runtime_suspend",
    "tegra210_i2s_runtime_resume",
    "tegra_audio_powergate",
    "tegra_audio_unpowergate",
];

/// Fixed CPU cost of the driver's per-period bookkeeping (pointer updates,
/// ALSA core dispatch), excluding data copies which are charged per byte.
const PER_PERIOD_DRIVER_OVERHEAD: SimDuration = SimDuration::from_micros(4);

/// Result of a capture run.
#[derive(Debug, Clone)]
pub struct CaptureOutcome {
    /// The captured (and user-space-copied) audio.
    pub audio: AudioBuffer,
    /// Time the samples occupied on the I2S wire (real-time audio duration).
    pub wire_time: SimDuration,
    /// CPU time charged in the normal world for moving and bookkeeping the
    /// data (what the throughput experiments compare).
    pub cpu_time: SimDuration,
    /// Number of DMA periods processed.
    pub periods: usize,
    /// PCM overruns observed during the run.
    pub overruns: u64,
}

impl CaptureOutcome {
    /// Effective processing throughput in bytes of audio per second of CPU
    /// time. Returns `f64::INFINITY` when no CPU time was charged.
    pub fn cpu_throughput_bytes_per_sec(&self) -> f64 {
        let secs = self.cpu_time.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.audio.byte_len() as f64 / secs
        }
    }
}

/// The baseline in-kernel I2S capture driver.
pub struct BaselineI2sDriver {
    platform: Platform,
    mic: Microphone,
    dma: DmaChannel,
    pcm: PcmSubstream,
    tracer: FunctionTracer,
    probed: bool,
}

impl std::fmt::Debug for BaselineI2sDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineI2sDriver")
            .field("probed", &self.probed)
            .field("pcm_state", &self.pcm.state())
            .finish()
    }
}

impl BaselineI2sDriver {
    /// Creates the driver for `mic` on `platform`, tracing into `tracer`.
    pub fn new(platform: Platform, mic: Microphone, tracer: FunctionTracer) -> Self {
        BaselineI2sDriver {
            platform,
            mic,
            dma: DmaChannel::default(),
            pcm: PcmSubstream::open(),
            tracer,
            probed: false,
        }
    }

    fn trace_all(&self, functions: &[&str]) {
        let now = self.platform.clock().now();
        for f in functions {
            self.tracer.record(f, now);
        }
    }

    /// The tracer used by this driver.
    pub fn tracer(&self) -> &FunctionTracer {
        &self.tracer
    }

    /// The PCM substream state (for tests and monitoring).
    pub fn pcm_state(&self) -> PcmState {
        self.pcm.state()
    }

    /// Access to the microphone (e.g. to swap the signal source between
    /// utterances).
    pub fn mic_mut(&mut self) -> &mut Microphone {
        &mut self.mic
    }

    /// Probes the driver: binds the device, powers the microphone.
    pub fn probe(&mut self) -> Result<()> {
        self.trace_all(PROBE_FUNCTIONS);
        self.platform
            .charge_cpu(World::Normal, SimDuration::from_micros(180));
        self.mic.power_on();
        self.probed = true;
        Ok(())
    }

    /// Installs capture hardware parameters.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidState`] if the driver has not been
    /// probed, or propagates PCM parameter validation failures.
    pub fn configure(&mut self, params: PcmHwParams) -> Result<()> {
        if !self.probed {
            return Err(KernelError::InvalidState {
                operation: "configure".to_owned(),
                state: "not probed".to_owned(),
            });
        }
        self.trace_all(CONFIGURE_FUNCTIONS);
        self.platform
            .charge_cpu(World::Normal, SimDuration::from_micros(60));
        self.pcm.set_hw_params(params)?;
        self.pcm.prepare()?;
        Ok(())
    }

    /// Starts the capture stream.
    ///
    /// # Errors
    ///
    /// Propagates PCM/microphone state errors.
    pub fn start(&mut self) -> Result<()> {
        self.trace_all(START_FUNCTIONS);
        self.platform
            .charge_cpu(World::Normal, SimDuration::from_micros(25));
        self.mic.start_capture()?;
        self.pcm.start()?;
        Ok(())
    }

    /// Captures `periods` DMA periods and copies them to "user space".
    ///
    /// The returned [`CaptureOutcome`] separates wire time (real-time audio)
    /// from the CPU time the kernel spent moving the data; experiments use
    /// the latter for throughput comparisons against the secure driver.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidState`] if the stream is not running,
    /// and propagates device/DMA failures.
    pub fn capture_periods(&mut self, periods: usize) -> Result<CaptureOutcome> {
        if self.pcm.state() != PcmState::Running {
            return Err(KernelError::InvalidState {
                operation: "capture".to_owned(),
                state: self.pcm.state().to_string(),
            });
        }
        let params = self.pcm.params().expect("running stream has params");
        let cpu_start_switches = self.platform.clock().now();
        let mut wire_time = SimDuration::ZERO;
        let mut cpu_time = SimDuration::ZERO;
        let mut audio = AudioBuffer::silence(params.format, 0);

        let charge_cpu = |platform: &Platform, d: SimDuration, cpu_time: &mut SimDuration| {
            platform.charge_cpu(World::Normal, d);
            *cpu_time += d;
        };

        for _ in 0..periods {
            // 1. The microphone delivers one period over the I2S wire.
            let (chunk, wire) = self.mic.capture(params.period_frames)?;
            wire_time += wire;
            self.platform
                .record_device_busy(Component::Microphone, wire);
            self.platform
                .record_device_busy(Component::I2sController, wire);

            // 2. The ADMA engine moves the samples into the PCM ring buffer.
            let mut period_bytes = vec![0u8; chunk.byte_len()];
            let transfer = self.dma.transfer(chunk.samples(), &mut period_bytes)?;
            self.platform
                .record_device_busy(Component::DmaEngine, transfer.bus_time);

            // 3. Period-complete interrupt and driver bookkeeping.
            self.trace_all(PERIOD_FUNCTIONS);
            self.platform.stats().record_irq();
            charge_cpu(
                &self.platform,
                self.platform.cost().irq_entry,
                &mut cpu_time,
            );
            charge_cpu(&self.platform, PER_PERIOD_DRIVER_OVERHEAD, &mut cpu_time);
            self.pcm.dma_deliver(chunk.samples())?;

            // 4. User space reads the period (copy_to_user): modelled as
            //    compute proportional to the copied bytes.
            if let Some(period) = self.pcm.read_period() {
                let copy_flops = (period.byte_len() as u64) / 4;
                let d = self.platform.charge_compute(World::Normal, copy_flops);
                cpu_time += d;
                audio.append(&period);
            }
        }
        // Any residue (possible after an overrun recovery) is drained too.
        let rest = self.pcm.read_all();
        if !rest.is_empty() {
            audio.append(&rest);
        }
        let _ = cpu_start_switches;
        Ok(CaptureOutcome {
            audio,
            wire_time,
            cpu_time,
            periods,
            overruns: self.pcm.overruns(),
        })
    }

    /// Captures at least `duration` worth of audio (rounded up to whole
    /// periods).
    ///
    /// # Errors
    ///
    /// Same as [`BaselineI2sDriver::capture_periods`].
    pub fn capture_duration(&mut self, duration: SimDuration) -> Result<CaptureOutcome> {
        let params = self.pcm.params().ok_or(KernelError::InvalidState {
            operation: "capture".to_owned(),
            state: "no hw params".to_owned(),
        })?;
        let frames = params.format.frames_in(duration);
        let periods = frames.div_ceil(params.period_frames);
        self.capture_periods(periods.max(1))
    }

    /// Stops the capture stream.
    pub fn stop(&mut self) {
        self.trace_all(STOP_FUNCTIONS);
        self.platform
            .charge_cpu(World::Normal, SimDuration::from_micros(20));
        self.mic.stop_capture();
        self.pcm.stop();
    }

    /// Removes the driver (stops everything, powers the mic down).
    pub fn remove(&mut self) {
        self.stop();
        self.trace_all(REMOVE_FUNCTIONS);
        self.mic.power_off();
        self.probed = false;
    }

    /// Runs a playback "task" purely for trace generation: the microphone
    /// use case never needs these functions, which is exactly what the TCB
    /// analysis should discover.
    pub fn run_playback_task(&mut self) {
        self.trace_all(PLAYBACK_FUNCTIONS);
        self.platform
            .charge_cpu(World::Normal, SimDuration::from_micros(40));
    }

    /// Runs a mixer-control access task (trace generation).
    pub fn run_mixer_task(&mut self) {
        self.trace_all(MIXER_FUNCTIONS);
        self.platform
            .charge_cpu(World::Normal, SimDuration::from_micros(10));
    }

    /// Runs a runtime-PM suspend/resume cycle (trace generation).
    pub fn run_pm_cycle(&mut self) {
        self.trace_all(PM_FUNCTIONS);
        self.platform
            .charge_cpu(World::Normal, SimDuration::from_micros(30));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DriverCatalog;
    use perisec_devices::signal::SineSource;

    fn driver() -> BaselineI2sDriver {
        let platform = Platform::jetson_agx_xavier();
        let mic =
            Microphone::speech_mic("mic0", Box::new(SineSource::new(440.0, 16_000, 0.6))).unwrap();
        let tracer = FunctionTracer::new();
        tracer.enable();
        BaselineI2sDriver::new(platform, mic, tracer)
    }

    #[test]
    fn full_capture_cycle_produces_audio() {
        let mut d = driver();
        d.probe().unwrap();
        d.configure(PcmHwParams::voice_default()).unwrap();
        d.start().unwrap();
        let outcome = d.capture_periods(10).unwrap();
        d.stop();
        assert_eq!(outcome.periods, 10);
        assert_eq!(outcome.audio.frames(), 1600);
        assert_eq!(outcome.wire_time, SimDuration::from_millis(100));
        assert!(outcome.cpu_time > SimDuration::ZERO);
        assert!(outcome.cpu_time < outcome.wire_time);
        assert!(outcome.audio.rms() > 0.1);
        assert_eq!(outcome.overruns, 0);
        assert!(outcome.cpu_throughput_bytes_per_sec() > 0.0);
    }

    #[test]
    fn capture_requires_configuration_and_start() {
        let mut d = driver();
        assert!(d.configure(PcmHwParams::voice_default()).is_err());
        d.probe().unwrap();
        d.configure(PcmHwParams::voice_default()).unwrap();
        assert!(d.capture_periods(1).is_err());
        d.start().unwrap();
        assert!(d.capture_periods(1).is_ok());
    }

    #[test]
    fn capture_duration_rounds_up_to_periods() {
        let mut d = driver();
        d.probe().unwrap();
        d.configure(PcmHwParams::voice_default()).unwrap();
        d.start().unwrap();
        let outcome = d.capture_duration(SimDuration::from_millis(25)).unwrap();
        // 25 ms at 10 ms periods -> 3 periods.
        assert_eq!(outcome.periods, 3);
        assert_eq!(outcome.audio.frames(), 480);
    }

    #[test]
    fn record_task_traces_only_capture_functions() {
        let mut d = driver();
        d.probe().unwrap();
        d.tracer().begin_task("record");
        d.configure(PcmHwParams::voice_default()).unwrap();
        d.start().unwrap();
        d.capture_periods(2).unwrap();
        d.stop();
        d.tracer().end_task();
        d.run_playback_task();

        let log = d.tracer().log();
        let record_fns = log.functions_for_task("record");
        assert!(record_fns.contains("tegra210_i2s_hw_params"));
        assert!(record_fns.contains("tegra_adma_irq_handler"));
        assert!(!record_fns.contains("tegra210_i2s_write_fifo"));
        // Playback functions were traced, but outside the record task.
        assert!(log.all_functions().contains("tegra210_i2s_write_fifo"));
    }

    #[test]
    fn every_traced_function_exists_in_the_catalog() {
        let catalog = DriverCatalog::tegra_audio_stack();
        let mut d = driver();
        d.probe().unwrap();
        d.configure(PcmHwParams::voice_default()).unwrap();
        d.start().unwrap();
        d.capture_periods(1).unwrap();
        d.stop();
        d.run_playback_task();
        d.run_mixer_task();
        d.run_pm_cycle();
        d.remove();
        for event in d.tracer().log().events() {
            assert!(
                catalog.function(&event.function).is_some(),
                "traced function '{}' is missing from the catalog",
                event.function
            );
        }
    }

    #[test]
    fn energy_is_attributed_to_audio_components() {
        let mut d = driver();
        d.probe().unwrap();
        d.configure(PcmHwParams::voice_default()).unwrap();
        d.start().unwrap();
        d.capture_periods(20).unwrap();
        let report = d.platform.energy_report();
        assert!(report.component_mj(perisec_tz::power::Component::Microphone) > 0.0);
        assert!(report.component_mj(perisec_tz::power::Component::CpuNormalWorld) > 0.0);
    }
}
