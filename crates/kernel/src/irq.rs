//! Interrupt controller model.
//!
//! The baseline audio path is interrupt-driven: the DMA engine raises an
//! interrupt at every period boundary and the driver's handler advances the
//! PCM ring buffer. The controller charges the platform's IRQ-entry cost
//! and keeps per-line statistics; the secure-driver experiments contrast
//! this with secure (FIQ-routed) interrupts.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use perisec_tz::platform::Platform;
use perisec_tz::world::World;

use crate::{KernelError, Result};

/// Handler invoked when an IRQ line fires.
pub trait IrqHandler: Send + Sync {
    /// Handles one interrupt on `line`.
    fn handle(&self, line: u32);
}

impl<F> IrqHandler for F
where
    F: Fn(u32) + Send + Sync,
{
    fn handle(&self, line: u32) {
        self(line)
    }
}

#[derive(Default)]
struct LineState {
    masked: bool,
    fired: u64,
    handled: u64,
}

/// A simple per-line interrupt controller.
pub struct IrqController {
    platform: Platform,
    handlers: Mutex<HashMap<u32, Arc<dyn IrqHandler>>>,
    lines: Mutex<HashMap<u32, LineState>>,
}

impl std::fmt::Debug for IrqController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IrqController")
            .field("registered_lines", &self.handlers.lock().len())
            .finish()
    }
}

impl IrqController {
    /// Creates a controller that charges IRQ costs against `platform`.
    pub fn new(platform: Platform) -> Self {
        IrqController {
            platform,
            handlers: Mutex::new(HashMap::new()),
            lines: Mutex::new(HashMap::new()),
        }
    }

    /// Registers `handler` for `line`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::IrqError`] if the line already has a handler
    /// (shared IRQs are not modelled).
    pub fn request_irq(&self, line: u32, handler: Arc<dyn IrqHandler>) -> Result<()> {
        let mut handlers = self.handlers.lock();
        if handlers.contains_key(&line) {
            return Err(KernelError::IrqError {
                reason: format!("irq line {line} already has a handler"),
            });
        }
        handlers.insert(line, handler);
        self.lines.lock().entry(line).or_default();
        Ok(())
    }

    /// Removes the handler for `line`, returning whether one existed.
    pub fn free_irq(&self, line: u32) -> bool {
        self.handlers.lock().remove(&line).is_some()
    }

    /// Masks `line`: subsequent raises are counted but not delivered.
    pub fn mask(&self, line: u32) {
        self.lines.lock().entry(line).or_default().masked = true;
    }

    /// Unmasks `line`.
    pub fn unmask(&self, line: u32) {
        self.lines.lock().entry(line).or_default().masked = false;
    }

    /// Raises `line`: charges the IRQ entry cost, then runs the handler if
    /// the line is unmasked and has one. Returns `true` if a handler ran.
    pub fn raise(&self, line: u32) -> bool {
        {
            let mut lines = self.lines.lock();
            let state = lines.entry(line).or_default();
            state.fired += 1;
            if state.masked {
                return false;
            }
        }
        let handler = self.handlers.lock().get(&line).cloned();
        match handler {
            Some(h) => {
                self.platform.stats().record_irq();
                self.platform
                    .charge_cpu(World::Normal, self.platform.cost().irq_entry);
                h.handle(line);
                self.lines.lock().entry(line).or_default().handled += 1;
                true
            }
            None => false,
        }
    }

    /// Number of times `line` has fired (delivered or not).
    pub fn fired_count(&self, line: u32) -> u64 {
        self.lines.lock().get(&line).map(|s| s.fired).unwrap_or(0)
    }

    /// Number of times `line` was actually handled.
    pub fn handled_count(&self, line: u32) -> u64 {
        self.lines.lock().get(&line).map(|s| s.handled).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn controller() -> IrqController {
        IrqController::new(Platform::jetson_agx_xavier())
    }

    #[test]
    fn raise_runs_registered_handler_and_charges_cost() {
        let ctrl = controller();
        let count = Arc::new(AtomicU32::new(0));
        let c = count.clone();
        ctrl.request_irq(
            34,
            Arc::new(move |_line| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        )
        .unwrap();
        let before = ctrl.platform.clock().now();
        assert!(ctrl.raise(34));
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert!(ctrl.platform.clock().now() > before);
        assert_eq!(ctrl.platform.stats().snapshot().irqs, 1);
        assert_eq!(ctrl.handled_count(34), 1);
    }

    #[test]
    fn double_registration_is_rejected() {
        let ctrl = controller();
        ctrl.request_irq(10, Arc::new(|_| {})).unwrap();
        assert!(matches!(
            ctrl.request_irq(10, Arc::new(|_| {})),
            Err(KernelError::IrqError { .. })
        ));
        assert!(ctrl.free_irq(10));
        assert!(ctrl.request_irq(10, Arc::new(|_| {})).is_ok());
    }

    #[test]
    fn masked_lines_count_but_do_not_deliver() {
        let ctrl = controller();
        let count = Arc::new(AtomicU32::new(0));
        let c = count.clone();
        ctrl.request_irq(
            5,
            Arc::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        )
        .unwrap();
        ctrl.mask(5);
        assert!(!ctrl.raise(5));
        assert_eq!(ctrl.fired_count(5), 1);
        assert_eq!(ctrl.handled_count(5), 0);
        ctrl.unmask(5);
        assert!(ctrl.raise(5));
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn raising_an_unregistered_line_is_harmless() {
        let ctrl = controller();
        assert!(!ctrl.raise(99));
        assert_eq!(ctrl.fired_count(99), 1);
        assert_eq!(ctrl.handled_count(99), 0);
    }
}
