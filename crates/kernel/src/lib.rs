//! # perisec-kernel — the untrusted normal-world kernel substrate
//!
//! The paper's baseline is an ordinary Linux stack: "In a regular setup,
//! the device driver software is part of the untrusted OS, thus leaking
//! sensitive data" (§II). This crate models exactly that stack, for two
//! reasons:
//!
//! 1. it is the **baseline** every experiment compares against (unprotected
//!    capture path: driver in the kernel, data visible to the OS and shipped
//!    to the cloud unfiltered), and
//! 2. it is the **source of the TCB-minimization traces**: the paper's plan
//!    item 2 instruments the kernel with a function-call tracer, records
//!    which driver functions run for a given task, and uses the log to
//!    decide which functions must be ported into OP-TEE.
//!
//! Modules:
//!
//! * [`trace`] — the ftrace-like function-call tracer;
//! * [`irq`] — a small interrupt controller with per-line handlers;
//! * [`device`] — device registry and driver binding;
//! * [`pcm`] — an ALSA-like PCM capture substream (hardware parameters,
//!   period ring buffer, state machine);
//! * [`catalog`] — the inventory of the full I2S/audio driver code base
//!   (functions, their size, and the feature group they belong to), used by
//!   the TCB analysis;
//! * [`i2s_driver`] — the baseline in-kernel I2S capture driver built from
//!   the catalog functions, wired to the device models and the platform
//!   cost model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod device;
pub mod i2s_driver;
pub mod irq;
pub mod pcm;
pub mod trace;

pub use catalog::{DriverCatalog, DriverFunction, FeatureGroup};
pub use device::{DeviceClass, DeviceDescriptor, DeviceRegistry};
pub use i2s_driver::{BaselineI2sDriver, CaptureOutcome};
pub use irq::IrqController;
pub use pcm::{PcmHwParams, PcmState, PcmSubstream};
pub use trace::{FunctionTracer, TraceEvent, TraceLog};

use std::error::Error;
use std::fmt;

/// Errors raised by the kernel substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// A device lookup failed.
    NoSuchDevice {
        /// Name that was looked up.
        name: String,
    },
    /// A driver or subsystem was asked to do something in the wrong state.
    InvalidState {
        /// What was attempted.
        operation: String,
        /// The state it was attempted in.
        state: String,
    },
    /// PCM hardware parameters were rejected.
    BadHwParams {
        /// Reason for rejection.
        reason: String,
    },
    /// An IRQ line was used incorrectly (double registration or missing
    /// handler).
    IrqError {
        /// Human-readable reason.
        reason: String,
    },
    /// A device-model operation failed.
    Device(perisec_devices::DeviceError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchDevice { name } => write!(f, "no such device: {name}"),
            KernelError::InvalidState { operation, state } => {
                write!(f, "cannot {operation} in state {state}")
            }
            KernelError::BadHwParams { reason } => write!(f, "invalid hw params: {reason}"),
            KernelError::IrqError { reason } => write!(f, "irq error: {reason}"),
            KernelError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl Error for KernelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KernelError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<perisec_devices::DeviceError> for KernelError {
    fn from(e: perisec_devices::DeviceError) -> Self {
        KernelError::Device(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, KernelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_error_wraps_device_errors_with_source() {
        let inner = perisec_devices::DeviceError::BufferTooSmall {
            required: 8,
            available: 2,
        };
        let e = KernelError::from(inner.clone());
        assert!(e.to_string().contains("device error"));
        assert!(std::error::Error::source(&e).is_some());
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<KernelError>();
    }
}
