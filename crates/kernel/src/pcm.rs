//! ALSA-like PCM capture substream.
//!
//! The baseline driver exposes captured audio to user space through a PCM
//! substream: a ring buffer divided into periods, a hardware pointer
//! advanced by DMA completions, and an application pointer advanced as user
//! space reads. If the application falls a full buffer behind, the stream
//! enters an overrun (XRUN) state — the standard ALSA failure mode.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use perisec_devices::audio::{AudioBuffer, AudioFormat};

use crate::{KernelError, Result};

/// Hardware parameters of a PCM stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcmHwParams {
    /// Sample format.
    pub format: AudioFormat,
    /// Frames per period (one DMA interrupt per period).
    pub period_frames: usize,
    /// Number of periods in the ring buffer.
    pub periods: usize,
}

impl PcmHwParams {
    /// Typical voice-capture parameters: 16 kHz mono, 10 ms periods, 8
    /// periods of buffer.
    pub fn voice_default() -> Self {
        PcmHwParams {
            format: AudioFormat::speech_16khz_mono(),
            period_frames: 160,
            periods: 8,
        }
    }

    /// Total ring-buffer size in frames.
    pub fn buffer_frames(&self) -> usize {
        self.period_frames * self.periods
    }

    /// Period size in bytes.
    pub fn period_bytes(&self) -> usize {
        self.period_frames * self.format.bytes_per_frame()
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadHwParams`] if the period size or count is
    /// zero, or fewer than two periods are requested (the ring cannot
    /// double-buffer otherwise).
    pub fn validate(&self) -> Result<()> {
        if self.period_frames == 0 {
            return Err(KernelError::BadHwParams {
                reason: "period size must be at least one frame".to_owned(),
            });
        }
        if self.periods < 2 {
            return Err(KernelError::BadHwParams {
                reason: format!("at least 2 periods are required, got {}", self.periods),
            });
        }
        if self.format.sample_rate_hz == 0 {
            return Err(KernelError::BadHwParams {
                reason: "sample rate must be non-zero".to_owned(),
            });
        }
        Ok(())
    }
}

impl Default for PcmHwParams {
    fn default() -> Self {
        PcmHwParams::voice_default()
    }
}

/// State machine of a PCM substream (subset of the ALSA states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PcmState {
    /// Opened, no hardware parameters yet.
    Open,
    /// Hardware parameters installed.
    Setup,
    /// Prepared, ready to start.
    Prepared,
    /// Running (DMA active).
    Running,
    /// Overrun: the application fell behind by more than the buffer.
    Xrun,
}

impl fmt::Display for PcmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PcmState::Open => "open",
            PcmState::Setup => "setup",
            PcmState::Prepared => "prepared",
            PcmState::Running => "running",
            PcmState::Xrun => "xrun",
        };
        write!(f, "{s}")
    }
}

/// A capture substream: period ring buffer plus state machine.
#[derive(Debug)]
pub struct PcmSubstream {
    params: Option<PcmHwParams>,
    state: PcmState,
    ring: VecDeque<i16>,
    hw_frames_total: u64,
    appl_frames_total: u64,
    overruns: u64,
}

impl PcmSubstream {
    /// Opens a new substream.
    pub fn open() -> Self {
        PcmSubstream {
            params: None,
            state: PcmState::Open,
            ring: VecDeque::new(),
            hw_frames_total: 0,
            appl_frames_total: 0,
            overruns: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> PcmState {
        self.state
    }

    /// Installed hardware parameters, if any.
    pub fn params(&self) -> Option<PcmHwParams> {
        self.params
    }

    /// Number of overruns since open.
    pub fn overruns(&self) -> u64 {
        self.overruns
    }

    /// Total frames delivered by the hardware since open.
    pub fn hw_frames_total(&self) -> u64 {
        self.hw_frames_total
    }

    /// Total frames consumed by the application since open.
    pub fn appl_frames_total(&self) -> u64 {
        self.appl_frames_total
    }

    /// Installs hardware parameters.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadHwParams`] if the parameters are invalid,
    /// or [`KernelError::InvalidState`] if the stream is running.
    pub fn set_hw_params(&mut self, params: PcmHwParams) -> Result<()> {
        if self.state == PcmState::Running {
            return Err(KernelError::InvalidState {
                operation: "set hw params".to_owned(),
                state: self.state.to_string(),
            });
        }
        params.validate()?;
        self.params = Some(params);
        self.ring.clear();
        self.state = PcmState::Setup;
        Ok(())
    }

    /// Prepares the stream for capture.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidState`] if no parameters are installed.
    pub fn prepare(&mut self) -> Result<()> {
        match self.state {
            PcmState::Setup | PcmState::Prepared | PcmState::Xrun => {
                self.ring.clear();
                self.state = PcmState::Prepared;
                Ok(())
            }
            _ => Err(KernelError::InvalidState {
                operation: "prepare".to_owned(),
                state: self.state.to_string(),
            }),
        }
    }

    /// Starts capture.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidState`] unless the stream is prepared.
    pub fn start(&mut self) -> Result<()> {
        if self.state != PcmState::Prepared {
            return Err(KernelError::InvalidState {
                operation: "start".to_owned(),
                state: self.state.to_string(),
            });
        }
        self.state = PcmState::Running;
        Ok(())
    }

    /// Stops capture (back to the prepared state, keeping buffered data).
    pub fn stop(&mut self) {
        if self.state == PcmState::Running || self.state == PcmState::Xrun {
            self.state = PcmState::Prepared;
        }
    }

    /// Delivers samples from the DMA engine into the ring buffer (advances
    /// the hardware pointer). Samples beyond the buffer capacity trigger an
    /// overrun: the stream enters [`PcmState::Xrun`] and the excess is
    /// dropped.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidState`] if the stream is not running.
    pub fn dma_deliver(&mut self, samples: &[i16]) -> Result<usize> {
        if self.state != PcmState::Running {
            return Err(KernelError::InvalidState {
                operation: "deliver dma data".to_owned(),
                state: self.state.to_string(),
            });
        }
        let params = self.params.expect("running stream always has params");
        let capacity = params.buffer_frames() * params.format.channels as usize;
        let available = capacity.saturating_sub(self.ring.len());
        let accepted = samples.len().min(available);
        self.ring.extend(samples[..accepted].iter().copied());
        self.hw_frames_total += (accepted / params.format.channels as usize) as u64;
        if accepted < samples.len() {
            self.overruns += 1;
            self.state = PcmState::Xrun;
        }
        Ok(accepted)
    }

    /// Frames currently readable by the application.
    pub fn frames_available(&self) -> usize {
        match self.params {
            Some(p) => self.ring.len() / p.format.channels as usize,
            None => 0,
        }
    }

    /// Whether at least one full period is readable.
    pub fn period_elapsed(&self) -> bool {
        match self.params {
            Some(p) => self.frames_available() >= p.period_frames,
            None => false,
        }
    }

    /// Reads up to one period of audio (advances the application pointer).
    /// Returns `None` if less than a full period is available.
    pub fn read_period(&mut self) -> Option<AudioBuffer> {
        let params = self.params?;
        if !self.period_elapsed() {
            return None;
        }
        let samples_per_period = params.period_frames * params.format.channels as usize;
        let samples: Vec<i16> = self.ring.drain(..samples_per_period).collect();
        self.appl_frames_total += params.period_frames as u64;
        Some(AudioBuffer::new(params.format, samples))
    }

    /// Reads everything currently buffered (used when draining at stop).
    pub fn read_all(&mut self) -> AudioBuffer {
        match self.params {
            Some(p) => {
                let samples: Vec<i16> = self.ring.drain(..).collect();
                self.appl_frames_total += (samples.len() / p.format.channels as usize) as u64;
                AudioBuffer::new(p.format, samples)
            }
            None => AudioBuffer::silence(AudioFormat::speech_16khz_mono(), 0),
        }
    }

    /// Recovers from an overrun by re-preparing the stream.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidState`] if the stream is not in XRUN.
    pub fn recover_from_xrun(&mut self) -> Result<()> {
        if self.state != PcmState::Xrun {
            return Err(KernelError::InvalidState {
                operation: "recover from xrun".to_owned(),
                state: self.state.to_string(),
            });
        }
        self.prepare()
    }
}

impl Default for PcmSubstream {
    fn default() -> Self {
        PcmSubstream::open()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn running_stream() -> PcmSubstream {
        let mut s = PcmSubstream::open();
        s.set_hw_params(PcmHwParams::voice_default()).unwrap();
        s.prepare().unwrap();
        s.start().unwrap();
        s
    }

    #[test]
    fn hw_params_validation() {
        let mut p = PcmHwParams::voice_default();
        assert!(p.validate().is_ok());
        assert_eq!(p.buffer_frames(), 1280);
        assert_eq!(p.period_bytes(), 320);
        p.periods = 1;
        assert!(p.validate().is_err());
        p = PcmHwParams::voice_default();
        p.period_frames = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn state_machine_happy_path() {
        let mut s = PcmSubstream::open();
        assert_eq!(s.state(), PcmState::Open);
        assert!(s.prepare().is_err());
        assert!(s.start().is_err());
        s.set_hw_params(PcmHwParams::voice_default()).unwrap();
        assert_eq!(s.state(), PcmState::Setup);
        s.prepare().unwrap();
        assert_eq!(s.state(), PcmState::Prepared);
        s.start().unwrap();
        assert_eq!(s.state(), PcmState::Running);
        s.stop();
        assert_eq!(s.state(), PcmState::Prepared);
    }

    #[test]
    fn dma_delivery_and_period_reads() {
        let mut s = running_stream();
        assert!(s.read_period().is_none());
        let samples: Vec<i16> = (0..160).map(|i| i as i16).collect();
        assert_eq!(s.dma_deliver(&samples).unwrap(), 160);
        assert!(s.period_elapsed());
        let period = s.read_period().unwrap();
        assert_eq!(period.frames(), 160);
        assert_eq!(period.samples()[0], 0);
        assert_eq!(period.samples()[159], 159);
        assert_eq!(s.frames_available(), 0);
        assert_eq!(s.hw_frames_total(), 160);
        assert_eq!(s.appl_frames_total(), 160);
    }

    #[test]
    fn overrun_enters_xrun_and_recovers() {
        let mut s = running_stream();
        let capacity = PcmHwParams::voice_default().buffer_frames();
        // Deliver more than the whole buffer without reading.
        let too_many: Vec<i16> = vec![1; capacity + 10];
        let accepted = s.dma_deliver(&too_many).unwrap();
        assert_eq!(accepted, capacity);
        assert_eq!(s.state(), PcmState::Xrun);
        assert_eq!(s.overruns(), 1);
        assert!(s.dma_deliver(&[1, 2]).is_err());
        s.recover_from_xrun().unwrap();
        assert_eq!(s.state(), PcmState::Prepared);
        assert_eq!(s.frames_available(), 0);
    }

    #[test]
    fn cannot_change_params_while_running() {
        let mut s = running_stream();
        assert!(s.set_hw_params(PcmHwParams::voice_default()).is_err());
    }

    #[test]
    fn read_all_drains_partial_periods() {
        let mut s = running_stream();
        s.dma_deliver(&[5i16; 100]).unwrap();
        assert!(s.read_period().is_none());
        let all = s.read_all();
        assert_eq!(all.frames(), 100);
        assert_eq!(s.frames_available(), 0);
    }
}
