//! Ftrace-like kernel function tracer.
//!
//! Plan item 2 of the paper: *"we have implemented a tracing mechanism
//! within the kernel which permits to identify a minimal set of driver
//! functionality to be ported to OP-TEE. This tracing mechanism involves
//! logging of driver function calls when a particular task, e.g., recording
//! a sound, is being executed."*
//!
//! [`FunctionTracer`] is that mechanism. Driver code records every function
//! entry; a *task label* (set around a high-level operation such as
//! "record") annotates which task the call belongs to. The resulting
//! [`TraceLog`] is consumed by `perisec-tcb` to compute the minimal
//! per-task function set.

use std::collections::BTreeSet;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use perisec_telemetry::Symbol;
use perisec_tz::time::SimInstant;

/// One function-entry event in the trace.
///
/// Names are interned [`Symbol`]s from the workspace-wide table shared
/// with the telemetry plane's span names: recording an event copies 8
/// bytes per name instead of heap-allocating two `String`s, and a
/// function seen a thousand times stores its name once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Name of the driver function that ran.
    pub function: Symbol,
    /// Task label active when the function ran (empty if tracing happened
    /// outside any labelled task).
    pub task: Symbol,
    /// Virtual time of the event.
    pub timestamp: SimInstant,
}

/// An ordered log of trace events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// All events in chronological order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Distinct task labels present in the log.
    pub fn tasks(&self) -> BTreeSet<String> {
        self.events
            .iter()
            .filter(|e| !e.task.is_empty())
            .map(|e| e.task.to_string())
            .collect()
    }

    /// Distinct functions observed for `task`.
    pub fn functions_for_task(&self, task: &str) -> BTreeSet<String> {
        self.events
            .iter()
            .filter(|e| e.task.as_str() == task)
            .map(|e| e.function.to_string())
            .collect()
    }

    /// Distinct functions observed across all tasks.
    pub fn all_functions(&self) -> BTreeSet<String> {
        self.events.iter().map(|e| e.function.to_string()).collect()
    }

    /// Number of calls of `function` (across tasks).
    pub fn call_count(&self, function: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.function.as_str() == function)
            .count()
    }

    fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Merges another log into this one, keeping chronological order.
    pub fn merge(&mut self, other: &TraceLog) {
        self.events.extend_from_slice(&other.events);
        self.events.sort_by_key(|e| e.timestamp);
    }
}

#[derive(Debug, Default)]
struct TracerInner {
    enabled: bool,
    current_task: Symbol,
    log: TraceLog,
}

/// The kernel's function tracer. Cheap to clone (shared state).
///
/// ```
/// use perisec_kernel::trace::FunctionTracer;
/// use perisec_tz::time::SimInstant;
///
/// let tracer = FunctionTracer::new();
/// tracer.enable();
/// tracer.begin_task("record");
/// tracer.record("tegra210_i2s_hw_params", SimInstant::EPOCH);
/// tracer.end_task();
/// let log = tracer.log();
/// assert_eq!(log.functions_for_task("record").len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FunctionTracer {
    inner: Arc<Mutex<TracerInner>>,
}

impl FunctionTracer {
    /// Creates a disabled tracer with an empty log.
    pub fn new() -> Self {
        FunctionTracer::default()
    }

    /// Enables tracing (like `echo 1 > tracing_on`).
    pub fn enable(&self) {
        self.inner.lock().enabled = true;
    }

    /// Disables tracing.
    pub fn disable(&self) {
        self.inner.lock().enabled = false;
    }

    /// Whether tracing is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.inner.lock().enabled
    }

    /// Starts attributing subsequent events to `task`.
    pub fn begin_task(&self, task: impl AsRef<str>) {
        self.inner.lock().current_task = Symbol::new(task.as_ref());
    }

    /// Stops attributing events to the current task.
    pub fn end_task(&self) {
        self.inner.lock().current_task = Symbol::empty();
    }

    /// The task currently being attributed, if any.
    pub fn current_task(&self) -> Option<String> {
        let inner = self.inner.lock();
        if inner.current_task.is_empty() {
            None
        } else {
            Some(inner.current_task.to_string())
        }
    }

    /// Records entry into `function` at `now`. A no-op while disabled.
    /// The name is interned: after a function's first sighting, recording
    /// it again allocates nothing.
    pub fn record(&self, function: &str, now: SimInstant) {
        let mut inner = self.inner.lock();
        if !inner.enabled {
            return;
        }
        let task = inner.current_task;
        inner.log.push(TraceEvent {
            function: Symbol::new(function),
            task,
            timestamp: now,
        });
    }

    /// Returns a copy of the accumulated log.
    pub fn log(&self) -> TraceLog {
        self.inner.lock().log.clone()
    }

    /// Clears the accumulated log (keeps the enabled state).
    pub fn clear(&self) {
        self.inner.lock().log = TraceLog::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perisec_tz::time::SimDuration;

    fn t(ns: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_nanos(ns)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = FunctionTracer::new();
        tracer.record("foo", t(0));
        assert!(tracer.log().is_empty());
        assert!(!tracer.is_enabled());
    }

    #[test]
    fn events_carry_the_active_task() {
        let tracer = FunctionTracer::new();
        tracer.enable();
        tracer.record("probe_fn", t(1));
        tracer.begin_task("record");
        tracer.record("hw_params", t(2));
        tracer.record("trigger_start", t(3));
        tracer.end_task();
        tracer.begin_task("playback");
        tracer.record("trigger_start", t(4));
        tracer.end_task();

        let log = tracer.log();
        assert_eq!(log.len(), 4);
        assert_eq!(log.tasks().len(), 2);
        assert_eq!(
            log.functions_for_task("record"),
            ["hw_params", "trigger_start"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        );
        assert_eq!(log.call_count("trigger_start"), 2);
        assert!(log.all_functions().contains("probe_fn"));
    }

    #[test]
    fn clear_resets_log_but_not_enable_state() {
        let tracer = FunctionTracer::new();
        tracer.enable();
        tracer.record("x", t(0));
        tracer.clear();
        assert!(tracer.log().is_empty());
        assert!(tracer.is_enabled());
    }

    #[test]
    fn merge_keeps_chronological_order() {
        let tracer_a = FunctionTracer::new();
        tracer_a.enable();
        tracer_a.record("a1", t(10));
        tracer_a.record("a2", t(30));
        let tracer_b = FunctionTracer::new();
        tracer_b.enable();
        tracer_b.record("b1", t(20));
        let mut log = tracer_a.log();
        log.merge(&tracer_b.log());
        let names: Vec<_> = log.events().iter().map(|e| e.function.as_str()).collect();
        assert_eq!(names, vec!["a1", "b1", "a2"]);
    }

    #[test]
    fn current_task_is_observable() {
        let tracer = FunctionTracer::new();
        assert!(tracer.current_task().is_none());
        tracer.begin_task("configure");
        assert_eq!(tracer.current_task().as_deref(), Some("configure"));
        tracer.end_task();
        assert!(tracer.current_task().is_none());
    }

    #[test]
    fn clones_share_the_log() {
        let tracer = FunctionTracer::new();
        tracer.enable();
        let clone = tracer.clone();
        clone.begin_task("record");
        clone.record("shared_fn", t(5));
        assert_eq!(tracer.log().len(), 1);
    }
}
