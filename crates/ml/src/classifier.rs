//! The sensitive-content classifier: extractor + trained head + metrics.

use serde::{Deserialize, Serialize};

use crate::head::{ClassifierHead, HeadTrainConfig};
use crate::models::{
    FeatureExtractor, HybridCnnTransformer, ModelConfig, TextCnn, TransformerEncoder,
};
use crate::tensor::Matrix;
use crate::{MlError, Result};

/// The classifier architectures the paper proposes to compare (§IV.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// Convolutional neural network.
    Cnn,
    /// Transformer encoder.
    Transformer,
    /// Hybrid: CNN feature extractor, Transformer classifier.
    Hybrid,
}

impl Architecture {
    /// All architectures, in the order the paper lists them.
    pub const ALL: [Architecture; 3] = [
        Architecture::Cnn,
        Architecture::Transformer,
        Architecture::Hybrid,
    ];
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Architecture::Cnn => "cnn",
            Architecture::Transformer => "transformer",
            Architecture::Hybrid => "hybrid",
        };
        write!(f, "{s}")
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub(crate) enum Extractor {
    Cnn(TextCnn),
    Transformer(TransformerEncoder),
    Hybrid(HybridCnnTransformer),
}

impl Extractor {
    fn as_dyn(&self) -> &dyn FeatureExtractor {
        match self {
            Extractor::Cnn(e) => e,
            Extractor::Transformer(e) => e,
            Extractor::Hybrid(e) => e,
        }
    }
}

/// Training configuration for a classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Extractor configuration (vocabulary, widths, seed).
    pub model: ModelConfig,
    /// Head training hyper-parameters.
    pub head: HeadTrainConfig,
    /// Hidden width of the classification head.
    pub head_hidden_dim: usize,
    /// Decision threshold applied to the sensitive probability.
    pub threshold: f32,
}

impl TrainConfig {
    /// A small configuration appropriate for TEE deployment.
    pub fn small(vocab_size: usize) -> Self {
        TrainConfig {
            model: ModelConfig::small(vocab_size),
            head: HeadTrainConfig::default(),
            head_hidden_dim: 32,
            threshold: 0.5,
        }
    }

    /// A larger configuration for the memory-pressure sweeps.
    pub fn large(vocab_size: usize) -> Self {
        TrainConfig {
            model: ModelConfig::large(vocab_size),
            head: HeadTrainConfig::default(),
            head_hidden_dim: 96,
            threshold: 0.5,
        }
    }
}

/// Quality metrics of a classifier on a labelled set.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClassifierMetrics {
    /// True positives (sensitive classified sensitive).
    pub true_positives: usize,
    /// False positives.
    pub false_positives: usize,
    /// True negatives.
    pub true_negatives: usize,
    /// False negatives (sensitive leaked as non-sensitive).
    pub false_negatives: usize,
}

impl ClassifierMetrics {
    /// Number of evaluated examples.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Fraction classified correctly.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / self.total() as f64
    }

    /// Precision on the sensitive class.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall on the sensitive class (1 - leak rate).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score on the sensitive class.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// A trained (or trainable) sensitive-content classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitiveClassifier {
    architecture: Architecture,
    extractor: Extractor,
    head: ClassifierHead,
    config: TrainConfig,
}

impl SensitiveClassifier {
    /// Creates an untrained classifier of the given architecture.
    pub fn new(architecture: Architecture, config: TrainConfig) -> Self {
        let extractor = match architecture {
            Architecture::Cnn => Extractor::Cnn(TextCnn::new(config.model)),
            Architecture::Transformer => {
                Extractor::Transformer(TransformerEncoder::new(config.model))
            }
            Architecture::Hybrid => Extractor::Hybrid(HybridCnnTransformer::new(config.model)),
        };
        let head = ClassifierHead::new(
            extractor.as_dyn().feature_dim(),
            config.head_hidden_dim,
            config.model.seed + 1000,
        );
        SensitiveClassifier {
            architecture,
            extractor,
            head,
            config,
        }
    }

    /// The classifier's architecture.
    pub fn architecture(&self) -> Architecture {
        self.architecture
    }

    /// The training configuration it was built with.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Whether [`SensitiveClassifier::fit`] has been called.
    pub fn is_trained(&self) -> bool {
        self.head.is_trained()
    }

    /// Extracts the feature vector for a token sequence.
    ///
    /// # Errors
    ///
    /// Propagates extractor shape errors (which indicate construction bugs,
    /// not bad input).
    pub fn features(&self, tokens: &[usize]) -> Result<Matrix> {
        self.extractor.as_dyn().extract(tokens)
    }

    /// Trains the classification head on labelled token sequences.
    /// Returns the final-epoch training loss.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::BadTrainingData`] for an empty corpus.
    pub fn fit(&mut self, examples: &[(Vec<usize>, bool)]) -> Result<f32> {
        if examples.is_empty() {
            return Err(MlError::BadTrainingData {
                reason: "empty training corpus".to_owned(),
            });
        }
        let mut features = Vec::with_capacity(examples.len());
        let mut labels = Vec::with_capacity(examples.len());
        for (tokens, label) in examples {
            features.push(self.features(tokens)?);
            labels.push(*label);
        }
        self.head.train(&features, &labels, &self.config.head)
    }

    /// Probability that the token sequence is sensitive.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotTrained`] before [`SensitiveClassifier::fit`].
    pub fn predict(&self, tokens: &[usize]) -> Result<f32> {
        if !self.is_trained() {
            return Err(MlError::NotTrained);
        }
        let features = self.features(tokens)?;
        self.head.predict(&features)
    }

    /// [`SensitiveClassifier::predict`] with the head's allocation-free
    /// scratch path — same arithmetic, fewer per-window allocations on the
    /// TA hot path.
    ///
    /// # Errors
    ///
    /// Same as [`SensitiveClassifier::predict`].
    pub fn predict_with(
        &self,
        tokens: &[usize],
        plan: &mut crate::plan::FeaturePlan,
    ) -> Result<f32> {
        if !self.is_trained() {
            return Err(MlError::NotTrained);
        }
        let features = self.features(tokens)?;
        self.head
            .predict_features(features.row(0), &mut plan.hidden)
    }

    /// Binary decision using the configured threshold.
    ///
    /// # Errors
    ///
    /// Same as [`SensitiveClassifier::predict`].
    pub fn is_sensitive(&self, tokens: &[usize]) -> Result<bool> {
        Ok(self.predict(tokens)? >= self.config.threshold)
    }

    /// Evaluates the classifier on a labelled set.
    ///
    /// # Errors
    ///
    /// Same as [`SensitiveClassifier::predict`].
    pub fn evaluate(&self, examples: &[(Vec<usize>, bool)]) -> Result<ClassifierMetrics> {
        let mut metrics = ClassifierMetrics::default();
        for (tokens, label) in examples {
            let predicted = self.is_sensitive(tokens)?;
            match (predicted, *label) {
                (true, true) => metrics.true_positives += 1,
                (true, false) => metrics.false_positives += 1,
                (false, false) => metrics.true_negatives += 1,
                (false, true) => metrics.false_negatives += 1,
            }
        }
        Ok(metrics)
    }

    /// Total parameter count (extractor + head).
    pub fn parameter_count(&self) -> usize {
        self.extractor.as_dyn().parameter_count() + self.head.parameter_count()
    }

    /// Memory footprint in bytes at 32-bit precision.
    pub fn memory_bytes_f32(&self) -> usize {
        self.parameter_count() * 4
    }

    /// Approximate multiply-accumulate count of one inference over `len`
    /// tokens.
    pub fn flops_per_inference(&self, len: usize) -> u64 {
        self.extractor.as_dyn().flops(len) + self.head.flops()
    }

    /// Mutable access for weight rewriting (used by quantization).
    pub(crate) fn parts_mut(&mut self) -> (&mut Extractor, &mut ClassifierHead) {
        (&mut self.extractor, &mut self.head)
    }

    /// Read access for int8 conversion.
    pub(crate) fn parts(&self) -> (&Extractor, &ClassifierHead) {
        (&self.extractor, &self.head)
    }
}

pub(crate) use private::visit_matrices;

mod private {
    use super::Extractor;
    use crate::head::ClassifierHead;
    use crate::tensor::Matrix;

    /// Applies `f` to every weight matrix of the classifier (extractor and
    /// head). Used by fake quantization.
    pub(crate) fn visit_matrices(
        extractor: &mut Extractor,
        head: &mut ClassifierHead,
        f: &mut dyn FnMut(&mut Matrix),
    ) {
        match extractor {
            Extractor::Cnn(cnn) => {
                f(cnn.embedding_mut().table_mut());
                for conv in cnn.convs_mut() {
                    f(&mut conv.filters);
                }
            }
            Extractor::Transformer(t) => {
                f(t.embedding_mut().table_mut());
                f(&mut t.input_proj_mut().weights);
                for attn in t.attention_mut() {
                    f(&mut attn.wq.weights);
                    f(&mut attn.wk.weights);
                    f(&mut attn.wv.weights);
                    f(&mut attn.wo.weights);
                }
                for ffn in t.ffn_mut() {
                    f(&mut ffn.weights);
                }
            }
            Extractor::Hybrid(h) => {
                f(h.embedding_mut().table_mut());
                f(&mut h.conv_mut().filters);
                let attn = h.attention_mut();
                f(&mut attn.wq.weights);
                f(&mut attn.wk.weights);
                f(&mut attn.wv.weights);
                f(&mut attn.wo.weights);
            }
        }
        let (hidden, output) = head.layers_mut();
        f(&mut hidden.weights);
        f(&mut output.weights);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic token corpus in which sensitivity is determined by the
    /// presence of "sensitive" token ids (0..8) — a miniature of the real
    /// corpus in `perisec-workload`.
    fn token_corpus(n: usize, seed: u64) -> Vec<(Vec<usize>, bool)> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let len = rng.gen_range(4..12);
                let sensitive = rng.gen_bool(0.5);
                let tokens: Vec<usize> = (0..len)
                    .map(|_| {
                        if sensitive && rng.gen_bool(0.4) {
                            rng.gen_range(0..8)
                        } else {
                            rng.gen_range(8..64)
                        }
                    })
                    .collect();
                // Guarantee at least one sensitive token in sensitive examples.
                let mut tokens = tokens;
                if sensitive {
                    tokens[0] = rng.gen_range(0..8);
                }
                (tokens, sensitive)
            })
            .collect()
    }

    #[test]
    fn untrained_classifier_refuses_to_predict() {
        let c = SensitiveClassifier::new(Architecture::Cnn, TrainConfig::small(64));
        assert!(matches!(c.predict(&[1, 2, 3]), Err(MlError::NotTrained)));
        assert!(!c.is_trained());
    }

    #[test]
    fn all_architectures_learn_the_synthetic_task() {
        let train = token_corpus(240, 1);
        let test = token_corpus(80, 2);
        for arch in Architecture::ALL {
            let mut c = SensitiveClassifier::new(arch, TrainConfig::small(64));
            c.fit(&train).unwrap();
            let metrics = c.evaluate(&test).unwrap();
            assert!(
                metrics.accuracy() > 0.75,
                "{arch} accuracy too low: {:.2}",
                metrics.accuracy()
            );
            assert_eq!(metrics.total(), 80);
        }
    }

    #[test]
    fn metrics_formulas_are_consistent() {
        let m = ClassifierMetrics {
            true_positives: 40,
            false_positives: 10,
            true_negatives: 45,
            false_negatives: 5,
        };
        assert_eq!(m.total(), 100);
        assert!((m.accuracy() - 0.85).abs() < 1e-9);
        assert!((m.precision() - 0.8).abs() < 1e-9);
        assert!((m.recall() - 8.0 / 9.0).abs() < 1e-9);
        assert!(m.f1() > 0.8 && m.f1() < 0.9);
        assert_eq!(ClassifierMetrics::default().accuracy(), 0.0);
        assert_eq!(ClassifierMetrics::default().f1(), 0.0);
    }

    #[test]
    fn footprints_differ_by_architecture_and_size() {
        let cnn = SensitiveClassifier::new(Architecture::Cnn, TrainConfig::small(64));
        let transformer =
            SensitiveClassifier::new(Architecture::Transformer, TrainConfig::small(64));
        let transformer_large =
            SensitiveClassifier::new(Architecture::Transformer, TrainConfig::large(64));
        assert!(transformer.parameter_count() > cnn.parameter_count());
        assert!(transformer_large.memory_bytes_f32() > transformer.memory_bytes_f32());
        assert!(transformer.flops_per_inference(12) > cnn.flops_per_inference(12));
    }

    #[test]
    fn empty_corpus_is_rejected() {
        let mut c = SensitiveClassifier::new(Architecture::Hybrid, TrainConfig::small(64));
        assert!(matches!(c.fit(&[]), Err(MlError::BadTrainingData { .. })));
    }
}
