//! The trainable classification head.
//!
//! A two-layer perceptron (dense → ReLU → dense → sigmoid) trained with
//! Adam on binary cross-entropy. The feature extractors in
//! [`crate::models`] are fixed; this head is what "training" means for the
//! repository's classifiers (see the crate documentation for the
//! pre-training substitution rationale).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::layers::{dense_backward, relu, relu_grad, sigmoid, Dense};
use crate::tensor::Matrix;
use crate::{MlError, Result};

/// Hyper-parameters for head training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadTrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Shuffling / init seed.
    pub seed: u64,
}

impl Default for HeadTrainConfig {
    fn default() -> Self {
        HeadTrainConfig {
            epochs: 40,
            batch_size: 16,
            learning_rate: 3e-3,
            seed: 17,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl AdamState {
    fn new(len: usize) -> Self {
        AdamState {
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
        }
    }

    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        const BETA1: f32 = 0.9;
        const BETA2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        self.t += 1;
        let t = self.t as f32;
        for i in 0..params.len() {
            self.m[i] = BETA1 * self.m[i] + (1.0 - BETA1) * grads[i];
            self.v[i] = BETA2 * self.v[i] + (1.0 - BETA2) * grads[i] * grads[i];
            let m_hat = self.m[i] / (1.0 - BETA1.powf(t));
            let v_hat = self.v[i] / (1.0 - BETA2.powf(t));
            params[i] -= lr * m_hat / (v_hat.sqrt() + EPS);
        }
    }
}

/// The binary classification head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierHead {
    hidden: Dense,
    output: Dense,
    adam_hidden_w: AdamState,
    adam_hidden_b: AdamState,
    adam_output_w: AdamState,
    adam_output_b: AdamState,
    trained: bool,
}

impl ClassifierHead {
    /// Creates an untrained head for `feature_dim` inputs with
    /// `hidden_dim` hidden units.
    pub fn new(feature_dim: usize, hidden_dim: usize, seed: u64) -> Self {
        let hidden = Dense::new(feature_dim, hidden_dim, seed);
        let output = Dense::new(hidden_dim, 1, seed + 1);
        let adam_hidden_w = AdamState::new(hidden.weights.len());
        let adam_hidden_b = AdamState::new(hidden.bias.len());
        let adam_output_w = AdamState::new(output.weights.len());
        let adam_output_b = AdamState::new(output.bias.len());
        ClassifierHead {
            hidden,
            output,
            adam_hidden_w,
            adam_hidden_b,
            adam_output_w,
            adam_output_b,
            trained: false,
        }
    }

    /// Whether the head has been trained.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Number of parameters.
    pub fn parameter_count(&self) -> usize {
        self.hidden.parameter_count() + self.output.parameter_count()
    }

    /// Multiply-accumulate count of one prediction.
    pub fn flops(&self) -> u64 {
        self.hidden.flops(1) + self.output.flops(1)
    }

    /// Probability that the feature vector is "sensitive".
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `features` is not
    /// `1 x feature_dim`.
    pub fn predict(&self, features: &Matrix) -> Result<f32> {
        let h = self.hidden.forward(features)?.map(relu);
        let o = self.output.forward(&h)?;
        Ok(sigmoid(o.get(0, 0)))
    }

    /// The allocation-free prediction path: identical arithmetic to
    /// [`ClassifierHead::predict`], but over a feature slice with the
    /// hidden activations held in caller-owned scratch — the TA hot path
    /// stops paying three matrix allocations per window.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `features.len()` differs from
    /// the head's input width.
    pub fn predict_features(&self, features: &[f32], hidden: &mut Vec<f32>) -> Result<f32> {
        if features.len() != self.hidden.input_dim() {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "head of width {} applied to {} features",
                    self.hidden.input_dim(),
                    features.len()
                ),
            });
        }
        hidden.clear();
        hidden.resize(self.hidden.output_dim(), 0.0);
        // hidden = relu(x * W1 + b1), k-outer over the row-major weights
        // in exactly [`Matrix::matmul`]'s accumulation order (bias added
        // after the products) so the two paths agree bit for bit.
        for (k, &x) in features.iter().enumerate() {
            if x == 0.0 {
                continue;
            }
            let row = self.hidden.weights.row(k);
            for (h, &w) in hidden.iter_mut().zip(row) {
                *h += x * w;
            }
        }
        let mut logit = 0.0f32;
        for (k, &h) in hidden.iter().enumerate() {
            let h = relu(h + self.hidden.bias[k]);
            logit += h * self.output.weights.get(k, 0);
        }
        Ok(sigmoid(logit + self.output.bias[0]))
    }

    /// Trains the head on `(feature, label)` pairs. Returns the mean loss
    /// of the final epoch.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::BadTrainingData`] if the dataset is empty or has
    /// inconsistent widths.
    pub fn train(
        &mut self,
        features: &[Matrix],
        labels: &[bool],
        config: &HeadTrainConfig,
    ) -> Result<f32> {
        if features.is_empty() || features.len() != labels.len() {
            return Err(MlError::BadTrainingData {
                reason: format!("{} feature rows vs {} labels", features.len(), labels.len()),
            });
        }
        let width = self.hidden.input_dim();
        if features.iter().any(|f| f.cols() != width || f.rows() != 1) {
            return Err(MlError::BadTrainingData {
                reason: format!("all feature vectors must be 1x{width}"),
            });
        }
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut final_loss = 0.0;
        for _epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(config.batch_size.max(1)) {
                // Assemble the batch.
                let mut x = Matrix::zeros(batch.len(), width);
                let mut y = vec![0.0f32; batch.len()];
                for (i, &idx) in batch.iter().enumerate() {
                    x.row_mut(i).copy_from_slice(features[idx].row(0));
                    y[i] = if labels[idx] { 1.0 } else { 0.0 };
                }
                // Forward.
                let h_pre = self.hidden.forward(&x)?;
                let h = h_pre.map(relu);
                let o = self.output.forward(&h)?;
                let p: Vec<f32> = o.data().iter().map(|&v| sigmoid(v)).collect();
                // Binary cross-entropy loss and gradient d(loss)/d(logit) = p - y.
                let mut d_logit = Matrix::zeros(batch.len(), 1);
                for i in 0..batch.len() {
                    let pi = p[i].clamp(1e-6, 1.0 - 1e-6);
                    epoch_loss += -(y[i] * pi.ln() + (1.0 - y[i]) * (1.0 - pi).ln());
                    d_logit.set(i, 0, (p[i] - y[i]) / batch.len() as f32);
                }
                // Backward through output layer.
                let out_grad = dense_backward(&self.output, &h, &d_logit)?;
                // Backward through ReLU and hidden layer.
                let mut d_hidden = out_grad.d_input.clone();
                for r in 0..d_hidden.rows() {
                    for c in 0..d_hidden.cols() {
                        let g = d_hidden.get(r, c) * relu_grad(h_pre.get(r, c));
                        d_hidden.set(r, c, g);
                    }
                }
                let hidden_grad = dense_backward(&self.hidden, &x, &d_hidden)?;
                // Adam updates.
                self.adam_output_w.step(
                    self.output.weights.data_mut(),
                    out_grad.d_weights.data(),
                    config.learning_rate,
                );
                self.adam_output_b.step(
                    &mut self.output.bias,
                    &out_grad.d_bias,
                    config.learning_rate,
                );
                self.adam_hidden_w.step(
                    self.hidden.weights.data_mut(),
                    hidden_grad.d_weights.data(),
                    config.learning_rate,
                );
                self.adam_hidden_b.step(
                    &mut self.hidden.bias,
                    &hidden_grad.d_bias,
                    config.learning_rate,
                );
            }
            final_loss = epoch_loss / features.len() as f32;
        }
        self.trained = true;
        Ok(final_loss)
    }

    /// The two dense layers (used by quantization).
    pub fn layers(&self) -> (&Dense, &Dense) {
        (&self.hidden, &self.output)
    }

    /// Mutable access to the two dense layers (used by quantization).
    pub(crate) fn layers_mut(&mut self) -> (&mut Dense, &mut Dense) {
        (&mut self.hidden, &mut self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linearly separable toy problem: label = (sum of features > 0).
    fn toy_dataset(n: usize, dim: usize, seed: u64) -> (Vec<Matrix>, Vec<bool>) {
        let mut features = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let m = Matrix::random(1, dim, 1.0, seed + i as u64);
            let sum: f32 = m.data().iter().sum();
            labels.push(sum > 0.0);
            features.push(m);
        }
        (features, labels)
    }

    #[test]
    fn head_learns_a_separable_problem() {
        let (features, labels) = toy_dataset(200, 8, 100);
        let mut head = ClassifierHead::new(8, 16, 1);
        assert!(!head.is_trained());
        let loss = head
            .train(
                &features,
                &labels,
                &HeadTrainConfig {
                    epochs: 60,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(head.is_trained());
        assert!(loss < 0.3, "final loss too high: {loss}");
        let correct = features
            .iter()
            .zip(labels.iter())
            .filter(|(f, &l)| (head.predict(f).unwrap() > 0.5) == l)
            .count();
        assert!(
            correct as f64 / features.len() as f64 > 0.9,
            "training accuracy {correct}/{}",
            features.len()
        );
    }

    #[test]
    fn training_rejects_bad_data() {
        let mut head = ClassifierHead::new(4, 8, 2);
        assert!(matches!(
            head.train(&[], &[], &HeadTrainConfig::default()),
            Err(MlError::BadTrainingData { .. })
        ));
        let features = vec![Matrix::zeros(1, 4)];
        assert!(head
            .train(&features, &[true, false], &HeadTrainConfig::default())
            .is_err());
        let wrong_width = vec![Matrix::zeros(1, 5)];
        assert!(head
            .train(&wrong_width, &[true], &HeadTrainConfig::default())
            .is_err());
    }

    #[test]
    fn prediction_shape_is_validated() {
        let head = ClassifierHead::new(4, 8, 3);
        assert!(head.predict(&Matrix::zeros(1, 4)).is_ok());
        assert!(head.predict(&Matrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn scratch_prediction_matches_matrix_prediction() {
        let (features, labels) = toy_dataset(60, 8, 42);
        let mut head = ClassifierHead::new(8, 16, 5);
        head.train(&features, &labels, &HeadTrainConfig::default())
            .unwrap();
        let mut hidden = Vec::new();
        for f in &features {
            let dense = head.predict(f).unwrap();
            let scratch = head.predict_features(f.row(0), &mut hidden).unwrap();
            assert_eq!(dense, scratch, "paths diverge");
        }
        assert!(head.predict_features(&[0.0; 5], &mut hidden).is_err());
    }

    #[test]
    fn footprint_accessors() {
        let head = ClassifierHead::new(16, 32, 4);
        assert_eq!(head.parameter_count(), 16 * 32 + 32 + 32 + 1);
        assert!(head.flops() > 0);
    }
}
