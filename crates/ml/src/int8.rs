//! The int8 inference engine — quantized models with fused integer
//! kernels.
//!
//! [`crate::quant`] gave the repository *storage-only* quantization: the
//! weights shrank on disk but [`QuantizedMatrix::dequantize`] rebuilt f32
//! weights before every forward pass, so the TAs paid full float compute
//! **and** full float residency at runtime. This module finishes the job:
//! the classifiers the TAs host are converted **once** after training into
//! quantized form ([`QuantSensitiveClassifier`], [`QuantFrameCnn`]) whose
//! forward passes run on i8 x i8 -> i32 kernels with the weight scales
//! folded into a single output rescale — no dequantization, no per-window
//! allocation (scratch comes from a [`FeaturePlan`]), and ~4x smaller
//! weight residency in the secure carve-out.
//!
//! Weights quantize **per output channel** wherever a channel has its own
//! rescale slot: convolution filter banks per row
//! ([`QuantizedMatrix::quantize_per_row`] — each filter's dot product is
//! rescaled individually anyway) and dense layers per column
//! ([`QuantizedMatrix::quantize_per_col`] — the per-column scale rides the
//! existing epilogue multiply). One outlier filter no longer stretches the
//! whole bank's range. The embedding table is the deliberate exception
//! and stays per-tensor: its rows are *activations* downstream, and the
//! convolutions need one activation scale for the whole sequence.
//!
//! Activation handling follows standard dynamic quantization:
//!
//! * the embedding table is stored quantized and its rows are fed to the
//!   text convolutions **as i8** (the table's scale is the activation
//!   scale — no re-quantization step at all);
//! * dense-layer inputs are quantized per call with a symmetric
//!   per-tensor scale ([`quantize_activations`]);
//! * ReLU and global max pooling are folded into the integer rescale
//!   epilogues, so convolution outputs never materialize.
//!
//! The f32 models remain the accuracy baseline; experiment E16 pins the
//! speed, residency and accuracy deltas, and a proptest bounds the
//! probability divergence between the two paths on random inputs.

use serde::{Deserialize, Serialize};

use crate::classifier::{Extractor, SensitiveClassifier};
use crate::head::ClassifierHead;
use crate::layers::{Conv1d, Dense, Embedding};
use crate::plan::FeaturePlan;
use crate::quant::{dot_i8, quantize_activations, quantize_activations_i16, QuantizedMatrix};
use crate::vision::{FrameCnn, VisionConfig};
use crate::{MlError, Result};

/// A dense layer with quantized weights and an f32 bias, running on the
/// fused integer matmul.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantDense {
    weights: QuantizedMatrix,
    bias: Vec<f32>,
}

impl QuantDense {
    /// Quantizes a trained dense layer, one scale per output column —
    /// the per-channel rescale folds into the matmul epilogue for free.
    pub fn from_dense(dense: &Dense) -> Self {
        QuantDense {
            weights: QuantizedMatrix::quantize_per_col(&dense.weights),
            bias: dense.bias.clone(),
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Deployed storage bytes (quantized weights + f32 bias).
    pub fn storage_bytes(&self) -> usize {
        self.weights.storage_bytes() + self.bias.len() * 4
    }

    /// Fused forward over pre-quantized activations: integer matmul, one
    /// rescale, bias added in f32. `acc` and `out` are caller scratch.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] on a width mismatch.
    pub fn forward_q(
        &self,
        x_q: &[i8],
        x_scale: f32,
        acc: &mut Vec<i32>,
        out: &mut Vec<f32>,
    ) -> Result<()> {
        self.weights.matmul_i8(x_q, x_scale, acc, out)?;
        for (o, &b) in out.iter_mut().zip(&self.bias) {
            *o += b;
        }
        Ok(())
    }

    /// [`QuantDense::forward_q`] over i16 activations — the head's
    /// high-fidelity path (see [`QuantizedMatrix::matmul_i16`]).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] on a width mismatch.
    pub fn forward_q16(
        &self,
        x_q: &[i16],
        x_scale: f32,
        acc: &mut Vec<i32>,
        out: &mut Vec<f32>,
    ) -> Result<()> {
        self.weights.matmul_i16(x_q, x_scale, acc, out)?;
        for (o, &b) in out.iter_mut().zip(&self.bias) {
            *o += b;
        }
        Ok(())
    }
}

/// A 1-D convolution bank with quantized filters and a fused
/// conv -> ReLU -> global-max-pool forward: the text-CNN building block
/// without the `positions x channels` intermediate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantConv1d {
    kernel_width: usize,
    input_dim: usize,
    filters: QuantizedMatrix,
    bias: Vec<f32>,
}

impl QuantConv1d {
    /// Quantizes a trained convolution bank, one scale per filter row —
    /// an outlier filter keeps its own range instead of coarsening every
    /// channel's.
    pub fn from_conv(conv: &Conv1d) -> Self {
        QuantConv1d {
            kernel_width: conv.kernel_width,
            input_dim: conv.input_dim(),
            filters: QuantizedMatrix::quantize_per_row(&conv.filters),
            bias: conv.bias.clone(),
        }
    }

    /// Number of output channels.
    pub fn channels(&self) -> usize {
        self.filters.rows()
    }

    /// Deployed storage bytes.
    pub fn storage_bytes(&self) -> usize {
        self.filters.storage_bytes() + self.bias.len() * 4
    }

    /// Multiply-accumulate count for a sequence of length `len` (the same
    /// formula as [`Conv1d::flops`] — the int8 path performs the same
    /// MACs, just narrower).
    pub fn flops(&self, len: usize) -> u64 {
        let positions = len.saturating_sub(self.kernel_width - 1).max(1);
        (positions * self.channels() * self.kernel_width * self.input_dim) as u64
    }

    /// Slides the quantized filters over a quantized embedding sequence
    /// (row-major `seq_len x input_dim`) and pushes one max-pooled ReLU
    /// activation per channel onto `out`. A sequence shorter than the
    /// kernel yields the f32 path's zero activations.
    pub fn forward_maxpool_into(
        &self,
        x_q: &[i8],
        seq_len: usize,
        x_scale: f32,
        out: &mut Vec<f32>,
    ) {
        debug_assert_eq!(x_q.len(), seq_len * self.input_dim);
        if seq_len < self.kernel_width {
            out.extend(std::iter::repeat_n(0.0, self.channels()));
            return;
        }
        let positions = seq_len - self.kernel_width + 1;
        let window = self.kernel_width * self.input_dim;
        // The convolutions issue hundreds of dot products per window, so
        // the AVX2 dispatch is hoisted out of the loops instead of being
        // paid per call inside `dot_i8`.
        #[cfg(target_arch = "x86_64")]
        if crate::quant::x86::avx2_available() {
            // SAFETY: AVX2 presence checked; window and filter slices are
            // both `kernel_width * input_dim` long by construction.
            #[allow(unsafe_code)]
            unsafe {
                self.maxpool_avx2(x_q, positions, window, x_scale, out);
            }
            return;
        }
        for ch in 0..self.channels() {
            let filter = self.filters.row(ch);
            let rescale = x_scale * self.filters.row_scale(ch);
            let bias = self.bias[ch];
            let mut best = 0.0f32; // ReLU folded into the max with 0
            for p in 0..positions {
                let start = p * self.input_dim;
                let acc = dot_i8(&x_q[start..start + window], filter);
                best = best.max(acc as f32 * rescale + bias);
            }
            out.push(best);
        }
    }

    /// The AVX2 form of [`QuantConv1d::forward_maxpool_into`]'s main
    /// loop: same structure, the wide dot product called directly.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available and `x_q` holds at least
    /// `positions - 1 + kernel_width` embedding rows.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(unsafe_code)]
    unsafe fn maxpool_avx2(
        &self,
        x_q: &[i8],
        positions: usize,
        window: usize,
        x_scale: f32,
        out: &mut Vec<f32>,
    ) {
        for ch in 0..self.channels() {
            let filter = self.filters.row(ch);
            let rescale = x_scale * self.filters.row_scale(ch);
            let bias = self.bias[ch];
            let mut best = 0.0f32; // ReLU folded into the max with 0
            for p in 0..positions {
                let start = p * self.input_dim;
                let acc = crate::quant::x86::dot_i8(&x_q[start..start + window], filter);
                best = best.max(acc as f32 * rescale + bias);
            }
            out.push(best);
        }
    }
}

/// A quantized token-embedding table. Rows are handed to downstream
/// layers as i8 with the table's scale as the activation scale — the
/// cheapest possible "activation quantization".
///
/// The table is quantized **per-tensor on purpose**: looked-up rows are
/// the *activations* of the convolution stage, and
/// [`QuantConv1d::forward_maxpool_into`] folds exactly one activation
/// scale into each channel's rescale. Per-row table scales would give
/// every token its own activation scale, which the fused integer dot
/// products cannot absorb without a per-position rescale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantEmbedding {
    table: QuantizedMatrix,
}

impl QuantEmbedding {
    /// Quantizes a trained embedding.
    pub fn from_embedding(embedding: &Embedding) -> Self {
        QuantEmbedding {
            table: QuantizedMatrix::quantize(embedding.table()),
        }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// The activation scale of looked-up rows.
    pub fn scale(&self) -> f32 {
        self.table.scale()
    }

    /// Deployed storage bytes.
    pub fn storage_bytes(&self) -> usize {
        self.table.storage_bytes()
    }

    /// Gathers the quantized rows of a token sequence into `out`
    /// (row-major `len x dim`; unknown token ids map to the zero row).
    pub fn lookup_into(&self, tokens: &[usize], out: &mut Vec<i8>) {
        let dim = self.dim();
        out.clear();
        out.resize(tokens.len() * dim, 0);
        for (i, &t) in tokens.iter().enumerate() {
            if t < self.table.rows() {
                out[i * dim..(i + 1) * dim].copy_from_slice(self.table.row(t));
            }
        }
    }
}

/// The quantized text-CNN extractor: quantized embedding feeding the
/// fused convolution banks directly in i8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantTextCnn {
    embedding: QuantEmbedding,
    convs: Vec<QuantConv1d>,
}

impl QuantTextCnn {
    /// Width of the produced feature vector.
    pub fn feature_dim(&self) -> usize {
        self.convs.iter().map(QuantConv1d::channels).sum()
    }

    /// Deployed storage bytes.
    pub fn storage_bytes(&self) -> usize {
        self.embedding.storage_bytes()
            + self
                .convs
                .iter()
                .map(QuantConv1d::storage_bytes)
                .sum::<usize>()
    }

    /// Multiply-accumulate count over a sequence of `len` tokens.
    pub fn flops(&self, len: usize) -> u64 {
        self.convs.iter().map(|c| c.flops(len)).sum()
    }

    /// Extracts the feature vector into `plan.features`.
    pub fn extract_into(&self, tokens: &[usize], plan: &mut FeaturePlan) {
        self.embedding.lookup_into(tokens, &mut plan.x_q);
        let scale = self.embedding.scale();
        plan.features.clear();
        for conv in &self.convs {
            conv.forward_maxpool_into(&plan.x_q, tokens.len(), scale, &mut plan.features);
        }
    }
}

/// The quantized two-layer classification head (dense -> ReLU -> dense ->
/// sigmoid) with dynamically quantized activations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantClassifierHead {
    hidden: QuantDense,
    output: QuantDense,
}

impl QuantClassifierHead {
    /// Quantizes a trained head.
    pub fn from_head(head: &ClassifierHead) -> Self {
        let (hidden, output) = head.layers();
        QuantClassifierHead {
            hidden: QuantDense::from_dense(hidden),
            output: QuantDense::from_dense(output),
        }
    }

    /// Deployed storage bytes.
    pub fn storage_bytes(&self) -> usize {
        self.hidden.storage_bytes() + self.output.storage_bytes()
    }

    /// Multiply-accumulate count of one prediction.
    pub fn flops(&self) -> u64 {
        (self.hidden.input_dim() * self.hidden.output_dim()
            + self.output.input_dim() * self.output.output_dim()) as u64
    }

    /// Probability that the feature vector is "sensitive", entirely on the
    /// integer kernels.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `plan.features` does not
    /// match the head's input width.
    pub fn predict_from_plan(&self, plan: &mut FeaturePlan) -> Result<f32> {
        // The head is ~3k MACs against ~200k in the convolutions, so it
        // sets the rounding-error floor, not the latency floor: run it on
        // i16 activations (256x finer than i8) at negligible cost.
        let x_scale = quantize_activations_i16(&plan.features, &mut plan.act_q16);
        self.hidden
            .forward_q16(&plan.act_q16, x_scale, &mut plan.acc, &mut plan.hidden)?;
        for h in plan.hidden.iter_mut() {
            *h = h.max(0.0);
        }
        let h_scale = quantize_activations_i16(&plan.hidden, &mut plan.act_q16);
        self.output
            .forward_q16(&plan.act_q16, h_scale, &mut plan.acc, &mut plan.out)?;
        Ok(crate::layers::sigmoid(plan.out[0]))
    }
}

/// The int8 deployment form of a trained [`SensitiveClassifier`] (CNN
/// architecture): quantized embedding, fused convolutions, quantized
/// head. Built **once** after training; every prediction afterwards runs
/// allocation-free over a [`FeaturePlan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantSensitiveClassifier {
    extractor: QuantTextCnn,
    head: QuantClassifierHead,
    threshold: f32,
}

impl QuantSensitiveClassifier {
    /// Converts a trained CNN classifier into its int8 deployment form.
    /// Returns `None` for untrained classifiers and for the Transformer /
    /// Hybrid architectures, whose attention blocks stay on the f32
    /// baseline path (softmax and layer norm do not quantize per-tensor;
    /// a ROADMAP follow-on).
    pub fn from_trained(classifier: &SensitiveClassifier) -> Option<Self> {
        if !classifier.is_trained() {
            return None;
        }
        let (extractor, head) = classifier.parts();
        let Extractor::Cnn(cnn) = extractor else {
            return None;
        };
        Some(QuantSensitiveClassifier {
            extractor: QuantTextCnn {
                embedding: QuantEmbedding::from_embedding(cnn.embedding()),
                convs: cnn.convs().iter().map(QuantConv1d::from_conv).collect(),
            },
            head: QuantClassifierHead::from_head(head),
            threshold: classifier.config().threshold,
        })
    }

    /// The decision threshold (inherited from the trained classifier).
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Deployed model bytes: quantized weights plus f32 biases — the
    /// number the TA charges to the secure carve-out.
    pub fn memory_bytes(&self) -> usize {
        self.extractor.storage_bytes() + self.head.storage_bytes()
    }

    /// Multiply-accumulate count of one inference over `len` tokens (the
    /// int8 path performs the same MACs as the f32 path, each one
    /// narrower; the platform cost model charges MACs, so virtual-time
    /// accounting stays mode-independent).
    pub fn flops_per_inference(&self, len: usize) -> u64 {
        self.extractor.flops(len) + self.head.flops()
    }

    /// Probability that the token sequence is sensitive — the TA hot
    /// path: quantized lookup, fused convolutions, integer head, zero
    /// allocations on a warm plan.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] only on internal inconsistency.
    pub fn predict_with(&self, tokens: &[usize], plan: &mut FeaturePlan) -> Result<f32> {
        self.extractor.extract_into(tokens, plan);
        self.head.predict_from_plan(plan)
    }

    /// Binary decision using the inherited threshold.
    ///
    /// # Errors
    ///
    /// Same as [`QuantSensitiveClassifier::predict_with`].
    pub fn is_sensitive_with(&self, tokens: &[usize], plan: &mut FeaturePlan) -> Result<bool> {
        Ok(self.predict_with(tokens, plan)? >= self.threshold)
    }
}

/// The int8 deployment form of a trained [`FrameCnn`]: integer patch
/// pooling, a quantized 3x3 convolution bank over the patch-mean grid,
/// and the quantized head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantFrameCnn {
    config: VisionConfig,
    filters: QuantizedMatrix,
    head: QuantClassifierHead,
    threshold: f32,
    featurizer_flops: u64,
    featurizer_params: usize,
}

impl QuantFrameCnn {
    /// Converts a trained frame classifier into its int8 deployment form.
    /// Returns `None` for untrained classifiers.
    ///
    /// # Panics
    ///
    /// Panics on a patch edge above 256 pixels: the integer pooling
    /// accumulates squared pixel values in `u32`, which is exact only up
    /// to `256 * 256 * 255^2` (the same bound the f32 featurizer
    /// enforces — both modes share [`crate::vision::pool_patches_into`]).
    pub fn from_trained(cnn: &FrameCnn) -> Option<Self> {
        if !cnn.is_trained() {
            return None;
        }
        assert!(
            cnn.config().patch <= 256,
            "int8 patch pooling supports patch edges up to 256 pixels, got {}",
            cnn.config().patch
        );
        let (featurizer, head) = cnn.parts();
        Some(QuantFrameCnn {
            config: *cnn.config(),
            filters: QuantizedMatrix::quantize_per_row(featurizer.filters()),
            head: QuantClassifierHead::from_head(head),
            threshold: cnn.threshold(),
            featurizer_flops: featurizer.flops(),
            featurizer_params: featurizer.parameter_count(),
        })
    }

    /// Expected pixel-buffer length per frame.
    pub fn frame_len(&self) -> usize {
        self.config.width * self.config.height
    }

    /// The decision threshold (inherited from the trained classifier).
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Deployed model bytes: quantized weights plus f32 biases.
    pub fn memory_bytes(&self) -> usize {
        self.filters.storage_bytes() + self.head.storage_bytes()
    }

    /// Multiply-accumulate count of one frame inference (same count as
    /// the f32 path — see [`QuantSensitiveClassifier::flops_per_inference`]).
    pub fn flops_per_inference(&self) -> u64 {
        self.featurizer_flops + self.head.flops()
    }

    /// Featurizes one frame into `plan.features`: per-patch mean and
    /// standard deviation via the shared integer pooling (bit-identical
    /// to the f32 path — pooling is mode-independent), then the
    /// quantized 3x3 convolution over the zero-padded grid with ReLU +
    /// global max pooling fused into one per-channel rescale.
    fn featurize_into(&self, pixels: &[u8], plan: &mut FeaturePlan) -> Result<()> {
        if pixels.len() != self.frame_len() {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "frame has {} pixels, int8 featurizer expects {}x{}",
                    pixels.len(),
                    self.config.width,
                    self.config.height
                ),
            });
        }
        let (cols, rows) = (self.config.grid_cols(), self.config.grid_rows());
        // Patch pooling straight from the u8 pixels with integer
        // accumulators — the shared helper both modes use, so the
        // mean/std features are bit-identical to the f32 path's.
        crate::vision::pool_patches_into(pixels, &self.config, &mut plan.means, &mut plan.stds);

        // Quantize the patch-mean grid once, copy it into the
        // zero-padded plan scratch, and run the integer 3x3 convolution
        // branch-free: every tap is a plain indexed load, the border
        // handling is baked into the padding.
        let grid_scale = quantize_activations(&plan.means, &mut plan.act_q);
        plan.features.clear();
        plan.features.extend_from_slice(&plan.means);
        plan.features.extend_from_slice(&plan.stds);
        let padded_cols = cols + 2;
        plan.grid_q.clear();
        plan.grid_q.resize(padded_cols * (rows + 2), 0);
        for gy in 0..rows {
            let dst = (gy + 1) * padded_cols + 1;
            plan.grid_q[dst..dst + cols].copy_from_slice(&plan.act_q[gy * cols..(gy + 1) * cols]);
        }
        let grid = &plan.grid_q;
        for ch in 0..self.filters.rows() {
            let filter = self.filters.row(ch);
            let w: [i32; 9] = std::array::from_fn(|i| i32::from(filter[i]));
            // The rescale is positive, so the channel max commutes with
            // it: track the max in the exact integer domain and rescale
            // (with the folded ReLU) once per channel.
            let mut max_acc = i32::MIN;
            for gy in 0..rows {
                let r0 = &grid[gy * padded_cols..gy * padded_cols + padded_cols];
                let r1 = &grid[(gy + 1) * padded_cols..(gy + 1) * padded_cols + padded_cols];
                let r2 = &grid[(gy + 2) * padded_cols..(gy + 2) * padded_cols + padded_cols];
                for gx in 0..cols {
                    let acc = w[0] * i32::from(r0[gx])
                        + w[1] * i32::from(r0[gx + 1])
                        + w[2] * i32::from(r0[gx + 2])
                        + w[3] * i32::from(r1[gx])
                        + w[4] * i32::from(r1[gx + 1])
                        + w[5] * i32::from(r1[gx + 2])
                        + w[6] * i32::from(r2[gx])
                        + w[7] * i32::from(r2[gx + 1])
                        + w[8] * i32::from(r2[gx + 2]);
                    max_acc = max_acc.max(acc);
                }
            }
            let rescale = grid_scale * self.filters.row_scale(ch);
            plan.features.push((max_acc as f32 * rescale).max(0.0));
        }
        Ok(())
    }

    /// Probability that the frame shows sensitive content — the vision
    /// TA's int8 per-frame hot path.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] for frames of the wrong
    /// geometry.
    pub fn predict_with(&self, pixels: &[u8], plan: &mut FeaturePlan) -> Result<f32> {
        self.featurize_into(pixels, plan)?;
        self.head.predict_from_plan(plan)
    }

    /// Binary decision using the inherited threshold.
    ///
    /// # Errors
    ///
    /// Same as [`QuantFrameCnn::predict_with`].
    pub fn is_sensitive_with(&self, pixels: &[u8], plan: &mut FeaturePlan) -> Result<bool> {
        Ok(self.predict_with(pixels, plan)? >= self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{Architecture, TrainConfig};
    use crate::head::HeadTrainConfig;

    fn token_corpus(n: usize, seed: u64) -> Vec<(Vec<usize>, bool)> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let len = rng.gen_range(4..12);
                let sensitive = rng.gen_bool(0.5);
                let mut tokens: Vec<usize> = (0..len).map(|_| rng.gen_range(8..64)).collect();
                if sensitive {
                    tokens[0] = rng.gen_range(0..8);
                    tokens[len / 2] = rng.gen_range(0..8);
                }
                (tokens, sensitive)
            })
            .collect()
    }

    fn trained_cnn() -> SensitiveClassifier {
        let mut c = SensitiveClassifier::new(Architecture::Cnn, TrainConfig::small(64));
        c.fit(&token_corpus(200, 3)).unwrap();
        c
    }

    #[test]
    fn untrained_and_non_cnn_classifiers_do_not_convert() {
        let untrained = SensitiveClassifier::new(Architecture::Cnn, TrainConfig::small(64));
        assert!(QuantSensitiveClassifier::from_trained(&untrained).is_none());
        let mut transformer =
            SensitiveClassifier::new(Architecture::Transformer, TrainConfig::small(64));
        transformer.fit(&token_corpus(60, 4)).unwrap();
        assert!(QuantSensitiveClassifier::from_trained(&transformer).is_none());
    }

    #[test]
    fn int8_classifier_tracks_the_f32_classifier() {
        let f32_model = trained_cnn();
        let int8 = QuantSensitiveClassifier::from_trained(&f32_model).unwrap();
        let mut plan = FeaturePlan::new();
        let test = token_corpus(120, 5);
        let mut agree = 0usize;
        let mut max_delta = 0f32;
        for (tokens, _) in &test {
            let p_f32 = f32_model.predict(tokens).unwrap();
            let p_int8 = int8.predict_with(tokens, &mut plan).unwrap();
            max_delta = max_delta.max((p_f32 - p_int8).abs());
            if (p_f32 >= 0.5) == (p_int8 >= int8.threshold()) {
                agree += 1;
            }
        }
        assert!(
            max_delta < 0.2,
            "int8 probabilities drifted too far: {max_delta}"
        );
        assert!(
            agree as f64 / test.len() as f64 > 0.97,
            "decisions diverge: {agree}/{}",
            test.len()
        );
        // Deterministic across calls and plans.
        let mut other_plan = FeaturePlan::new();
        let (tokens, _) = &test[0];
        assert_eq!(
            int8.predict_with(tokens, &mut plan).unwrap(),
            int8.predict_with(tokens, &mut other_plan).unwrap()
        );
        // Degenerate inputs do not panic.
        for degenerate in [vec![], vec![1usize], vec![999usize; 3]] {
            assert!(int8.predict_with(&degenerate, &mut plan).is_ok());
        }
    }

    #[test]
    fn int8_residency_is_about_four_times_smaller() {
        let f32_model = trained_cnn();
        let int8 = QuantSensitiveClassifier::from_trained(&f32_model).unwrap();
        let ratio = f32_model.memory_bytes_f32() as f64 / int8.memory_bytes() as f64;
        assert!(
            ratio > 3.0 && ratio < 4.5,
            "unexpected compression ratio {ratio:.2}"
        );
        assert_eq!(
            int8.flops_per_inference(8),
            f32_model.flops_per_inference(8)
        );
    }

    fn frame_corpus(n: usize) -> Vec<(Vec<u8>, bool)> {
        let config = VisionConfig::smart_home();
        (0..n)
            .map(|i| {
                let sensitive = i % 2 == 0;
                let pixels: Vec<u8> = (0..config.width * config.height)
                    .map(|idx| {
                        let y = idx / config.width;
                        if sensitive {
                            if y % 4 < 2 {
                                230
                            } else {
                                40
                            }
                        } else {
                            118 + ((idx * 7) % 5) as u8
                        }
                    })
                    .collect();
                (pixels, sensitive)
            })
            .collect()
    }

    #[test]
    fn int8_frame_cnn_tracks_the_f32_frame_cnn() {
        let corpus = frame_corpus(60);
        let mut cnn = FrameCnn::new(VisionConfig::smart_home());
        assert!(QuantFrameCnn::from_trained(&cnn).is_none());
        cnn.fit(&corpus).unwrap();
        let int8 = QuantFrameCnn::from_trained(&cnn).unwrap();
        assert!(int8.memory_bytes() < cnn.memory_bytes_f32());
        assert_eq!(int8.flops_per_inference(), cnn.flops_per_inference());
        let mut plan = FeaturePlan::new();
        let mut agree = 0usize;
        for (pixels, label) in &corpus {
            let p_f32 = cnn.predict(pixels).unwrap();
            let p_int8 = int8.predict_with(pixels, &mut plan).unwrap();
            assert!(
                (p_f32 - p_int8).abs() < 0.25,
                "frame probability drifted: {p_f32} vs {p_int8}"
            );
            if int8.is_sensitive_with(pixels, &mut plan).unwrap() == *label {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / corpus.len() as f64 > 0.9,
            "int8 frame accuracy too low: {agree}/{}",
            corpus.len()
        );
        // Wrong geometry is rejected.
        assert!(int8.predict_with(&[0u8; 3], &mut plan).is_err());
    }

    #[test]
    fn quant_head_matches_fake_quantized_reference_closely() {
        // The quantized head against the f32 head on the same features.
        let mut head = ClassifierHead::new(12, 16, 9);
        let features: Vec<crate::tensor::Matrix> = (0..80)
            .map(|i| crate::tensor::Matrix::random(1, 12, 1.0, 100 + i))
            .collect();
        let labels: Vec<bool> = features
            .iter()
            .map(|f| f.data().iter().sum::<f32>() > 0.0)
            .collect();
        head.train(&features, &labels, &HeadTrainConfig::default())
            .unwrap();
        let quant = QuantClassifierHead::from_head(&head);
        let mut plan = FeaturePlan::new();
        for f in &features {
            plan.features.clear();
            plan.features.extend_from_slice(f.row(0));
            let p_q = quant.predict_from_plan(&mut plan).unwrap();
            let p_f = head.predict(f).unwrap();
            assert!((p_q - p_f).abs() < 0.1, "head drifted: {p_f} vs {p_q}");
        }
        assert!(quant.storage_bytes() > 0);
        assert!(quant.flops() > 0);
    }
}
