//! Neural-network layers.
//!
//! Forward passes for every layer the three classifier architectures need,
//! plus backpropagation for the dense layers used in the trainable head.

use serde::{Deserialize, Serialize};

use crate::tensor::Matrix;
use crate::{MlError, Result};

/// Rectified linear unit.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of ReLU (with the convention relu'(0) = 0).
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Hyperbolic tangent.
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// A fully connected layer with optional gradient support.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix (`input_dim x output_dim`).
    pub weights: Matrix,
    /// Bias vector (`output_dim`).
    pub bias: Vec<f32>,
}

impl Dense {
    /// Creates a dense layer with seeded Xavier-ish random weights.
    pub fn new(input_dim: usize, output_dim: usize, seed: u64) -> Self {
        let scale = (6.0 / (input_dim + output_dim) as f32).sqrt();
        Dense {
            weights: Matrix::random(input_dim, output_dim, scale, seed),
            bias: vec![0.0; output_dim],
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Number of parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Forward pass: `x (n x in) -> n x out`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `x` has the wrong width.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        x.matmul(&self.weights)?.add_row_broadcast(&self.bias)
    }

    /// Multiply-accumulate count of one forward pass over `n` rows.
    pub fn flops(&self, n: usize) -> u64 {
        (n * self.weights.rows() * self.weights.cols()) as u64
    }
}

/// Gradients of a dense layer produced by [`dense_backward`].
#[derive(Debug, Clone)]
pub struct DenseGrad {
    /// Gradient with respect to the weights.
    pub d_weights: Matrix,
    /// Gradient with respect to the bias.
    pub d_bias: Vec<f32>,
    /// Gradient with respect to the input (propagated upstream).
    pub d_input: Matrix,
}

/// Backward pass of a dense layer.
///
/// `input` is the forward input (`n x in`), `d_output` is the gradient of
/// the loss with respect to the layer output (`n x out`).
///
/// # Errors
///
/// Returns [`MlError::ShapeMismatch`] on inconsistent shapes.
pub fn dense_backward(layer: &Dense, input: &Matrix, d_output: &Matrix) -> Result<DenseGrad> {
    let d_weights = input.transpose().matmul(d_output)?;
    let mut d_bias = vec![0.0f32; layer.bias.len()];
    for r in 0..d_output.rows() {
        for (c, grad) in d_bias.iter_mut().enumerate().take(d_output.cols()) {
            *grad += d_output.get(r, c);
        }
    }
    let d_input = d_output.matmul(&layer.weights.transpose())?;
    Ok(DenseGrad {
        d_weights,
        d_bias,
        d_input,
    })
}

/// Token embedding table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding {
    table: Matrix,
}

impl Embedding {
    /// Creates an embedding of `vocab_size x dim` with seeded random values.
    pub fn new(vocab_size: usize, dim: usize, seed: u64) -> Self {
        Embedding {
            table: Matrix::random(vocab_size, dim, 0.5, seed),
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.table.rows()
    }

    /// Number of parameters.
    pub fn parameter_count(&self) -> usize {
        self.table.len()
    }

    /// Mutable access to the embedding table (used by quantization).
    pub(crate) fn table_mut(&mut self) -> &mut Matrix {
        &mut self.table
    }

    /// Read access to the embedding table (used by int8 conversion).
    pub(crate) fn table(&self) -> &Matrix {
        &self.table
    }

    /// Looks up a token sequence, producing a `len x dim` matrix. Unknown
    /// token ids map to the zero vector.
    pub fn lookup(&self, tokens: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(tokens.len(), self.dim());
        for (i, &t) in tokens.iter().enumerate() {
            if t < self.table.rows() {
                out.row_mut(i).copy_from_slice(self.table.row(t));
            }
        }
        out
    }
}

/// Sinusoidal positional encoding added to a sequence of embeddings.
pub fn add_positional_encoding(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    let dim = x.cols();
    for pos in 0..x.rows() {
        for i in 0..dim {
            let angle = pos as f32 / 10_000f32.powf((2 * (i / 2)) as f32 / dim as f32);
            let enc = if i % 2 == 0 { angle.sin() } else { angle.cos() };
            let v = out.get(pos, i) + enc;
            out.set(pos, i, v);
        }
    }
    out
}

/// Layer normalization over each row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerNorm {
    /// Per-feature scale.
    pub gamma: Vec<f32>,
    /// Per-feature shift.
    pub beta: Vec<f32>,
    /// Numerical stabilizer.
    pub epsilon: f32,
}

impl LayerNorm {
    /// Creates an identity layer norm of the given width.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            epsilon: 1e-5,
        }
    }

    /// Normalizes each row to zero mean / unit variance, then scales and
    /// shifts.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if the width differs from the
    /// layer's.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.gamma.len() {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "layer norm of width {} applied to {}",
                    self.gamma.len(),
                    x.cols()
                ),
            });
        }
        let mut out = x.clone();
        for r in 0..x.rows() {
            let row = out.row_mut(r);
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            let var: f32 =
                row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / row.len() as f32;
            let denom = (var + self.epsilon).sqrt();
            for (i, v) in row.iter_mut().enumerate() {
                *v = (*v - mean) / denom * self.gamma[i] + self.beta[i];
            }
        }
        Ok(out)
    }
}

/// A bank of 1-D convolution filters over a token-embedding sequence
/// (the text-CNN building block: filters of a fixed width slide over the
/// sequence dimension and max-pool to one value per filter).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv1d {
    /// Filter width in tokens.
    pub kernel_width: usize,
    /// One filter per output channel: each is `kernel_width * input_dim`
    /// weights stored row-major.
    pub filters: Matrix,
    /// Per-filter bias.
    pub bias: Vec<f32>,
    input_dim: usize,
}

impl Conv1d {
    /// Creates a convolution bank.
    pub fn new(input_dim: usize, channels: usize, kernel_width: usize, seed: u64) -> Self {
        let scale = (2.0 / (kernel_width * input_dim) as f32).sqrt();
        Conv1d {
            kernel_width,
            filters: Matrix::random(channels, kernel_width * input_dim, scale, seed),
            bias: vec![0.0; channels],
            input_dim,
        }
    }

    /// Number of output channels.
    pub fn channels(&self) -> usize {
        self.filters.rows()
    }

    /// Embedding width the filters were built for.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of parameters.
    pub fn parameter_count(&self) -> usize {
        self.filters.len() + self.bias.len()
    }

    /// Applies the filters over the sequence and ReLU, returning a
    /// `positions x channels` matrix (positions = `len - width + 1`, or a
    /// single zero row if the sequence is shorter than the kernel).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if the embedding width differs
    /// from the one the filters were built for.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.input_dim {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "conv1d expects embedding dim {}, got {}",
                    self.input_dim,
                    x.cols()
                ),
            });
        }
        if x.rows() < self.kernel_width {
            return Ok(Matrix::zeros(1, self.channels()));
        }
        let positions = x.rows() - self.kernel_width + 1;
        let mut out = Matrix::zeros(positions, self.channels());
        for p in 0..positions {
            for ch in 0..self.channels() {
                let filter = self.filters.row(ch);
                let mut acc = self.bias[ch];
                for k in 0..self.kernel_width {
                    let emb = x.row(p + k);
                    let w = &filter[k * self.input_dim..(k + 1) * self.input_dim];
                    for (a, b) in emb.iter().zip(w.iter()) {
                        acc += a * b;
                    }
                }
                out.set(p, ch, relu(acc));
            }
        }
        Ok(out)
    }

    /// Multiply-accumulate count for a sequence of length `len`.
    pub fn flops(&self, len: usize) -> u64 {
        let positions = len.saturating_sub(self.kernel_width - 1).max(1);
        (positions * self.channels() * self.kernel_width * self.input_dim) as u64
    }
}

/// Single-head scaled dot-product self-attention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelfAttention {
    /// Query projection.
    pub wq: Dense,
    /// Key projection.
    pub wk: Dense,
    /// Value projection.
    pub wv: Dense,
    /// Output projection.
    pub wo: Dense,
}

impl SelfAttention {
    /// Creates an attention block of width `dim`.
    pub fn new(dim: usize, seed: u64) -> Self {
        SelfAttention {
            wq: Dense::new(dim, dim, seed ^ 0x51),
            wk: Dense::new(dim, dim, seed ^ 0x52),
            wv: Dense::new(dim, dim, seed ^ 0x53),
            wo: Dense::new(dim, dim, seed ^ 0x54),
        }
    }

    /// Number of parameters.
    pub fn parameter_count(&self) -> usize {
        self.wq.parameter_count()
            + self.wk.parameter_count()
            + self.wv.parameter_count()
            + self.wo.parameter_count()
    }

    /// Forward pass over a `len x dim` sequence.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if the width differs from the
    /// block's.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let q = self.wq.forward(x)?;
        let k = self.wk.forward(x)?;
        let v = self.wv.forward(x)?;
        let scale = 1.0 / (x.cols() as f32).sqrt();
        let scores = q.matmul(&k.transpose())?.scale(scale).softmax_rows();
        let context = scores.matmul(&v)?;
        self.wo.forward(&context)
    }

    /// Multiply-accumulate count for a sequence of length `len` and width
    /// `dim`.
    pub fn flops(&self, len: usize) -> u64 {
        let dim = self.wq.input_dim();
        // Four projections plus two len x len matmuls.
        (4 * len * dim * dim + 2 * len * len * dim) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activations_behave() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(relu_grad(-1.0), 0.0);
        assert_eq!(relu_grad(1.0), 1.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.99);
        assert!(tanh(0.0).abs() < 1e-6);
    }

    #[test]
    fn dense_forward_shapes_and_flops() {
        let layer = Dense::new(4, 3, 1);
        let x = Matrix::random(2, 4, 1.0, 2);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.rows(), 2);
        assert_eq!(y.cols(), 3);
        assert_eq!(layer.parameter_count(), 4 * 3 + 3);
        assert_eq!(layer.flops(2), 24);
        assert!(layer.forward(&Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn dense_backward_gradient_check() {
        // Numerical gradient check on a tiny layer and squared loss.
        let mut layer = Dense::new(3, 2, 7);
        let x = Matrix::random(4, 3, 1.0, 8);
        let target = Matrix::random(4, 2, 1.0, 9);
        let loss = |l: &Dense| -> f32 {
            let y = l.forward(&x).unwrap();
            y.data()
                .iter()
                .zip(target.data().iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                * 0.5
        };
        let y = layer.forward(&x).unwrap();
        let d_output = Matrix::from_vec(
            4,
            2,
            y.data()
                .iter()
                .zip(target.data().iter())
                .map(|(a, b)| a - b)
                .collect(),
        )
        .unwrap();
        let grad = dense_backward(&layer, &x, &d_output).unwrap();
        // Check a few weight gradients numerically.
        let eps = 1e-3f32;
        for &(r, c) in &[(0usize, 0usize), (1, 1), (2, 0)] {
            let orig = layer.weights.get(r, c);
            layer.weights.set(r, c, orig + eps);
            let plus = loss(&layer);
            layer.weights.set(r, c, orig - eps);
            let minus = loss(&layer);
            layer.weights.set(r, c, orig);
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = grad.d_weights.get(r, c);
            assert!(
                (numeric - analytic).abs() < 0.02 * (1.0 + numeric.abs()),
                "grad mismatch at ({r},{c}): numeric {numeric}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn embedding_lookup_handles_unknown_tokens() {
        let emb = Embedding::new(10, 4, 3);
        let x = emb.lookup(&[0, 3, 99]);
        assert_eq!(x.rows(), 3);
        assert_eq!(x.cols(), 4);
        assert_eq!(x.row(0), emb.table.row(0));
        assert!(x.row(2).iter().all(|&v| v == 0.0));
        assert_eq!(emb.vocab_size(), 10);
        assert_eq!(emb.parameter_count(), 40);
    }

    #[test]
    fn positional_encoding_changes_rows_differently() {
        let x = Matrix::zeros(4, 8);
        let enc = add_positional_encoding(&x);
        assert_ne!(enc.row(1), enc.row(2));
        // Position 0 sin components are zero, cos components are one.
        assert_eq!(enc.get(0, 0), 0.0);
        assert_eq!(enc.get(0, 1), 1.0);
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let ln = LayerNorm::new(4);
        let x = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = ln.forward(&x).unwrap();
        let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        let var: f32 = y
            .row(0)
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
        assert!(ln.forward(&Matrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn conv1d_shapes_and_short_sequences() {
        let conv = Conv1d::new(8, 6, 3, 5);
        let x = Matrix::random(10, 8, 1.0, 6);
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.rows(), 8);
        assert_eq!(y.cols(), 6);
        assert!(
            y.data().iter().all(|&v| v >= 0.0),
            "relu output must be non-negative"
        );
        // Shorter than the kernel: single zero row.
        let y = conv.forward(&Matrix::random(2, 8, 1.0, 7)).unwrap();
        assert_eq!(y.rows(), 1);
        assert!(conv.forward(&Matrix::zeros(4, 9)).is_err());
        assert!(conv.flops(10) > 0);
    }

    #[test]
    fn attention_preserves_shape_and_mixes_positions() {
        let attn = SelfAttention::new(8, 11);
        let x = Matrix::random(5, 8, 1.0, 12);
        let y = attn.forward(&x).unwrap();
        assert_eq!(y.rows(), 5);
        assert_eq!(y.cols(), 8);
        // Changing one input position changes other output positions
        // (information mixes through attention).
        let mut x2 = x.clone();
        for v in x2.row_mut(0) {
            *v += 1.0;
        }
        let y2 = attn.forward(&x2).unwrap();
        assert_ne!(y.row(4), y2.row(4));
        assert!(attn.flops(5) > 0);
        assert!(attn.parameter_count() > 0);
    }
}
