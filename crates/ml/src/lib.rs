//! # perisec-ml — the machine-learning stack that runs inside the TA
//!
//! Plan item 4 of the paper: the TA hosts "a pre-trained ML classifier
//! capable of determining potentially sensitive information", fed either
//! directly (images) or through "a pre-trained speech recognition model
//! [that transcribes] the audio signals received from the device driver",
//! and considers three classifier architectures — CNNs, Transformers, and a
//! hybrid CNN-Transformer.
//!
//! Everything here is implemented from scratch in safe Rust; there are no
//! external ML dependencies and no downloaded checkpoints:
//!
//! * [`tensor`] — a small dense-matrix type with the operations the models
//!   need;
//! * [`layers`] — dense layers (with backprop), embeddings, 1-D
//!   convolutions, single-head self-attention, layer norm and pooling;
//! * [`models`] — the three feature extractors the paper names: a text CNN,
//!   a Transformer encoder, and a hybrid CNN→Transformer;
//! * [`head`] — the trainable classification head (dense-ReLU-dense,
//!   Adam + binary cross-entropy);
//! * [`classifier`] — [`classifier::SensitiveClassifier`], which combines
//!   an extractor and a head, trains on a labelled token corpus, predicts,
//!   and reports quality metrics and resource footprints;
//! * [`quant`] — 8-bit post-training quantization, the paper's "smaller ML
//!   models" mitigation for tight secure memory, plus the fused
//!   i8 x i8 -> i32 matmul kernel and the [`quant::QuantMode`] knob;
//! * [`int8`] — the integer inference engine: quantized deployment forms
//!   of the TA classifiers whose forward passes never dequantize;
//! * [`plan`] — the reusable [`plan::FeaturePlan`] scratch that makes
//!   steady-state TA inference allocation-free;
//! * [`mfcc`] — framing, FFT, mel filterbank and DCT for audio features;
//! * [`stt`] — a lightweight keyword speech-to-text model (template
//!   matching over MFCC features) standing in for the pre-trained speech
//!   recognizers the paper cites;
//! * [`vision`] — the image-side stack: a patch-pooling + small-2D-conv
//!   frame featurizer and the [`vision::FrameCnn`] frame classifier hosted
//!   by the vision TA.
//!
//! ## Pre-training substitution
//!
//! The paper reuses large pre-trained models (Whisper, fairseq S2T,
//! HuggingFace Transformers). Shipping those is impossible here, so the
//! repository *trains its own small models* on the synthetic corpus from
//! `perisec-workload`: the convolutional / attention feature extractors use
//! fixed, seeded random weights (random-feature extractors) and the dense
//! classification head is trained with Adam. This preserves what the
//! evaluation needs — three architecturally distinct classifiers whose
//! accuracy, latency and memory can be compared inside the TEE — without
//! external artifacts. DESIGN.md documents this substitution.

// Unsafe is denied crate-wide and allowed back only for the `quant::x86`
// intrinsic kernels and their runtime-dispatch call sites. Everything
// else in the crate must stay safe Rust, and every unsafe block carries
// a SAFETY comment tied to a proptest pinning the kernel bit-identical
// to its scalar oracle.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod head;
pub mod int8;
pub mod layers;
pub mod mfcc;
pub mod models;
pub mod plan;
pub mod quant;
pub mod stt;
pub mod tensor;
pub mod vision;

pub use classifier::{Architecture, ClassifierMetrics, SensitiveClassifier, TrainConfig};
pub use int8::{QuantFrameCnn, QuantSensitiveClassifier};
pub use mfcc::{MfccConfig, MfccExtractor};
pub use plan::FeaturePlan;
pub use quant::QuantMode;
pub use stt::{KeywordStt, Transcript};
pub use tensor::Matrix;
pub use vision::{FrameCnn, FrameFeaturizer, VisionConfig};

use std::error::Error;
use std::fmt;

/// Errors raised by the ML stack.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MlError {
    /// Dimensions of an operation did not line up.
    ShapeMismatch {
        /// Description of the mismatch.
        reason: String,
    },
    /// A model was used before it was trained / initialized.
    NotTrained,
    /// Training data was empty or degenerate.
    BadTrainingData {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::ShapeMismatch { reason } => write!(f, "shape mismatch: {reason}"),
            MlError::NotTrained => write!(f, "model has not been trained"),
            MlError::BadTrainingData { reason } => write!(f, "bad training data: {reason}"),
        }
    }
}

impl Error for MlError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, MlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ml_error_is_well_behaved() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<MlError>();
        assert!(MlError::NotTrained.to_string().contains("trained"));
    }
}
