//! Audio feature extraction: framing, FFT, mel filterbank, MFCC.
//!
//! The keyword speech-to-text model ([`crate::stt`]) operates on
//! mel-frequency cepstral coefficients, the standard front-end of small
//! speech recognizers. Everything — including the radix-2 FFT — is
//! implemented here.
//!
//! The pipeline runs in **f32 with precomputed tables**: the Hamming
//! window (pre-scaled by the i16 full-scale), every FFT twiddle factor
//! (tabulated per stage, so the butterfly loop has no dependent rotation
//! recurrence, let alone trigonometry), the mel filterbank taps and the
//! DCT-II basis. Constants are computed once in f64 and rounded to f32;
//! the per-frame arithmetic is pure single-precision, which halves the
//! scratch bandwidth and doubles the SIMD lane count on the TA hot path.
//! Frame energies for VAD are the one exception: the sums of squared i16
//! samples are **exact i64 integers**, with a single f64 divide and
//! square root per frame at the end.

use serde::{Deserialize, Serialize};

use crate::plan::FeaturePlan;
use crate::tensor::Matrix;

/// Configuration of the MFCC front-end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MfccConfig {
    /// Sample rate of the input audio.
    pub sample_rate_hz: u32,
    /// Analysis frame length in samples (must be a power of two).
    pub frame_len: usize,
    /// Hop between frames in samples.
    pub hop_len: usize,
    /// Number of mel filterbank channels.
    pub n_mels: usize,
    /// Number of cepstral coefficients to keep.
    pub n_coeffs: usize,
}

impl MfccConfig {
    /// Standard 16 kHz speech configuration: 32 ms frames, 16 ms hop,
    /// 40 mel channels, 20 coefficients. The channel count is chosen so
    /// that neighbouring synthetic word signatures land in distinct mel
    /// bins across the whole 0-8 kHz band (20 channels blur the upper
    /// formants together and the keyword STT's substitution rate soars).
    pub fn speech_16khz() -> Self {
        MfccConfig {
            sample_rate_hz: 16_000,
            frame_len: 512,
            hop_len: 256,
            n_mels: 40,
            n_coeffs: 20,
        }
    }
}

impl Default for MfccConfig {
    fn default() -> Self {
        MfccConfig::speech_16khz()
    }
}

/// In-place iterative radix-2 FFT over split re/im buffers (one-shot
/// plan; the extractor holds a persistent [`FftPlan`]).
///
/// # Panics
///
/// Panics if the length is not a power of two (guarded by the extractor).
#[cfg(test)]
fn fft_radix2(re: &mut [f32], im: &mut [f32]) {
    let n = re.len();
    let plan = FftPlan::new(n);
    plan.run(re, im);
}

/// The precomputed constants of one radix-2 FFT size: the bit-reversal
/// permutation and the **full twiddle table** of every butterfly stage.
/// Building the plan costs one pass of f64 trigonometry at extractor
/// construction; every subsequent frame reuses it — the FFT hot loop
/// performs no `sin`/`cos` and no incremental rotation (the dependent
/// multiply chain the old f64 loop serialized on), just table lookups
/// over `n - 1` tabulated (cos, sin) pairs.
#[derive(Debug, Clone)]
struct FftPlan {
    n: usize,
    /// Swap targets of the bit-reversal permutation (`i < j` pairs only).
    swaps: Vec<(u32, u32)>,
    /// Twiddles of stage `s` (len = 2^(s+1)): `len/2` (cos, sin) pairs,
    /// flattened stage after stage (offset of stage `s` is `2^s - 1`).
    twiddles: Vec<(f32, f32)>,
}

impl FftPlan {
    fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "fft length must be a power of two");
        let mut swaps = Vec::new();
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                swaps.push((i as u32, j as u32));
            }
        }
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2usize;
        while len <= n {
            for k in 0..len / 2 {
                let angle = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                twiddles.push((angle.cos() as f32, angle.sin() as f32));
            }
            len <<= 1;
        }
        FftPlan { n, swaps, twiddles }
    }

    /// Runs the planned FFT in place.
    ///
    /// # Panics
    ///
    /// Panics if the buffers differ from the planned length.
    fn run(&self, re: &mut [f32], im: &mut [f32]) {
        let n = self.n;
        assert_eq!(re.len(), n, "fft buffer does not match the plan");
        assert_eq!(im.len(), n, "fft buffer does not match the plan");
        if n <= 1 {
            return;
        }
        for &(i, j) in &self.swaps {
            re.swap(i as usize, j as usize);
            im.swap(i as usize, j as usize);
        }
        let mut len = 2usize;
        let mut stage_offset = 0usize;
        while len <= n {
            let half = len / 2;
            let twiddles = &self.twiddles[stage_offset..stage_offset + half];
            let mut i = 0;
            while i < n {
                for (k, &(w_re, w_im)) in twiddles.iter().enumerate() {
                    let even_re = re[i + k];
                    let even_im = im[i + k];
                    let odd_re = re[i + k + half] * w_re - im[i + k + half] * w_im;
                    let odd_im = re[i + k + half] * w_im + im[i + k + half] * w_re;
                    re[i + k] = even_re + odd_re;
                    im[i + k] = even_im + odd_im;
                    re[i + k + half] = even_re - odd_re;
                    im[i + k + half] = even_im - odd_im;
                }
                i += len;
            }
            stage_offset += half;
            len <<= 1;
        }
    }
}

fn hz_to_mel(hz: f64) -> f64 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

fn mel_to_hz(mel: f64) -> f64 {
    700.0 * (10f64.powf(mel / 2595.0) - 1.0)
}

/// The MFCC front-end.
///
/// Construction precomputes every constant of the pipeline — the
/// pre-scaled Hamming window, the mel filterbank taps, the FFT plan
/// (bit-reversal + full twiddle tables) and the DCT-II basis — so
/// extraction touches no trigonometry and runs entirely in f32. Paired
/// with a [`FeaturePlan`]'s scratch buffers
/// ([`MfccExtractor::extract_into`]), a warm extractor processes frames
/// with **zero** heap allocations.
#[derive(Debug, Clone)]
pub struct MfccExtractor {
    config: MfccConfig,
    /// Hamming window pre-divided by the i16 full scale: one multiply
    /// turns a raw sample into a windowed, normalized f32.
    window: Vec<f32>,
    filterbank: Vec<Vec<(usize, f32)>>,
    fft: FftPlan,
    /// DCT-II basis, row-major `n_coeffs x n_mels`.
    dct: Vec<f32>,
}

impl MfccExtractor {
    /// Builds the extractor (precomputes the Hamming window and the mel
    /// filterbank).
    ///
    /// # Panics
    ///
    /// Panics if `frame_len` is not a power of two or `hop_len` is zero.
    pub fn new(config: MfccConfig) -> Self {
        assert!(
            config.frame_len.is_power_of_two(),
            "frame_len must be a power of two"
        );
        assert!(config.hop_len > 0, "hop_len must be non-zero");
        let window: Vec<f32> = (0..config.frame_len)
            .map(|i| {
                let hamming = 0.54
                    - 0.46
                        * (2.0 * std::f64::consts::PI * i as f64 / (config.frame_len - 1) as f64)
                            .cos();
                (hamming / i16::MAX as f64) as f32
            })
            .collect();
        // Triangular mel filters over the FFT bins.
        let n_bins = config.frame_len / 2;
        let f_max = config.sample_rate_hz as f64 / 2.0;
        let mel_max = hz_to_mel(f_max);
        let mel_points: Vec<f64> = (0..config.n_mels + 2)
            .map(|i| mel_to_hz(mel_max * i as f64 / (config.n_mels + 1) as f64))
            .collect();
        let bin_of = |hz: f64| -> usize { ((hz / f_max) * (n_bins as f64 - 1.0)).round() as usize };
        let mut filterbank = Vec::with_capacity(config.n_mels);
        for m in 1..=config.n_mels {
            let left = bin_of(mel_points[m - 1]);
            let centre = bin_of(mel_points[m]).max(left + 1);
            let right = bin_of(mel_points[m + 1])
                .max(centre + 1)
                .min(n_bins - 1)
                .max(centre + 1);
            let mut taps = Vec::new();
            for b in left..=right.min(n_bins - 1) {
                let w = if b <= centre {
                    (b - left) as f64 / (centre - left) as f64
                } else {
                    (right - b) as f64 / (right - centre) as f64
                };
                if w > 0.0 {
                    taps.push((b, w as f32));
                }
            }
            filterbank.push(taps);
        }
        let dct = (0..config.n_coeffs)
            .flat_map(|c| {
                (0..config.n_mels).map(move |m| {
                    (std::f64::consts::PI * c as f64 * (m as f64 + 0.5) / config.n_mels as f64)
                        .cos() as f32
                })
            })
            .collect();
        MfccExtractor {
            config,
            window,
            filterbank,
            fft: FftPlan::new(config.frame_len),
            dct,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> MfccConfig {
        self.config
    }

    /// Number of frames that `samples.len()` samples produce.
    pub fn frame_count(&self, samples: usize) -> usize {
        if samples < self.config.frame_len {
            0
        } else {
            (samples - self.config.frame_len) / self.config.hop_len + 1
        }
    }

    /// Per-frame RMS energy (used for voice-activity segmentation).
    pub fn frame_energies(&self, samples: &[i16]) -> Vec<f64> {
        let mut out = Vec::new();
        self.frame_energies_into(samples, &mut out);
        out
    }

    /// [`MfccExtractor::frame_energies`] into a caller-owned buffer —
    /// allocation-free once the buffer is warm. The per-frame sum of
    /// squared samples is an exact i64 integer; only the final
    /// normalization and square root touch floating point.
    pub fn frame_energies_into(&self, samples: &[i16], out: &mut Vec<f64>) {
        let frames = self.frame_count(samples.len());
        let full_scale = i16::MAX as f64 * i16::MAX as f64;
        out.clear();
        out.extend((0..frames).map(|f| {
            let start = f * self.config.hop_len;
            let frame = &samples[start..start + self.config.frame_len];
            let sum_sq: i64 = frame
                .iter()
                .map(|&s| {
                    let v = i64::from(s);
                    v * v
                })
                .sum();
            (sum_sq as f64 / (full_scale * frame.len() as f64)).sqrt()
        }));
    }

    /// Extracts MFCC features: one row per frame, `n_coeffs` columns.
    /// Returns an empty (0-row) matrix for audio shorter than one frame.
    pub fn extract(&self, samples: &[i16]) -> Matrix {
        let mut plan = FeaturePlan::new();
        let frames = self.extract_into(samples, &mut plan);
        Matrix::from_vec(frames, self.config.n_coeffs, plan.mfcc)
            .expect("extract_into produced a full feature grid")
    }

    /// Extracts MFCC features into the plan's scratch: on return,
    /// `plan.mfcc` holds the features row-major (`frames x n_coeffs`) and
    /// the frame count is returned. The arithmetic is identical to
    /// [`MfccExtractor::extract`]; the difference is that a warm plan
    /// makes the call allocation-free — the per-frame FFT, power, mel and
    /// DCT buffers are all reused.
    pub fn extract_into(&self, samples: &[i16], plan: &mut FeaturePlan) -> usize {
        let frames = self.frame_count(samples.len());
        let n_bins = self.config.frame_len / 2;
        plan.mfcc.clear();
        plan.mfcc.resize(frames * self.config.n_coeffs, 0.0);
        for f in 0..frames {
            let start = f * self.config.hop_len;
            let frame = &samples[start..start + self.config.frame_len];
            // Window + FFT (planned: no trig, no allocation). The window
            // carries the 1/i16::MAX normalization, so this is one
            // multiply per sample.
            plan.fft_re.clear();
            plan.fft_re.extend(
                frame
                    .iter()
                    .zip(self.window.iter())
                    .map(|(&s, &w)| s as f32 * w),
            );
            plan.fft_im.clear();
            plan.fft_im.resize(self.config.frame_len, 0.0);
            self.fft.run(&mut plan.fft_re, &mut plan.fft_im);
            // Power spectrum (first half).
            plan.power.clear();
            plan.power.extend(
                (0..n_bins)
                    .map(|b| plan.fft_re[b] * plan.fft_re[b] + plan.fft_im[b] * plan.fft_im[b]),
            );
            // Mel filterbank energies, log compressed.
            plan.log_mel.clear();
            plan.log_mel.extend(self.filterbank.iter().map(|taps| {
                let e: f32 = taps.iter().map(|&(b, w)| plan.power[b] * w).sum();
                (e + 1e-10).ln()
            }));
            // DCT-II to cepstral coefficients via the precomputed basis.
            let row = &mut plan.mfcc[f * self.config.n_coeffs..(f + 1) * self.config.n_coeffs];
            for (c, out) in row.iter_mut().enumerate() {
                let basis = &self.dct[c * self.config.n_mels..(c + 1) * self.config.n_mels];
                let mut acc = 0.0f32;
                for (&lm, &b) in plan.log_mel.iter().zip(basis) {
                    acc += lm * b;
                }
                *out = acc;
            }
        }
        frames
    }

    /// Mean MFCC vector over all frames (zero vector if no frames).
    pub fn mean_vector(&self, samples: &[i16]) -> Vec<f32> {
        let features = self.extract(samples);
        if features.rows() == 0 {
            return vec![0.0; self.config.n_coeffs];
        }
        features.mean_rows().data().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, len: usize, rate: f64, amplitude: f64) -> Vec<i16> {
        (0..len)
            .map(|i| {
                ((2.0 * std::f64::consts::PI * freq * i as f64 / rate).sin()
                    * amplitude
                    * i16::MAX as f64) as i16
            })
            .collect()
    }

    #[test]
    fn fft_of_pure_tone_peaks_at_the_right_bin() {
        let n = 512usize;
        let rate = 16_000.0;
        let freq = 1_000.0;
        let samples = tone(freq, n, rate, 0.9);
        let mut re: Vec<f32> = samples
            .iter()
            .map(|&s| s as f32 / i16::MAX as f32)
            .collect();
        let mut im = vec![0.0f32; n];
        fft_radix2(&mut re, &mut im);
        let mags: Vec<f32> = (0..n / 2)
            .map(|i| (re[i] * re[i] + im[i] * im[i]).sqrt())
            .collect();
        let peak_bin = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let expected_bin = (freq / rate * n as f64).round() as usize;
        assert!(
            (peak_bin as i64 - expected_bin as i64).abs() <= 1,
            "peak at bin {peak_bin}, expected {expected_bin}"
        );
    }

    #[test]
    fn planned_fft_matches_an_f64_reference() {
        // The tabulated-twiddle f32 FFT against a straightforward f64 DFT:
        // per-bin error stays at single-precision noise level relative to
        // the signal, across non-trivial inputs.
        let n = 256usize;
        let input: Vec<f64> = (0..n)
            .map(|i| {
                (2.0 * std::f64::consts::PI * 13.0 * i as f64 / n as f64).sin() * 0.7
                    + (2.0 * std::f64::consts::PI * 57.0 * i as f64 / n as f64).cos() * 0.2
            })
            .collect();
        let mut re: Vec<f32> = input.iter().map(|&v| v as f32).collect();
        let mut im = vec![0.0f32; n];
        fft_radix2(&mut re, &mut im);
        for bin in 0..n {
            let (mut want_re, mut want_im) = (0.0f64, 0.0f64);
            for (i, &v) in input.iter().enumerate() {
                let angle = -2.0 * std::f64::consts::PI * (bin * i) as f64 / n as f64;
                want_re += v * angle.cos();
                want_im += v * angle.sin();
            }
            assert!(
                (re[bin] as f64 - want_re).abs() < 1e-2 && (im[bin] as f64 - want_im).abs() < 1e-2,
                "bin {bin}: ({}, {}) vs f64 ({want_re}, {want_im})",
                re[bin],
                im[bin]
            );
        }
    }

    #[test]
    fn planned_extraction_reuses_scratch_and_matches() {
        let ex = MfccExtractor::new(MfccConfig::speech_16khz());
        let mut plan = crate::plan::FeaturePlan::new();
        for freq in [300.0, 1_000.0, 2_400.0] {
            let samples = tone(freq, 4_096, 16_000.0, 0.7);
            let frames = ex.extract_into(&samples, &mut plan);
            let reference = ex.extract(&samples);
            assert_eq!(frames, reference.rows());
            assert_eq!(plan.mfcc, reference.data());
            let mut energies = Vec::new();
            ex.frame_energies_into(&samples, &mut energies);
            assert_eq!(energies, ex.frame_energies(&samples));
        }
    }

    #[test]
    fn frame_count_and_short_audio() {
        let ex = MfccExtractor::new(MfccConfig::speech_16khz());
        assert_eq!(ex.frame_count(100), 0);
        assert_eq!(ex.frame_count(512), 1);
        assert_eq!(ex.frame_count(512 + 256), 2);
        assert_eq!(ex.extract(&[0i16; 100]).rows(), 0);
        assert_eq!(
            ex.mean_vector(&[0i16; 100]).len(),
            MfccConfig::speech_16khz().n_coeffs
        );
    }

    #[test]
    fn different_tones_have_different_mfcc_signatures() {
        let ex = MfccExtractor::new(MfccConfig::speech_16khz());
        let low = ex.mean_vector(&tone(300.0, 4_096, 16_000.0, 0.7));
        let high = ex.mean_vector(&tone(3_000.0, 4_096, 16_000.0, 0.7));
        let same_low = ex.mean_vector(&tone(300.0, 4_096, 16_000.0, 0.7));
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        };
        assert!(dist(&low, &high) > 5.0 * dist(&low, &same_low).max(1e-3));
    }

    #[test]
    fn energies_reflect_amplitude() {
        let ex = MfccExtractor::new(MfccConfig::speech_16khz());
        let loud = tone(500.0, 2_048, 16_000.0, 0.8);
        let soft = tone(500.0, 2_048, 16_000.0, 0.05);
        let quiet = vec![0i16; 2_048];
        let e_loud: f64 = ex.frame_energies(&loud).iter().sum();
        let e_soft: f64 = ex.frame_energies(&soft).iter().sum();
        let e_quiet: f64 = ex.frame_energies(&quiet).iter().sum();
        assert!(e_loud > e_soft);
        assert!(e_soft > e_quiet);
        assert!(e_quiet < 1e-9);
    }

    #[test]
    fn mfcc_is_amplitude_robust_but_frequency_sensitive() {
        // The log compression makes MFCC far more sensitive to spectral
        // shape than to level, which is what the template matcher needs.
        let ex = MfccExtractor::new(MfccConfig::speech_16khz());
        let ref_tone = ex.mean_vector(&tone(800.0, 4_096, 16_000.0, 0.8));
        let quieter = ex.mean_vector(&tone(800.0, 4_096, 16_000.0, 0.4));
        let other = ex.mean_vector(&tone(2_400.0, 4_096, 16_000.0, 0.8));
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        };
        assert!(dist(&ref_tone, &quieter) < dist(&ref_tone, &other));
    }
}
