//! Feature extractors: the three architectures named by the paper.
//!
//! Each extractor maps a token sequence to a fixed-size feature vector; the
//! trainable head in [`crate::head`] turns that vector into the binary
//! sensitive / non-sensitive decision. The extractors use seeded random
//! weights (see the crate-level documentation for why this substitution is
//! appropriate); what distinguishes them is their *structure*, which is
//! exactly what the paper proposes to compare:
//!
//! * [`TextCnn`] — embedding → parallel 1-D convolutions of several widths
//!   → global max pooling (the classic text-CNN of the paper's ref. [1]);
//! * [`TransformerEncoder`] — embedding + positional encoding → self-
//!   attention blocks with residuals and layer norm → mean pooling
//!   (ref. [24]);
//! * [`HybridCnnTransformer`] — "use the CNN model as a feature extractor
//!   and the transformer as a classifier" (§IV.4): convolution first, then
//!   an attention block over the convolution's positional outputs.

use serde::{Deserialize, Serialize};

use crate::layers::{add_positional_encoding, Conv1d, Dense, Embedding, LayerNorm, SelfAttention};
use crate::tensor::Matrix;
use crate::Result;

/// Common interface of the three feature extractors.
pub trait FeatureExtractor {
    /// Maps a token sequence to a feature vector (`1 x feature_dim`).
    ///
    /// # Errors
    ///
    /// Returns a shape error only if the extractor was constructed
    /// inconsistently; extraction over any token sequence (including the
    /// empty one) succeeds.
    fn extract(&self, tokens: &[usize]) -> Result<Matrix>;

    /// Width of the feature vector.
    fn feature_dim(&self) -> usize;

    /// Total parameter count (for memory-footprint reports).
    fn parameter_count(&self) -> usize;

    /// Approximate multiply-accumulate count of one extraction over a
    /// sequence of `len` tokens (for cost accounting).
    fn flops(&self, len: usize) -> u64;
}

/// Configuration shared by the extractor constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Vocabulary size of the token stream.
    pub vocab_size: usize,
    /// Embedding width.
    pub embed_dim: usize,
    /// Hidden width (convolution channels / attention dim).
    pub hidden_dim: usize,
    /// Random seed for the fixed extractor weights.
    pub seed: u64,
}

impl ModelConfig {
    /// A small configuration that fits comfortably in TEE memory.
    pub fn small(vocab_size: usize) -> Self {
        ModelConfig {
            vocab_size,
            embed_dim: 48,
            hidden_dim: 96,
            seed: 0x5eed,
        }
    }

    /// A larger configuration used in the memory-pressure sweeps.
    pub fn large(vocab_size: usize) -> Self {
        ModelConfig {
            vocab_size,
            embed_dim: 128,
            hidden_dim: 192,
            seed: 0x5eed,
        }
    }
}

/// The text-CNN extractor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TextCnn {
    embedding: Embedding,
    convs: Vec<Conv1d>,
}

impl TextCnn {
    /// Builds the extractor: convolutions of widths 1, 2, 3 and 4 tokens.
    /// The width-1 (unigram) filters matter most for the privacy task:
    /// sensitivity is often carried by a *single* word, and max pooling
    /// over unigram channels detects its presence regardless of context,
    /// which wider-only filter banks dilute.
    pub fn new(config: ModelConfig) -> Self {
        let embedding = Embedding::new(config.vocab_size, config.embed_dim, config.seed);
        let per_width = config.hidden_dim / 4;
        let convs = [1usize, 2, 3, 4]
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                Conv1d::new(
                    config.embed_dim,
                    per_width.max(1),
                    w,
                    config.seed + i as u64 + 1,
                )
            })
            .collect();
        TextCnn { embedding, convs }
    }

    pub(crate) fn embedding_mut(&mut self) -> &mut Embedding {
        &mut self.embedding
    }

    pub(crate) fn convs_mut(&mut self) -> &mut [Conv1d] {
        &mut self.convs
    }

    pub(crate) fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    pub(crate) fn convs(&self) -> &[Conv1d] {
        &self.convs
    }
}

impl FeatureExtractor for TextCnn {
    fn extract(&self, tokens: &[usize]) -> Result<Matrix> {
        let x = self.embedding.lookup(tokens);
        let mut features = Vec::new();
        for conv in &self.convs {
            let activations = conv.forward(&x)?;
            features.extend_from_slice(activations.max_rows().data());
        }
        Matrix::from_vec(1, features.len(), features)
    }

    fn feature_dim(&self) -> usize {
        self.convs.iter().map(Conv1d::channels).sum()
    }

    fn parameter_count(&self) -> usize {
        self.embedding.parameter_count()
            + self
                .convs
                .iter()
                .map(Conv1d::parameter_count)
                .sum::<usize>()
    }

    fn flops(&self, len: usize) -> u64 {
        self.convs.iter().map(|c| c.flops(len)).sum()
    }
}

/// The Transformer-encoder extractor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerEncoder {
    embedding: Embedding,
    input_proj: Dense,
    attention: Vec<SelfAttention>,
    norms: Vec<LayerNorm>,
    ffn: Vec<Dense>,
}

impl TransformerEncoder {
    /// Builds a two-block encoder of width `hidden_dim`.
    pub fn new(config: ModelConfig) -> Self {
        let blocks = 2;
        let embedding = Embedding::new(config.vocab_size, config.embed_dim, config.seed);
        let input_proj = Dense::new(config.embed_dim, config.hidden_dim, config.seed + 10);
        let attention = (0..blocks)
            .map(|i| SelfAttention::new(config.hidden_dim, config.seed + 20 + i as u64))
            .collect();
        let norms = (0..blocks * 2)
            .map(|_| LayerNorm::new(config.hidden_dim))
            .collect();
        let ffn = (0..blocks)
            .map(|i| {
                Dense::new(
                    config.hidden_dim,
                    config.hidden_dim,
                    config.seed + 40 + i as u64,
                )
            })
            .collect();
        TransformerEncoder {
            embedding,
            input_proj,
            attention,
            norms,
            ffn,
        }
    }

    pub(crate) fn embedding_mut(&mut self) -> &mut Embedding {
        &mut self.embedding
    }

    pub(crate) fn input_proj_mut(&mut self) -> &mut Dense {
        &mut self.input_proj
    }

    pub(crate) fn attention_mut(&mut self) -> &mut [SelfAttention] {
        &mut self.attention
    }

    pub(crate) fn ffn_mut(&mut self) -> &mut [Dense] {
        &mut self.ffn
    }
}

impl FeatureExtractor for TransformerEncoder {
    fn extract(&self, tokens: &[usize]) -> Result<Matrix> {
        if tokens.is_empty() {
            return Ok(Matrix::zeros(1, self.feature_dim()));
        }
        let embedded = self.embedding.lookup(tokens);
        let mut x = self
            .input_proj
            .forward(&add_positional_encoding(&embedded))?;
        for (i, attn) in self.attention.iter().enumerate() {
            let attended = attn.forward(&x)?;
            x = self.norms[2 * i].forward(&x.add(&attended)?)?;
            let transformed = self.ffn[i].forward(&x)?.map(crate::layers::relu);
            x = self.norms[2 * i + 1].forward(&x.add(&transformed)?)?;
        }
        Ok(x.mean_rows())
    }

    fn feature_dim(&self) -> usize {
        self.input_proj.output_dim()
    }

    fn parameter_count(&self) -> usize {
        self.embedding.parameter_count()
            + self.input_proj.parameter_count()
            + self
                .attention
                .iter()
                .map(SelfAttention::parameter_count)
                .sum::<usize>()
            + self.ffn.iter().map(Dense::parameter_count).sum::<usize>()
    }

    fn flops(&self, len: usize) -> u64 {
        let len = len.max(1);
        self.input_proj.flops(len)
            + self.attention.iter().map(|a| a.flops(len)).sum::<u64>()
            + self.ffn.iter().map(|f| f.flops(len)).sum::<u64>()
    }
}

/// The hybrid CNN→Transformer extractor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridCnnTransformer {
    embedding: Embedding,
    conv: Conv1d,
    attention: SelfAttention,
    norm: LayerNorm,
}

impl HybridCnnTransformer {
    /// Builds the hybrid extractor.
    pub fn new(config: ModelConfig) -> Self {
        HybridCnnTransformer {
            embedding: Embedding::new(config.vocab_size, config.embed_dim, config.seed),
            conv: Conv1d::new(config.embed_dim, config.hidden_dim, 3, config.seed + 70),
            attention: SelfAttention::new(config.hidden_dim, config.seed + 80),
            norm: LayerNorm::new(config.hidden_dim),
        }
    }

    pub(crate) fn embedding_mut(&mut self) -> &mut Embedding {
        &mut self.embedding
    }

    pub(crate) fn conv_mut(&mut self) -> &mut Conv1d {
        &mut self.conv
    }

    pub(crate) fn attention_mut(&mut self) -> &mut SelfAttention {
        &mut self.attention
    }
}

impl FeatureExtractor for HybridCnnTransformer {
    fn extract(&self, tokens: &[usize]) -> Result<Matrix> {
        let embedded = self.embedding.lookup(tokens);
        let conv_out = self.conv.forward(&embedded)?;
        let attended = self.attention.forward(&conv_out)?;
        let fused = self.norm.forward(&conv_out.add(&attended)?)?;
        // Max pooling over positions: the classifier cares about the
        // *presence* of sensitive phrases anywhere in the utterance.
        Ok(fused.max_rows())
    }

    fn feature_dim(&self) -> usize {
        self.conv.channels()
    }

    fn parameter_count(&self) -> usize {
        self.embedding.parameter_count()
            + self.conv.parameter_count()
            + self.attention.parameter_count()
    }

    fn flops(&self, len: usize) -> u64 {
        let positions = len.saturating_sub(2).max(1);
        self.conv.flops(len) + self.attention.flops(positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ModelConfig {
        ModelConfig::small(64)
    }

    fn check_extractor<E: FeatureExtractor>(e: &E) {
        let tokens = vec![1usize, 5, 9, 2, 7, 3];
        let features = e.extract(&tokens).unwrap();
        assert_eq!(features.rows(), 1);
        assert_eq!(features.cols(), e.feature_dim());
        // Deterministic.
        assert_eq!(e.extract(&tokens).unwrap(), features);
        // Different inputs give different features.
        let other = e.extract(&[4usize, 4, 4, 4, 4, 4]).unwrap();
        assert_ne!(other, features);
        // Degenerate inputs do not panic.
        assert_eq!(e.extract(&[]).unwrap().cols(), e.feature_dim());
        assert_eq!(e.extract(&[1]).unwrap().cols(), e.feature_dim());
        assert!(e.parameter_count() > 0);
        assert!(e.flops(6) > 0);
    }

    #[test]
    fn cnn_extractor_contract() {
        check_extractor(&TextCnn::new(config()));
    }

    #[test]
    fn transformer_extractor_contract() {
        check_extractor(&TransformerEncoder::new(config()));
    }

    #[test]
    fn hybrid_extractor_contract() {
        check_extractor(&HybridCnnTransformer::new(config()));
    }

    #[test]
    fn larger_configs_have_more_parameters_and_flops() {
        let small = TransformerEncoder::new(ModelConfig::small(64));
        let large = TransformerEncoder::new(ModelConfig::large(64));
        assert!(large.parameter_count() > small.parameter_count());
        assert!(large.flops(10) > small.flops(10));
    }

    #[test]
    fn architectures_have_distinct_costs() {
        let cnn = TextCnn::new(config());
        let transformer = TransformerEncoder::new(config());
        let hybrid = HybridCnnTransformer::new(config());
        // The transformer is the most expensive per token, the CNN the
        // cheapest — the trade-off the paper expects to navigate.
        assert!(transformer.flops(12) > hybrid.flops(12));
        assert!(hybrid.flops(12) > cnn.flops(12));
    }
}
