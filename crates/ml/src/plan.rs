//! The reusable feature-extraction and inference scratch plan.
//!
//! Every TA-side inference used to allocate its working buffers per
//! window: the MFCC front-end allocated FFT/power/log-mel vectors per
//! *frame*, the featurizers allocated their feature vectors per call, and
//! the dense heads allocated three matrices per prediction. On a 10k-device
//! fleet those allocations dominate the hot path. A [`FeaturePlan`] is the
//! caller-owned cure: one per TA session, holding every scratch buffer the
//! audio and vision paths need. Buffers grow to their high-water mark on
//! first use and are reused for the lifetime of the session — the
//! feature-extraction and classification stages perform **zero**
//! steady-state heap allocations (each audio window's returned token
//! list, the one value that outlives the scratch, remains the single
//! per-window allocation).
//!
//! The plan is deliberately dumb: plain `Vec`s, no lifetimes, no
//! generics. The precomputed *constants* of feature extraction (FFT
//! twiddles, bit-reversal permutation, Hamming window, mel filterbank,
//! DCT basis) live in [`crate::mfcc::MfccExtractor`], which is shared
//! read-only across sessions; the plan carries only the mutable state.

/// Caller-owned scratch for the TA inference hot path (audio front-end,
/// int8 activations, vision pooling). One per TA session; reused across
/// every window and frame that session processes.
#[derive(Debug, Default, Clone)]
pub struct FeaturePlan {
    /// FFT real parts (frame_len).
    pub(crate) fft_re: Vec<f32>,
    /// FFT imaginary parts (frame_len).
    pub(crate) fft_im: Vec<f32>,
    /// Power spectrum (frame_len / 2).
    pub(crate) power: Vec<f32>,
    /// Log mel filterbank energies (n_mels).
    pub(crate) log_mel: Vec<f32>,
    /// Per-frame RMS energies of the current window.
    pub(crate) energies: Vec<f64>,
    /// VAD segment bounds `(start_frame, end_frame)` of the current window.
    pub(crate) bounds: Vec<(usize, usize)>,
    /// MFCC features, row-major `frames x n_coeffs`.
    pub(crate) mfcc: Vec<f32>,
    /// Mean cepstral vector of the current segment.
    pub(crate) mean: Vec<f32>,
    /// Quantized input activations (embedding rows / feature vectors).
    pub(crate) x_q: Vec<i8>,
    /// Quantized hidden activations.
    pub(crate) act_q: Vec<i8>,
    /// i16 head activations (the dense head's high-fidelity path).
    pub(crate) act_q16: Vec<i16>,
    /// Quantized segment-mean cepstral vector (int8 template matching).
    pub(crate) mean_q: Vec<i8>,
    /// Zero-padded quantized patch-mean grid (int8 vision convolution).
    pub(crate) grid_q: Vec<i8>,
    /// i32 matmul accumulators.
    pub(crate) acc: Vec<i32>,
    /// Extracted feature vector (classifier input).
    pub(crate) features: Vec<f32>,
    /// Hidden-layer activations of the classification head.
    pub(crate) hidden: Vec<f32>,
    /// Output-layer activations of the classification head.
    pub(crate) out: Vec<f32>,
    /// Per-patch means of the current frame (vision path).
    pub(crate) means: Vec<f32>,
    /// Per-patch standard deviations of the current frame (vision path).
    pub(crate) stds: Vec<f32>,
}

impl FeaturePlan {
    /// Creates an empty plan. Buffers size themselves on first use and
    /// are retained at their high-water mark afterwards.
    pub fn new() -> Self {
        FeaturePlan::default()
    }

    /// Total bytes currently retained by the plan's scratch buffers —
    /// the per-session working-memory cost of allocation-free inference.
    pub fn retained_bytes(&self) -> usize {
        self.fft_re.capacity() * 4
            + self.fft_im.capacity() * 4
            + self.power.capacity() * 4
            + self.log_mel.capacity() * 4
            + self.energies.capacity() * 8
            + self.bounds.capacity() * 16
            + self.mfcc.capacity() * 4
            + self.mean.capacity() * 4
            + self.x_q.capacity()
            + self.act_q.capacity()
            + self.act_q16.capacity() * 2
            + self.mean_q.capacity()
            + self.grid_q.capacity()
            + self.acc.capacity() * 4
            + self.features.capacity() * 4
            + self.hidden.capacity() * 4
            + self.out.capacity() * 4
            + self.means.capacity() * 4
            + self.stds.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_starts_empty_and_reports_retained_bytes() {
        let mut plan = FeaturePlan::new();
        assert_eq!(plan.retained_bytes(), 0);
        plan.features.reserve(16);
        plan.x_q.reserve(32);
        assert!(plan.retained_bytes() >= 16 * 4 + 32);
    }
}
