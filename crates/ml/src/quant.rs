//! Post-training 8-bit quantization.
//!
//! The paper's §V mitigation for tight TEE memory is "smaller ML models".
//! This module implements the standard way to get there without retraining:
//! symmetric int8 quantization of every weight matrix — per-tensor
//! ([`QuantizedMatrix::quantize`]) or per-output-channel
//! ([`QuantizedMatrix::quantize_per_row`] /
//! [`QuantizedMatrix::quantize_per_col`], which stop outlier filters from
//! wasting the shared range) — plus the integer kernels the deployed
//! models run on.
//!
//! The hot kernels ([`dot_i8`], [`QuantizedMatrix::matmul_i8`],
//! [`QuantizedMatrix::matmul_i16`]) dispatch at runtime: on x86-64 with
//! AVX2 they run hand-written wide forms (`vpmaddwd` dot products,
//! `vpmulld` rank-1 updates); everywhere else they fall back to
//! fixed-width chunked loops over widened lanes with i32 accumulation and
//! a scalar tail, the shape LLVM autovectorizes. Integer addition is
//! exact and associative, so every dispatched form is **bit-identical**
//! to the retained scalar references ([`dot_i8_ref`],
//! [`QuantizedMatrix::matmul_i8_ref`],
//! [`QuantizedMatrix::matmul_i16_ref`]), which stay in the crate as the
//! oracles the parity proptests pin against.

use serde::{Deserialize, Serialize};

use crate::classifier::{visit_matrices, SensitiveClassifier};
use crate::tensor::Matrix;
use crate::{MlError, Result};

/// Which numeric representation a TA runs its classifier in.
///
/// `Int8` is the production default: weights stay quantized in secure RAM
/// (~4x smaller residency) and the forward pass runs on the fused
/// i8 x i8 -> i32 kernels — no dequantization on the hot path. `F32` keeps
/// the full-precision path as the accuracy baseline experiments compare
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum QuantMode {
    /// Full-precision f32 weights and arithmetic (the accuracy baseline).
    F32,
    /// Quantized int8 weights with fused integer kernels (the fast path).
    #[default]
    Int8,
}

impl std::fmt::Display for QuantMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantMode::F32 => write!(f, "f32"),
            QuantMode::Int8 => write!(f, "int8"),
        }
    }
}

/// How a [`QuantizedMatrix`]'s scales map onto its values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantGranularity {
    /// One scale for the whole tensor.
    PerTensor,
    /// One scale per row (convolution filters: each row is one output
    /// channel's flattened filter, consumed via [`QuantizedMatrix::row`]
    /// + [`dot_i8`]).
    PerRow,
    /// One scale per column (dense weights: `out[c] = sum_k x[k]*w[k][c]`
    /// makes the column the output channel, consumed via
    /// [`QuantizedMatrix::matmul_i8`]).
    PerCol,
}

fn scale_of(max_abs: f32) -> f32 {
    if max_abs == 0.0 {
        1.0
    } else {
        max_abs / 127.0
    }
}

/// A symmetric int8 quantization of a weight matrix, per-tensor or
/// per-output-channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    granularity: QuantGranularity,
    /// One entry ([`QuantGranularity::PerTensor`]), `rows` entries
    /// (`PerRow`) or `cols` entries (`PerCol`).
    scales: Vec<f32>,
    values: Vec<i8>,
}

impl QuantizedMatrix {
    /// Quantizes a matrix with one shared scale: `q = round(x / scale)`
    /// with `scale = max|x| / 127`.
    pub fn quantize(m: &Matrix) -> Self {
        let max_abs = m.data().iter().fold(0f32, |acc, v| acc.max(v.abs()));
        let scale = scale_of(max_abs);
        let inv = 1.0 / scale;
        let values = m
            .data()
            .iter()
            .map(|&v| (v * inv).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            granularity: QuantGranularity::PerTensor,
            scales: vec![scale],
            values,
        }
    }

    /// Quantizes a matrix with one scale per **row** — the right axis for
    /// convolution filter banks, where each row is one output channel and
    /// a single outlier filter would otherwise stretch the shared range
    /// for everyone.
    pub fn quantize_per_row(m: &Matrix) -> Self {
        let mut scales = Vec::with_capacity(m.rows());
        let mut values = Vec::with_capacity(m.len());
        for r in 0..m.rows() {
            let row = m.row(r);
            let max_abs = row.iter().fold(0f32, |acc, v| acc.max(v.abs()));
            let scale = scale_of(max_abs);
            let inv = 1.0 / scale;
            values.extend(
                row.iter()
                    .map(|&v| (v * inv).round().clamp(-127.0, 127.0) as i8),
            );
            scales.push(scale);
        }
        QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            granularity: QuantGranularity::PerRow,
            scales,
            values,
        }
    }

    /// Quantizes a matrix with one scale per **column** — the right axis
    /// for dense layers, where `matmul_i8`'s output channel is the
    /// column and the per-channel rescale folds into the existing
    /// epilogue multiply at zero extra cost.
    pub fn quantize_per_col(m: &Matrix) -> Self {
        let mut scales = vec![0f32; m.cols()];
        for r in 0..m.rows() {
            for (c, &v) in m.row(r).iter().enumerate() {
                scales[c] = scales[c].max(v.abs());
            }
        }
        for s in &mut scales {
            *s = scale_of(*s);
        }
        let mut values = Vec::with_capacity(m.len());
        for r in 0..m.rows() {
            values.extend(
                m.row(r)
                    .iter()
                    .zip(&scales)
                    .map(|(&v, &s)| (v / s).round().clamp(-127.0, 127.0) as i8),
            );
        }
        QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            granularity: QuantGranularity::PerCol,
            scales,
            values,
        }
    }

    /// Reconstructs the (lossy) f32 matrix.
    pub fn dequantize(&self) -> Matrix {
        let data = self
            .values
            .iter()
            .enumerate()
            .map(|(i, &q)| q as f32 * self.scale_at(i / self.cols, i % self.cols))
            .collect();
        Matrix::from_vec(self.rows, self.cols, data).expect("shape preserved by construction")
    }

    /// Storage size in bytes: the int8 values, the scale vector, **and**
    /// the `rows`/`cols` header fields — a deployed quantized matrix
    /// carries its shape and every per-channel scale, so footprint
    /// reports must not pretend otherwise.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() + 4 * self.scales.len() + 2 * std::mem::size_of::<usize>()
    }

    /// Number of quantized values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// How the scales map onto the values.
    pub fn granularity(&self) -> QuantGranularity {
        self.granularity
    }

    /// The per-tensor scale (`x ~= q * scale`).
    ///
    /// # Panics
    ///
    /// Panics on a per-channel matrix — there is no single scale to
    /// return; use [`QuantizedMatrix::row_scale`] or the fused kernels.
    pub fn scale(&self) -> f32 {
        assert!(
            self.granularity == QuantGranularity::PerTensor,
            "scale() on a per-channel matrix; use row_scale()/matmul_i8"
        );
        self.scales[0]
    }

    /// The scale of row `r` (the row's channel scale for `PerRow`, the
    /// shared scale for `PerTensor`).
    ///
    /// # Panics
    ///
    /// Panics if out of range, or on a `PerCol` matrix (rows there have
    /// no single scale).
    pub fn row_scale(&self, r: usize) -> f32 {
        assert!(r < self.rows, "row {r} out of range");
        match self.granularity {
            QuantGranularity::PerTensor => self.scales[0],
            QuantGranularity::PerRow => self.scales[r],
            QuantGranularity::PerCol => panic!("row_scale() on a per-column matrix"),
        }
    }

    fn scale_at(&self, r: usize, c: usize) -> f32 {
        match self.granularity {
            QuantGranularity::PerTensor => self.scales[0],
            QuantGranularity::PerRow => self.scales[r],
            QuantGranularity::PerCol => self.scales[c],
        }
    }

    /// The quantized values, row-major.
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// Row `r` of the quantized values.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn row(&self, r: usize) -> &[i8] {
        assert!(r < self.rows, "row {r} out of range");
        &self.values[r * self.cols..(r + 1) * self.cols]
    }

    fn check_matmul_input(&self, x_len: usize) -> Result<()> {
        if x_len != self.rows {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "integer matmul expects {} activations, got {}",
                    self.rows, x_len
                ),
            });
        }
        if self.granularity == QuantGranularity::PerRow {
            return Err(MlError::ShapeMismatch {
                reason: "integer matmul over a per-row matrix: row scales cannot fold into the \
                         column epilogue (quantize per-col for dense weights)"
                    .to_owned(),
            });
        }
        Ok(())
    }

    /// The shared epilogue: one rescale per output, per-column scales
    /// riding the same multiply as the per-tensor scale.
    fn rescale_into(&self, x_scale: f32, acc: &[i32], out: &mut Vec<f32>) {
        out.clear();
        match self.granularity {
            QuantGranularity::PerCol => out.extend(
                acc.iter()
                    .zip(&self.scales)
                    .map(|(&a, &s)| a as f32 * (x_scale * s)),
            ),
            _ => {
                let rescale = x_scale * self.scales[0];
                out.extend(acc.iter().map(|&a| a as f32 * rescale));
            }
        }
    }

    /// The fused integer matmul: `out[c] = (sum_k x_q[k] * w_q[k][c]) *
    /// (x_scale * w_scale[c])` — i8 x i8 multiplies accumulated in i32,
    /// rescaled **once** at the end (per-column scales fold into the same
    /// epilogue multiply as the per-tensor scale). No f32 weight
    /// reconstruction, no allocation: `acc` and `out` are caller-owned
    /// scratch (resized, not reallocated, once warm).
    ///
    /// The accumulation dispatches to the AVX2 rank-1 kernel where the
    /// host supports it and otherwise runs fixed-width
    /// [`MATMUL_LANES`]-column chunks with a scalar tail; both forms are
    /// bit-identical to [`QuantizedMatrix::matmul_i8_ref`] because integer
    /// accumulation is exact in any order.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `x_q.len() != rows` or the
    /// matrix is quantized per-row (the conv axis, wrong for matmul).
    pub fn matmul_i8(
        &self,
        x_q: &[i8],
        x_scale: f32,
        acc: &mut Vec<i32>,
        out: &mut Vec<f32>,
    ) -> Result<()> {
        self.check_matmul_input(x_q.len())?;
        acc.clear();
        acc.resize(self.cols, 0);
        #[cfg(target_arch = "x86_64")]
        if x86::avx2_available() {
            // SAFETY: AVX2 presence checked; every row slice is `cols`
            // values long by construction.
            #[allow(unsafe_code)]
            unsafe {
                x86::matmul_acc_i8(&self.values, self.cols, x_q, acc);
            }
            self.rescale_into(x_scale, acc, out);
            return Ok(());
        }
        for (k, &x) in x_q.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let row = &self.values[k * self.cols..(k + 1) * self.cols];
            rank1_update_lanes(acc, row, i32::from(x));
        }
        self.rescale_into(x_scale, acc, out);
        Ok(())
    }

    /// The scalar reference implementation of
    /// [`QuantizedMatrix::matmul_i8`] — the oracle the dispatched kernel
    /// is proptested bit-identical against. Not used on any hot path.
    ///
    /// # Errors
    ///
    /// Same contract as [`QuantizedMatrix::matmul_i8`].
    pub fn matmul_i8_ref(
        &self,
        x_q: &[i8],
        x_scale: f32,
        acc: &mut Vec<i32>,
        out: &mut Vec<f32>,
    ) -> Result<()> {
        self.check_matmul_input(x_q.len())?;
        acc.clear();
        acc.resize(self.cols, 0);
        for (k, &x) in x_q.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let x = i32::from(x);
            let row = &self.values[k * self.cols..(k + 1) * self.cols];
            for (a, &w) in acc.iter_mut().zip(row) {
                *a += x * i32::from(w);
            }
        }
        out.clear();
        out.extend(
            acc.iter()
                .enumerate()
                .map(|(c, &a)| a as f32 * (x_scale * self.scale_at(0, c))),
        );
        Ok(())
    }

    /// [`QuantizedMatrix::matmul_i8`] over **i16** activations — the
    /// high-fidelity variant the classification heads run on. The head is
    /// a rounding-error bottleneck, not a compute bottleneck (a few
    /// thousand MACs next to the convolutions' hundreds of thousands), so
    /// it spends 16 activation bits instead of 8: the activation
    /// quantization step shrinks 256x and near-threshold decisions stop
    /// flipping against the f32 baseline, while the weights stay i8 and
    /// the arithmetic stays integer.
    ///
    /// # Errors
    ///
    /// Same contract as [`QuantizedMatrix::matmul_i8`].
    ///
    /// # Panics
    ///
    /// Panics if the matrix has more than 516 rows: `516 * 32767 * 127`
    /// is the last multiple that provably fits the i32 accumulator.
    pub fn matmul_i16(
        &self,
        x_q: &[i16],
        x_scale: f32,
        acc: &mut Vec<i32>,
        out: &mut Vec<f32>,
    ) -> Result<()> {
        self.check_matmul_input(x_q.len())?;
        assert!(
            self.rows <= 516,
            "matmul_i16 over {} rows would overflow the i32 accumulator (bound 516)",
            self.rows
        );
        acc.clear();
        acc.resize(self.cols, 0);
        #[cfg(target_arch = "x86_64")]
        if x86::avx2_available() {
            // SAFETY: AVX2 presence checked; every row slice is `cols`
            // values long by construction.
            #[allow(unsafe_code)]
            unsafe {
                x86::matmul_acc_i16(&self.values, self.cols, x_q, acc);
            }
            self.rescale_into(x_scale, acc, out);
            return Ok(());
        }
        for (k, &x) in x_q.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let row = &self.values[k * self.cols..(k + 1) * self.cols];
            rank1_update_lanes(acc, row, i32::from(x));
        }
        self.rescale_into(x_scale, acc, out);
        Ok(())
    }

    /// The scalar reference implementation of
    /// [`QuantizedMatrix::matmul_i16`] — the proptest oracle. Not used on
    /// any hot path.
    ///
    /// # Errors
    ///
    /// Same contract as [`QuantizedMatrix::matmul_i16`].
    ///
    /// # Panics
    ///
    /// Same bound as [`QuantizedMatrix::matmul_i16`].
    pub fn matmul_i16_ref(
        &self,
        x_q: &[i16],
        x_scale: f32,
        acc: &mut Vec<i32>,
        out: &mut Vec<f32>,
    ) -> Result<()> {
        self.check_matmul_input(x_q.len())?;
        assert!(
            self.rows <= 516,
            "matmul_i16 over {} rows would overflow the i32 accumulator (bound 516)",
            self.rows
        );
        acc.clear();
        acc.resize(self.cols, 0);
        for (k, &x) in x_q.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let x = i32::from(x);
            let row = &self.values[k * self.cols..(k + 1) * self.cols];
            for (a, &w) in acc.iter_mut().zip(row) {
                *a += x * i32::from(w);
            }
        }
        out.clear();
        out.extend(
            acc.iter()
                .enumerate()
                .map(|(c, &a)| a as f32 * (x_scale * self.scale_at(0, c))),
        );
        Ok(())
    }
}

/// Portable rank-1 accumulation `acc[c] += x * row[c]` over fixed
/// [`MATMUL_LANES`]-column chunks with a scalar tail — the non-x86 inner
/// loop of the fused matmuls.
#[inline(always)]
fn rank1_update_lanes(acc: &mut [i32], row: &[i8], x: i32) {
    let mut acc_chunks = acc.chunks_exact_mut(MATMUL_LANES);
    let mut row_chunks = row.chunks_exact(MATMUL_LANES);
    for (a, w) in (&mut acc_chunks).zip(&mut row_chunks) {
        for l in 0..MATMUL_LANES {
            a[l] += x * i32::from(w[l]);
        }
    }
    for (a, &w) in acc_chunks
        .into_remainder()
        .iter_mut()
        .zip(row_chunks.remainder())
    {
        *a += x * i32::from(w);
    }
}

/// The AVX2 forms of the integer kernels, runtime-dispatched from the
/// public entry points via [`x86::avx2_available`]. Every operation here
/// is exact integer arithmetic, so the results are bit-identical to the
/// scalar oracles — the parity proptests exercise these paths on any
/// AVX2 host.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) mod x86 {
    use std::arch::x86_64::*;

    /// Whether the AVX2 kernel forms may run (detection is cached by the
    /// standard library; callers on hot paths should still hoist this
    /// check out of their inner loops).
    #[inline]
    pub(crate) fn avx2_available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// AVX2 [`super::dot_i8`]: sign-extend 16 i8 lanes to i16 and
    /// multiply-accumulate adjacent pairs into i32 (`vpmaddwd`), two
    /// independent accumulator chains, scalar tail.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available and `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len();
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 32 <= n {
            let a0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(ap.add(i).cast()));
            let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(i).cast()));
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(a0, b0));
            let a1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(ap.add(i + 16).cast()));
            let b1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(i + 16).cast()));
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(a1, b1));
            i += 32;
        }
        if i + 16 <= n {
            let a0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(ap.add(i).cast()));
            let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(i).cast()));
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(a0, b0));
            i += 16;
        }
        let acc = _mm256_add_epi32(acc0, acc1);
        let mut s = _mm_add_epi32(
            _mm256_castsi256_si128(acc),
            _mm256_extracti128_si256(acc, 1),
        );
        s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
        s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
        let mut total = _mm_cvtsi128_si32(s);
        while i < n {
            total += i32::from(*a.get_unchecked(i)) * i32::from(*b.get_unchecked(i));
            i += 1;
        }
        total
    }

    /// AVX2 rank-1 update `acc[c] += x * row[c]`: weights widened
    /// i8 -> i32 (`vpmovsxbd`), broadcast multiply (`vpmulld`), eight
    /// columns per step — exact for any `|x| <= 32767`, so it serves the
    /// i8 and i16 activation paths alike.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available and `row.len() == acc.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn rank1_update(acc: &mut [i32], row: &[i8], x: i32) {
        let n = acc.len();
        let vx = _mm256_set1_epi32(x);
        let mut c = 0usize;
        while c + 8 <= n {
            let w = _mm256_cvtepi8_epi32(_mm_loadl_epi64(row.as_ptr().add(c).cast()));
            let a = _mm256_loadu_si256(acc.as_ptr().add(c).cast());
            let sum = _mm256_add_epi32(a, _mm256_mullo_epi32(vx, w));
            _mm256_storeu_si256(acc.as_mut_ptr().add(c).cast(), sum);
            c += 8;
        }
        while c < n {
            *acc.get_unchecked_mut(c) += x * i32::from(*row.get_unchecked(c));
            c += 1;
        }
    }

    /// AVX2 accumulation loop of [`super::QuantizedMatrix::matmul_i8`].
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available, `x_q.len() * cols ==
    /// values.len()` and `acc.len() == cols`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn matmul_acc_i8(values: &[i8], cols: usize, x_q: &[i8], acc: &mut [i32]) {
        for (k, &x) in x_q.iter().enumerate() {
            if x == 0 {
                continue;
            }
            rank1_update(acc, &values[k * cols..(k + 1) * cols], i32::from(x));
        }
    }

    /// AVX2 accumulation loop of [`super::QuantizedMatrix::matmul_i16`].
    ///
    /// # Safety
    ///
    /// Same contract as [`matmul_acc_i8`].
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn matmul_acc_i16(values: &[i8], cols: usize, x_q: &[i16], acc: &mut [i32]) {
        for (k, &x) in x_q.iter().enumerate() {
            if x == 0 {
                continue;
            }
            rank1_update(acc, &values[k * cols..(k + 1) * cols], i32::from(x));
        }
    }

    /// AVX2 patch pooling for one grid row of 8-pixel-wide patches:
    /// writes the per-patch sum and sum-of-squares of each 8x8 pixel
    /// block. Each 32-byte load covers four patches; `vpsadbw` against
    /// zero yields the four per-patch byte sums directly, and squaring
    /// the u8->i16 widened lanes with `vpmaddwd` yields pairwise squared
    /// sums (4 adjacent i32 lanes per patch). All sums are exact
    /// integers, so the result is bit-identical to the scalar pooling
    /// loop.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available, `rows.len() == 8 * width`,
    /// `width % 32 == 0`, and `sums.len() == sum_sqs.len() == width / 8`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn pool_row_sums_patch8(
        rows: &[u8],
        width: usize,
        sums: &mut [u32],
        sum_sqs: &mut [u32],
    ) {
        let zero = _mm256_setzero_si256();
        for g in 0..width / 32 {
            let mut sad = zero;
            let mut sq_lo = zero;
            let mut sq_hi = zero;
            for py in 0..8 {
                let v = _mm256_loadu_si256(rows.as_ptr().add(py * width + g * 32).cast());
                sad = _mm256_add_epi64(sad, _mm256_sad_epu8(v, zero));
                let lo = _mm256_cvtepu8_epi16(_mm256_castsi256_si128(v));
                sq_lo = _mm256_add_epi32(sq_lo, _mm256_madd_epi16(lo, lo));
                let hi = _mm256_cvtepu8_epi16(_mm256_extracti128_si256(v, 1));
                sq_hi = _mm256_add_epi32(sq_hi, _mm256_madd_epi16(hi, hi));
            }
            let mut s64 = [0u64; 4];
            _mm256_storeu_si256(s64.as_mut_ptr().cast(), sad);
            let mut q = [0i32; 16];
            _mm256_storeu_si256(q.as_mut_ptr().cast(), sq_lo);
            _mm256_storeu_si256(q.as_mut_ptr().add(8).cast(), sq_hi);
            for p in 0..4 {
                sums[g * 4 + p] = s64[p] as u32;
                sum_sqs[g * 4 + p] = q[p * 4..p * 4 + 4].iter().map(|&v| v as u32).sum();
            }
        }
    }
}

/// Lane width of the chunked kernels. 16 i8 lanes widen to one 128-bit
/// i16 vector — the natural SIMD granule on every target the fleet
/// simulates (NEON and SSE2 alike), and wide enough that LLVM emits
/// multi-register multiply-adds at higher ISA levels.
pub const DOT_LANES: usize = 16;

/// Column-chunk width of [`QuantizedMatrix::matmul_i8`]'s inner loop.
pub const MATMUL_LANES: usize = 16;

/// Integer dot product of two i8 slices with i32 accumulation — the inner
/// kernel of the fused convolutions and the int8 template matcher.
///
/// Dispatches to the `vpmaddwd` AVX2 form on hosts that support it
/// ([`dot_i8_lanes`] is the portable fallback); bit-identical to
/// [`dot_i8_ref`] either way (integer accumulation is exact in any
/// order).
///
/// **Caller contract:** `a` and `b` must be the same length. The kernel
/// `debug_assert!`s this; in release builds a mismatch would silently
/// truncate to the shorter slice and produce a wrong dot product, not an
/// error — every in-crate caller derives both slices from the same
/// shape-checked matrix, which is what keeps the contract.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "dot_i8 operands must have equal lengths");
    #[cfg(target_arch = "x86_64")]
    if x86::avx2_available() {
        // SAFETY: AVX2 presence checked; equal lengths per contract.
        #[allow(unsafe_code)]
        return unsafe { x86::dot_i8(a, b) };
    }
    dot_i8_lanes(a, b)
}

/// The portable form of [`dot_i8`]: fixed [`DOT_LANES`]-wide chunks with
/// per-lane i32 accumulators plus a scalar tail, the
/// autovectorization-friendly shape. Same caller contract as [`dot_i8`].
#[inline]
pub fn dot_i8_lanes(a: &[i8], b: &[i8]) -> i32 {
    let mut lanes = [0i32; DOT_LANES];
    let mut a_chunks = a.chunks_exact(DOT_LANES);
    let mut b_chunks = b.chunks_exact(DOT_LANES);
    for (ca, cb) in (&mut a_chunks).zip(&mut b_chunks) {
        for l in 0..DOT_LANES {
            // i8 x i8 fits i16; the product widens to the i32 lane.
            lanes[l] += i32::from(i16::from(ca[l]) * i16::from(cb[l]));
        }
    }
    let mut total: i32 = lanes.iter().sum();
    for (&x, &w) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        total += i32::from(x) * i32::from(w);
    }
    total
}

/// The scalar reference implementation of [`dot_i8`] — the oracle the
/// chunked kernel is proptested bit-identical against. Not used on any
/// hot path.
#[inline]
pub fn dot_i8_ref(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "dot_i8 operands must have equal lengths");
    a.iter()
        .zip(b)
        .map(|(&x, &w)| i32::from(x) * i32::from(w))
        .sum()
}

/// Symmetric per-tensor quantization of an activation slice into
/// caller-owned scratch: `q = round(x / scale)` with `scale = max|x| / 127`.
/// Returns the scale (1.0 for an all-zero input, like
/// [`QuantizedMatrix::quantize`] — both semantics are test-pinned).
///
/// The all-zero case skips the `round().clamp()` float round-trip
/// entirely (zeros map to zeros at any scale); the main loop is the
/// chunked inverse-scale multiply.
pub fn quantize_activations(input: &[f32], out: &mut Vec<i8>) -> f32 {
    let max_abs = input.iter().fold(0f32, |acc, v| acc.max(v.abs()));
    out.clear();
    if max_abs == 0.0 {
        out.resize(input.len(), 0);
        return 1.0;
    }
    let scale = max_abs / 127.0;
    let inv = 1.0 / scale;
    out.extend(
        input
            .iter()
            .map(|&v| (v * inv).round().clamp(-127.0, 127.0) as i8),
    );
    scale
}

/// Symmetric per-tensor quantization of an activation slice into **i16**
/// scratch: `q = round(x / scale)` with `scale = max|x| / 32767` (1.0 for
/// an all-zero input, matching [`quantize_activations`]). The 16-bit
/// variant the classification heads feed [`QuantizedMatrix::matmul_i16`]
/// — 256x finer steps than i8 for layers whose cost is rounding error,
/// not arithmetic.
pub fn quantize_activations_i16(input: &[f32], out: &mut Vec<i16>) -> f32 {
    let max_abs = input.iter().fold(0f32, |acc, v| acc.max(v.abs()));
    out.clear();
    if max_abs == 0.0 {
        out.resize(input.len(), 0);
        return 1.0;
    }
    let scale = max_abs / 32767.0;
    let inv = 1.0 / scale;
    out.extend(
        input
            .iter()
            .map(|&v| (v * inv).round().clamp(-32767.0, 32767.0) as i16),
    );
    scale
}

/// Report of a whole-model quantization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantReport {
    /// Parameters quantized.
    pub quantized_parameters: usize,
    /// Model bytes before quantization (all parameters at f32).
    pub f32_bytes: usize,
    /// Model bytes after quantization (weights at int8, biases kept f32).
    pub int8_bytes: usize,
    /// Largest absolute reconstruction error over all weights.
    pub max_abs_error: f32,
}

impl QuantReport {
    /// Compression ratio (f32 size over int8 size).
    pub fn compression_ratio(&self) -> f64 {
        if self.int8_bytes == 0 {
            return 0.0;
        }
        self.f32_bytes as f64 / self.int8_bytes as f64
    }
}

/// Applies fake quantization to a trained classifier: every weight matrix
/// is quantized to int8 and dequantized back in place, so subsequent
/// predictions reflect the quantized weights. Returns the classifier plus a
/// report of the size reduction.
///
/// ("Fake quantization" is the standard methodology for evaluating
/// post-training quantization accuracy: the arithmetic stays f32 but the
/// values are exactly those an int8 deployment would use.)
pub fn quantize_classifier(
    mut classifier: SensitiveClassifier,
) -> (SensitiveClassifier, QuantReport) {
    let total_params = classifier.parameter_count();
    let f32_bytes = classifier.memory_bytes_f32();
    let mut quantized_parameters = 0usize;
    let mut weight_bytes_int8 = 0usize;
    let mut weight_bytes_f32 = 0usize;
    let mut max_abs_error = 0f32;
    {
        let (extractor, head) = classifier.parts_mut();
        visit_matrices(extractor, head, &mut |m: &mut Matrix| {
            let q = QuantizedMatrix::quantize(m);
            let restored = q.dequantize();
            for (a, b) in m.data().iter().zip(restored.data().iter()) {
                max_abs_error = max_abs_error.max((a - b).abs());
            }
            quantized_parameters += m.len();
            weight_bytes_int8 += q.storage_bytes();
            weight_bytes_f32 += m.len() * 4;
            *m = restored;
        });
    }
    // Parameters that were not quantized (biases, layer norms) stay at f32.
    let residual_f32 = (total_params - quantized_parameters) * 4;
    let report = QuantReport {
        quantized_parameters,
        f32_bytes,
        int8_bytes: weight_bytes_int8 + residual_f32,
        max_abs_error,
    };
    (classifier, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{Architecture, TrainConfig};

    #[test]
    fn quantize_dequantize_error_is_bounded_by_scale() {
        let m = Matrix::random(16, 16, 2.0, 3);
        let q = QuantizedMatrix::quantize(&m);
        let r = q.dequantize();
        let max_abs = m.data().iter().fold(0f32, |a, v| a.max(v.abs()));
        let bound = max_abs / 127.0 * 0.5 + 1e-6;
        for (a, b) in m.data().iter().zip(r.data().iter()) {
            assert!(
                (a - b).abs() <= bound,
                "error {} exceeds bound {}",
                (a - b).abs(),
                bound
            );
        }
        assert_eq!(q.len(), 256);
        // Values + one scale + the rows/cols shape header.
        assert_eq!(
            q.storage_bytes(),
            256 + 4 + 2 * std::mem::size_of::<usize>()
        );
    }

    #[test]
    fn per_row_quantization_tightens_outlier_rows() {
        // One outlier row an order of magnitude hotter than the rest: the
        // per-tensor scale blurs the quiet rows, per-row keeps each sharp.
        let mut data = vec![0f32; 4 * 8];
        for (i, v) in data.iter_mut().enumerate() {
            let row = i / 8;
            let base = ((i * 13 % 17) as f32 - 8.0) / 10.0;
            *v = if row == 0 { base * 10.0 } else { base };
        }
        let m = Matrix::from_vec(4, 8, data).unwrap();
        let per_tensor = QuantizedMatrix::quantize(&m).dequantize();
        let per_row = QuantizedMatrix::quantize_per_row(&m).dequantize();
        let err = |r: &Matrix, rows: std::ops::Range<usize>| -> f32 {
            rows.map(|row| {
                m.row(row)
                    .iter()
                    .zip(r.row(row))
                    .map(|(a, b)| (a - b).abs())
                    .fold(0f32, f32::max)
            })
            .fold(0f32, f32::max)
        };
        // The quiet rows reconstruct strictly better per-row.
        assert!(err(&per_row, 1..4) < err(&per_tensor, 1..4));
        // Per-row scales are charged to storage.
        let q = QuantizedMatrix::quantize_per_row(&m);
        assert_eq!(q.granularity(), QuantGranularity::PerRow);
        assert_eq!(
            q.storage_bytes(),
            32 + 4 * 4 + 2 * std::mem::size_of::<usize>()
        );
        assert!(q.row_scale(0) > q.row_scale(1));
    }

    #[test]
    fn per_col_quantization_feeds_the_matmul_epilogue() {
        let mut data = vec![0f32; 16 * 6];
        for (i, v) in data.iter_mut().enumerate() {
            let col = i % 6;
            let base = ((i * 7 % 23) as f32 - 11.0) / 8.0;
            *v = if col == 0 { base * 8.0 } else { base };
        }
        let w = Matrix::from_vec(16, 6, data).unwrap();
        let q = QuantizedMatrix::quantize_per_col(&w);
        assert_eq!(q.granularity(), QuantGranularity::PerCol);
        let x: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) * 0.25).collect();
        let mut x_q = Vec::new();
        let x_scale = quantize_activations(&x, &mut x_q);
        let (mut acc, mut out) = (Vec::new(), Vec::new());
        q.matmul_i8(&x_q, x_scale, &mut acc, &mut out).unwrap();
        // Reference: dequantized-weight f32 matmul over quantized inputs.
        let deq = q.dequantize();
        for (c, &got) in out.iter().enumerate() {
            let want: f32 = (0..16)
                .map(|k| x_q[k] as f32 * x_scale * deq.get(k, c))
                .sum();
            assert!(
                (got - want).abs() < 1e-4,
                "col {c}: fused {got} vs reference {want}"
            );
        }
        // The per-col fused path matches the scalar oracle bit for bit.
        let (mut acc2, mut out2) = (Vec::new(), Vec::new());
        q.matmul_i8_ref(&x_q, x_scale, &mut acc2, &mut out2)
            .unwrap();
        assert_eq!(out, out2);
        assert_eq!(acc, acc2);
        // Per-row matrices are rejected by matmul, not silently mis-scaled.
        let qr = QuantizedMatrix::quantize_per_row(&w);
        assert!(qr.matmul_i8(&x_q, x_scale, &mut acc, &mut out).is_err());
    }

    #[test]
    fn fused_matmul_matches_dequantized_reference() {
        let w = Matrix::random(16, 8, 1.5, 21);
        let q = QuantizedMatrix::quantize(&w);
        let x: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) * 0.25).collect();
        let mut x_q = Vec::new();
        let x_scale = quantize_activations(&x, &mut x_q);
        let mut acc = Vec::new();
        let mut out = Vec::new();
        q.matmul_i8(&x_q, x_scale, &mut acc, &mut out).unwrap();
        // Reference: dequantized-weight f32 matmul over quantized inputs.
        let deq = q.dequantize();
        for (c, &got) in out.iter().enumerate() {
            let want: f32 = (0..16)
                .map(|k| x_q[k] as f32 * x_scale * deq.get(k, c))
                .sum();
            assert!(
                (got - want).abs() < 1e-4,
                "col {c}: fused {got} vs reference {want}"
            );
        }
        // Shape mismatch is rejected, not mangled.
        assert!(q.matmul_i8(&x_q[..4], x_scale, &mut acc, &mut out).is_err());
        assert!(q
            .matmul_i8_ref(&x_q[..4], x_scale, &mut acc, &mut out)
            .is_err());
    }

    #[test]
    fn chunked_kernels_match_scalar_references_on_tails() {
        // Lengths straddling the lane width, including ragged tails.
        for len in [1usize, 7, 15, 16, 17, 31, 48, 100] {
            let a: Vec<i8> = (0..len)
                .map(|i| ((i * 37 % 255) as i32 - 127) as i8)
                .collect();
            let b: Vec<i8> = (0..len)
                .map(|i| ((i * 91 % 255) as i32 - 127) as i8)
                .collect();
            assert_eq!(dot_i8(&a, &b), dot_i8_ref(&a, &b), "len {len}");
        }
        // Matmul with a non-multiple-of-lane column count.
        let w = Matrix::random(23, 19, 1.2, 77);
        let q = QuantizedMatrix::quantize(&w);
        let x: Vec<f32> = (0..23).map(|i| ((i % 7) as f32 - 3.0) * 0.4).collect();
        let mut x_q = Vec::new();
        let x_scale = quantize_activations(&x, &mut x_q);
        let (mut acc, mut out) = (Vec::new(), Vec::new());
        let (mut acc2, mut out2) = (Vec::new(), Vec::new());
        q.matmul_i8(&x_q, x_scale, &mut acc, &mut out).unwrap();
        q.matmul_i8_ref(&x_q, x_scale, &mut acc2, &mut out2)
            .unwrap();
        assert_eq!(acc, acc2);
        assert_eq!(out, out2);
    }

    #[test]
    fn activation_quantization_round_trips_within_half_step() {
        let x: Vec<f32> = (0..64)
            .map(|i| ((i * 37) % 23) as f32 / 7.0 - 1.5)
            .collect();
        let mut q = Vec::new();
        let scale = quantize_activations(&x, &mut q);
        for (&orig, &quant) in x.iter().zip(&q) {
            assert!((orig - quant as f32 * scale).abs() <= scale * 0.5 + 1e-6);
        }
        // All-zero input keeps a benign scale and the fast path still
        // fills the output with zeros of the right length.
        assert_eq!(quantize_activations(&[0.0; 4], &mut q), 1.0);
        assert_eq!(q.len(), 4);
        assert!(q.iter().all(|&v| v == 0));
        assert_eq!(dot_i8(&[1, -2, 3], &[4, 5, 6]), 4 - 10 + 18);
    }

    #[test]
    fn quant_mode_defaults_to_int8() {
        assert_eq!(QuantMode::default(), QuantMode::Int8);
        assert_eq!(QuantMode::Int8.to_string(), "int8");
        assert_eq!(QuantMode::F32.to_string(), "f32");
    }

    #[test]
    fn zero_matrix_quantizes_cleanly() {
        let m = Matrix::zeros(4, 4);
        for q in [
            QuantizedMatrix::quantize(&m),
            QuantizedMatrix::quantize_per_row(&m),
            QuantizedMatrix::quantize_per_col(&m),
        ] {
            assert_eq!(q.dequantize(), m);
            assert!(!q.is_empty());
        }
    }

    fn toy_corpus(n: usize, seed: u64) -> Vec<(Vec<usize>, bool)> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let sensitive = rng.gen_bool(0.5);
                let mut tokens: Vec<usize> = (0..8).map(|_| rng.gen_range(8..64)).collect();
                if sensitive {
                    tokens[0] = rng.gen_range(0..8);
                    tokens[3] = rng.gen_range(0..8);
                }
                (tokens, sensitive)
            })
            .collect()
    }

    #[test]
    fn quantized_classifier_shrinks_and_keeps_accuracy() {
        let train = toy_corpus(200, 10);
        let test = toy_corpus(80, 11);
        let mut c = SensitiveClassifier::new(Architecture::Cnn, TrainConfig::small(64));
        c.fit(&train).unwrap();
        let baseline = c.evaluate(&test).unwrap().accuracy();
        let (quantized, report) = quantize_classifier(c);
        let quantized_accuracy = quantized.evaluate(&test).unwrap().accuracy();
        assert!(
            report.compression_ratio() > 3.0,
            "ratio {}",
            report.compression_ratio()
        );
        assert!(report.int8_bytes < report.f32_bytes);
        assert!(report.max_abs_error > 0.0);
        assert!(
            (baseline - quantized_accuracy).abs() < 0.1,
            "quantization cost too much accuracy: {baseline} -> {quantized_accuracy}"
        );
    }
}
