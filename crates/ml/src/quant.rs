//! Post-training 8-bit quantization.
//!
//! The paper's §V mitigation for tight TEE memory is "smaller ML models".
//! This module implements the standard way to get there without retraining:
//! symmetric per-tensor int8 quantization of every weight matrix. The
//! quantized classifier keeps the same structure but stores weights in one
//! byte instead of four, at a small accuracy cost that experiment E5
//! quantifies.

use serde::{Deserialize, Serialize};

use crate::classifier::{visit_matrices, SensitiveClassifier};
use crate::tensor::Matrix;
use crate::{MlError, Result};

/// Which numeric representation a TA runs its classifier in.
///
/// `Int8` is the production default: weights stay quantized in secure RAM
/// (~4x smaller residency) and the forward pass runs on the fused
/// i8 x i8 -> i32 kernels — no dequantization on the hot path. `F32` keeps
/// the full-precision path as the accuracy baseline experiments compare
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum QuantMode {
    /// Full-precision f32 weights and arithmetic (the accuracy baseline).
    F32,
    /// Quantized int8 weights with fused integer kernels (the fast path).
    #[default]
    Int8,
}

impl std::fmt::Display for QuantMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantMode::F32 => write!(f, "f32"),
            QuantMode::Int8 => write!(f, "int8"),
        }
    }
}

/// A symmetric per-tensor int8 quantization of a weight matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    scale: f32,
    values: Vec<i8>,
}

impl QuantizedMatrix {
    /// Quantizes a matrix: `q = round(x / scale)` with
    /// `scale = max|x| / 127`.
    pub fn quantize(m: &Matrix) -> Self {
        let max_abs = m.data().iter().fold(0f32, |acc, v| acc.max(v.abs()));
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        let values = m
            .data()
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            scale,
            values,
        }
    }

    /// Reconstructs the (lossy) f32 matrix.
    pub fn dequantize(&self) -> Matrix {
        let data = self.values.iter().map(|&q| q as f32 * self.scale).collect();
        Matrix::from_vec(self.rows, self.cols, data).expect("shape preserved by construction")
    }

    /// Storage size in bytes: the int8 values, the scale, **and** the
    /// `rows`/`cols` header fields — a deployed quantized matrix carries
    /// its shape, so footprint reports must not pretend otherwise.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() + 4 + 2 * std::mem::size_of::<usize>()
    }

    /// Number of quantized values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The per-tensor scale (`x ~= q * scale`).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The quantized values, row-major.
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// Row `r` of the quantized values.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn row(&self, r: usize) -> &[i8] {
        assert!(r < self.rows, "row {r} out of range");
        &self.values[r * self.cols..(r + 1) * self.cols]
    }

    /// The fused integer matmul: `out[c] = (sum_k x_q[k] * w_q[k][c]) *
    /// (x_scale * w_scale)` — i8 x i8 multiplies accumulated in i32,
    /// rescaled **once** at the end. No f32 weight reconstruction, no
    /// allocation: `acc` and `out` are caller-owned scratch (resized, not
    /// reallocated, once warm). The loop is row-major blocked like
    /// [`Matrix::matmul`]: `k` outer over weight rows, `c` inner over the
    /// contiguous row, with zero activations skipped.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `x_q.len() != rows`.
    pub fn matmul_i8(
        &self,
        x_q: &[i8],
        x_scale: f32,
        acc: &mut Vec<i32>,
        out: &mut Vec<f32>,
    ) -> Result<()> {
        if x_q.len() != self.rows {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "int8 matmul expects {} activations, got {}",
                    self.rows,
                    x_q.len()
                ),
            });
        }
        acc.clear();
        acc.resize(self.cols, 0);
        for (k, &x) in x_q.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let x = i32::from(x);
            let row = &self.values[k * self.cols..(k + 1) * self.cols];
            for (a, &w) in acc.iter_mut().zip(row) {
                *a += x * i32::from(w);
            }
        }
        let rescale = x_scale * self.scale;
        out.clear();
        out.extend(acc.iter().map(|&a| a as f32 * rescale));
        Ok(())
    }
}

/// Integer dot product of two i8 slices with i32 accumulation — the inner
/// kernel of the fused convolutions. Slices are truncated to the shorter
/// length (callers guarantee equal lengths; the zip makes that safe).
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    a.iter()
        .zip(b)
        .map(|(&x, &w)| i32::from(x) * i32::from(w))
        .sum()
}

/// Symmetric per-tensor quantization of an activation slice into
/// caller-owned scratch: `q = round(x / scale)` with `scale = max|x| / 127`.
/// Returns the scale (1.0 for an all-zero input, like
/// [`QuantizedMatrix::quantize`]).
pub fn quantize_activations(input: &[f32], out: &mut Vec<i8>) -> f32 {
    let max_abs = input.iter().fold(0f32, |acc, v| acc.max(v.abs()));
    let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
    let inv = 1.0 / scale;
    out.clear();
    out.extend(
        input
            .iter()
            .map(|&v| (v * inv).round().clamp(-127.0, 127.0) as i8),
    );
    scale
}

/// Report of a whole-model quantization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantReport {
    /// Parameters quantized.
    pub quantized_parameters: usize,
    /// Model bytes before quantization (all parameters at f32).
    pub f32_bytes: usize,
    /// Model bytes after quantization (weights at int8, biases kept f32).
    pub int8_bytes: usize,
    /// Largest absolute reconstruction error over all weights.
    pub max_abs_error: f32,
}

impl QuantReport {
    /// Compression ratio (f32 size over int8 size).
    pub fn compression_ratio(&self) -> f64 {
        if self.int8_bytes == 0 {
            return 0.0;
        }
        self.f32_bytes as f64 / self.int8_bytes as f64
    }
}

/// Applies fake quantization to a trained classifier: every weight matrix
/// is quantized to int8 and dequantized back in place, so subsequent
/// predictions reflect the quantized weights. Returns the classifier plus a
/// report of the size reduction.
///
/// ("Fake quantization" is the standard methodology for evaluating
/// post-training quantization accuracy: the arithmetic stays f32 but the
/// values are exactly those an int8 deployment would use.)
pub fn quantize_classifier(
    mut classifier: SensitiveClassifier,
) -> (SensitiveClassifier, QuantReport) {
    let total_params = classifier.parameter_count();
    let f32_bytes = classifier.memory_bytes_f32();
    let mut quantized_parameters = 0usize;
    let mut weight_bytes_int8 = 0usize;
    let mut weight_bytes_f32 = 0usize;
    let mut max_abs_error = 0f32;
    {
        let (extractor, head) = classifier.parts_mut();
        visit_matrices(extractor, head, &mut |m: &mut Matrix| {
            let q = QuantizedMatrix::quantize(m);
            let restored = q.dequantize();
            for (a, b) in m.data().iter().zip(restored.data().iter()) {
                max_abs_error = max_abs_error.max((a - b).abs());
            }
            quantized_parameters += m.len();
            weight_bytes_int8 += q.storage_bytes();
            weight_bytes_f32 += m.len() * 4;
            *m = restored;
        });
    }
    // Parameters that were not quantized (biases, layer norms) stay at f32.
    let residual_f32 = (total_params - quantized_parameters) * 4;
    let report = QuantReport {
        quantized_parameters,
        f32_bytes,
        int8_bytes: weight_bytes_int8 + residual_f32,
        max_abs_error,
    };
    (classifier, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{Architecture, TrainConfig};

    #[test]
    fn quantize_dequantize_error_is_bounded_by_scale() {
        let m = Matrix::random(16, 16, 2.0, 3);
        let q = QuantizedMatrix::quantize(&m);
        let r = q.dequantize();
        let max_abs = m.data().iter().fold(0f32, |a, v| a.max(v.abs()));
        let bound = max_abs / 127.0 * 0.5 + 1e-6;
        for (a, b) in m.data().iter().zip(r.data().iter()) {
            assert!(
                (a - b).abs() <= bound,
                "error {} exceeds bound {}",
                (a - b).abs(),
                bound
            );
        }
        assert_eq!(q.len(), 256);
        // Values + scale + the rows/cols shape header.
        assert_eq!(
            q.storage_bytes(),
            256 + 4 + 2 * std::mem::size_of::<usize>()
        );
    }

    #[test]
    fn fused_matmul_matches_dequantized_reference() {
        let w = Matrix::random(16, 8, 1.5, 21);
        let q = QuantizedMatrix::quantize(&w);
        let x: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) * 0.25).collect();
        let mut x_q = Vec::new();
        let x_scale = quantize_activations(&x, &mut x_q);
        let mut acc = Vec::new();
        let mut out = Vec::new();
        q.matmul_i8(&x_q, x_scale, &mut acc, &mut out).unwrap();
        // Reference: dequantized-weight f32 matmul over quantized inputs.
        let deq = q.dequantize();
        for (c, &got) in out.iter().enumerate() {
            let want: f32 = (0..16)
                .map(|k| x_q[k] as f32 * x_scale * deq.get(k, c))
                .sum();
            assert!(
                (got - want).abs() < 1e-4,
                "col {c}: fused {got} vs reference {want}"
            );
        }
        // Shape mismatch is rejected, not mangled.
        assert!(q.matmul_i8(&x_q[..4], x_scale, &mut acc, &mut out).is_err());
    }

    #[test]
    fn activation_quantization_round_trips_within_half_step() {
        let x: Vec<f32> = (0..64)
            .map(|i| ((i * 37) % 23) as f32 / 7.0 - 1.5)
            .collect();
        let mut q = Vec::new();
        let scale = quantize_activations(&x, &mut q);
        for (&orig, &quant) in x.iter().zip(&q) {
            assert!((orig - quant as f32 * scale).abs() <= scale * 0.5 + 1e-6);
        }
        // All-zero input keeps a benign scale.
        assert_eq!(quantize_activations(&[0.0; 4], &mut q), 1.0);
        assert!(q.iter().all(|&v| v == 0));
        assert_eq!(dot_i8(&[1, -2, 3], &[4, 5, 6]), 4 - 10 + 18);
    }

    #[test]
    fn quant_mode_defaults_to_int8() {
        assert_eq!(QuantMode::default(), QuantMode::Int8);
        assert_eq!(QuantMode::Int8.to_string(), "int8");
        assert_eq!(QuantMode::F32.to_string(), "f32");
    }

    #[test]
    fn zero_matrix_quantizes_cleanly() {
        let m = Matrix::zeros(4, 4);
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.dequantize(), m);
        assert!(!q.is_empty());
    }

    fn toy_corpus(n: usize, seed: u64) -> Vec<(Vec<usize>, bool)> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let sensitive = rng.gen_bool(0.5);
                let mut tokens: Vec<usize> = (0..8).map(|_| rng.gen_range(8..64)).collect();
                if sensitive {
                    tokens[0] = rng.gen_range(0..8);
                    tokens[3] = rng.gen_range(0..8);
                }
                (tokens, sensitive)
            })
            .collect()
    }

    #[test]
    fn quantized_classifier_shrinks_and_keeps_accuracy() {
        let train = toy_corpus(200, 10);
        let test = toy_corpus(80, 11);
        let mut c = SensitiveClassifier::new(Architecture::Cnn, TrainConfig::small(64));
        c.fit(&train).unwrap();
        let baseline = c.evaluate(&test).unwrap().accuracy();
        let (quantized, report) = quantize_classifier(c);
        let quantized_accuracy = quantized.evaluate(&test).unwrap().accuracy();
        assert!(
            report.compression_ratio() > 3.0,
            "ratio {}",
            report.compression_ratio()
        );
        assert!(report.int8_bytes < report.f32_bytes);
        assert!(report.max_abs_error > 0.0);
        assert!(
            (baseline - quantized_accuracy).abs() < 0.1,
            "quantization cost too much accuracy: {baseline} -> {quantized_accuracy}"
        );
    }
}
