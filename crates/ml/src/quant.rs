//! Post-training 8-bit quantization.
//!
//! The paper's §V mitigation for tight TEE memory is "smaller ML models".
//! This module implements the standard way to get there without retraining:
//! symmetric per-tensor int8 quantization of every weight matrix. The
//! quantized classifier keeps the same structure but stores weights in one
//! byte instead of four, at a small accuracy cost that experiment E5
//! quantifies.

use serde::{Deserialize, Serialize};

use crate::classifier::{visit_matrices, SensitiveClassifier};
use crate::tensor::Matrix;

/// A symmetric per-tensor int8 quantization of a weight matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    scale: f32,
    values: Vec<i8>,
}

impl QuantizedMatrix {
    /// Quantizes a matrix: `q = round(x / scale)` with
    /// `scale = max|x| / 127`.
    pub fn quantize(m: &Matrix) -> Self {
        let max_abs = m.data().iter().fold(0f32, |acc, v| acc.max(v.abs()));
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        let values = m
            .data()
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            scale,
            values,
        }
    }

    /// Reconstructs the (lossy) f32 matrix.
    pub fn dequantize(&self) -> Matrix {
        let data = self.values.iter().map(|&q| q as f32 * self.scale).collect();
        Matrix::from_vec(self.rows, self.cols, data).expect("shape preserved by construction")
    }

    /// Storage size in bytes (int8 values + the scale).
    pub fn storage_bytes(&self) -> usize {
        self.values.len() + 4
    }

    /// Number of quantized values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Report of a whole-model quantization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantReport {
    /// Parameters quantized.
    pub quantized_parameters: usize,
    /// Model bytes before quantization (all parameters at f32).
    pub f32_bytes: usize,
    /// Model bytes after quantization (weights at int8, biases kept f32).
    pub int8_bytes: usize,
    /// Largest absolute reconstruction error over all weights.
    pub max_abs_error: f32,
}

impl QuantReport {
    /// Compression ratio (f32 size over int8 size).
    pub fn compression_ratio(&self) -> f64 {
        if self.int8_bytes == 0 {
            return 0.0;
        }
        self.f32_bytes as f64 / self.int8_bytes as f64
    }
}

/// Applies fake quantization to a trained classifier: every weight matrix
/// is quantized to int8 and dequantized back in place, so subsequent
/// predictions reflect the quantized weights. Returns the classifier plus a
/// report of the size reduction.
///
/// ("Fake quantization" is the standard methodology for evaluating
/// post-training quantization accuracy: the arithmetic stays f32 but the
/// values are exactly those an int8 deployment would use.)
pub fn quantize_classifier(
    mut classifier: SensitiveClassifier,
) -> (SensitiveClassifier, QuantReport) {
    let total_params = classifier.parameter_count();
    let f32_bytes = classifier.memory_bytes_f32();
    let mut quantized_parameters = 0usize;
    let mut weight_bytes_int8 = 0usize;
    let mut weight_bytes_f32 = 0usize;
    let mut max_abs_error = 0f32;
    {
        let (extractor, head) = classifier.parts_mut();
        visit_matrices(extractor, head, &mut |m: &mut Matrix| {
            let q = QuantizedMatrix::quantize(m);
            let restored = q.dequantize();
            for (a, b) in m.data().iter().zip(restored.data().iter()) {
                max_abs_error = max_abs_error.max((a - b).abs());
            }
            quantized_parameters += m.len();
            weight_bytes_int8 += q.storage_bytes();
            weight_bytes_f32 += m.len() * 4;
            *m = restored;
        });
    }
    // Parameters that were not quantized (biases, layer norms) stay at f32.
    let residual_f32 = (total_params - quantized_parameters) * 4;
    let report = QuantReport {
        quantized_parameters,
        f32_bytes,
        int8_bytes: weight_bytes_int8 + residual_f32,
        max_abs_error,
    };
    (classifier, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{Architecture, TrainConfig};

    #[test]
    fn quantize_dequantize_error_is_bounded_by_scale() {
        let m = Matrix::random(16, 16, 2.0, 3);
        let q = QuantizedMatrix::quantize(&m);
        let r = q.dequantize();
        let max_abs = m.data().iter().fold(0f32, |a, v| a.max(v.abs()));
        let bound = max_abs / 127.0 * 0.5 + 1e-6;
        for (a, b) in m.data().iter().zip(r.data().iter()) {
            assert!(
                (a - b).abs() <= bound,
                "error {} exceeds bound {}",
                (a - b).abs(),
                bound
            );
        }
        assert_eq!(q.len(), 256);
        assert_eq!(q.storage_bytes(), 256 + 4);
    }

    #[test]
    fn zero_matrix_quantizes_cleanly() {
        let m = Matrix::zeros(4, 4);
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.dequantize(), m);
        assert!(!q.is_empty());
    }

    fn toy_corpus(n: usize, seed: u64) -> Vec<(Vec<usize>, bool)> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let sensitive = rng.gen_bool(0.5);
                let mut tokens: Vec<usize> = (0..8).map(|_| rng.gen_range(8..64)).collect();
                if sensitive {
                    tokens[0] = rng.gen_range(0..8);
                    tokens[3] = rng.gen_range(0..8);
                }
                (tokens, sensitive)
            })
            .collect()
    }

    #[test]
    fn quantized_classifier_shrinks_and_keeps_accuracy() {
        let train = toy_corpus(200, 10);
        let test = toy_corpus(80, 11);
        let mut c = SensitiveClassifier::new(Architecture::Cnn, TrainConfig::small(64));
        c.fit(&train).unwrap();
        let baseline = c.evaluate(&test).unwrap().accuracy();
        let (quantized, report) = quantize_classifier(c);
        let quantized_accuracy = quantized.evaluate(&test).unwrap().accuracy();
        assert!(
            report.compression_ratio() > 3.0,
            "ratio {}",
            report.compression_ratio()
        );
        assert!(report.int8_bytes < report.f32_bytes);
        assert!(report.max_abs_error > 0.0);
        assert!(
            (baseline - quantized_accuracy).abs() < 0.1,
            "quantization cost too much accuracy: {baseline} -> {quantized_accuracy}"
        );
    }
}
