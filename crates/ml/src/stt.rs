//! Keyword speech-to-text.
//!
//! The paper reuses large pre-trained speech recognizers (Whisper, fairseq
//! S2T) to transcribe the captured audio before classification. Those
//! cannot be shipped here, so the repository substitutes a compact,
//! self-trained keyword recognizer that plays the same architectural role:
//! audio in, token sequence out, running entirely inside the TA.
//!
//! The recognizer is a template matcher: each vocabulary word has an MFCC
//! "acoustic template" (the mean cepstral vector of its synthetic
//! rendering); incoming audio is segmented at silences via an energy-based
//! voice-activity detector, each segment's mean MFCC vector is compared to
//! the templates by cosine similarity, and the best match above a
//! confidence floor becomes the transcribed word.

use serde::{Deserialize, Serialize};

use crate::mfcc::{MfccConfig, MfccExtractor};
use crate::plan::FeaturePlan;
use crate::quant::{dot_i8, quantize_activations};
use crate::{MlError, Result};

/// A transcribed utterance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transcript {
    /// Recognized words, in order.
    pub words: Vec<String>,
    /// Per-word confidence (cosine similarity of the winning template).
    pub confidences: Vec<f32>,
    /// Number of speech segments detected (including unrecognized ones).
    pub segments: usize,
}

impl Transcript {
    /// The transcript as a single space-separated string.
    pub fn text(&self) -> String {
        self.words.join(" ")
    }

    /// Mean confidence over recognized words (zero if none).
    pub fn mean_confidence(&self) -> f32 {
        if self.confidences.is_empty() {
            0.0
        } else {
            self.confidences.iter().sum::<f32>() / self.confidences.len() as f32
        }
    }
}

/// Configuration of the keyword recognizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SttConfig {
    /// MFCC front-end configuration.
    pub mfcc: MfccConfig,
    /// Energy threshold (fraction of full scale RMS) separating speech from
    /// silence.
    pub vad_threshold: f64,
    /// Minimum speech segment length, in frames.
    pub min_segment_frames: usize,
    /// Minimum cosine similarity for a word to be accepted.
    pub confidence_floor: f32,
}

impl Default for SttConfig {
    fn default() -> Self {
        SttConfig {
            mfcc: MfccConfig::speech_16khz(),
            vad_threshold: 0.01,
            min_segment_frames: 2,
            confidence_floor: 0.55,
        }
    }
}

/// The keyword speech-to-text model.
#[derive(Debug, Clone)]
pub struct KeywordStt {
    config: SttConfig,
    extractor: MfccExtractor,
    templates: Vec<(String, Vec<f32>)>,
    /// Int8 deployment form of the templates, built once at train time:
    /// each template symmetrically quantized with its own scale, plus its
    /// precomputed quantized L2 norm. Cosine similarity is
    /// scale-invariant, so the per-template scales (and the segment
    /// mean's dynamic scale) cancel — the int8 matcher needs only the
    /// integer dot products and these norms.
    templates_q: Vec<(Vec<i8>, f32)>,
}

impl KeywordStt {
    /// Trains the recognizer from reference renderings of each vocabulary
    /// word.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::BadTrainingData`] if the vocabulary is empty or a
    /// rendering is too short to produce MFCC frames.
    pub fn train(words: &[(String, Vec<i16>)], config: SttConfig) -> Result<Self> {
        if words.is_empty() {
            return Err(MlError::BadTrainingData {
                reason: "empty vocabulary".to_owned(),
            });
        }
        let extractor = MfccExtractor::new(config.mfcc);
        let mut templates = Vec::with_capacity(words.len());
        for (word, samples) in words {
            if extractor.frame_count(samples.len()) == 0 {
                return Err(MlError::BadTrainingData {
                    reason: format!("rendering of '{word}' is shorter than one analysis frame"),
                });
            }
            templates.push((
                word.clone(),
                Self::voiced_mean(&extractor, samples, config.vad_threshold),
            ));
        }
        let templates_q = templates
            .iter()
            .map(|(_, template)| {
                let mut q = Vec::with_capacity(template.len());
                quantize_activations(template, &mut q);
                let norm = (dot_i8(&q, &q) as f32).sqrt();
                (q, norm)
            })
            .collect();
        Ok(KeywordStt {
            config,
            extractor,
            templates,
            templates_q,
        })
    }

    /// Vocabulary size.
    pub fn vocabulary_size(&self) -> usize {
        self.templates.len()
    }

    /// The vocabulary words, in template order (the order defines the token
    /// ids used by the classifier).
    pub fn vocabulary(&self) -> Vec<String> {
        self.templates.iter().map(|(w, _)| w.clone()).collect()
    }

    /// Token id of a word, if it is in the vocabulary.
    pub fn token_of(&self, word: &str) -> Option<usize> {
        self.templates.iter().position(|(w, _)| w == word)
    }

    /// Approximate multiply-accumulate count of transcribing `samples_len`
    /// samples (MFCC + template matching), for cost accounting.
    pub fn flops_for(&self, samples_len: usize) -> u64 {
        self.mfcc_flops_for(samples_len) + self.matching_flops_for(samples_len)
    }

    /// The MFCC front-end share of [`KeywordStt::flops_for`]: FFT plus
    /// filterbank/DCT, excluding template matching. Lets cost accounting
    /// (and telemetry spans) attribute feature extraction separately from
    /// recognition.
    pub fn mfcc_flops_for(&self, samples_len: usize) -> u64 {
        let frames = self.extractor.frame_count(samples_len) as u64;
        let frame_len = self.config.mfcc.frame_len as u64;
        // FFT ~ n log n, filterbank + DCT ~ n_mels * n_coeffs.
        let fft = frames * frame_len * (frame_len as f64).log2() as u64;
        let cepstral = frames * (self.config.mfcc.n_mels * self.config.mfcc.n_coeffs) as u64;
        fft + cepstral
    }

    /// The template-matching share of [`KeywordStt::flops_for`]:
    /// ~ vocab * n_coeffs per frame.
    pub fn matching_flops_for(&self, samples_len: usize) -> u64 {
        let frames = self.extractor.frame_count(samples_len) as u64;
        frames * (self.templates.len() * self.config.mfcc.n_coeffs) as u64
    }

    /// Mean MFCC vector over the *voiced* frames only.
    ///
    /// Templates and recognition segments must be averaged the same way:
    /// a word's quiet attack/decay frames (the synthesizer's sine
    /// envelope) drag the plain mean towards silence, and VAD-derived
    /// segments clip those edges — so a full-rendering mean template and a
    /// segment mean diverge for the *same* word. Gating both sides on the
    /// VAD threshold removes that train/serve mismatch.
    fn voiced_mean(extractor: &MfccExtractor, samples: &[i16], vad_threshold: f64) -> Vec<f32> {
        let features = extractor.extract(samples);
        let energies = extractor.frame_energies(samples);
        let n_coeffs = features.cols().max(1);
        let mut mean = vec![0.0f32; n_coeffs];
        let mut voiced = 0usize;
        for (frame, &energy) in energies.iter().enumerate().take(features.rows()) {
            if energy > vad_threshold {
                for (acc, &v) in mean.iter_mut().zip(features.row(frame)) {
                    *acc += v;
                }
                voiced += 1;
            }
        }
        if voiced == 0 {
            return extractor.mean_vector(samples);
        }
        for v in &mut mean {
            *v /= voiced as f32;
        }
        mean
    }

    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        let dot: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Splits the audio into speech segments using the energy-based VAD.
    /// Returns `(start_frame, end_frame)` pairs (end exclusive).
    pub fn segment(&self, samples: &[i16]) -> Vec<(usize, usize)> {
        let energies = self.extractor.frame_energies(samples);
        let mut segments = Vec::new();
        let mut start: Option<usize> = None;
        for (i, &e) in energies.iter().enumerate() {
            let speech = e > self.config.vad_threshold;
            match (speech, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    if i - s >= self.config.min_segment_frames {
                        segments.push((s, i));
                    }
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            if energies.len() - s >= self.config.min_segment_frames {
                segments.push((s, energies.len()));
            }
        }
        segments
    }

    /// Transcribes an utterance.
    pub fn transcribe(&self, samples: &[i16]) -> Transcript {
        let segments = self.segment(samples);
        let mut words = Vec::new();
        let mut confidences = Vec::new();
        for &(start_frame, end_frame) in &segments {
            let start = start_frame * self.config.mfcc.hop_len;
            let end = (end_frame * self.config.mfcc.hop_len + self.config.mfcc.frame_len)
                .min(samples.len());
            if end <= start {
                continue;
            }
            let vector = Self::voiced_mean(
                &self.extractor,
                &samples[start..end],
                self.config.vad_threshold,
            );
            let best = self
                .templates
                .iter()
                .map(|(word, template)| (word, Self::cosine(&vector, template)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            if let Some((word, similarity)) = best {
                if similarity >= self.config.confidence_floor {
                    words.push(word.clone());
                    confidences.push(similarity);
                }
            }
        }
        Transcript {
            words,
            confidences,
            segments: segments.len(),
        }
    }

    /// Transcribes and maps the words to token ids (unknown words are
    /// dropped, which cannot happen for words recognized from the
    /// vocabulary's own templates).
    pub fn transcribe_to_tokens(&self, samples: &[i16]) -> Vec<usize> {
        self.transcribe(samples)
            .words
            .iter()
            .filter_map(|w| self.token_of(w))
            .collect()
    }

    /// [`KeywordStt::voiced_mean`] into the plan's scratch buffers — the
    /// identical arithmetic, with the MFCC features, frame energies and
    /// the mean vector all reused across calls. The result lives in
    /// `plan.mean` afterwards.
    fn voiced_mean_with(&self, samples: &[i16], plan: &mut FeaturePlan) {
        let frames = self.extractor.extract_into(samples, plan);
        let n_coeffs = self.config.mfcc.n_coeffs.max(1);
        self.extractor
            .frame_energies_into(samples, &mut plan.energies);
        plan.mean.clear();
        plan.mean.resize(n_coeffs, 0.0);
        let mut voiced = 0usize;
        for frame in 0..frames.min(plan.energies.len()) {
            if plan.energies[frame] > self.config.vad_threshold {
                let row = &plan.mfcc[frame * n_coeffs..(frame + 1) * n_coeffs];
                for (acc, &v) in plan.mean.iter_mut().zip(row) {
                    *acc += v;
                }
                voiced += 1;
            }
        }
        if voiced == 0 {
            // The fallback of the allocating path: the plain mean over all
            // frames (zero vector when there are none).
            if frames > 0 {
                for frame in 0..frames {
                    let row = &plan.mfcc[frame * n_coeffs..(frame + 1) * n_coeffs];
                    for (acc, &v) in plan.mean.iter_mut().zip(row) {
                        *acc += v;
                    }
                }
                for v in &mut plan.mean {
                    *v /= frames as f32;
                }
            }
            return;
        }
        for v in &mut plan.mean {
            *v /= voiced as f32;
        }
    }

    /// Best (token, similarity) for the segment mean in `plan.mean`,
    /// matched in f32 (the baseline arithmetic).
    fn match_segment_f32(&self, plan: &FeaturePlan) -> Option<(usize, f32)> {
        self.templates
            .iter()
            .enumerate()
            .map(|(token, (_, template))| (token, Self::cosine(&plan.mean, template)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Best (token, similarity) for the segment mean in `plan.mean`,
    /// matched on the integer kernels: the mean is quantized once into
    /// `plan.mean_q`, and every template comparison is one [`dot_i8`]
    /// against the precomputed quantized templates. The quantization
    /// scales cancel out of the cosine, so only int8 rounding separates
    /// this from [`KeywordStt::match_segment_f32`] — and the synthetic
    /// vocabulary's similarity margins dwarf that rounding (pinned by the
    /// decision-parity proptest).
    fn match_segment_int8(&self, plan: &mut FeaturePlan) -> Option<(usize, f32)> {
        quantize_activations(&plan.mean, &mut plan.mean_q);
        let norm_mean = (dot_i8(&plan.mean_q, &plan.mean_q) as f32).sqrt();
        self.templates_q
            .iter()
            .enumerate()
            .map(|(token, (template_q, norm_t))| {
                let denom = norm_mean * norm_t;
                let similarity = if denom == 0.0 {
                    0.0
                } else {
                    dot_i8(&plan.mean_q, template_q) as f32 / denom
                };
                (token, similarity)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// [`KeywordStt::transcribe_to_tokens`] over a caller-owned
    /// [`FeaturePlan`]: the same segmentation, template matching and tie
    /// handling, with the MFCC, energy, segment-bound and mean buffers
    /// all coming from the plan, and no word strings materialized — the
    /// winning template's index *is* the token id. The returned token
    /// list is the one remaining per-window allocation (it outlives the
    /// plan's scratch in the TA's policy stage). This is the path the
    /// filter TA drives once per capture window in f32 mode.
    pub fn transcribe_to_tokens_with(&self, samples: &[i16], plan: &mut FeaturePlan) -> Vec<usize> {
        self.tokens_with_impl(samples, plan, false)
    }

    /// [`KeywordStt::transcribe_to_tokens_with`] with the template
    /// matching on the int8 kernels ([`KeywordStt::match_segment_int8`])
    /// — the filter TA's hot path in int8 mode. Segmentation and the
    /// MFCC front end are shared with the f32 path; only the final
    /// template comparison runs on quantized vectors.
    pub fn transcribe_to_tokens_int8_with(
        &self,
        samples: &[i16],
        plan: &mut FeaturePlan,
    ) -> Vec<usize> {
        self.tokens_with_impl(samples, plan, true)
    }

    fn tokens_with_impl(&self, samples: &[i16], plan: &mut FeaturePlan, int8: bool) -> Vec<usize> {
        self.extractor
            .frame_energies_into(samples, &mut plan.energies);
        // Inline segmentation over the scratch energies (the same state
        // machine as `segment`).
        let mut tokens = Vec::new();
        let mut start: Option<usize> = None;
        plan.bounds.clear();
        for (i, &e) in plan.energies.iter().enumerate() {
            let speech = e > self.config.vad_threshold;
            match (speech, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    if i - s >= self.config.min_segment_frames {
                        plan.bounds.push((s, i));
                    }
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            if plan.energies.len() - s >= self.config.min_segment_frames {
                plan.bounds.push((s, plan.energies.len()));
            }
        }
        let bounds = std::mem::take(&mut plan.bounds);
        for &(start_frame, end_frame) in &bounds {
            let seg_start = start_frame * self.config.mfcc.hop_len;
            let seg_end = (end_frame * self.config.mfcc.hop_len + self.config.mfcc.frame_len)
                .min(samples.len());
            if seg_end <= seg_start {
                continue;
            }
            self.voiced_mean_with(&samples[seg_start..seg_end], plan);
            let best = if int8 {
                self.match_segment_int8(plan)
            } else {
                self.match_segment_f32(plan)
            };
            if let Some((token, similarity)) = best {
                if similarity >= self.config.confidence_floor {
                    tokens.push(token);
                }
            }
        }
        // Hand the bounds buffer (taken above so `voiced_mean_with` can
        // borrow the plan mutably) back to the plan for the next window.
        plan.bounds = bounds;
        tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Renders a "word" as a dual-tone signature, the same scheme the
    /// workload crate uses.
    fn render_word(index: usize, duration_samples: usize) -> Vec<i16> {
        let rate = 16_000.0;
        let f1 = 300.0 + 150.0 * (index % 13) as f64;
        let f2 = 1_200.0 + 240.0 * (index % 7) as f64;
        (0..duration_samples)
            .map(|i| {
                let t = i as f64 / rate;
                let envelope = (std::f64::consts::PI * i as f64 / duration_samples as f64).sin();
                let v = 0.45 * (2.0 * std::f64::consts::PI * f1 * t).sin()
                    + 0.35 * (2.0 * std::f64::consts::PI * f2 * t).sin();
                (v * envelope * 0.8 * i16::MAX as f64) as i16
            })
            .collect()
    }

    fn vocabulary(n: usize) -> Vec<(String, Vec<i16>)> {
        (0..n)
            .map(|i| (format!("word{i}"), render_word(i, 4_000)))
            .collect()
    }

    fn silence(samples: usize) -> Vec<i16> {
        vec![0i16; samples]
    }

    #[test]
    fn training_rejects_degenerate_vocabularies() {
        assert!(KeywordStt::train(&[], SttConfig::default()).is_err());
        let too_short = vec![("x".to_owned(), vec![0i16; 10])];
        assert!(KeywordStt::train(&too_short, SttConfig::default()).is_err());
    }

    #[test]
    fn recognizes_isolated_words_from_its_vocabulary() {
        let vocab = vocabulary(12);
        let stt = KeywordStt::train(&vocab, SttConfig::default()).unwrap();
        assert_eq!(stt.vocabulary_size(), 12);
        let mut correct = 0;
        for (i, (word, samples)) in vocab.iter().enumerate() {
            let transcript = stt.transcribe(samples);
            if transcript.words.first().map(String::as_str) == Some(word.as_str()) {
                correct += 1;
            }
            assert_eq!(stt.token_of(word), Some(i));
        }
        assert!(correct >= 10, "only {correct}/12 isolated words recognized");
    }

    #[test]
    fn transcribes_a_word_sequence_with_pauses() {
        let vocab = vocabulary(8);
        let stt = KeywordStt::train(&vocab, SttConfig::default()).unwrap();
        // "word2 word5 word1" with 100 ms silences in between.
        let mut samples = Vec::new();
        samples.extend(silence(1_600));
        samples.extend(&vocab[2].1);
        samples.extend(silence(1_600));
        samples.extend(&vocab[5].1);
        samples.extend(silence(1_600));
        samples.extend(&vocab[1].1);
        samples.extend(silence(1_600));
        let transcript = stt.transcribe(&samples);
        assert_eq!(transcript.segments, 3);
        assert_eq!(transcript.words, vec!["word2", "word5", "word1"]);
        assert_eq!(stt.transcribe_to_tokens(&samples), vec![2, 5, 1]);
        assert!(transcript.mean_confidence() > 0.5);
        assert_eq!(transcript.text(), "word2 word5 word1");
    }

    #[test]
    fn planned_transcription_matches_the_allocating_path() {
        let vocab = vocabulary(10);
        let stt = KeywordStt::train(&vocab, SttConfig::default()).unwrap();
        let mut plan = crate::plan::FeaturePlan::new();
        // Several different utterances reuse the same plan; results must
        // match the allocating path word for word, including empty audio.
        let mut samples = Vec::new();
        for &word in &[7usize, 0, 3] {
            samples.extend(silence(1_600));
            samples.extend(&vocab[word].1);
        }
        samples.extend(silence(1_600));
        for case in [&samples[..], &vocab[4].1[..], &silence(8_000)[..], &[]] {
            assert_eq!(
                stt.transcribe_to_tokens_with(case, &mut plan),
                stt.transcribe_to_tokens(case),
            );
        }
    }

    #[test]
    fn int8_template_matching_matches_the_f32_decisions() {
        let vocab = vocabulary(12);
        let stt = KeywordStt::train(&vocab, SttConfig::default()).unwrap();
        let mut plan = crate::plan::FeaturePlan::new();
        // Every vocabulary word, a multi-word utterance, silence and empty
        // audio: the int8 matcher must produce the same token streams.
        for (_, samples) in &vocab {
            assert_eq!(
                stt.transcribe_to_tokens_int8_with(samples, &mut plan),
                stt.transcribe_to_tokens(samples),
            );
        }
        let mut samples = Vec::new();
        for &word in &[11usize, 2, 6, 9] {
            samples.extend(silence(1_600));
            samples.extend(&vocab[word].1);
        }
        assert_eq!(
            stt.transcribe_to_tokens_int8_with(&samples, &mut plan),
            vec![11, 2, 6, 9]
        );
        assert!(stt
            .transcribe_to_tokens_int8_with(&silence(8_000), &mut plan)
            .is_empty());
        assert!(stt
            .transcribe_to_tokens_int8_with(&[], &mut plan)
            .is_empty());
    }

    #[test]
    fn silence_produces_an_empty_transcript() {
        let stt = KeywordStt::train(&vocabulary(4), SttConfig::default()).unwrap();
        let transcript = stt.transcribe(&silence(16_000));
        assert!(transcript.words.is_empty());
        assert_eq!(transcript.segments, 0);
        assert_eq!(transcript.mean_confidence(), 0.0);
    }

    #[test]
    fn vad_segmentation_finds_speech_islands() {
        let stt = KeywordStt::train(&vocabulary(4), SttConfig::default()).unwrap();
        let mut samples = silence(3_200);
        samples.extend(render_word(0, 3_200));
        samples.extend(silence(3_200));
        let segments = stt.segment(&samples);
        assert_eq!(segments.len(), 1);
        let (start, end) = segments[0];
        assert!(start > 0);
        assert!(end > start);
    }

    #[test]
    fn flops_scale_with_audio_length() {
        let stt = KeywordStt::train(&vocabulary(4), SttConfig::default()).unwrap();
        assert!(stt.flops_for(32_000) > stt.flops_for(16_000));
        assert_eq!(stt.flops_for(0), 0);
    }
}
