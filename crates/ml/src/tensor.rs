//! A small dense-matrix type.
//!
//! Row-major `f32` matrices with exactly the operations the models in this
//! crate need. Kept deliberately simple: correctness and readability over
//! SIMD tricks — the *cost* of inference on the simulated platform is
//! charged separately through the platform cost model, not measured from
//! host wall-clock time.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{MlError, Result};

/// A row-major dense matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "{rows}x{cols} needs {} values, got {}",
                    rows * cols,
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix with seeded uniform random values in
    /// `[-scale, scale]` (deterministic per seed).
    pub fn random(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw data (row major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data (row major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix multiplication `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "cannot multiply {}x{} by {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.data[k * other.cols + j];
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "cannot add {}x{} and {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Adds a row vector to every row (broadcast).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Result<Matrix> {
        if bias.len() != self.cols {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "bias of {} does not match {} columns",
                    bias.len(),
                    self.cols
                ),
            });
        }
        let mut out = self.clone();
        for r in 0..self.rows {
            for (c, &b) in bias.iter().enumerate().take(self.cols) {
                out.data[r * self.cols + c] += b;
            }
        }
        Ok(out)
    }

    /// Applies `f` element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Scales every element.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Mean over rows: returns a `1 x cols` matrix.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        for v in out.data.iter_mut() {
            *v /= self.rows as f32;
        }
        out
    }

    /// Column-wise maximum over rows: returns a `1 x cols` matrix.
    pub fn max_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for c in 0..self.cols {
            let mut m = f32::NEG_INFINITY;
            for r in 0..self.rows {
                m = m.max(self.data[r * self.cols + c]);
            }
            out.data[c] = if m.is_finite() { m } else { 0.0 };
        }
        out
    }

    /// Row-wise softmax (in place on a copy).
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Number of multiply-accumulate operations a `matmul` with `other`
    /// would perform (used for cost accounting).
    pub fn matmul_flops(&self, other: &Matrix) -> u64 {
        (self.rows * self.cols * other.cols) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert!(Matrix::from_vec(2, 3, vec![1.0]).is_err());
        assert!(Matrix::zeros(0, 0).is_empty());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
        assert!(b.matmul(&Matrix::zeros(5, 5)).is_err());
        assert_eq!(a.matmul_flops(&b), 2 * 3 * 2);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::random(3, 5, 1.0, 42);
        let t = a.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn add_and_broadcast() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[11.0, 22.0, 33.0, 44.0]);
        assert!(a.add(&Matrix::zeros(3, 2)).is_err());
        let biased = a.add_row_broadcast(&[100.0, 200.0]).unwrap();
        assert_eq!(biased.data(), &[101.0, 202.0, 103.0, 204.0]);
        assert!(a.add_row_broadcast(&[1.0]).is_err());
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 5.0, 3.0, 1.0]).unwrap();
        assert_eq!(a.mean_rows().data(), &[2.0, 3.0]);
        assert_eq!(a.max_rows().data(), &[3.0, 5.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one_and_orders_correctly() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0]).unwrap();
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(s.get(0, 2) > s.get(0, 1));
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(Matrix::random(4, 4, 0.5, 7), Matrix::random(4, 4, 0.5, 7));
        assert_ne!(Matrix::random(4, 4, 0.5, 7), Matrix::random(4, 4, 0.5, 8));
        let m = Matrix::random(10, 10, 0.5, 1);
        assert!(m.data().iter().all(|v| v.abs() <= 0.5));
    }

    #[test]
    fn map_and_scale() {
        let a = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]).unwrap();
        assert_eq!(a.map(|v| v.max(0.0)).data(), &[0.0, 0.0, 2.0]);
        assert_eq!(a.scale(2.0).data(), &[-2.0, 0.0, 4.0]);
    }
}
