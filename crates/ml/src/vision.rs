//! The in-TA vision stack: frame featurization and the frame classifier.
//!
//! The paper names cameras alongside microphones as the peripherals whose
//! data leaks private information (images of people, documents). The
//! vision TA therefore needs the image-side counterpart of the text
//! classifiers: a featurizer that maps a grayscale frame to a fixed-size
//! vector, plus a trainable binary head deciding "does this frame show
//! something sensitive?".
//!
//! The featurizer follows the same pre-training substitution as the text
//! extractors (see the crate documentation): its structure carries the
//! signal, its convolution weights are fixed and seeded, and only the
//! dense head is trained.
//!
//! * **Patch pooling** — the frame is divided into a grid of square
//!   patches; per-patch mean and standard deviation capture where the
//!   light is and how busy each region is (a person is a dark
//!   high-contrast blob, a document is a page of high-frequency stripes,
//!   an empty room is flat).
//! * **Small 2-D convolution** — a bank of seeded 3x3 filters slides over
//!   the patch-mean grid; ReLU + global max pooling summarizes the
//!   spatial structure (edges and blobs) the raw patch statistics miss.

use serde::{Deserialize, Serialize};

use crate::head::{ClassifierHead, HeadTrainConfig};
use crate::tensor::Matrix;
use crate::{MlError, Result};

/// Pools one grayscale frame into per-patch mean / standard deviation,
/// straight from the u8 pixels with integer accumulators — no per-pixel
/// f64 conversion. Shared by the f32 featurizer and the int8
/// [`crate::int8::QuantFrameCnn`], so the patch statistics both modes
/// feed their heads are **bit-identical**; the modes can only diverge in
/// the convolution and head arithmetic.
///
/// Each pixel row is read once, sequentially: the inner loop walks
/// `patch`-wide chunks of the row and feeds per-patch `u32` sum /
/// sum-of-squares accumulators, a shape that autovectorizes. The integer
/// sums are exact; one divide and one square root per *patch* (not per
/// pixel) produce the f32 statistics.
///
/// Caller guarantees `pixels.len() == config.width * config.height` and
/// `config.patch <= 256` (`256 * 256 * 255^2` is the `u32` exactness
/// bound for the squared sums).
///
/// On AVX2 hosts with `patch == 8` frames whose rows are whole 32-byte
/// groups of patches, dispatches to a `vpsadbw`/`vpmaddwd` kernel; the
/// integer sums are exact either way, so the statistics stay
/// bit-identical to [`pool_patches_into_ref`].
pub fn pool_patches_into(
    pixels: &[u8],
    config: &VisionConfig,
    means: &mut Vec<f32>,
    stds: &mut Vec<f32>,
) {
    #[cfg(target_arch = "x86_64")]
    if config.patch == 8
        && config.width == config.grid_cols() * 8
        && config.width.is_multiple_of(32)
        && crate::quant::x86::avx2_available()
    {
        // SAFETY: AVX2 presence checked; the geometry guards above give
        // the kernel whole 32-byte pixel-row groups.
        #[allow(unsafe_code)]
        unsafe {
            pool_patches_avx2(pixels, config, means, stds);
        }
        return;
    }
    pool_patches_into_ref(pixels, config, means, stds);
}

/// The portable form of [`pool_patches_into`] — the oracle the AVX2
/// kernel is tested bit-identical against, and the path every non-AVX2
/// host or irregular geometry takes.
pub fn pool_patches_into_ref(
    pixels: &[u8],
    config: &VisionConfig,
    means: &mut Vec<f32>,
    stds: &mut Vec<f32>,
) {
    let (cols, rows, patch) = (config.grid_cols(), config.grid_rows(), config.patch);
    debug_assert_eq!(pixels.len(), config.width * config.height);
    debug_assert!(patch <= 256, "u32 sum-of-squares exactness bound");
    means.clear();
    means.resize(rows * cols, 0.0);
    stds.clear();
    stds.resize(rows * cols, 0.0);
    assert!(cols <= 64, "patch grid wider than the pooling accumulators");
    let mut sums = [0u32; 64];
    let mut sum_sqs = [0u32; 64];
    for gy in 0..rows {
        sums[..cols].fill(0);
        sum_sqs[..cols].fill(0);
        for py in 0..patch {
            let row_start = (gy * patch + py) * config.width;
            let row = &pixels[row_start..row_start + cols * patch];
            for (gx, chunk) in row.chunks_exact(patch).enumerate() {
                let (mut s, mut sq) = (0u32, 0u32);
                for &p in chunk {
                    let p = u32::from(p);
                    s += p;
                    sq += p * p;
                }
                sums[gx] += s;
                sum_sqs[gx] += sq;
            }
        }
        patch_stats_row(&sums[..cols], &sum_sqs[..cols], patch, gy, means, stds);
    }
}

/// Shared epilogue of both pooling forms: exact integer sums in, f32
/// mean / standard deviation out. One divide and one square root per
/// patch; factored out so the two forms cannot drift numerically.
#[inline]
fn patch_stats_row(
    sums: &[u32],
    sum_sqs: &[u32],
    patch: usize,
    gy: usize,
    means: &mut [f32],
    stds: &mut [f32],
) {
    let cols = sums.len();
    let n = (patch * patch) as f64;
    for gx in 0..cols {
        let mean = sums[gx] as f64 / (255.0 * n);
        let mean_sq = sum_sqs[gx] as f64 / (255.0 * 255.0 * n);
        let var = (mean_sq - mean * mean).max(0.0);
        means[gy * cols + gx] = mean as f32;
        stds[gy * cols + gx] = var.sqrt() as f32;
    }
}

/// AVX2 form of [`pool_patches_into`] for `patch == 8` frames:
/// [`crate::quant::x86::pool_row_sums_patch8`] produces the per-patch
/// integer sums one grid row at a time, the shared epilogue converts
/// them.
///
/// # Safety
///
/// Caller must ensure AVX2 is available, `patch == 8`,
/// `width == grid_cols * 8` and `width % 32 == 0`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn pool_patches_avx2(
    pixels: &[u8],
    config: &VisionConfig,
    means: &mut Vec<f32>,
    stds: &mut Vec<f32>,
) {
    let (cols, rows) = (config.grid_cols(), config.grid_rows());
    debug_assert_eq!(pixels.len(), config.width * config.height);
    means.clear();
    means.resize(rows * cols, 0.0);
    stds.clear();
    stds.resize(rows * cols, 0.0);
    assert!(cols <= 64, "patch grid wider than the pooling accumulators");
    let mut sums = [0u32; 64];
    let mut sum_sqs = [0u32; 64];
    for gy in 0..rows {
        let start = gy * 8 * config.width;
        crate::quant::x86::pool_row_sums_patch8(
            &pixels[start..start + 8 * config.width],
            config.width,
            &mut sums[..cols],
            &mut sum_sqs[..cols],
        );
        patch_stats_row(&sums[..cols], &sum_sqs[..cols], 8, gy, means, stds);
    }
}

/// Configuration of the frame classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VisionConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Patch edge length in pixels (patches are square).
    pub patch: usize,
    /// Number of 3x3 convolution filters over the patch-mean grid.
    pub conv_channels: usize,
    /// Seed for the fixed convolution weights.
    pub seed: u64,
    /// Hidden width of the trainable head.
    pub head_hidden_dim: usize,
    /// Head training hyper-parameters.
    pub head: HeadTrainConfig,
}

impl VisionConfig {
    /// The configuration matching the smart-home camera (64x48 frames,
    /// 8-pixel patches), sized to stay far inside TEE memory budgets.
    pub fn smart_home() -> Self {
        VisionConfig {
            width: 64,
            height: 48,
            patch: 8,
            conv_channels: 8,
            seed: 0xCA3E5A,
            head_hidden_dim: 24,
            head: HeadTrainConfig::default(),
        }
    }

    /// Patch-grid width.
    pub fn grid_cols(&self) -> usize {
        self.width / self.patch
    }

    /// Patch-grid height.
    pub fn grid_rows(&self) -> usize {
        self.height / self.patch
    }
}

/// The fixed (seeded) frame featurizer: patch pooling plus a small 2-D
/// convolution over the patch-mean grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameFeaturizer {
    config: VisionConfig,
    /// `conv_channels` filters of 3x3 weights, flattened row-major.
    filters: Matrix,
}

impl FrameFeaturizer {
    /// Builds the featurizer for the configured geometry.
    ///
    /// # Panics
    ///
    /// Panics on a patch edge above 256 pixels: patch pooling accumulates
    /// squared pixel values in `u32`, which is exact only up to
    /// `256 * 256 * 255^2`.
    pub fn new(config: VisionConfig) -> Self {
        assert!(
            config.patch <= 256,
            "patch pooling supports patch edges up to 256 pixels, got {}",
            config.patch
        );
        FrameFeaturizer {
            config,
            filters: Matrix::random(config.conv_channels.max(1), 9, 0.6, config.seed),
        }
    }

    /// Width of the produced feature vector: per-patch mean and standard
    /// deviation plus one max-pooled activation per convolution channel.
    pub fn feature_dim(&self) -> usize {
        2 * self.config.grid_cols() * self.config.grid_rows() + self.config.conv_channels
    }

    /// Expected pixel-buffer length.
    pub fn frame_len(&self) -> usize {
        self.config.width * self.config.height
    }

    /// Featurizes one grayscale frame (row-major, one byte per pixel).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `pixels` does not match the
    /// configured geometry.
    pub fn extract(&self, pixels: &[u8]) -> Result<Matrix> {
        let mut plan = crate::plan::FeaturePlan::new();
        self.extract_into(pixels, &mut plan)?;
        Matrix::from_vec(1, plan.features.len(), plan.features)
    }

    /// [`FrameFeaturizer::extract`] into the plan's scratch buffers: on
    /// return `plan.features` holds the feature vector. Identical
    /// arithmetic; a warm plan makes the call allocation-free, which is
    /// what the vision TA's per-frame hot path needs.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `pixels` does not match the
    /// configured geometry.
    pub fn extract_into(&self, pixels: &[u8], plan: &mut crate::plan::FeaturePlan) -> Result<()> {
        if pixels.len() != self.frame_len() {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "frame has {} pixels, featurizer expects {}x{}",
                    pixels.len(),
                    self.config.width,
                    self.config.height
                ),
            });
        }
        let (cols, rows) = (self.config.grid_cols(), self.config.grid_rows());
        pool_patches_into(pixels, &self.config, &mut plan.means, &mut plan.stds);

        // Small 2-D convolution over the (zero-padded) patch-mean grid,
        // ReLU, global max pool per channel, straight into the feature
        // vector after the patch statistics.
        plan.features.clear();
        plan.features.extend_from_slice(&plan.means);
        plan.features.extend_from_slice(&plan.stds);
        let means = &plan.means;
        let grid_at = |x: isize, y: isize| -> f32 {
            if x < 0 || y < 0 || x >= cols as isize || y >= rows as isize {
                0.0
            } else {
                means[y as usize * cols + x as usize]
            }
        };
        for ch in 0..self.config.conv_channels {
            let w = self.filters.row(ch);
            let mut best = 0.0f32;
            for gy in 0..rows as isize {
                for gx in 0..cols as isize {
                    let mut acc = 0.0f32;
                    for ky in -1..=1isize {
                        for kx in -1..=1isize {
                            let weight = w[((ky + 1) * 3 + (kx + 1)) as usize];
                            acc += weight * grid_at(gx + kx, gy + ky);
                        }
                    }
                    best = best.max(acc); // ReLU folded into the max with 0
                }
            }
            plan.features.push(best);
        }
        Ok(())
    }

    /// Approximate multiply-accumulate count of one extraction.
    pub fn flops(&self) -> u64 {
        let pooling = self.frame_len() as u64 * 2;
        let conv =
            (self.config.grid_cols() * self.config.grid_rows() * 9 * self.config.conv_channels)
                as u64;
        pooling + conv
    }

    /// Fixed parameter count (the convolution filters).
    pub fn parameter_count(&self) -> usize {
        self.filters.len()
    }

    /// The fixed convolution filters (used by int8 conversion).
    pub(crate) fn filters(&self) -> &Matrix {
        &self.filters
    }
}

/// The frame classifier hosted by the vision TA: fixed featurizer plus a
/// trained binary head — the image-side sibling of
/// [`crate::classifier::SensitiveClassifier`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameCnn {
    featurizer: FrameFeaturizer,
    head: ClassifierHead,
    config: VisionConfig,
    threshold: f32,
}

impl FrameCnn {
    /// Creates an untrained frame classifier.
    pub fn new(config: VisionConfig) -> Self {
        let featurizer = FrameFeaturizer::new(config);
        let head = ClassifierHead::new(
            featurizer.feature_dim(),
            config.head_hidden_dim,
            config.seed + 2000,
        );
        FrameCnn {
            featurizer,
            head,
            config,
            threshold: 0.5,
        }
    }

    /// The configuration the classifier was built with.
    pub fn config(&self) -> &VisionConfig {
        &self.config
    }

    /// Whether [`FrameCnn::fit`] has been called.
    pub fn is_trained(&self) -> bool {
        self.head.is_trained()
    }

    /// Expected pixel-buffer length per frame.
    pub fn frame_len(&self) -> usize {
        self.featurizer.frame_len()
    }

    /// Trains the head on labelled frames (`pixels`, `sensitive`).
    /// Returns the final-epoch training loss.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::BadTrainingData`] for an empty corpus and
    /// [`MlError::ShapeMismatch`] for frames of the wrong geometry.
    pub fn fit(&mut self, examples: &[(Vec<u8>, bool)]) -> Result<f32> {
        if examples.is_empty() {
            return Err(MlError::BadTrainingData {
                reason: "empty frame corpus".to_owned(),
            });
        }
        let mut features = Vec::with_capacity(examples.len());
        let mut labels = Vec::with_capacity(examples.len());
        for (pixels, label) in examples {
            features.push(self.featurizer.extract(pixels)?);
            labels.push(*label);
        }
        self.head.train(&features, &labels, &self.config.head)
    }

    /// Probability that the frame shows sensitive content.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotTrained`] before [`FrameCnn::fit`] and
    /// [`MlError::ShapeMismatch`] for frames of the wrong geometry.
    pub fn predict(&self, pixels: &[u8]) -> Result<f32> {
        if !self.is_trained() {
            return Err(MlError::NotTrained);
        }
        let features = self.featurizer.extract(pixels)?;
        self.head.predict(&features)
    }

    /// [`FrameCnn::predict`] over a caller-owned [`FeaturePlan`]: the
    /// same arithmetic with the featurizer and head scratch reused — the
    /// vision TA's allocation-free per-frame path.
    ///
    /// # Errors
    ///
    /// Same as [`FrameCnn::predict`].
    pub fn predict_with(&self, pixels: &[u8], plan: &mut crate::plan::FeaturePlan) -> Result<f32> {
        if !self.is_trained() {
            return Err(MlError::NotTrained);
        }
        self.featurizer.extract_into(pixels, plan)?;
        self.head.predict_features(&plan.features, &mut plan.hidden)
    }

    /// Binary decision using the configured threshold.
    ///
    /// # Errors
    ///
    /// Same as [`FrameCnn::predict`].
    pub fn is_sensitive(&self, pixels: &[u8]) -> Result<bool> {
        Ok(self.predict(pixels)? >= self.threshold)
    }

    /// Total parameter count (featurizer + head).
    pub fn parameter_count(&self) -> usize {
        self.featurizer.parameter_count() + self.head.parameter_count()
    }

    /// Memory footprint in bytes at 32-bit precision.
    pub fn memory_bytes_f32(&self) -> usize {
        self.parameter_count() * 4
    }

    /// Approximate multiply-accumulate count of one frame inference.
    pub fn flops_per_inference(&self) -> u64 {
        self.featurizer.flops() + self.head.flops()
    }

    /// Read access for int8 conversion.
    pub(crate) fn parts(&self) -> (&FrameFeaturizer, &ClassifierHead) {
        (&self.featurizer, &self.head)
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature of the synthetic camera: flat frames are non-sensitive,
    /// striped and blobbed frames are sensitive (documents / people).
    fn frame_corpus(n: usize, seed: u64) -> Vec<(Vec<u8>, bool)> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let config = VisionConfig::smart_home();
        (0..n)
            .map(|i| {
                let sensitive = i % 2 == 0;
                let mut pixels = vec![0u8; config.width * config.height];
                for (idx, p) in pixels.iter_mut().enumerate() {
                    let y = idx / config.width;
                    *p = if sensitive {
                        // High-frequency stripes, like a document.
                        if y % 4 < 2 {
                            220u8.saturating_add(rng.gen_range(0..20))
                        } else {
                            40u8.saturating_add(rng.gen_range(0..20))
                        }
                    } else {
                        120u8.saturating_add(rng.gen_range(0..10))
                    };
                }
                (pixels, sensitive)
            })
            .collect()
    }

    #[test]
    fn featurizer_produces_fixed_width_deterministic_features() {
        let f = FrameFeaturizer::new(VisionConfig::smart_home());
        let frame = vec![128u8; f.frame_len()];
        let a = f.extract(&frame).unwrap();
        assert_eq!(a.rows(), 1);
        assert_eq!(a.cols(), f.feature_dim());
        assert_eq!(f.extract(&frame).unwrap(), a);
        // 64x48 with 8-pixel patches: 8x6 grid, 2 stats each, 8 channels.
        assert_eq!(f.feature_dim(), 2 * 8 * 6 + 8);
        assert!(f.flops() > 0);
        assert!(f.parameter_count() > 0);
        // Wrong geometry is rejected, not mangled.
        assert!(f.extract(&frame[1..]).is_err());
    }

    #[test]
    fn distinct_scenes_have_distinct_features() {
        let f = FrameFeaturizer::new(VisionConfig::smart_home());
        let flat = vec![120u8; f.frame_len()];
        let striped: Vec<u8> = (0..f.frame_len())
            .map(|i| if (i / 64) % 4 < 2 { 230 } else { 40 })
            .collect();
        assert_ne!(f.extract(&flat).unwrap(), f.extract(&striped).unwrap());
    }

    #[test]
    fn untrained_classifier_refuses_to_predict() {
        let c = FrameCnn::new(VisionConfig::smart_home());
        let frame = vec![0u8; c.frame_len()];
        assert!(matches!(c.predict(&frame), Err(MlError::NotTrained)));
        assert!(!c.is_trained());
    }

    #[test]
    fn frame_cnn_learns_the_synthetic_task() {
        let train = frame_corpus(80, 1);
        let test = frame_corpus(40, 2);
        let mut c = FrameCnn::new(VisionConfig::smart_home());
        c.fit(&train).unwrap();
        let correct = test
            .iter()
            .filter(|(pixels, label)| c.is_sensitive(pixels).unwrap() == *label)
            .count();
        assert!(
            correct as f64 / test.len() as f64 > 0.9,
            "accuracy {correct}/{}",
            test.len()
        );
        assert!(c.memory_bytes_f32() > 0);
        assert!(c.flops_per_inference() > 0);
    }

    #[test]
    fn empty_corpus_and_bad_frames_are_rejected() {
        let mut c = FrameCnn::new(VisionConfig::smart_home());
        assert!(matches!(c.fit(&[]), Err(MlError::BadTrainingData { .. })));
        assert!(c.fit(&[(vec![0u8; 3], true)]).is_err());
    }
}
