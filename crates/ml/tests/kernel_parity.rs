//! Dispatched-kernel / scalar-oracle bit-identity and int8-STT parity.
//!
//! The runtime-dispatched int8 kernels (AVX2 intrinsics on capable
//! hosts, the chunked portable forms elsewhere) are *required* to be
//! bit-identical to the retained scalar references — integer
//! accumulation is exact in any order, so any divergence is a bug, not
//! noise. On an AVX2 host these properties exercise the intrinsic paths
//! directly; on any other host they pin the portable forms. They cover
//! shapes including non-multiple-of-lane tails, the per-channel rescale
//! semantics, the i16 head activations, the AVX2 patch pooling, and the
//! int8 template matcher's decision parity with the f32 path. They live
//! in the ml crate so the `cargo test -p perisec-ml` CI fast lane runs
//! them before the full suite.

use std::sync::OnceLock;

use proptest::prelude::*;

use perisec_ml::plan::FeaturePlan;
use perisec_ml::quant::{
    dot_i8, dot_i8_ref, quantize_activations, quantize_activations_i16, QuantGranularity,
    QuantizedMatrix,
};
use perisec_ml::stt::{KeywordStt, SttConfig};
use perisec_ml::tensor::Matrix;
use perisec_ml::vision::{pool_patches_into, pool_patches_into_ref, VisionConfig};

/// Builds a quantized matrix of every granularity from one seeded f32
/// matrix plus a matching quantized activation vector.
fn quantized_case(rows: usize, cols: usize, seed: u64) -> (Matrix, Vec<i8>, f32) {
    let m = Matrix::random(rows, cols, 1.8, seed);
    let x: Vec<f32> = (0..rows)
        .map(|i| (((i as u64 * 37 + seed) % 97) as f32 - 48.0) / 29.0)
        .collect();
    let mut x_q = Vec::new();
    let x_scale = quantize_activations(&x, &mut x_q);
    (m, x_q, x_scale)
}

proptest! {
    /// The chunked `dot_i8` equals the scalar reference exactly, for any
    /// contents and any length (lane-multiple or ragged tail).
    #[test]
    fn chunked_dot_is_bit_identical_to_scalar(
        a in proptest::collection::vec(any::<i8>(), 0..220),
        b in proptest::collection::vec(any::<i8>(), 0..220),
    ) {
        let len = a.len().min(b.len());
        let (a, b) = (&a[..len], &b[..len]);
        prop_assert_eq!(dot_i8(a, b), dot_i8_ref(a, b));
    }

    /// The chunked `matmul_i8` equals the scalar reference exactly —
    /// accumulators and rescaled outputs both — for per-tensor and
    /// per-column granularities across ragged shapes.
    #[test]
    fn chunked_matmul_is_bit_identical_to_scalar(
        rows in 1usize..40,
        cols in 1usize..40,
        seed in any::<u64>(),
    ) {
        let (m, x_q, x_scale) = quantized_case(rows, cols, seed);
        for q in [QuantizedMatrix::quantize(&m), QuantizedMatrix::quantize_per_col(&m)] {
            let (mut acc, mut out) = (Vec::new(), Vec::new());
            let (mut acc_ref, mut out_ref) = (Vec::new(), Vec::new());
            q.matmul_i8(&x_q, x_scale, &mut acc, &mut out).expect("chunked matmul");
            q.matmul_i8_ref(&x_q, x_scale, &mut acc_ref, &mut out_ref).expect("scalar matmul");
            prop_assert_eq!(&acc, &acc_ref, "i32 accumulators diverged ({:?})", q.granularity());
            prop_assert_eq!(&out, &out_ref, "rescaled outputs diverged ({:?})", q.granularity());
        }
    }

    /// The dispatched `matmul_i16` (the i16 head-activation path) equals
    /// its scalar reference exactly, for per-tensor and per-column
    /// granularities across ragged shapes.
    #[test]
    fn dispatched_matmul_i16_is_bit_identical_to_scalar(
        rows in 1usize..40,
        cols in 1usize..40,
        seed in any::<u64>(),
    ) {
        let m = Matrix::random(rows, cols, 1.8, seed);
        let x: Vec<f32> = (0..rows)
            .map(|i| (((i as u64 * 53 + seed) % 89) as f32 - 44.0) / 17.0)
            .collect();
        let mut x_q = Vec::new();
        let x_scale = quantize_activations_i16(&x, &mut x_q);
        for q in [QuantizedMatrix::quantize(&m), QuantizedMatrix::quantize_per_col(&m)] {
            let (mut acc, mut out) = (Vec::new(), Vec::new());
            let (mut acc_ref, mut out_ref) = (Vec::new(), Vec::new());
            q.matmul_i16(&x_q, x_scale, &mut acc, &mut out).expect("dispatched matmul");
            q.matmul_i16_ref(&x_q, x_scale, &mut acc_ref, &mut out_ref).expect("scalar matmul");
            prop_assert_eq!(&acc, &acc_ref, "i32 accumulators diverged ({:?})", q.granularity());
            prop_assert_eq!(&out, &out_ref, "rescaled outputs diverged ({:?})", q.granularity());
        }
    }

    /// The dispatched patch pooling (AVX2 `vpsadbw`/`vpmaddwd` on capable
    /// hosts) produces bit-identical statistics to the portable loop, on
    /// the dispatch-eligible geometry (patch 8, rows of whole 32-byte
    /// groups) with arbitrary pixel contents.
    #[test]
    fn dispatched_pooling_is_bit_identical_to_portable(
        col_groups in 1usize..4,
        rows in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut config = VisionConfig::smart_home();
        config.width = col_groups * 32;
        config.height = rows * 8;
        config.patch = 8;
        let mut state = seed;
        let pixels: Vec<u8> = (0..config.width * config.height)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let (mut means, mut stds) = (Vec::new(), Vec::new());
        let (mut means_ref, mut stds_ref) = (Vec::new(), Vec::new());
        pool_patches_into(&pixels, &config, &mut means, &mut stds);
        pool_patches_into_ref(&pixels, &config, &mut means_ref, &mut stds_ref);
        prop_assert_eq!(&means, &means_ref, "patch means diverged");
        prop_assert_eq!(&stds, &stds_ref, "patch stds diverged");
    }

    /// Per-channel quantization honours its rescale semantics: every
    /// reconstructed weight is within half a *channel* quantization step,
    /// and no channel scale exceeds the per-tensor scale.
    #[test]
    fn per_channel_rescale_tightens_the_per_tensor_bound(
        rows in 1usize..24,
        cols in 1usize..24,
        seed in any::<u64>(),
    ) {
        let (m, _, _) = quantized_case(rows, cols, seed);
        let tensor_scale = QuantizedMatrix::quantize(&m).scale();
        let per_row = QuantizedMatrix::quantize_per_row(&m);
        let restored = per_row.dequantize();
        for r in 0..rows {
            let row_scale = per_row.row_scale(r);
            prop_assert!(row_scale <= tensor_scale + 1e-6);
            for (a, b) in m.row(r).iter().zip(restored.row(r)) {
                prop_assert!(
                    (a - b).abs() <= row_scale * 0.5 + 1e-6,
                    "row {r}: {a} reconstructed as {b} (scale {row_scale})"
                );
            }
        }
        // The conv-axis matrix is rejected by the dense kernel instead of
        // silently mis-scaling.
        let (mut acc, mut out) = (Vec::new(), Vec::new());
        let x_q = vec![1i8; rows];
        prop_assert!(per_row.matmul_i8(&x_q, 1.0, &mut acc, &mut out).is_err());
        prop_assert_eq!(per_row.granularity(), QuantGranularity::PerRow);
    }
}

/// Renders a "word" as a dual-tone signature (the workload crate's
/// scheme) for the STT parity property.
fn render_word(index: usize, duration_samples: usize) -> Vec<i16> {
    let rate = 16_000.0;
    let f1 = 300.0 + 150.0 * (index % 13) as f64;
    let f2 = 1_200.0 + 240.0 * (index % 7) as f64;
    (0..duration_samples)
        .map(|i| {
            let t = i as f64 / rate;
            let envelope = (std::f64::consts::PI * i as f64 / duration_samples as f64).sin();
            let v = 0.45 * (2.0 * std::f64::consts::PI * f1 * t).sin()
                + 0.35 * (2.0 * std::f64::consts::PI * f2 * t).sin();
            (v * envelope * 0.8 * i16::MAX as f64) as i16
        })
        .collect()
}

/// One trained recognizer shared by every parity case.
fn stt() -> &'static KeywordStt {
    static STT: OnceLock<KeywordStt> = OnceLock::new();
    STT.get_or_init(|| {
        let vocab: Vec<(String, Vec<i16>)> = (0..12)
            .map(|i| (format!("word{i}"), render_word(i, 4_000)))
            .collect();
        KeywordStt::train(&vocab, SttConfig::default()).expect("stt trains")
    })
}

proptest! {
    /// The int8 template matcher transcribes random utterances (random
    /// word choices, lengths and pause lengths) to exactly the same token
    /// streams as the f32 matcher.
    #[test]
    fn int8_stt_decisions_match_f32_stt(
        word_seeds in proptest::collection::vec(any::<u64>(), 0..4),
        pause in 1_200usize..2_400,
    ) {
        let stt = stt();
        let mut samples = Vec::new();
        let mut expected = Vec::new();
        for &seed in &word_seeds {
            let word = (seed % 12) as usize;
            let duration = 3_200 + (seed % 5) as usize * 400;
            samples.extend(std::iter::repeat_n(0i16, pause));
            samples.extend(render_word(word, duration));
            expected.push(word);
        }
        samples.extend(std::iter::repeat_n(0i16, pause));
        let mut plan = FeaturePlan::new();
        let int8_tokens = stt.transcribe_to_tokens_int8_with(&samples, &mut plan);
        let f32_tokens = stt.transcribe_to_tokens(&samples);
        prop_assert_eq!(&int8_tokens, &f32_tokens, "modes diverged");
        prop_assert_eq!(int8_tokens, expected, "both modes mis-recognized");
    }
}
