//! Normal-world TEE client API (the analogue of `libteec`).
//!
//! The client is how untrusted code — the smart-home application, the
//! experiment harnesses — talks to the TEE: open a session to a TA, invoke
//! commands, close the session. Every call goes through the secure monitor
//! (an SMC plus two world switches) and pays the cross-world copy cost for
//! its memref parameters, which is precisely the overhead the paper's §V
//! worries about.

use std::sync::Arc;

use perisec_tz::world::World;

use crate::param::TeeParams;
use crate::tee::{ClientMessage, ClientReply, SessionId, TeeCore};
use crate::uuid::TaUuid;
use crate::{TeeError, TeeResult};

/// A handle to an open session, returned by [`TeeClient::open_session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeeSessionHandle {
    session: SessionId,
    uuid: TaUuid,
}

impl TeeSessionHandle {
    /// The session identifier.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The application the session is connected to.
    pub fn uuid(&self) -> TaUuid {
        self.uuid
    }
}

/// A normal-world client context.
#[derive(Clone)]
pub struct TeeClient {
    core: Arc<TeeCore>,
}

impl std::fmt::Debug for TeeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeClient").finish()
    }
}

impl TeeClient {
    /// Creates a client context connected to `core`.
    pub fn connect(core: Arc<TeeCore>) -> Self {
        TeeClient { core }
    }

    /// The TEE core this client talks to.
    pub fn core(&self) -> &Arc<TeeCore> {
        &self.core
    }

    fn charge_params_to_secure(&self, params: &TeeParams) {
        let bytes = params.total_memref_bytes();
        if bytes > 0 {
            self.core
                .platform()
                .monitor()
                .charge_cross_world_copy(bytes, World::Secure);
        }
    }

    fn charge_params_to_normal(&self, params: &TeeParams) {
        let bytes = params.total_memref_bytes();
        if bytes > 0 {
            self.core
                .platform()
                .monitor()
                .charge_cross_world_copy(bytes, World::Normal);
        }
    }

    /// Opens a session to the application `uuid`.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] for unknown applications, or the
    /// application's own rejection.
    pub fn open_session(
        &self,
        uuid: TaUuid,
        params: TeeParams,
    ) -> TeeResult<(TeeSessionHandle, TeeParams)> {
        self.charge_params_to_secure(&params);
        match self
            .core
            .client_call(ClientMessage::OpenSession { uuid, params })?
        {
            ClientReply::SessionOpened { session, params } => {
                self.charge_params_to_normal(&params);
                Ok((TeeSessionHandle { session, uuid }, params))
            }
            ClientReply::Failed(e) => Err(e),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Invokes command `cmd` on an open session.
    ///
    /// # Errors
    ///
    /// Returns the application's error, or [`TeeError::ItemNotFound`] if
    /// the session is unknown.
    pub fn invoke(
        &self,
        handle: &TeeSessionHandle,
        cmd: u32,
        params: TeeParams,
    ) -> TeeResult<TeeParams> {
        self.charge_params_to_secure(&params);
        match self.core.client_call(ClientMessage::Invoke {
            session: handle.session,
            cmd,
            params,
        })? {
            ClientReply::Invoked { params } => {
                self.charge_params_to_normal(&params);
                Ok(params)
            }
            ClientReply::Failed(e) => Err(e),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Invokes a batch of commands on an open session with a **single**
    /// SMC: one world-switch round trip is charged for the whole batch
    /// instead of one per command. Cross-world copies are still charged
    /// for every memref parameter in both directions — batching amortizes
    /// transitions, not data movement.
    ///
    /// # Errors
    ///
    /// Returns the first failing call's error (later calls are not
    /// dispatched), or [`TeeError::ItemNotFound`] if the session is
    /// unknown.
    pub fn invoke_batched(
        &self,
        handle: &TeeSessionHandle,
        calls: Vec<(u32, TeeParams)>,
    ) -> TeeResult<Vec<TeeParams>> {
        for (_, params) in &calls {
            self.charge_params_to_secure(params);
        }
        match self.core.client_call(ClientMessage::InvokeBatch {
            session: handle.session,
            calls,
        })? {
            ClientReply::InvokedBatch { results } => {
                for params in &results {
                    self.charge_params_to_normal(params);
                }
                Ok(results)
            }
            ClientReply::Failed(e) => Err(e),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] if the session is unknown.
    pub fn close_session(&self, handle: TeeSessionHandle) -> TeeResult<()> {
        match self.core.client_call(ClientMessage::CloseSession {
            session: handle.session,
        })? {
            ClientReply::Closed => Ok(()),
            ClientReply::Failed(e) => Err(e),
            other => Err(unexpected_reply(&other)),
        }
    }
}

fn unexpected_reply(reply: &ClientReply) -> TeeError {
    TeeError::Communication {
        reason: format!("unexpected reply from tee core: {reply:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::TeeParam;
    use crate::supplicant::Supplicant;
    use crate::ta::{TaDescriptor, TaEnv, TrustedApp};
    use perisec_tz::platform::Platform;

    struct AddTa;

    impl TrustedApp for AddTa {
        fn descriptor(&self) -> TaDescriptor {
            TaDescriptor::new("perisec.add-ta", 16, 16)
        }
        fn invoke(
            &mut self,
            _env: &mut TaEnv<'_>,
            cmd: u32,
            params: &mut TeeParams,
        ) -> TeeResult<()> {
            match cmd {
                0 => {
                    let (a, b) = params.get(0).as_values().ok_or(TeeError::BadParameters {
                        reason: "expected values in slot 0".to_owned(),
                    })?;
                    params.set(1, TeeParam::ValueOutput { a: a + b, b: 0 });
                    Ok(())
                }
                _ => Err(TeeError::ItemNotFound {
                    what: format!("command {cmd}"),
                }),
            }
        }
    }

    fn setup() -> (TeeClient, TaUuid) {
        let core = TeeCore::boot(Platform::jetson_agx_xavier(), Arc::new(Supplicant::new()));
        let uuid = core.register_ta(Box::new(AddTa)).unwrap();
        (TeeClient::connect(core), uuid)
    }

    #[test]
    fn open_invoke_close_charges_world_switches() {
        let (client, uuid) = setup();
        let stats = client.core().platform().stats().clone();
        let before = stats.snapshot();

        let (handle, _) = client.open_session(uuid, TeeParams::new()).unwrap();
        let params = TeeParams::new().with(0, TeeParam::ValueInput { a: 40, b: 2 });
        let out = client.invoke(&handle, 0, params).unwrap();
        assert_eq!(out.get(1).as_values().unwrap().0, 42);
        client.close_session(handle).unwrap();

        let delta = stats.snapshot().delta_since(&before);
        // Three client calls -> three SMCs and six world switches.
        assert_eq!(delta.smc_calls, 3);
        assert_eq!(delta.world_switches, 6);
    }

    #[test]
    fn batched_invocation_shares_one_smc() {
        let (client, uuid) = setup();
        let (handle, _) = client.open_session(uuid, TeeParams::new()).unwrap();
        let stats = client.core().platform().stats().clone();
        let before = stats.snapshot();

        let calls: Vec<(u32, TeeParams)> = (0..8)
            .map(|i| {
                (
                    0u32,
                    TeeParams::new().with(0, TeeParam::ValueInput { a: i, b: 1 }),
                )
            })
            .collect();
        let results = client.invoke_batched(&handle, calls).unwrap();
        assert_eq!(results.len(), 8);
        for (i, out) in results.iter().enumerate() {
            assert_eq!(out.get(1).as_values().unwrap().0, i as u64 + 1);
        }

        // Eight commands, one SMC, one world-switch round trip.
        let delta = stats.snapshot().delta_since(&before);
        assert_eq!(delta.smc_calls, 1);
        assert_eq!(delta.world_switches, 2);
    }

    #[test]
    fn batched_invocation_stops_at_the_first_error() {
        let (client, uuid) = setup();
        let (handle, _) = client.open_session(uuid, TeeParams::new()).unwrap();
        let calls = vec![
            (
                0u32,
                TeeParams::new().with(0, TeeParam::ValueInput { a: 1, b: 2 }),
            ),
            (99u32, TeeParams::new()),
            (
                0u32,
                TeeParams::new().with(0, TeeParam::ValueInput { a: 3, b: 4 }),
            ),
        ];
        assert!(matches!(
            client.invoke_batched(&handle, calls),
            Err(TeeError::ItemNotFound { .. })
        ));
        // An empty batch is a no-op.
        assert_eq!(client.invoke_batched(&handle, Vec::new()).unwrap().len(), 0);
    }

    #[test]
    fn memref_parameters_are_charged_as_cross_world_copies() {
        let (client, uuid) = setup();
        let stats = client.core().platform().stats().clone();
        let (handle, _) = client.open_session(uuid, TeeParams::new()).unwrap();
        let before = stats.snapshot();
        let params = TeeParams::new()
            .with(0, TeeParam::ValueInput { a: 1, b: 1 })
            .with(2, TeeParam::MemRefInput(vec![0u8; 4096]));
        let _ = client.invoke(&handle, 0, params).unwrap();
        let delta = stats.snapshot().delta_since(&before);
        assert!(delta.bytes_to_secure >= 4096);
    }

    #[test]
    fn errors_from_the_ta_reach_the_client() {
        let (client, uuid) = setup();
        let (handle, _) = client.open_session(uuid, TeeParams::new()).unwrap();
        assert!(matches!(
            client.invoke(&handle, 99, TeeParams::new()),
            Err(TeeError::ItemNotFound { .. })
        ));
        // Bad parameters for a valid command.
        assert!(matches!(
            client.invoke(&handle, 0, TeeParams::new()),
            Err(TeeError::BadParameters { .. })
        ));
    }

    #[test]
    fn unknown_application_and_stale_session_fail() {
        let (client, uuid) = setup();
        let ghost = TaUuid::from_name("perisec.ghost");
        assert!(client.open_session(ghost, TeeParams::new()).is_err());
        let (handle, _) = client.open_session(uuid, TeeParams::new()).unwrap();
        client.close_session(handle).unwrap();
        assert!(client.invoke(&handle, 0, TeeParams::new()).is_err());
        assert!(client.close_session(handle).is_err());
    }
}
