//! Cryptographic primitives used by the TEE services and the relay.
//!
//! OP-TEE exposes a cryptographic API to trusted applications (hashing,
//! MACs, authenticated encryption, key derivation); the paper's relay
//! module additionally needs a TLS-style secure channel to the cloud. This
//! module implements the required primitives from scratch — SHA-256,
//! HMAC-SHA-256, HKDF, ChaCha20, Poly1305 and the ChaCha20-Poly1305 AEAD —
//! so the repository has no external cryptography dependencies.
//!
//! The implementations follow the published specifications (FIPS 180-4,
//! RFC 2104, RFC 5869, RFC 8439) and are validated against their test
//! vectors in the unit tests below. They are *reference implementations*
//! for a simulator: correctness and clarity over side-channel hardening.

/// Output size of SHA-256 in bytes.
pub const SHA256_LEN: usize = 32;
/// Key size of ChaCha20-Poly1305 in bytes.
pub const AEAD_KEY_LEN: usize = 32;
/// Nonce size of ChaCha20-Poly1305 in bytes.
pub const AEAD_NONCE_LEN: usize = 12;
/// Tag size of Poly1305 in bytes.
pub const AEAD_TAG_LEN: usize = 16;

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4)
// ---------------------------------------------------------------------------

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: Vec<u8>,
    length_bits: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: Vec::with_capacity(64),
            length_bits: 0,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add((data.len() as u64) * 8);
        self.buffer.extend_from_slice(data);
        while self.buffer.len() >= 64 {
            let block: [u8; 64] = self.buffer[..64].try_into().expect("len checked");
            self.compress(&block);
            self.buffer.drain(..64);
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> [u8; SHA256_LEN] {
        let length_bits = self.length_bits;
        self.buffer.push(0x80);
        while self.buffer.len() % 64 != 56 {
            self.buffer.push(0);
        }
        self.buffer.extend_from_slice(&length_bits.to_be_bytes());
        let blocks: Vec<[u8; 64]> = self
            .buffer
            .chunks_exact(64)
            .map(|c| c.try_into().expect("chunk of 64"))
            .collect();
        for block in blocks {
            self.compress(&block);
        }
        let mut out = [0u8; SHA256_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; SHA256_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

// ---------------------------------------------------------------------------
// HMAC-SHA-256 (RFC 2104) and HKDF (RFC 5869)
// ---------------------------------------------------------------------------

/// HMAC-SHA-256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; SHA256_LEN] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..SHA256_LEN].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HKDF-Extract then HKDF-Expand, returning `length` bytes of key material.
///
/// # Panics
///
/// Panics if `length > 255 * 32` (the RFC 5869 limit).
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], length: usize) -> Vec<u8> {
    assert!(length <= 255 * SHA256_LEN, "hkdf output too long");
    let prk = hmac_sha256(salt, ikm);
    let mut okm = Vec::with_capacity(length);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < length {
        let mut data = previous.clone();
        data.extend_from_slice(info);
        data.push(counter);
        let block = hmac_sha256(&prk, &data);
        previous = block.to_vec();
        okm.extend_from_slice(&block);
        counter += 1;
    }
    okm.truncate(length);
    okm
}

// ---------------------------------------------------------------------------
// ChaCha20 (RFC 8439 §2.3) and Poly1305 (§2.5)
// ---------------------------------------------------------------------------

fn chacha20_quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().expect("key chunk"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] =
            u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().expect("nonce chunk"));
    }
    let mut working = state;
    for _ in 0..10 {
        chacha20_quarter_round(&mut working, 0, 4, 8, 12);
        chacha20_quarter_round(&mut working, 1, 5, 9, 13);
        chacha20_quarter_round(&mut working, 2, 6, 10, 14);
        chacha20_quarter_round(&mut working, 3, 7, 11, 15);
        chacha20_quarter_round(&mut working, 0, 5, 10, 15);
        chacha20_quarter_round(&mut working, 1, 6, 11, 12);
        chacha20_quarter_round(&mut working, 2, 7, 8, 13);
        chacha20_quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` with the ChaCha20 stream cipher.
pub fn chacha20_xor(key: &[u8; 32], nonce: &[u8; 12], initial_counter: u32, data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(64).enumerate() {
        let keystream = chacha20_block(key, initial_counter.wrapping_add(i as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
    }
}

fn poly1305_mac(key: &[u8; 32], message: &[u8]) -> [u8; 16] {
    // r and s per RFC 8439 §2.5; arithmetic over 2^130 - 5 using u128 limbs.
    let mut r_bytes = [0u8; 16];
    r_bytes.copy_from_slice(&key[..16]);
    // Clamp r.
    r_bytes[3] &= 15;
    r_bytes[7] &= 15;
    r_bytes[11] &= 15;
    r_bytes[15] &= 15;
    r_bytes[4] &= 252;
    r_bytes[8] &= 252;
    r_bytes[12] &= 252;

    let r = u128::from_le_bytes(r_bytes);
    let s = u128::from_le_bytes(key[16..32].try_into().expect("16 bytes"));

    // Split r and accumulator into 26-bit limbs to avoid overflow.
    let r0 = (r & 0x3ffffff) as u64;
    let r1 = ((r >> 26) & 0x3ffffff) as u64;
    let r2 = ((r >> 52) & 0x3ffffff) as u64;
    let r3 = ((r >> 78) & 0x3ffffff) as u64;
    let r4 = ((r >> 104) & 0x3ffffff) as u64;
    let s1 = r1 * 5;
    let s2 = r2 * 5;
    let s3 = r3 * 5;
    let s4 = r4 * 5;

    let (mut h0, mut h1, mut h2, mut h3, mut h4) = (0u64, 0u64, 0u64, 0u64, 0u64);

    for chunk in message.chunks(16) {
        let mut block = [0u8; 17];
        block[..chunk.len()].copy_from_slice(chunk);
        block[chunk.len()] = 1;
        let t0 = u32::from_le_bytes(block[0..4].try_into().expect("4")) as u64;
        let t1 = u32::from_le_bytes(block[4..8].try_into().expect("4")) as u64;
        let t2 = u32::from_le_bytes(block[8..12].try_into().expect("4")) as u64;
        let t3 = u32::from_le_bytes(block[12..16].try_into().expect("4")) as u64;
        let t4 = block[16] as u64;

        h0 += t0 & 0x3ffffff;
        h1 += ((t1 << 6) | (t0 >> 26)) & 0x3ffffff;
        h2 += ((t2 << 12) | (t1 >> 20)) & 0x3ffffff;
        h3 += ((t3 << 18) | (t2 >> 14)) & 0x3ffffff;
        h4 += (t4 << 24) | (t3 >> 8);

        let d0 = h0 as u128 * r0 as u128
            + h1 as u128 * s4 as u128
            + h2 as u128 * s3 as u128
            + h3 as u128 * s2 as u128
            + h4 as u128 * s1 as u128;
        let d1 = h0 as u128 * r1 as u128
            + h1 as u128 * r0 as u128
            + h2 as u128 * s4 as u128
            + h3 as u128 * s3 as u128
            + h4 as u128 * s2 as u128;
        let d2 = h0 as u128 * r2 as u128
            + h1 as u128 * r1 as u128
            + h2 as u128 * r0 as u128
            + h3 as u128 * s4 as u128
            + h4 as u128 * s3 as u128;
        let d3 = h0 as u128 * r3 as u128
            + h1 as u128 * r2 as u128
            + h2 as u128 * r1 as u128
            + h3 as u128 * r0 as u128
            + h4 as u128 * s4 as u128;
        let d4 = h0 as u128 * r4 as u128
            + h1 as u128 * r3 as u128
            + h2 as u128 * r2 as u128
            + h3 as u128 * r1 as u128
            + h4 as u128 * r0 as u128;

        let mut carry = (d0 >> 26) as u64;
        h0 = (d0 as u64) & 0x3ffffff;
        let d1 = d1 + carry as u128;
        carry = (d1 >> 26) as u64;
        h1 = (d1 as u64) & 0x3ffffff;
        let d2 = d2 + carry as u128;
        carry = (d2 >> 26) as u64;
        h2 = (d2 as u64) & 0x3ffffff;
        let d3 = d3 + carry as u128;
        carry = (d3 >> 26) as u64;
        h3 = (d3 as u64) & 0x3ffffff;
        let d4 = d4 + carry as u128;
        carry = (d4 >> 26) as u64;
        h4 = (d4 as u64) & 0x3ffffff;
        h0 += carry * 5;
        let carry = h0 >> 26;
        h0 &= 0x3ffffff;
        h1 += carry;
    }

    // Final reduction modulo 2^130 - 5.
    let mut carry = h1 >> 26;
    h1 &= 0x3ffffff;
    h2 += carry;
    carry = h2 >> 26;
    h2 &= 0x3ffffff;
    h3 += carry;
    carry = h3 >> 26;
    h3 &= 0x3ffffff;
    h4 += carry;
    carry = h4 >> 26;
    h4 &= 0x3ffffff;
    h0 += carry * 5;
    carry = h0 >> 26;
    h0 &= 0x3ffffff;
    h1 += carry;

    // Compute h + -p to check if h >= p.
    let mut g0 = h0.wrapping_add(5);
    carry = g0 >> 26;
    g0 &= 0x3ffffff;
    let mut g1 = h1.wrapping_add(carry);
    carry = g1 >> 26;
    g1 &= 0x3ffffff;
    let mut g2 = h2.wrapping_add(carry);
    carry = g2 >> 26;
    g2 &= 0x3ffffff;
    let mut g3 = h3.wrapping_add(carry);
    carry = g3 >> 26;
    g3 &= 0x3ffffff;
    let g4 = h4.wrapping_add(carry).wrapping_sub(1 << 26);

    if g4 >> 63 == 0 {
        h0 = g0;
        h1 = g1;
        h2 = g2;
        h3 = g3;
        h4 = g4 & 0x3ffffff;
    }

    let h = (h0 as u128)
        | ((h1 as u128) << 26)
        | ((h2 as u128) << 52)
        | ((h3 as u128) << 78)
        | ((h4 as u128) << 104);
    let tag = h.wrapping_add(s);
    tag.to_le_bytes()
}

/// Errors from authenticated decryption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AeadError;

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "authenticated decryption failed: tag mismatch")
    }
}

impl std::error::Error for AeadError {}

fn poly1305_key_gen(key: &[u8; 32], nonce: &[u8; 12]) -> [u8; 32] {
    let block = chacha20_block(key, 0, nonce);
    block[..32].try_into().expect("32 bytes")
}

fn aead_mac_data(aad: &[u8], ciphertext: &[u8]) -> Vec<u8> {
    let mut data = Vec::with_capacity(aad.len() + ciphertext.len() + 32);
    data.extend_from_slice(aad);
    data.resize(data.len().div_ceil(16) * 16, 0);
    data.extend_from_slice(ciphertext);
    data.resize(data.len().div_ceil(16) * 16, 0);
    data.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    data.extend_from_slice(&(ciphertext.len() as u64).to_le_bytes());
    data
}

/// ChaCha20-Poly1305 authenticated encryption (RFC 8439 §2.8).
///
/// Returns `ciphertext || tag`.
pub fn aead_seal(key: &[u8; 32], nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut ciphertext = plaintext.to_vec();
    chacha20_xor(key, nonce, 1, &mut ciphertext);
    let mac_key = poly1305_key_gen(key, nonce);
    let tag = poly1305_mac(&mac_key, &aead_mac_data(aad, &ciphertext));
    ciphertext.extend_from_slice(&tag);
    ciphertext
}

/// ChaCha20-Poly1305 authenticated decryption.
///
/// # Errors
///
/// Returns [`AeadError`] if the input is too short or the tag does not
/// verify; no plaintext is returned in that case.
pub fn aead_open(
    key: &[u8; 32],
    nonce: &[u8; 12],
    aad: &[u8],
    sealed: &[u8],
) -> Result<Vec<u8>, AeadError> {
    if sealed.len() < AEAD_TAG_LEN {
        return Err(AeadError);
    }
    let (ciphertext, tag) = sealed.split_at(sealed.len() - AEAD_TAG_LEN);
    let mac_key = poly1305_key_gen(key, nonce);
    let expected = poly1305_mac(&mac_key, &aead_mac_data(aad, ciphertext));
    // Constant-time-ish comparison (good enough for the simulator).
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(tag.iter()) {
        diff |= a ^ b;
    }
    if diff != 0 {
        return Err(AeadError);
    }
    let mut plaintext = ciphertext.to_vec();
    chacha20_xor(key, nonce, 1, &mut plaintext);
    Ok(plaintext)
}

/// Builds a 12-byte nonce from a 64-bit sequence number (TLS 1.3 style:
/// left-padded, XORed into an IV by the caller if desired).
pub fn nonce_from_sequence(sequence: u64) -> [u8; AEAD_NONCE_LEN] {
    let mut nonce = [0u8; AEAD_NONCE_LEN];
    nonce[4..].copy_from_slice(&sequence.to_be_bytes());
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_matches_known_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_incremental_equals_oneshot() {
        let data = vec![0xabu8; 1000];
        let mut h = Sha256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn hmac_matches_rfc4231_vectors() {
        // RFC 4231 test case 1.
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // RFC 4231 test case 2.
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hkdf_matches_rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let okm = hkdf(&salt, &ikm, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn chacha20_matches_rfc8439_vector() {
        // RFC 8439 §2.4.2.
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        chacha20_xor(&key, &nonce, 1, &mut data);
        assert_eq!(hex(&data[..16]), "6e2e359a2568f98041ba0728dd0d6981");
        // Decrypt round trip.
        chacha20_xor(&key, &nonce, 1, &mut data);
        assert_eq!(&data, plaintext);
    }

    #[test]
    fn aead_matches_rfc8439_vector() {
        let key: [u8; 32] = (0x80u8..0xa0).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = [
            0x07, 0, 0, 0, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
        ];
        let aad: [u8; 12] = [
            0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let sealed = aead_seal(&key, &nonce, &aad, plaintext);
        // Tag from RFC 8439 §2.8.2.
        assert_eq!(
            hex(&sealed[sealed.len() - 16..]),
            "1ae10b594f09e26a7e902ecbd0600691"
        );
        let opened = aead_open(&key, &nonce, &aad, &sealed).unwrap();
        assert_eq!(&opened, plaintext);
    }

    #[test]
    fn aead_rejects_tampering() {
        let key = [7u8; 32];
        let nonce = nonce_from_sequence(1);
        let sealed = aead_seal(&key, &nonce, b"hdr", b"secret payload");
        // Flip a ciphertext bit.
        let mut bad = sealed.clone();
        bad[0] ^= 1;
        assert_eq!(aead_open(&key, &nonce, b"hdr", &bad), Err(AeadError));
        // Wrong AAD.
        assert_eq!(aead_open(&key, &nonce, b"other", &sealed), Err(AeadError));
        // Wrong nonce.
        assert_eq!(
            aead_open(&key, &nonce_from_sequence(2), b"hdr", &sealed),
            Err(AeadError)
        );
        // Too short.
        assert_eq!(
            aead_open(&key, &nonce, b"hdr", &sealed[..8]),
            Err(AeadError)
        );
        // Untampered opens fine.
        assert!(aead_open(&key, &nonce, b"hdr", &sealed).is_ok());
    }

    #[test]
    fn nonce_from_sequence_is_unique_per_sequence() {
        assert_ne!(nonce_from_sequence(1), nonce_from_sequence(2));
        assert_eq!(nonce_from_sequence(7), nonce_from_sequence(7));
    }

    #[test]
    fn aead_round_trips_empty_and_large_payloads() {
        let key = [9u8; 32];
        for size in [0usize, 1, 15, 16, 17, 63, 64, 65, 1000, 16 * 1024] {
            let payload = vec![0x5au8; size];
            let nonce = nonce_from_sequence(size as u64);
            let sealed = aead_seal(&key, &nonce, &[], &payload);
            assert_eq!(sealed.len(), size + AEAD_TAG_LEN);
            assert_eq!(aead_open(&key, &nonce, &[], &sealed).unwrap(), payload);
        }
    }
}
