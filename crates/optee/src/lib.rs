//! # perisec-optee — an OP-TEE-like trusted execution environment simulator
//!
//! The paper's design "is based on OP-TEE, an open source TEE implementation
//! for securing applications based on TrustZone technology" (§II). This
//! crate reproduces the OP-TEE concepts that design uses, on top of the
//! TrustZone machine model of `perisec-tz`:
//!
//! * [`tee`] — the TEE core: TA/PTA registries, sessions, command dispatch,
//!   secure-memory accounting per TA, and RPC into the normal world;
//! * [`ta`] — the trusted-application framework (GlobalPlatform-flavoured
//!   `open_session` / `invoke` / `close_session`, plus the internal API a TA
//!   sees through [`ta::TaEnv`]);
//! * [`pta`] — pseudo trusted applications: secure, OS-privileged modules
//!   that bridge TAs and low-level code such as the ported device driver;
//! * [`client`] — the normal-world client API (the analogue of `libteec`),
//!   which funnels every call through the secure monitor so world switches
//!   and cross-world copies are accounted;
//! * [`supplicant`] — the normal-world `tee-supplicant` daemon providing
//!   file-system and network services to the secure world via RPC;
//! * [`storage`] — TA secure storage (encrypted objects persisted through
//!   the supplicant, as in OP-TEE's REE-FS storage);
//! * [`crypto`] — from-scratch SHA-256 / HMAC / HKDF / ChaCha20-Poly1305
//!   used by secure storage and by the relay's TLS-like channel;
//! * [`param`], [`uuid`] — command parameters and TA identifiers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod crypto;
pub mod param;
pub mod pta;
pub mod storage;
pub mod supplicant;
pub mod ta;
pub mod tee;
pub mod uuid;

pub use client::{TeeClient, TeeSessionHandle};
pub use param::{TeeParam, TeeParams};
pub use pta::{PseudoTa, PtaEnv};
pub use storage::SecureStorage;
pub use supplicant::{NetBackend, RpcReply, RpcRequest, Supplicant};
pub use ta::{TaDescriptor, TaEnv, TrustedApp};
pub use tee::{SessionId, TeeCore};
pub use uuid::TaUuid;

use std::error::Error;
use std::fmt;

/// TEE error codes, mirroring the GlobalPlatform `TEE_ERROR_*` family the
/// paper's software stack would use.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TeeError {
    /// The referenced TA, PTA, session or object does not exist.
    ItemNotFound {
        /// What was being looked up.
        what: String,
    },
    /// Parameters did not match what the command expects.
    BadParameters {
        /// Explanation of the mismatch.
        reason: String,
    },
    /// The caller is not allowed to perform the operation.
    AccessDenied {
        /// Explanation.
        reason: String,
    },
    /// Secure memory could not be allocated.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
    },
    /// The target TA panicked or is otherwise unusable.
    TargetDead,
    /// A security check failed (e.g. storage authentication).
    SecurityViolation {
        /// Explanation.
        reason: String,
    },
    /// Communication with the normal world failed.
    Communication {
        /// Explanation.
        reason: String,
    },
    /// The peer or transport is saturated; the caller should back off
    /// and retry rather than treat the operation as failed.
    Busy {
        /// Socket the backpressure was reported on.
        socket: u64,
        /// Queue depth at the moment of rejection.
        depth: usize,
    },
    /// Generic failure with a free-form message.
    Generic {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for TeeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeeError::ItemNotFound { what } => write!(f, "item not found: {what}"),
            TeeError::BadParameters { reason } => write!(f, "bad parameters: {reason}"),
            TeeError::AccessDenied { reason } => write!(f, "access denied: {reason}"),
            TeeError::OutOfMemory { requested } => {
                write!(f, "out of secure memory (requested {requested} bytes)")
            }
            TeeError::TargetDead => write!(f, "target trusted application is dead"),
            TeeError::SecurityViolation { reason } => write!(f, "security violation: {reason}"),
            TeeError::Communication { reason } => write!(f, "communication error: {reason}"),
            TeeError::Busy { socket, depth } => write!(
                f,
                "backpressure: response queue full on socket {socket} (depth {depth})"
            ),
            TeeError::Generic { reason } => write!(f, "tee error: {reason}"),
        }
    }
}

impl Error for TeeError {}

impl From<perisec_tz::TzError> for TeeError {
    fn from(e: perisec_tz::TzError) -> Self {
        match e {
            perisec_tz::TzError::SecureRamExhausted { requested, .. } => {
                TeeError::OutOfMemory { requested }
            }
            other => TeeError::Generic {
                reason: other.to_string(),
            },
        }
    }
}

/// Convenience result alias for TEE operations.
pub type TeeResult<T> = std::result::Result<T, TeeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tee_error_is_well_behaved() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<TeeError>();
        let e = TeeError::OutOfMemory { requested: 4096 };
        assert!(e.to_string().contains("4096"));
    }

    #[test]
    fn secure_ram_exhaustion_maps_to_out_of_memory() {
        let tz = perisec_tz::TzError::SecureRamExhausted {
            requested: 100,
            available: 10,
        };
        assert!(matches!(
            TeeError::from(tz),
            TeeError::OutOfMemory { requested: 100 }
        ));
        let tz = perisec_tz::TzError::UnmappedAddress { addr: 0x10 };
        assert!(matches!(TeeError::from(tz), TeeError::Generic { .. }));
    }
}
