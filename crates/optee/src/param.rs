//! Command parameters exchanged with trusted applications.
//!
//! GlobalPlatform TEE commands carry up to four parameters, each either a
//! pair of values or a memory reference. The simulator keeps the same
//! shape so the TAs and PTAs in this repository read like real OP-TEE code.

use serde::{Deserialize, Serialize};

/// One command parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TeeParam {
    /// Unused parameter slot.
    #[default]
    None,
    /// Two input values.
    ValueInput {
        /// First value.
        a: u64,
        /// Second value.
        b: u64,
    },
    /// Two output values, filled in by the TA.
    ValueOutput {
        /// First value.
        a: u64,
        /// Second value.
        b: u64,
    },
    /// An input memory buffer.
    MemRefInput(Vec<u8>),
    /// An output memory buffer (the TA replaces the contents).
    MemRefOutput(Vec<u8>),
    /// An in/out memory buffer.
    MemRefInout(Vec<u8>),
}

impl TeeParam {
    /// Returns the buffer contents if this is any memref variant.
    pub fn as_memref(&self) -> Option<&[u8]> {
        match self {
            TeeParam::MemRefInput(b) | TeeParam::MemRefOutput(b) | TeeParam::MemRefInout(b) => {
                Some(b)
            }
            _ => None,
        }
    }

    /// Returns the values if this is a value variant.
    pub fn as_values(&self) -> Option<(u64, u64)> {
        match self {
            TeeParam::ValueInput { a, b } | TeeParam::ValueOutput { a, b } => Some((*a, *b)),
            _ => None,
        }
    }

    /// Number of bytes that must cross the world boundary for this
    /// parameter (memrefs only).
    pub fn byte_len(&self) -> usize {
        self.as_memref().map(|b| b.len()).unwrap_or(0)
    }
}

/// The four parameters of one command invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TeeParams {
    /// The parameter slots.
    pub params: [TeeParam; 4],
}

impl TeeParams {
    /// Creates four empty parameters.
    pub fn new() -> Self {
        TeeParams::default()
    }

    /// Builder-style setter for one slot.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn with(mut self, index: usize, param: TeeParam) -> Self {
        self.params[index] = param;
        self
    }

    /// Sets one slot in place.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn set(&mut self, index: usize, param: TeeParam) {
        self.params[index] = param;
    }

    /// Returns slot `index` (None variant if out of range).
    pub fn get(&self, index: usize) -> &TeeParam {
        self.params.get(index).unwrap_or(&TeeParam::None)
    }

    /// Mutable access to slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn get_mut(&mut self, index: usize) -> &mut TeeParam {
        &mut self.params[index]
    }

    /// Total bytes carried by memref parameters (what must be copied across
    /// the world boundary).
    pub fn total_memref_bytes(&self) -> usize {
        self.params.iter().map(|p| p.byte_len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let params = TeeParams::new()
            .with(0, TeeParam::ValueInput { a: 1, b: 2 })
            .with(1, TeeParam::MemRefInput(vec![0u8; 100]))
            .with(2, TeeParam::MemRefOutput(vec![0u8; 50]));
        assert_eq!(params.get(0).as_values(), Some((1, 2)));
        assert_eq!(params.get(1).byte_len(), 100);
        assert_eq!(params.get(3), &TeeParam::None);
        assert_eq!(params.get(7), &TeeParam::None);
        assert_eq!(params.total_memref_bytes(), 150);
    }

    #[test]
    fn memref_and_value_accessors_are_exclusive() {
        let v = TeeParam::ValueInput { a: 1, b: 2 };
        assert!(v.as_memref().is_none());
        let m = TeeParam::MemRefInout(vec![1, 2, 3]);
        assert!(m.as_values().is_none());
        assert_eq!(m.as_memref().unwrap(), &[1, 2, 3]);
        assert_eq!(TeeParam::None.byte_len(), 0);
    }

    #[test]
    fn get_mut_allows_output_updates() {
        let mut params = TeeParams::new().with(0, TeeParam::ValueOutput { a: 0, b: 0 });
        if let TeeParam::ValueOutput { a, .. } = params.get_mut(0) {
            *a = 99;
        }
        assert_eq!(params.get(0).as_values(), Some((99, 0)));
    }
}
