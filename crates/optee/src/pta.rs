//! Pseudo trusted applications.
//!
//! A PTA is "a secure module with OS-level privileges that could serve as
//! an intermediary between a TA (no OS-level privileges) and low-level code
//! like device driver software" (§II). Unlike TAs, PTAs are statically
//! linked into the OP-TEE core, have no separate session state, and may
//! touch hardware directly.
//!
//! `perisec-secure-driver` implements the paper's I2S driver PTA against
//! this trait.

use perisec_tz::platform::Platform;
use perisec_tz::secure_mem::SecureBuf;
use perisec_tz::time::SimDuration;

use crate::param::TeeParams;
use crate::ta::TaDescriptor;
use crate::{TeeError, TeeResult};

/// The interface a pseudo TA implements.
pub trait PseudoTa: Send {
    /// The PTA's descriptor (its declared footprint is reserved from secure
    /// RAM at registration, like a TA's).
    fn descriptor(&self) -> TaDescriptor;

    /// Handles one command invocation.
    ///
    /// # Errors
    ///
    /// Command-specific; see each PTA's documentation.
    fn invoke(&mut self, env: &mut PtaEnv<'_>, cmd: u32, params: &mut TeeParams) -> TeeResult<()>;
}

/// The environment handed to a PTA for one call. PTAs run at OP-TEE kernel
/// privilege: they see the platform directly (secure RAM, TZASC, clock) but
/// have no supplicant or storage access of their own.
pub struct PtaEnv<'a> {
    platform: &'a Platform,
}

impl std::fmt::Debug for PtaEnv<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PtaEnv").finish()
    }
}

impl<'a> PtaEnv<'a> {
    pub(crate) fn new(platform: &'a Platform) -> Self {
        PtaEnv { platform }
    }

    /// The underlying platform.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// Charges secure-world CPU time.
    pub fn charge_cpu(&self, duration: SimDuration) {
        self.platform
            .charge_cpu(perisec_tz::world::World::Secure, duration);
    }

    /// Charges `flops` of secure-world compute, returning the time charged.
    pub fn charge_compute(&self, flops: u64) -> SimDuration {
        self.platform
            .charge_compute(perisec_tz::world::World::Secure, flops)
    }

    /// Allocates a buffer from secure RAM (e.g. the secure driver's I/O
    /// buffers).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::OutOfMemory`] when the carve-out is exhausted.
    pub fn secure_alloc(&self, bytes: usize) -> TeeResult<SecureBuf> {
        self.platform
            .secure_ram()
            .alloc(bytes)
            .map_err(TeeError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perisec_tz::platform::Platform;

    #[test]
    fn pta_env_exposes_platform_services() {
        let platform = Platform::jetson_agx_xavier();
        let env = PtaEnv::new(&platform);
        let before = platform.clock().now();
        env.charge_cpu(SimDuration::from_micros(3));
        env.charge_compute(1_000);
        assert!(platform.clock().now() > before);
        let buf = env.secure_alloc(4096).unwrap();
        assert_eq!(buf.len(), 4096);
    }
}
