//! TA secure storage.
//!
//! OP-TEE's REE-FS secure storage keeps trusted-application objects in the
//! normal-world filesystem, encrypted and authenticated with keys derived
//! from a device-unique secret, so the untrusted OS can store but not read
//! or forge them. The simulator reproduces that design: objects are sealed
//! with ChaCha20-Poly1305 under a per-TA key derived via HKDF from a
//! device key, and persisted through the supplicant's filesystem RPC.
//!
//! The paper's filter TA uses this to persist its model parameters and the
//! privacy policy across reboots without trusting the OS.

use crate::crypto::{aead_open, aead_seal, hkdf, nonce_from_sequence, sha256, AEAD_KEY_LEN};
use crate::supplicant::{RpcReply, RpcRequest};
use crate::tee::TeeCore;
use crate::uuid::TaUuid;
use crate::{TeeError, TeeResult};

use std::sync::atomic::{AtomicU64, Ordering};

/// The secure-storage service owned by the TEE core.
#[derive(Debug)]
pub struct SecureStorage {
    device_key: [u8; AEAD_KEY_LEN],
    nonce_counter: AtomicU64,
}

impl SecureStorage {
    /// Derives the storage service for a platform (the device key is
    /// derived from the platform identity, standing in for a fused
    /// hardware-unique key).
    pub fn for_platform(platform: &perisec_tz::platform::Platform) -> Self {
        let material = sha256(platform.spec().name.as_bytes());
        let mut device_key = [0u8; AEAD_KEY_LEN];
        device_key.copy_from_slice(&hkdf(
            b"perisec-huk",
            &material,
            b"ree-fs-storage",
            AEAD_KEY_LEN,
        ));
        SecureStorage {
            device_key,
            nonce_counter: AtomicU64::new(1),
        }
    }

    fn ta_key(&self, ta: TaUuid) -> [u8; AEAD_KEY_LEN] {
        let mut key = [0u8; AEAD_KEY_LEN];
        key.copy_from_slice(&hkdf(
            &self.device_key,
            ta.as_bytes(),
            b"ta-storage-key",
            AEAD_KEY_LEN,
        ));
        key
    }

    fn object_path(ta: TaUuid, name: &str) -> String {
        format!("tee/{ta}/{name}")
    }

    /// Writes (creates or replaces) an object for `ta`.
    ///
    /// # Errors
    ///
    /// Propagates supplicant filesystem failures.
    pub fn write(&self, core: &TeeCore, ta: TaUuid, name: &str, data: &[u8]) -> TeeResult<()> {
        let key = self.ta_key(ta);
        let sequence = self.nonce_counter.fetch_add(1, Ordering::SeqCst);
        let nonce = nonce_from_sequence(sequence);
        let aad = Self::object_path(ta, name);
        let mut blob = Vec::with_capacity(8 + data.len() + 16);
        blob.extend_from_slice(&sequence.to_be_bytes());
        blob.extend_from_slice(&aead_seal(&key, &nonce, aad.as_bytes(), data));
        match core.supplicant_rpc(RpcRequest::FsWrite {
            path: aad,
            data: blob,
        })? {
            RpcReply::Ok => Ok(()),
            other => Err(TeeError::Communication {
                reason: format!("unexpected reply {other:?} to storage write"),
            }),
        }
    }

    /// Reads an object back, verifying its authenticity.
    ///
    /// # Errors
    ///
    /// * [`TeeError::ItemNotFound`] if the object does not exist.
    /// * [`TeeError::SecurityViolation`] if the blob was tampered with.
    pub fn read(&self, core: &TeeCore, ta: TaUuid, name: &str) -> TeeResult<Vec<u8>> {
        let path = Self::object_path(ta, name);
        let blob = match core.supplicant_rpc(RpcRequest::FsRead { path: path.clone() })? {
            RpcReply::Data(d) => d,
            other => {
                return Err(TeeError::Communication {
                    reason: format!("unexpected reply {other:?} to storage read"),
                })
            }
        };
        if blob.len() < 8 {
            return Err(TeeError::SecurityViolation {
                reason: "storage blob truncated".to_owned(),
            });
        }
        let sequence = u64::from_be_bytes(blob[..8].try_into().expect("8 bytes"));
        let nonce = nonce_from_sequence(sequence);
        let key = self.ta_key(ta);
        aead_open(&key, &nonce, path.as_bytes(), &blob[8..]).map_err(|_| {
            TeeError::SecurityViolation {
                reason: format!("authentication of storage object '{name}' failed"),
            }
        })
    }

    /// Deletes an object.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] if the object does not exist.
    pub fn delete(&self, core: &TeeCore, ta: TaUuid, name: &str) -> TeeResult<()> {
        core.supplicant_rpc(RpcRequest::FsRemove {
            path: Self::object_path(ta, name),
        })
        .map(|_| ())
    }

    /// Lists the object names stored for `ta`.
    ///
    /// # Errors
    ///
    /// Propagates supplicant failures.
    pub fn list(&self, core: &TeeCore, ta: TaUuid) -> TeeResult<Vec<String>> {
        let prefix = format!("tee/{ta}/");
        match core.supplicant_rpc(RpcRequest::FsList {
            prefix: prefix.clone(),
        })? {
            RpcReply::Names(names) => Ok(names
                .into_iter()
                .map(|n| n.trim_start_matches(&prefix).to_owned())
                .collect()),
            other => Err(TeeError::Communication {
                reason: format!("unexpected reply {other:?} to storage list"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supplicant::Supplicant;
    use perisec_tz::platform::Platform;
    use std::sync::Arc;

    fn core() -> Arc<TeeCore> {
        TeeCore::boot(Platform::jetson_agx_xavier(), Arc::new(Supplicant::new()))
    }

    #[test]
    fn write_read_round_trip_per_ta() {
        let core = core();
        let ta = TaUuid::from_name("perisec.filter-ta");
        core.storage()
            .write(&core, ta, "policy", b"block:health,finance")
            .unwrap();
        let data = core.storage().read(&core, ta, "policy").unwrap();
        assert_eq!(data, b"block:health,finance");
        let names = core.storage().list(&core, ta).unwrap();
        assert_eq!(names, vec!["policy"]);
    }

    #[test]
    fn objects_are_encrypted_at_rest() {
        let core = core();
        let ta = TaUuid::from_name("perisec.filter-ta");
        let secret = b"the wake word is heliotrope";
        core.storage().write(&core, ta, "secret", secret).unwrap();
        // Inspect what actually landed in the normal-world filesystem.
        let path = format!("tee/{ta}/secret");
        let raw = match core
            .supplicant()
            .handle(RpcRequest::FsRead { path })
            .unwrap()
        {
            RpcReply::Data(d) => d,
            _ => panic!("expected data"),
        };
        // The plaintext must not appear in the stored blob.
        assert!(!raw.windows(secret.len()).any(|w| w == secret.as_slice()));
    }

    #[test]
    fn tampering_is_detected() {
        let core = core();
        let ta = TaUuid::from_name("perisec.filter-ta");
        core.storage()
            .write(&core, ta, "model", &[7u8; 128])
            .unwrap();
        // Corrupt the stored blob through the normal world.
        let path = format!("tee/{ta}/model");
        let mut raw = match core
            .supplicant()
            .handle(RpcRequest::FsRead { path: path.clone() })
            .unwrap()
        {
            RpcReply::Data(d) => d,
            _ => panic!("expected data"),
        };
        let last = raw.len() - 1;
        raw[last] ^= 0xff;
        core.supplicant()
            .handle(RpcRequest::FsWrite { path, data: raw })
            .unwrap();
        assert!(matches!(
            core.storage().read(&core, ta, "model"),
            Err(TeeError::SecurityViolation { .. })
        ));
    }

    #[test]
    fn objects_are_isolated_between_tas() {
        let core = core();
        let ta_a = TaUuid::from_name("perisec.ta-a");
        let ta_b = TaUuid::from_name("perisec.ta-b");
        core.storage()
            .write(&core, ta_a, "obj", b"belongs to a")
            .unwrap();
        assert!(matches!(
            core.storage().read(&core, ta_b, "obj"),
            Err(TeeError::ItemNotFound { .. })
        ));
        assert!(core.storage().list(&core, ta_b).unwrap().is_empty());
    }

    #[test]
    fn delete_removes_objects() {
        let core = core();
        let ta = TaUuid::from_name("perisec.filter-ta");
        core.storage().write(&core, ta, "tmp", b"x").unwrap();
        core.storage().delete(&core, ta, "tmp").unwrap();
        assert!(core.storage().read(&core, ta, "tmp").is_err());
        assert!(core.storage().delete(&core, ta, "tmp").is_err());
    }
}
