//! The TEE supplicant: normal-world services for the secure world.
//!
//! OP-TEE cannot open sockets or files itself; it issues RPCs that the
//! user-space `tee-supplicant` daemon serves. The paper's relay module
//! "leverages an OP-TEE user space daemon called the TEE supplicant to
//! provide OS-level services such as network communication" (§II, step 7).
//!
//! [`Supplicant`] models that daemon: an in-memory REE filesystem (used by
//! secure storage) plus a pluggable [`NetBackend`] (implemented by the
//! network fabric in `perisec-relay`). The TEE core charges every RPC with
//! two world switches and the supplicant round-trip cost.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use crate::{TeeError, TeeResult};

/// Network services the supplicant can provide to the secure world.
///
/// Implemented by the simulated network fabric (`perisec-relay`); the
/// socket identifiers are opaque to the TEE.
pub trait NetBackend: Send + Sync {
    /// Opens a connection to `host:port`, returning a socket handle.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::Communication`] if the host is unreachable.
    fn connect(&self, host: &str, port: u16) -> TeeResult<u64>;

    /// Sends bytes on a socket, returning the number of bytes accepted.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::Communication`] on unknown sockets or transport
    /// failures.
    fn send(&self, socket: u64, data: &[u8]) -> TeeResult<usize>;

    /// Receives up to `max` bytes from a socket (may return fewer, or an
    /// empty vector if nothing is pending).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::Communication`] on unknown sockets.
    fn recv(&self, socket: u64, max: usize) -> TeeResult<Vec<u8>>;

    /// Closes a socket. Unknown sockets are ignored.
    fn close(&self, socket: u64);
}

/// An RPC request from the secure world to the supplicant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RpcRequest {
    /// Read a file from the REE filesystem.
    FsRead {
        /// File path (flat namespace).
        path: String,
    },
    /// Write (create or replace) a file.
    FsWrite {
        /// File path.
        path: String,
        /// Contents.
        data: Vec<u8>,
    },
    /// Remove a file.
    FsRemove {
        /// File path.
        path: String,
    },
    /// List files with a given prefix.
    FsList {
        /// Path prefix.
        prefix: String,
    },
    /// Open a network connection.
    NetConnect {
        /// Remote host.
        host: String,
        /// Remote port.
        port: u16,
    },
    /// Send bytes on an open socket.
    NetSend {
        /// Socket handle.
        socket: u64,
        /// Payload.
        data: Vec<u8>,
    },
    /// Receive bytes from an open socket.
    NetRecv {
        /// Socket handle.
        socket: u64,
        /// Maximum bytes to return.
        max: usize,
    },
    /// Close a socket.
    NetClose {
        /// Socket handle.
        socket: u64,
    },
}

impl RpcRequest {
    /// Approximate number of payload bytes this request carries into the
    /// normal world (used for cross-world copy accounting).
    pub fn payload_bytes(&self) -> usize {
        match self {
            RpcRequest::FsWrite { data, .. } => data.len(),
            RpcRequest::NetSend { data, .. } => data.len(),
            _ => 0,
        }
    }
}

/// The supplicant's reply to an RPC.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RpcReply {
    /// Generic success with no payload.
    Ok,
    /// File or network data.
    Data(Vec<u8>),
    /// A list of file names.
    Names(Vec<String>),
    /// A socket handle.
    Socket(u64),
    /// Number of bytes accepted.
    Written(usize),
}

impl RpcReply {
    /// Approximate number of payload bytes this reply carries back into the
    /// secure world.
    pub fn payload_bytes(&self) -> usize {
        match self {
            RpcReply::Data(d) => d.len(),
            RpcReply::Names(names) => names.iter().map(|n| n.len()).sum(),
            _ => 0,
        }
    }
}

/// The normal-world supplicant daemon.
#[derive(Default)]
pub struct Supplicant {
    fs: Mutex<BTreeMap<String, Vec<u8>>>,
    net: RwLock<Option<Arc<dyn NetBackend>>>,
}

impl std::fmt::Debug for Supplicant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supplicant")
            .field("files", &self.fs.lock().len())
            .field("net_backend", &self.net.read().is_some())
            .finish()
    }
}

impl Supplicant {
    /// Creates a supplicant with an empty filesystem and no network backend.
    pub fn new() -> Self {
        Supplicant::default()
    }

    /// Installs (or replaces) the network backend.
    pub fn set_net_backend(&self, backend: Arc<dyn NetBackend>) {
        *self.net.write() = Some(backend);
    }

    /// Whether a network backend is installed.
    pub fn has_net_backend(&self) -> bool {
        self.net.read().is_some()
    }

    /// Number of files in the REE filesystem.
    pub fn file_count(&self) -> usize {
        self.fs.lock().len()
    }

    /// Serves one RPC request.
    ///
    /// # Errors
    ///
    /// * [`TeeError::ItemNotFound`] for reads/removals of missing files;
    /// * [`TeeError::Communication`] for network requests with no backend
    ///   installed, or propagated from the backend.
    pub fn handle(&self, request: RpcRequest) -> TeeResult<RpcReply> {
        match request {
            RpcRequest::FsRead { path } => {
                let fs = self.fs.lock();
                fs.get(&path)
                    .cloned()
                    .map(RpcReply::Data)
                    .ok_or(TeeError::ItemNotFound { what: path })
            }
            RpcRequest::FsWrite { path, data } => {
                self.fs.lock().insert(path, data);
                Ok(RpcReply::Ok)
            }
            RpcRequest::FsRemove { path } => {
                if self.fs.lock().remove(&path).is_some() {
                    Ok(RpcReply::Ok)
                } else {
                    Err(TeeError::ItemNotFound { what: path })
                }
            }
            RpcRequest::FsList { prefix } => {
                let fs = self.fs.lock();
                Ok(RpcReply::Names(
                    fs.keys()
                        .filter(|k| k.starts_with(&prefix))
                        .cloned()
                        .collect(),
                ))
            }
            RpcRequest::NetConnect { host, port } => {
                let backend = self.net_backend()?;
                backend.connect(&host, port).map(RpcReply::Socket)
            }
            RpcRequest::NetSend { socket, data } => {
                let backend = self.net_backend()?;
                backend.send(socket, &data).map(RpcReply::Written)
            }
            RpcRequest::NetRecv { socket, max } => {
                let backend = self.net_backend()?;
                backend.recv(socket, max).map(RpcReply::Data)
            }
            RpcRequest::NetClose { socket } => {
                let backend = self.net_backend()?;
                backend.close(socket);
                Ok(RpcReply::Ok)
            }
        }
    }

    fn net_backend(&self) -> TeeResult<Arc<dyn NetBackend>> {
        self.net.read().clone().ok_or(TeeError::Communication {
            reason: "no network backend registered with the supplicant".to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PlMutex;

    #[derive(Default)]
    struct LoopbackNet {
        sent: PlMutex<Vec<Vec<u8>>>,
    }

    impl NetBackend for LoopbackNet {
        fn connect(&self, host: &str, _port: u16) -> TeeResult<u64> {
            if host == "unreachable.example" {
                return Err(TeeError::Communication {
                    reason: "no route".to_owned(),
                });
            }
            Ok(7)
        }
        fn send(&self, _socket: u64, data: &[u8]) -> TeeResult<usize> {
            self.sent.lock().push(data.to_vec());
            Ok(data.len())
        }
        fn recv(&self, _socket: u64, max: usize) -> TeeResult<Vec<u8>> {
            Ok(vec![0xaa; max.min(4)])
        }
        fn close(&self, _socket: u64) {}
    }

    #[test]
    fn filesystem_requests_round_trip() {
        let s = Supplicant::new();
        s.handle(RpcRequest::FsWrite {
            path: "ta/obj1".into(),
            data: vec![1, 2, 3],
        })
        .unwrap();
        s.handle(RpcRequest::FsWrite {
            path: "ta/obj2".into(),
            data: vec![4],
        })
        .unwrap();
        assert_eq!(s.file_count(), 2);
        match s
            .handle(RpcRequest::FsRead {
                path: "ta/obj1".into(),
            })
            .unwrap()
        {
            RpcReply::Data(d) => assert_eq!(d, vec![1, 2, 3]),
            other => panic!("unexpected reply {other:?}"),
        }
        match s
            .handle(RpcRequest::FsList {
                prefix: "ta/".into(),
            })
            .unwrap()
        {
            RpcReply::Names(names) => assert_eq!(names.len(), 2),
            other => panic!("unexpected reply {other:?}"),
        }
        s.handle(RpcRequest::FsRemove {
            path: "ta/obj1".into(),
        })
        .unwrap();
        assert!(s
            .handle(RpcRequest::FsRead {
                path: "ta/obj1".into()
            })
            .is_err());
        assert!(s
            .handle(RpcRequest::FsRemove {
                path: "ta/obj1".into()
            })
            .is_err());
    }

    #[test]
    fn network_requests_require_a_backend() {
        let s = Supplicant::new();
        assert!(!s.has_net_backend());
        let err = s
            .handle(RpcRequest::NetConnect {
                host: "cloud.example".into(),
                port: 443,
            })
            .unwrap_err();
        assert!(matches!(err, TeeError::Communication { .. }));

        s.set_net_backend(Arc::new(LoopbackNet::default()));
        assert!(s.has_net_backend());
        match s
            .handle(RpcRequest::NetConnect {
                host: "cloud.example".into(),
                port: 443,
            })
            .unwrap()
        {
            RpcReply::Socket(7) => {}
            other => panic!("unexpected reply {other:?}"),
        }
        match s
            .handle(RpcRequest::NetSend {
                socket: 7,
                data: vec![9; 10],
            })
            .unwrap()
        {
            RpcReply::Written(10) => {}
            other => panic!("unexpected reply {other:?}"),
        }
        match s
            .handle(RpcRequest::NetRecv {
                socket: 7,
                max: 100,
            })
            .unwrap()
        {
            RpcReply::Data(d) => assert_eq!(d.len(), 4),
            other => panic!("unexpected reply {other:?}"),
        }
        s.handle(RpcRequest::NetClose { socket: 7 }).unwrap();
        // Backend errors propagate.
        assert!(s
            .handle(RpcRequest::NetConnect {
                host: "unreachable.example".into(),
                port: 1
            })
            .is_err());
    }

    #[test]
    fn payload_byte_accounting() {
        assert_eq!(
            RpcRequest::NetSend {
                socket: 1,
                data: vec![0; 77]
            }
            .payload_bytes(),
            77
        );
        assert_eq!(RpcRequest::FsRead { path: "x".into() }.payload_bytes(), 0);
        assert_eq!(RpcReply::Data(vec![0; 5]).payload_bytes(), 5);
        assert_eq!(RpcReply::Ok.payload_bytes(), 0);
    }
}
