//! Trusted application framework.
//!
//! In the paper's design, the TA is where the ML filtering and the relay
//! module live: "The TA also executes in secure memory, and comprises a
//! pre-trained ML classifier capable of determining potentially sensitive
//! information" (§II). This module defines the trait such TAs implement and
//! the internal API ([`TaEnv`]) they use to reach PTAs (the secure driver),
//! the supplicant (network), secure storage and secure memory.

use perisec_tz::platform::Platform;
use perisec_tz::secure_mem::SecureBuf;
use perisec_tz::time::SimDuration;

use crate::param::TeeParams;
use crate::supplicant::{RpcReply, RpcRequest};
use crate::tee::{SessionId, TeeCore};
use crate::uuid::TaUuid;
use crate::{TeeError, TeeResult};

/// Static description of a TA or PTA: identity plus declared secure-memory
/// footprint. The TEE core reserves the declared memory from the TrustZone
/// carve-out when the application is registered, so oversized applications
/// fail to load — the behaviour behind the paper's "smaller ML models"
/// mitigation (§V).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaDescriptor {
    /// Application identity.
    pub uuid: TaUuid,
    /// Human-readable name.
    pub name: String,
    /// Whether a single instance serves all sessions (all of this
    /// repository's TAs are single-instance).
    pub single_instance: bool,
    /// Declared stack size in KiB.
    pub stack_kib: u32,
    /// Declared data/heap size in KiB (model weights live here for the
    /// filter TA).
    pub data_kib: u32,
}

impl TaDescriptor {
    /// Creates a descriptor with the given name-derived UUID and footprint.
    pub fn new(name: &str, stack_kib: u32, data_kib: u32) -> Self {
        TaDescriptor {
            uuid: TaUuid::from_name(name),
            name: name.to_owned(),
            single_instance: true,
            stack_kib,
            data_kib,
        }
    }

    /// Total declared footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        (self.stack_kib as usize + self.data_kib as usize) * 1024
    }
}

/// The interface a trusted application implements.
///
/// Lifecycle mirrors the GlobalPlatform Internal Core API:
/// `open_session` → any number of `invoke` calls → `close_session`.
pub trait TrustedApp: Send {
    /// The application's descriptor.
    fn descriptor(&self) -> TaDescriptor;

    /// Called when a client opens a session.
    ///
    /// # Errors
    ///
    /// Implementations reject sessions with [`TeeError`] values; the default
    /// accepts every session.
    fn open_session(&mut self, env: &mut TaEnv<'_>, params: &mut TeeParams) -> TeeResult<()> {
        let _ = (env, params);
        Ok(())
    }

    /// Handles one command invocation.
    ///
    /// # Errors
    ///
    /// Command-specific; see each TA's documentation.
    fn invoke(&mut self, env: &mut TaEnv<'_>, cmd: u32, params: &mut TeeParams) -> TeeResult<()>;

    /// Called when the session closes. The default does nothing.
    fn close_session(&mut self, env: &mut TaEnv<'_>) {
        let _ = env;
    }
}

/// The internal API handed to a TA for the duration of one call.
///
/// It wraps the TEE core and the calling session, exposing exactly the
/// services the paper's TA needs: secure compute accounting, PTA
/// invocation (the ported driver), supplicant networking (the relay path),
/// secure storage and secure memory.
pub struct TaEnv<'a> {
    core: &'a TeeCore,
    ta_uuid: TaUuid,
    session: SessionId,
}

impl std::fmt::Debug for TaEnv<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaEnv")
            .field("ta_uuid", &self.ta_uuid.to_string())
            .field("session", &self.session)
            .finish()
    }
}

impl<'a> TaEnv<'a> {
    pub(crate) fn new(core: &'a TeeCore, ta_uuid: TaUuid, session: SessionId) -> Self {
        TaEnv {
            core,
            ta_uuid,
            session,
        }
    }

    /// The session this call belongs to.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// UUID of the TA being served.
    pub fn ta_uuid(&self) -> TaUuid {
        self.ta_uuid
    }

    /// The underlying platform (clock, stats, cost model).
    pub fn platform(&self) -> &Platform {
        self.core.platform()
    }

    /// The device's telemetry tracer (disabled unless the pipeline
    /// installed one on the core via `TeeCore::set_tracer`). TAs open
    /// their inference-stage spans on this, so they nest under the
    /// enclosing `smc.call` span.
    pub fn tracer(&self) -> perisec_telemetry::Tracer {
        self.core.tracer()
    }

    /// Charges `flops` of compute in the secure world, returning the time
    /// charged. TAs use this to account for their ML inference.
    pub fn charge_compute(&self, flops: u64) -> SimDuration {
        self.core
            .platform()
            .charge_compute(perisec_tz::world::World::Secure, flops)
    }

    /// Charges a fixed amount of secure-world CPU time.
    pub fn charge_cpu(&self, duration: SimDuration) {
        self.core
            .platform()
            .charge_cpu(perisec_tz::world::World::Secure, duration);
    }

    /// Invokes a command on a pseudo TA (e.g. the secure I2S driver PTA).
    /// This stays entirely inside the secure world: no world switch, only
    /// the PTA dispatch cost.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] if no PTA has that UUID, or the
    /// PTA's own error.
    pub fn invoke_pta(&self, uuid: TaUuid, cmd: u32, params: &mut TeeParams) -> TeeResult<()> {
        self.core.invoke_pta(uuid, cmd, params)
    }

    /// Issues a supplicant RPC (two world switches plus the RPC cost are
    /// charged by the core).
    ///
    /// # Errors
    ///
    /// Propagates supplicant errors (missing files, no network backend,
    /// transport failures).
    pub fn supplicant_rpc(&self, request: RpcRequest) -> TeeResult<RpcReply> {
        self.core.supplicant_rpc(request)
    }

    /// Opens a network connection through the supplicant.
    ///
    /// # Errors
    ///
    /// See [`TaEnv::supplicant_rpc`].
    pub fn net_connect(&self, host: &str, port: u16) -> TeeResult<u64> {
        match self.supplicant_rpc(RpcRequest::NetConnect {
            host: host.to_owned(),
            port,
        })? {
            RpcReply::Socket(s) => Ok(s),
            other => Err(TeeError::Communication {
                reason: format!("unexpected supplicant reply {other:?} to connect"),
            }),
        }
    }

    /// Sends bytes on a supplicant socket.
    ///
    /// # Errors
    ///
    /// See [`TaEnv::supplicant_rpc`].
    pub fn net_send(&self, socket: u64, data: &[u8]) -> TeeResult<usize> {
        match self.supplicant_rpc(RpcRequest::NetSend {
            socket,
            data: data.to_vec(),
        })? {
            RpcReply::Written(n) => Ok(n),
            other => Err(TeeError::Communication {
                reason: format!("unexpected supplicant reply {other:?} to send"),
            }),
        }
    }

    /// Receives up to `max` bytes from a supplicant socket.
    ///
    /// # Errors
    ///
    /// See [`TaEnv::supplicant_rpc`].
    pub fn net_recv(&self, socket: u64, max: usize) -> TeeResult<Vec<u8>> {
        match self.supplicant_rpc(RpcRequest::NetRecv { socket, max })? {
            RpcReply::Data(d) => Ok(d),
            other => Err(TeeError::Communication {
                reason: format!("unexpected supplicant reply {other:?} to recv"),
            }),
        }
    }

    /// Closes a supplicant socket.
    ///
    /// # Errors
    ///
    /// See [`TaEnv::supplicant_rpc`].
    pub fn net_close(&self, socket: u64) -> TeeResult<()> {
        self.supplicant_rpc(RpcRequest::NetClose { socket })
            .map(|_| ())
    }

    /// Writes an object to this TA's secure storage.
    ///
    /// # Errors
    ///
    /// Propagates storage/supplicant failures.
    pub fn storage_write(&self, name: &str, data: &[u8]) -> TeeResult<()> {
        self.core
            .storage()
            .write(self.core, self.ta_uuid, name, data)
    }

    /// Reads an object from this TA's secure storage.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] if the object does not exist, or
    /// [`TeeError::SecurityViolation`] if its authentication fails.
    pub fn storage_read(&self, name: &str) -> TeeResult<Vec<u8>> {
        self.core.storage().read(self.core, self.ta_uuid, name)
    }

    /// Deletes an object from this TA's secure storage.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] if the object does not exist.
    pub fn storage_delete(&self, name: &str) -> TeeResult<()> {
        self.core.storage().delete(self.core, self.ta_uuid, name)
    }

    /// Allocates a buffer from the TrustZone secure RAM carve-out.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::OutOfMemory`] when the carve-out is exhausted.
    pub fn secure_alloc(&self, bytes: usize) -> TeeResult<SecureBuf> {
        self.core
            .platform()
            .secure_ram()
            .alloc(bytes)
            .map_err(TeeError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_footprint_is_stack_plus_data() {
        let d = TaDescriptor::new("perisec.test-ta", 64, 512);
        assert_eq!(d.footprint_bytes(), (64 + 512) * 1024);
        assert!(d.single_instance);
        assert_eq!(d.uuid, TaUuid::from_name("perisec.test-ta"));
    }
}
